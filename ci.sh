#!/bin/sh
# Tier-1 verification gate: formatting, package docs, vet, build, then
# the full test suite under the race detector (the separation oracle and
# the experiments harness are the concurrent parts). Run from the repo
# root; see README "Install / build".
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== package docs"
missing=""
for dir in internal/*/; do
	[ -d "$dir" ] || continue
	if ! ls "$dir"*.go >/dev/null 2>&1; then
		continue # no Go package here
	fi
	if [ ! -f "${dir}doc.go" ]; then
		missing="$missing $dir"
	fi
done
if [ -n "$missing" ]; then
	echo "ci: internal packages missing doc.go:$missing" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (lubt-bench/1 JSON + pricing pivot gate + ECO gate)"
# Each reference bench is run through `lubtbench -json` (the
# revised/devex, revised/most-violated, dense lineup plus the single-sink
# ECO probe on the revised row), then the emitted record is
# schema-validated (TestBenchJSONFile) and passed through the pricing
# regression gate (TestBenchJSONPivotGate): Devex must not take more dual
# pivots than the most-violated baseline — and the warm-restart gate
# (TestBenchJSONEcoGate): re-solving after a single-sink retighten must
# take fewer than 25% of the cold solve's pivots. r4-s is the
# degenerate-tie-heavy instance where the schemes actually separate.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for bench in prim1-s r4-s; do
	go run ./cmd/lubtbench -json -bench "$bench" -repeats 1 -outdir "$tmp"
	bench_json="$tmp/BENCH_$bench.json"
	if [ ! -s "$bench_json" ]; then
		echo "ci: lubtbench -json produced no output for $bench" >&2
		exit 1
	fi
	if ! grep -q '"schema": "lubt-bench/1"' "$bench_json"; then
		echo "ci: $bench_json missing lubt-bench/1 schema marker" >&2
		exit 1
	fi
	LUBT_BENCH_JSON="$bench_json" go test -run 'TestBenchJSONFile|TestBenchJSONPivotGate|TestBenchJSONEcoGate' ./internal/experiments
done

echo "ci: ok"
