#!/bin/sh
# Tier-1 verification gate: vet, build, then the full test suite under the
# race detector (the separation oracle and the experiments harness are the
# concurrent parts). Run from the repo root; see README "Install / build".
set -eu

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "ci: ok"
