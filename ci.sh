#!/bin/sh
# Tier-1 verification gate: formatting, package docs, vet, build, then
# the full test suite under the race detector (the separation oracle and
# the experiments harness are the concurrent parts). Run from the repo
# root; see README "Install / build".
set -eu

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== package docs"
missing=""
for dir in internal/*/; do
	[ -d "$dir" ] || continue
	if ! ls "$dir"*.go >/dev/null 2>&1; then
		continue # no Go package here
	fi
	if [ ! -f "${dir}doc.go" ]; then
		missing="$missing $dir"
	fi
done
if [ -n "$missing" ]; then
	echo "ci: internal packages missing doc.go:$missing" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (lubt-bench/1 JSON + pricing pivot gate + ECO gate)"
# Each reference bench is run through `lubtbench -json` (the
# revised/devex, revised/most-violated, dense lineup plus the single-sink
# ECO probe on the revised row), then the emitted record is
# schema-validated (TestBenchJSONFile) and passed through the pricing
# regression gate (TestBenchJSONPivotGate): Devex must not take more dual
# pivots than the most-violated baseline — and the warm-restart gate
# (TestBenchJSONEcoGate): re-solving after a single-sink retighten must
# take fewer than 25% of the cold solve's pivots. r4-s is the
# degenerate-tie-heavy instance where the schemes actually separate.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
for bench in prim1-s r4-s; do
	go run ./cmd/lubtbench -json -bench "$bench" -repeats 1 -outdir "$tmp"
	bench_json="$tmp/BENCH_$bench.json"
	if [ ! -s "$bench_json" ]; then
		echo "ci: lubtbench -json produced no output for $bench" >&2
		exit 1
	fi
	if ! grep -q '"schema": "lubt-bench/1"' "$bench_json"; then
		echo "ci: $bench_json missing lubt-bench/1 schema marker" >&2
		exit 1
	fi
	LUBT_BENCH_JSON="$bench_json" go test -run 'TestBenchJSONFile|TestBenchJSONPivotGate|TestBenchJSONEcoGate' ./internal/experiments
done

echo "== scale smoke (r6-class: presolve + subtree decomposition gate)"
# r6-s (2500 sinks) crosses the scale threshold, so `lubtbench -json`
# switches to the sector-partitioned baseline and the ablation lineup:
# "revised" under the auto settings (dominance presolve + parallel
# subtree decomposition) against "revised-nopresolve" with both passes
# forced off. The emitted record is schema-validated and passed through
# experiments.CheckPresolveGate (TestBenchJSONPresolveGate): presolve
# must prune a nonzero number of candidate rows, the decomposed peak
# row count must not exceed the monolithic one, and the two optima must
# agree to 1e-6·radius. The nopresolve row is the long pole here — it
# is the 30x-slower monolithic solve the passes exist to avoid.
go run ./cmd/lubtbench -json -bench r6-s -repeats 1 -outdir "$tmp"
scale_json="$tmp/BENCH_r6-s.json"
if [ ! -s "$scale_json" ]; then
	echo "ci: lubtbench -json produced no output for r6-s" >&2
	exit 1
fi
for key in presolve_pruned_rows subtrees peak_rows; do
	if ! grep -q "\"$key\"" "$scale_json"; then
		echo "ci: $scale_json missing lubt-bench/1 key $key" >&2
		exit 1
	fi
done
LUBT_BENCH_JSON="$scale_json" go test -run 'TestBenchJSONFile|TestBenchJSONPresolveGate' ./internal/experiments

echo "== lubtd smoke (live daemon: cold solve, warm eco, lubtd-metrics/2 + prom + flight scrape)"
# Start the daemon on an ephemeral port, send one cold /solve and one
# warm /eco on the returned key, then scrape /metrics (JSON and
# ?format=prom) and /debug/flight and validate all three documents the
# same way the bench smoke validates lubt-bench/1 records
# (TestMetricsJSONFile also asserts cache_hits >= 1 — the warm path was
# actually taken; TestPromTextFile that the cold and warm-eco latency
# histograms were populated; TestFlightJSONFile that the flight ring
# holds both requests). TestAPIDocRoutes gates that docs/API.md
# documents every registered route and metric name.
go build -o "$tmp/lubtd" ./cmd/lubtd
"$tmp/lubtd" -addr 127.0.0.1:18080 -workers 2 -cache 4 >"$tmp/lubtd.log" 2>&1 &
lubtd_pid=$!
trap 'kill "$lubtd_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
for i in $(seq 1 50); do
	if curl -sf http://127.0.0.1:18080/healthz >/dev/null 2>&1; then
		break
	fi
	sleep 0.1
done
curl -sf http://127.0.0.1:18080/healthz >/dev/null || {
	echo "ci: lubtd never became healthy" >&2
	cat "$tmp/lubtd.log" >&2
	exit 1
}
cat >"$tmp/solve.json" <<'EOF'
{
  "sinks": [{"x": 120, "y": 400}, {"x": 610, "y": 220}, {"x": 350, "y": 700},
            {"x": 80, "y": 90}, {"x": 520, "y": 530}, {"x": 260, "y": 310}],
  "source": {"x": 0, "y": 0},
  "normalized": true,
  "lower_all": 0.9
}
EOF
curl -sf -o "$tmp/solve_out.json" --data-binary @"$tmp/solve.json" http://127.0.0.1:18080/solve || {
	echo "ci: lubtd /solve failed" >&2
	cat "$tmp/lubtd.log" >&2
	exit 1
}
key=$(sed -n 's/.*"key": *"\([^"]*\)".*/\1/p' "$tmp/solve_out.json" | head -1)
if [ -z "$key" ]; then
	echo "ci: lubtd /solve response carries no key" >&2
	cat "$tmp/solve_out.json" >&2
	exit 1
fi
printf '{"key": "%s", "retighten": [{"sink": 0, "lower": 0, "upper": 0}]}' "$key" >"$tmp/eco.json"
curl -sf -o "$tmp/eco_out.json" --data-binary @"$tmp/eco.json" http://127.0.0.1:18080/eco || {
	echo "ci: lubtd /eco failed" >&2
	cat "$tmp/lubtd.log" >&2
	exit 1
}
grep -q '"cache": *"hit"' "$tmp/eco_out.json" || {
	echo "ci: lubtd /eco was not served from the warm session" >&2
	cat "$tmp/eco_out.json" >&2
	exit 1
}
curl -sf -o "$tmp/metrics.json" http://127.0.0.1:18080/metrics
curl -sf -o "$tmp/metrics.prom" 'http://127.0.0.1:18080/metrics?format=prom'
curl -sf -o "$tmp/flight.json" http://127.0.0.1:18080/debug/flight
kill "$lubtd_pid"
wait "$lubtd_pid" 2>/dev/null || true
trap 'rm -rf "$tmp"' EXIT
LUBTD_METRICS_JSON="$tmp/metrics.json" LUBTD_PROM_TEXT="$tmp/metrics.prom" LUBTD_FLIGHT_JSON="$tmp/flight.json" \
	go test -run 'TestMetricsJSONFile|TestPromTextFile|TestFlightJSONFile|TestAPIDocRoutes' ./internal/serve

echo "ci: ok"
