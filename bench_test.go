package lubt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§8) as Go benchmarks, one per exhibit, plus the ablation
// benches called out in DESIGN.md. Costs are attached to the benchmark
// output via ReportMetric so `go test -bench` output doubles as the
// experiment log; cmd/lubtbench prints the same data as formatted tables.
//
// Scaled benchmark instances run by default; set LUBT_FULL=1 for the
// published sink counts (much slower on the wide-window rows).

import (
	"fmt"
	"math"
	"os"
	"testing"

	"lubt/internal/bst"
	"lubt/internal/core"
	"lubt/internal/experiments"
	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/wkld"
)

func fullSize() bool { return os.Getenv("LUBT_FULL") == "1" }

// BenchmarkTable1 regenerates Table 1: baseline [9]-style routing vs LUBT
// across the paper's eight skew bounds, per benchmark circuit. The
// reported metrics are the summed tree costs over all skew rows and the
// mean LUBT saving.
func BenchmarkTable1(b *testing.B) {
	for _, name := range experiments.TableBenches(fullSize()) {
		b.Run(name, func(b *testing.B) {
			var rows []experiments.Row1
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Table1([]string{name}, experiments.Skews1)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportTable1(b, rows)
		})
	}
}

func reportTable1(b *testing.B, rows []experiments.Row1) {
	var baseSum, lubtSum, saving float64
	for _, r := range rows {
		baseSum += r.BaseCost
		lubtSum += r.LubtCost
		saving += 1 - r.LubtCost/r.BaseCost
	}
	b.ReportMetric(baseSum, "basecost")
	b.ReportMetric(lubtSum, "lubtcost")
	b.ReportMetric(100*saving/float64(len(rows)), "%saving")
}

// BenchmarkTable2 regenerates Table 2: fixed skew bound, sliding delay
// windows (prim1 and prim2, skew bounds 0.3 and 0.5).
func BenchmarkTable2(b *testing.B) {
	for _, name := range experiments.TableBenches(fullSize())[:2] {
		b.Run(name, func(b *testing.B) {
			var rows []experiments.Row2
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Table2([]string{name}, experiments.Skews2)
				if err != nil {
					b.Fatal(err)
				}
			}
			var sum float64
			for _, r := range rows {
				sum += r.Cost
			}
			b.ReportMetric(sum/float64(len(rows)), "meancost")
		})
	}
}

// BenchmarkTable3 regenerates Table 3: the eight [l, u] bound combinations
// per benchmark circuit.
func BenchmarkTable3(b *testing.B) {
	for _, name := range experiments.TableBenches(fullSize()) {
		b.Run(name, func(b *testing.B) {
			var rows []experiments.Row3
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.Table3([]string{name})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Cost, "tightcost")           // [0.99, 1]
			b.ReportMetric(rows[len(rows)-1].Cost, "loosecost") // [0, 2]
		})
	}
}

// BenchmarkFigure8 regenerates the Figure 8 trade-off curve (prim2).
func BenchmarkFigure8(b *testing.B) {
	name := experiments.TableBenches(fullSize())[1]
	var rows []experiments.FigRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8(name)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "points")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.Cost)
		hi = math.Max(hi, r.Cost)
	}
	b.ReportMetric(lo, "mincost")
	b.ReportMetric(hi, "maxcost")
}

// ablationInstance prepares a mid-sized solve shared by the ablation
// benches: prim1-scale topology with a half-radius tolerable-skew window.
func ablationInstance(b *testing.B) (*core.Instance, core.Bounds) {
	b.Helper()
	bench := wkld.MustGenerate("prim1-s")
	src := bench.Source
	radius := 0.0
	for _, s := range bench.Sinks {
		radius = math.Max(radius, geom.Dist(src, s))
	}
	base, err := bst.Route(bench.Sinks, 0.5*radius, &src)
	if err != nil {
		b.Fatal(err)
	}
	ci := &core.Instance{Tree: base.Tree, Source: &src,
		SinkLoc: make([]geom.Point, len(bench.Sinks)+1)}
	copy(ci.SinkLoc[1:], bench.Sinks)
	m := base.Tree.NumSinks
	cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.U[i] = base.Stats.Max
		cb.L[i] = math.Max(0, cb.U[i]-0.5*radius)
	}
	return ci, cb
}

// BenchmarkAblationRowGen compares the §4.6 constraint reduction (row
// generation on the incremental dual simplex) against stating the full
// C(m,2) Steiner matrix upfront.
func BenchmarkAblationRowGen(b *testing.B) {
	ci, cb := ablationInstance(b)
	b.Run("rowgen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Solve(ci, cb, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.RowsUsed), "rows")
		}
	})
	b.Run("fullmatrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Solve(ci, cb, &core.Options{FullMatrix: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.RowsUsed), "rows")
		}
	})
}

// BenchmarkAblationSolver compares the three LP engines on the same EBF
// instance: warm-started incremental dual simplex (default), cold
// two-phase primal simplex, and the interior-point method (the paper's
// LOQO stand-in).
func BenchmarkAblationSolver(b *testing.B) {
	ci, cb := ablationInstance(b)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(ci, cb, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("coldsimplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(ci, cb, &core.Options{Solver: &lp.Simplex{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ipm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Solve(ci, cb, &core.Options{Solver: &lp.IPM{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPlacement compares the two top-down placement policies
// of the embedding pass (§5): nearest-to-parent vs region center.
func BenchmarkAblationPlacement(b *testing.B) {
	bench := wkld.MustGenerate("prim1-s")
	sinks := make([]Point, len(bench.Sinks))
	for i, s := range bench.Sinks {
		sinks[i] = Point{X: s.X, Y: s.Y}
	}
	for _, policy := range []string{"nearest", "center"} {
		b.Run(policy, func(b *testing.B) {
			inst, err := NewInstance(sinks)
			if err != nil {
				b.Fatal(err)
			}
			inst.SetSource(Point{X: bench.Source.X, Y: bench.Source.Y})
			if err := inst.UseSkewGuidedTopology(0.5 * inst.Radius()); err != nil {
				b.Fatal(err)
			}
			r := inst.Radius()
			bounds := Uniform(len(sinks), 0.5*r, 1.1*r)
			var span float64
			for i := 0; i < b.N; i++ {
				tree, err := inst.Solve(bounds, &Options{Placement: policy})
				if err != nil {
					b.Fatal(err)
				}
				span = tree.TotalElongation()
			}
			b.ReportMetric(span, "snaking")
		})
	}
}

// BenchmarkBaselineRouter measures the [9]-style bounded-skew router on
// its own (topology generation + merge + embedding).
func BenchmarkBaselineRouter(b *testing.B) {
	bench := wkld.MustGenerate("prim2-s")
	src := bench.Source
	for i := 0; i < b.N; i++ {
		if _, err := bst.Route(bench.Sinks, 500, &src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeparationOracle measures one full O(m²) Steiner-violation scan
// at full prim2 size — the inner loop of the §4.6 constraint reduction.
func BenchmarkSeparationOracle(b *testing.B) {
	bench := wkld.MustGenerate("prim2")
	src := bench.Source
	base, err := bst.Route(bench.Sinks, math.Inf(1), &src)
	if err != nil {
		b.Fatal(err)
	}
	ci := &core.Instance{Tree: base.Tree, Source: &src,
		SinkLoc: make([]geom.Point, len(bench.Sinks)+1)}
	copy(ci.SinkLoc[1:], bench.Sinks)
	m := base.Tree.NumSinks
	cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.U[i] = math.Inf(1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Verify(ci, cb, base.E, 1e-3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalability tracks how one LUBT solve scales with sink count
// on uniform instances (tolerable-skew window of half the radius). The
// reported rows metric shows the §4.6 reduction holding the generated
// Steiner rows near-linear in m while the full matrix would be C(m,2).
func BenchmarkScalability(b *testing.B) {
	for _, m := range []int{32, 64, 128, 256} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			bench := wkld.Custom("scale", m, 17)
			src := bench.Source
			radius := 0.0
			for _, s := range bench.Sinks {
				radius = math.Max(radius, geom.Dist(src, s))
			}
			base, err := bst.Route(bench.Sinks, 0.5*radius, &src)
			if err != nil {
				b.Fatal(err)
			}
			ci := &core.Instance{Tree: base.Tree, Source: &src,
				SinkLoc: make([]geom.Point, m+1)}
			copy(ci.SinkLoc[1:], bench.Sinks)
			cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
			for i := 1; i <= m; i++ {
				cb.U[i] = base.Stats.Max
				cb.L[i] = math.Max(0, cb.U[i]-0.5*radius)
			}
			b.ResetTimer()
			var rows int
			for i := 0; i < b.N; i++ {
				res, err := core.Solve(ci, cb, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows = res.RowsUsed
			}
			b.ReportMetric(float64(rows), "rows")
			b.ReportMetric(float64(m*(m-1)/2), "fullrows")
		})
	}
}
