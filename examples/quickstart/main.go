// Quickstart: route a small clock net with delay bounds.
//
// Eight sinks on a 100×100 die, source pad at the bottom edge. We ask for
// every source-sink delay to land in [0.9, 1.2]× the instance radius —
// a tolerable-skew constraint of 0.3·radius with a hard delay cap — and
// print the resulting tree.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lubt"
)

func main() {
	sinks := []lubt.Point{
		{X: 10, Y: 80}, {X: 35, Y: 95}, {X: 60, Y: 85}, {X: 90, Y: 70},
		{X: 15, Y: 30}, {X: 40, Y: 45}, {X: 70, Y: 35}, {X: 95, Y: 20},
	}
	inst, err := lubt.NewInstance(sinks)
	if err != nil {
		log.Fatal(err)
	}
	inst.SetSource(lubt.Point{X: 50, Y: 0})

	// Topology from the skew-guided generator (the paper adopts the
	// generator of its reference [9]).
	if err := inst.UseSkewGuidedTopology(0.3 * inst.Radius()); err != nil {
		log.Fatal(err)
	}

	r := inst.Radius()
	bounds := lubt.Uniform(len(sinks), 0.9*r, 1.2*r)
	tree, err := inst.Solve(bounds, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	fmt.Println(tree)
	fmt.Printf("radius            %.2f\n", r)
	fmt.Printf("total wirelength  %.2f\n", tree.Cost)
	fmt.Printf("snaking (elong.)  %.2f\n", tree.TotalElongation())
	fmt.Println("\nsink   delay    delay/radius")
	for i, d := range tree.SinkDelays {
		fmt.Printf("%4d   %7.2f  %.3f\n", i, d, d/r)
	}
}
