// Globalrouting: upper-bounded delay trees and short-path repair — the
// two global-routing applications from the paper's introduction.
//
// Part 1 sweeps the delay cap u on a signal net ([l=0, u] windows, the
// "upper bounded delay tree" of §4.3) and prints the classic cost/delay
// trade-off: tight caps force direct-but-expensive routing, loose caps
// approach the minimum Steiner cost for the topology.
//
// Part 2 fixes a short-path (hold-time) violation the paper's way: instead
// of inserting delay buffers, raise the *lower* bound so the LP elongates
// wires until every path is slow enough — cheaper in area and power than
// buffers when routing delays dominate.
//
// Run with: go run ./examples/globalrouting
package main

import (
	"fmt"
	"log"
	"math"

	"lubt"
	"lubt/workloads"
)

func main() {
	bench := workloads.Custom("signal-net", 24, 20250705)
	inst, err := lubt.NewInstance(bench.Sinks)
	if err != nil {
		log.Fatal(err)
	}
	inst.SetSource(bench.Source)
	if err := inst.UseSkewGuidedTopology(math.Inf(1)); err != nil {
		log.Fatal(err)
	}
	r := inst.Radius()
	m := len(bench.Sinks)

	fmt.Println("Part 1: delay-capped global routing (l = 0)")
	fmt.Println("cap (×R)  wirelength  max delay (×R)")
	for _, cap := range []float64{1.0, 1.1, 1.25, 1.5, 2.0, math.Inf(1)} {
		u := cap * r
		if math.IsInf(cap, 1) {
			u = math.Inf(1)
		}
		tree, err := inst.Solve(lubt.Uniform(m, 0, u), nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Verify(); err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.2f", cap)
		if math.IsInf(cap, 1) {
			label = "inf"
		}
		fmt.Printf("%-9s %10.0f  %.3f\n", label, tree.Cost, tree.MaxDelay/r)
	}

	fmt.Println("\nPart 2: short-path repair by wire elongation (l > 0)")
	unconstrained, err := inst.Solve(lubt.Uniform(m, 0, math.Inf(1)), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-cost tree: cost %.0f, fastest sink at %.2f×R\n",
		unconstrained.Cost, unconstrained.MinDelay/r)
	fmt.Println("\nhold floor (×R)  cost    extra wire  snaking  slow sinks fixed")
	for _, floor := range []float64{0.25, 0.5, 0.75, 1.0} {
		l := floor * r
		short := 0
		for _, d := range unconstrained.SinkDelays {
			if d < l {
				short++
			}
		}
		repaired, err := inst.Solve(lubt.Uniform(m, l, math.Inf(1)), nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := repaired.Verify(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16.2f %-7.0f %-11.0f %-8.0f %d/%d\n",
			floor, repaired.Cost, repaired.Cost-unconstrained.Cost,
			repaired.TotalElongation(), short, m)
	}
	fmt.Println("(the buffer-insertion alternative would add gates instead of wire)")
}
