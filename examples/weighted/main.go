// Weighted: the §7 "different weights on edges" extension — per-edge
// objective weights modelling wireability, metal choice or switching
// activity.
//
// A clock tree's trunk edges (near the root) are usually routed on upper,
// less resistive and less congested metal, while the leaf-level edges
// fight for lower-layer tracks. The example prices leaf-depth edges above
// trunk edges and shows the LP responding: with non-uniform prices the
// optimizer shifts length toward the cheap trunk wherever the delay
// windows leave a choice, lowering the *priced* cost below what the
// unit-weight tree would pay under the same prices.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"lubt"
	"lubt/workloads"
)

func main() {
	bench := workloads.Custom("weighted-demo", 16, 99)
	inst, err := lubt.NewInstance(bench.Sinks)
	if err != nil {
		log.Fatal(err)
	}
	inst.SetSource(bench.Source)
	if err := inst.UseSkewGuidedTopology(0.4 * inst.Radius()); err != nil {
		log.Fatal(err)
	}
	r := inst.Radius()
	bounds := lubt.Uniform(len(bench.Sinks), 0.6*r, 1.1*r)

	// Depth-based prices: edges whose child node is a sink (leaf wires)
	// cost 1.5 per unit, everything else 1.0.
	parent := inst.Topology()
	weights := make([]float64, len(parent))
	for k := 1; k < len(parent); k++ {
		if k <= len(bench.Sinks) {
			weights[k] = 1.5 // leaf wire on congested lower metal
		} else {
			weights[k] = 1.0 // trunk wire
		}
	}

	uniform, err := inst.Solve(bounds, nil)
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := inst.Solve(bounds, &lubt.Options{Weights: weights})
	if err != nil {
		log.Fatal(err)
	}
	if err := weighted.Verify(); err != nil {
		log.Fatal(err)
	}

	price := func(t *lubt.Tree) (leaf, trunk, priced float64) {
		for k := 1; k < len(t.EdgeLengths); k++ {
			if k <= t.NumSinks {
				leaf += t.EdgeLengths[k]
			} else {
				trunk += t.EdgeLengths[k]
			}
			priced += weights[k] * t.EdgeLengths[k]
		}
		return leaf, trunk, priced
	}
	ul, ut, up := price(uniform)
	wl, wt, wp := price(weighted)

	fmt.Println("            leaf wire  trunk wire  priced cost")
	fmt.Printf("unit-weight %9.0f  %10.0f  %11.0f\n", ul, ut, up)
	fmt.Printf("weighted    %9.0f  %10.0f  %11.0f\n", wl, wt, wp)
	fmt.Printf("\npriced-cost saving: %.1f%%  (leaf wire moved to the trunk: %.0f units)\n",
		100*(1-wp/up), ul-wl)
}
