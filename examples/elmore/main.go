// Elmore: the §7 extension — delay windows under the Elmore (distributed
// RC) model instead of the linear model.
//
// Under Elmore delay the EBF constraints are quadratic in the edge
// lengths, so the problem is no longer an LP; the library follows the
// paper's suggestion of a general nonlinear method, using sequential
// linear programming around the exact Elmore gradient. The example routes
// a register cluster with realistic per-unit RC and sink loads, caps the
// Elmore delay, then adds a lower bound (hold protection) and shows the
// wirelength cost of each constraint.
//
// Run with: go run ./examples/elmore
package main

import (
	"fmt"
	"log"
	"math"

	"lubt"
	"lubt/workloads"
)

func main() {
	bench := workloads.Custom("rc-cluster", 12, 7)
	inst, err := lubt.NewInstance(bench.Sinks)
	if err != nil {
		log.Fatal(err)
	}
	inst.SetSource(bench.Source)
	if err := inst.UseSkewGuidedTopology(math.Inf(1)); err != nil {
		log.Fatal(err)
	}
	m := len(bench.Sinks)

	// Per-unit wire parasitics and sink loads (arbitrary consistent
	// units: resistance/length, capacitance/length, capacitance).
	const rw, cw = 0.03, 0.02
	loads := make([]float64, m)
	for i := range loads {
		loads[i] = 5 + float64(i%3)*5
	}

	// Reference: geometric minimum (no delay constraints).
	free, err := inst.SolveElmore(lubt.Uniform(m, 0, math.Inf(1)), rw, cw, loads, nil)
	if err != nil {
		log.Fatal(err)
	}
	worst := free.MaxDelay
	fmt.Printf("unconstrained:  cost %8.0f   Elmore delays [%.0f, %.0f]\n",
		free.Cost, free.MinDelay, free.MaxDelay)

	// Cap the Elmore delay 10%% below the unconstrained worst case.
	capped, err := inst.SolveElmore(lubt.Uniform(m, 0, 0.9*worst), rw, cw, loads, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cap 0.9×worst:  cost %8.0f   Elmore delays [%.0f, %.0f]\n",
		capped.Cost, capped.MinDelay, capped.MaxDelay)

	// Add a lower bound too: an Elmore-delay LUBT window. The non-convex
	// case the paper flags as future work, solved heuristically.
	windowed, err := inst.SolveElmore(lubt.Uniform(m, 0.7*worst, 0.9*worst), rw, cw, loads, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("window [.7,.9]: cost %8.0f   Elmore delays [%.0f, %.0f]\n",
		windowed.Cost, windowed.MinDelay, windowed.MaxDelay)
	fmt.Printf("\nwire overhead of the delay cap:    %+.1f%%\n",
		100*(capped.Cost/free.Cost-1))
	fmt.Printf("wire overhead of the full window:  %+.1f%%\n",
		100*(windowed.Cost/free.Cost-1))
}
