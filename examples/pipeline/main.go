// Pipeline: per-sink delay windows — the paper's motivating scenario of a
// pipelined design whose stages tolerate different clock arrival times.
//
// Flip-flops are grouped into three pipeline stages. The combinational
// delay feeding each stage differs, so the clock may arrive at stage 1
// early but must arrive at stage 3 late: each stage gets its own
// [l_i, u_i] window. A conventional zero-skew tree must instead deliver
// one common arrival time to everything, paying the worst case
// everywhere. The example quantifies what the per-stage windows save.
//
// Run with: go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lubt"
)

func main() {
	// Three stage clusters on a 1000×1000 die, 8 flip-flops each.
	rng := rand.New(rand.NewSource(42))
	cluster := func(cx, cy float64) []lubt.Point {
		pts := make([]lubt.Point, 8)
		for i := range pts {
			pts[i] = lubt.Point{X: cx + rng.Float64()*220 - 110, Y: cy + rng.Float64()*220 - 110}
		}
		return pts
	}
	var sinks []lubt.Point
	var stage []int
	for s, c := range [][2]float64{{200, 750}, {520, 480}, {820, 230}} {
		pts := cluster(c[0], c[1])
		sinks = append(sinks, pts...)
		for range pts {
			stage = append(stage, s+1)
		}
	}

	inst, err := lubt.NewInstance(sinks)
	if err != nil {
		log.Fatal(err)
	}
	inst.SetSource(lubt.Point{X: 0, Y: 1000})
	if err := inst.UseSkewGuidedTopology(0.2 * inst.Radius()); err != nil {
		log.Fatal(err)
	}
	r := inst.Radius()
	m := len(sinks)

	// Per-stage windows (×radius): stage 1 may clock early, stage 3 late.
	windows := map[int][2]float64{
		1: {0.9, 1.1},
		2: {1.0, 1.25},
		3: {1.1, 1.4},
	}
	b := lubt.Bounds{Lower: make([]float64, m), Upper: make([]float64, m)}
	for i, s := range stage {
		b.Lower[i] = windows[s][0] * r
		b.Upper[i] = windows[s][1] * r
	}
	perStage, err := inst.Solve(b, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := perStage.Verify(); err != nil {
		log.Fatal(err)
	}

	// The conventional alternative: one common arrival time tight enough
	// for every stage — the intersection [1.1, 1.1]×R (stage 3's floor
	// meets stage 1's cap).
	common, err := inst.Solve(lubt.Uniform(m, 1.1*r, 1.1*r), nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pipeline stages        3 × 8 flip-flops, radius %.0f\n", r)
	fmt.Printf("per-stage windows      cost %.0f\n", perStage.Cost)
	fmt.Printf("common arrival (ZST)   cost %.0f\n", common.Cost)
	fmt.Printf("saving                 %.1f%%\n", 100*(1-perStage.Cost/common.Cost))
	fmt.Println("\nstage  window (×R)   arrival range (×R)")
	for s := 1; s <= 3; s++ {
		lo, hi := 99.0, 0.0
		for i, st := range stage {
			if st != s {
				continue
			}
			d := perStage.SinkDelays[i] / r
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		fmt.Printf("%5d  [%.2f, %.2f]  [%.3f, %.3f]\n",
			s, windows[s][0], windows[s][1], lo, hi)
	}
}
