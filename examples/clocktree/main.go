// Clocktree: tolerable-skew clock routing (§6 of the paper) on the prim1
// benchmark stand-in, comparing the bounded-skew baseline against LUBT at
// several skew budgets, and rendering the routed tree as SVG.
//
// In exact zero-skew routing every sink delay must match; allowing a
// tolerable skew lets the router trade a little timing margin for a lot
// of wirelength (and thus clock power). The LP exploits all of that
// freedom optimally for the given topology.
//
// Run with: go run ./examples/clocktree
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"lubt"
	"lubt/workloads"
)

func main() {
	bench := workloads.MustLoad("prim1-s")
	sinks := bench.Sinks
	source := bench.Source

	fmt.Println("skew budget (×R)  baseline cost  LUBT cost  saving")
	var last *lubt.Tree
	for _, skewFrac := range []float64{0, 0.1, 0.3, 0.5, 1.0} {
		base, err := lubt.BoundedSkewBaseline(sinks, skewOf(skewFrac, sinks, source), &source)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := lubt.NewInstance(sinks)
		if err != nil {
			log.Fatal(err)
		}
		inst.SetSource(source)
		if err := inst.UseCustomTopology(base.Parent); err != nil {
			log.Fatal(err)
		}
		r := inst.Radius()
		// The tolerable-skew window: cap at the baseline's longest delay,
		// floor the budget below it.
		u := base.MaxDelay
		l := math.Max(0, u-skewFrac*r)
		tree, err := inst.Solve(lubt.Uniform(len(sinks), l, u), nil)
		if err != nil {
			log.Fatal(err)
		}
		if err := tree.Verify(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17.2f %13.0f  %9.0f  %4.1f%%\n",
			skewFrac, base.Cost, tree.Cost, 100*(1-tree.Cost/base.Cost))
		last = tree
	}

	f, err := os.Create("clocktree.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := last.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote clocktree.svg (skew budget 1.0×R tree)")
}

func skewOf(frac float64, sinks []lubt.Point, source lubt.Point) float64 {
	r := 0.0
	for _, s := range sinks {
		if d := lubt.Dist(source, s); d > r {
			r = d
		}
	}
	return frac * r
}
