package lubt

import (
	"encoding/json"
	"io"
)

// TreeJSON is the serializable form of a routed tree, stable across
// versions: topology, edge lengths, embedded locations and the summary
// statistics. Wire routes are emitted as polylines so downstream tooling
// (visualizers, DRC scripts) needs no knowledge of the snaking rules.
type TreeJSON struct {
	NumSinks    int       `json:"num_sinks"`
	Parent      []int     `json:"parent"`
	EdgeLengths []float64 `json:"edge_lengths"`
	Locations   []Point   `json:"locations"`
	Routes      [][]Point `json:"routes"`
	SinkDelays  []float64 `json:"sink_delays"`
	Cost        float64   `json:"cost"`
	MinDelay    float64   `json:"min_delay"`
	MaxDelay    float64   `json:"max_delay"`
	Skew        float64   `json:"skew"`
	Elongation  []float64 `json:"elongation"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(TreeJSON{
		NumSinks:    t.NumSinks,
		Parent:      t.Parent,
		EdgeLengths: t.EdgeLengths,
		Locations:   t.Locations,
		Routes:      t.Routes(),
		SinkDelays:  t.SinkDelays,
		Cost:        t.Cost,
		MinDelay:    t.MinDelay,
		MaxDelay:    t.MaxDelay,
		Skew:        t.Skew,
		Elongation:  t.Elongation,
	})
}

// WriteJSON writes the tree as indented JSON.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
