package lubt

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randPoints(rng *rand.Rand, m int) []Point {
	pts := make([]Point, m)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	return pts
}

func TestQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sinks := randPoints(rng, 12)
	inst, err := NewInstance(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	tree, err := inst.Solve(Uniform(12, 0.8*r, 1.3*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	for i, d := range tree.SinkDelays {
		if d < 0.8*r-1e-6 || d > 1.3*r+1e-6 {
			t.Fatalf("sink %d delay %g outside window", i, d)
		}
	}
	if tree.Skew > 0.5*r+1e-6 {
		t.Fatalf("skew %g exceeds window width", tree.Skew)
	}
	if tree.String() == "" {
		t.Error("empty String")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(nil); err == nil {
		t.Error("empty instance accepted")
	}
}

func TestSolveRequiresTopology(t *testing.T) {
	inst, _ := NewInstance(randPoints(rand.New(rand.NewSource(1)), 4))
	if _, err := inst.Solve(Uniform(4, 0, 1e9), nil); err == nil {
		t.Error("solve without topology accepted")
	}
}

func TestBalancedTopology(t *testing.T) {
	inst, _ := NewInstance(randPoints(rand.New(rand.NewSource(2)), 9))
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	if inst.Topology() == nil {
		t.Fatal("no topology recorded")
	}
	r := inst.Radius()
	tree, err := inst.Solve(Uniform(9, 0, 2*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCustomTopologyWithSplit(t *testing.T) {
	// A star (root with 4 sink children) exercises the Fig. 2 split.
	sinks := []Point{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	inst, _ := NewInstance(sinks)
	if err := inst.UseCustomTopology([]int{-1, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	tree, err := inst.Solve(Uniform(4, 0, 2*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWithSource(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sinks := randPoints(rng, 8)
	inst, _ := NewInstance(sinks)
	inst.SetSource(Point{50, -20})
	if err := inst.UseSkewGuidedTopology(5); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	tree, err := inst.Solve(Uniform(8, 0, 1.5*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := tree.Locations[0]; Dist(got, Point{50, -20}) > 1e-6 {
		t.Fatalf("source placed at %v", got)
	}
}

func TestInfeasibleSurfacesTypedError(t *testing.T) {
	sinks := []Point{{5, 0}, {1, 0}}
	inst, _ := NewInstance(sinks)
	inst.SetSource(Point{0, 0})
	// Non-leaf sink topology: 0 → 1 → 2, forcing delay(s2) ≥ 9.
	if err := inst.UseCustomTopology([]int{-1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	_, err := inst.Solve(Uniform(2, 0, 6), nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolverOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sinks := randPoints(rng, 6)
	inst, _ := NewInstance(sinks)
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	b := Uniform(6, 0.5*r, 1.5*r)
	sx, err := inst.Solve(b, &Options{Solver: "simplex"})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := inst.Solve(b, &Options{Solver: "ipm"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sx.Cost-ip.Cost) > 1e-3*(1+sx.Cost) {
		t.Fatalf("simplex %g vs ipm %g", sx.Cost, ip.Cost)
	}
	if _, err := inst.Solve(b, &Options{Solver: "nope"}); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := inst.Solve(b, &Options{Placement: "bogus"}); err == nil {
		t.Error("unknown placement accepted")
	}
	if _, err := inst.Solve(b, &Options{Placement: "center"}); err != nil {
		t.Errorf("center placement failed: %v", err)
	}
	full, err := inst.Solve(b, &Options{FullMatrix: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Cost-sx.Cost) > 1e-5*(1+sx.Cost) {
		t.Fatalf("full matrix %g vs rowgen %g", full.Cost, sx.Cost)
	}
}

func TestBoundedSkewBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sinks := randPoints(rng, 14)
	base, err := BoundedSkewBaseline(sinks, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Skew > 8+1e-7 {
		t.Fatalf("baseline skew %g > 8", base.Skew)
	}
	if err := base.Verify(); err != nil {
		t.Fatal(err)
	}
	// The paper's methodology: reuse the baseline topology and its own
	// delay window; the LP must not be worse (Theorem 4.2).
	inst, _ := NewInstance(sinks)
	if err := inst.UseCustomTopology(base.Parent); err != nil {
		t.Fatal(err)
	}
	tree, err := inst.Solve(Uniform(14, base.MinDelay, base.MaxDelay), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Cost > base.Cost*(1+1e-9)+1e-7 {
		t.Fatalf("LUBT %g worse than baseline %g", tree.Cost, base.Cost)
	}
}

func TestMismatchedBounds(t *testing.T) {
	inst, _ := NewInstance(randPoints(rand.New(rand.NewSource(6)), 5))
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Solve(Uniform(3, 0, 1e9), nil); err == nil {
		t.Error("mis-sized bounds accepted")
	}
}

func TestWeightsOption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sinks := randPoints(rng, 5)
	inst, _ := NewInstance(sinks)
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	n := len(inst.Topology())
	w := make([]float64, n)
	for i := range w {
		w[i] = 2
	}
	r := inst.Radius()
	doubled, err := inst.Solve(Uniform(5, 0, 2*r), &Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	unit, err := inst.Solve(Uniform(5, 0, 2*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(doubled.Cost-2*unit.Cost) > 1e-6*(1+unit.Cost) {
		t.Fatalf("uniform doubling: %g vs 2×%g", doubled.Cost, unit.Cost)
	}
}

func TestSolveElmoreFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sinks := randPoints(rng, 5)
	inst, _ := NewInstance(sinks)
	if err := inst.UseSkewGuidedTopology(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// Loose Elmore caps around the unconstrained tree.
	unconstrained, err := inst.Solve(Uniform(5, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = unconstrained
	caps := make([]float64, 5)
	for i := range caps {
		caps[i] = 0.5
	}
	tree, err := inst.SolveElmore(Uniform(5, 0, 1e6), 0.1, 0.2, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, d := range tree.SinkDelays {
		if d < 0 || d > 1e6 {
			t.Fatalf("Elmore delay %g out of window", d)
		}
	}
}

func TestRoutesAndElongation(t *testing.T) {
	sinks := []Point{{0, 0}, {10, 0}}
	inst, _ := NewInstance(sinks)
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()                                 // 5
	tree, err := inst.Solve(Uniform(2, 2*r, 2*r), nil) // force elongation
	if err != nil {
		t.Fatal(err)
	}
	if tree.TotalElongation() <= 0 {
		t.Fatalf("expected elongation, got %g", tree.TotalElongation())
	}
	routes := tree.Routes()
	var total float64
	for k := 1; k < len(routes); k++ {
		for j := 1; j < len(routes[k]); j++ {
			total += Dist(routes[k][j-1], routes[k][j])
		}
	}
	if math.Abs(total-tree.Cost) > 1e-6*(1+tree.Cost) {
		t.Fatalf("routed length %g vs cost %g", total, tree.Cost)
	}
}

func TestWriteSVG(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sinks := randPoints(rng, 6)
	inst, _ := NewInstance(sinks)
	if err := inst.UseSkewGuidedTopology(3); err != nil {
		t.Fatal(err)
	}
	tree, err := inst.Solve(Uniform(6, 0, 2*inst.Radius()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(out, "<rect") != 6 {
		t.Errorf("expected 6 sink markers, got %d", strings.Count(out, "<rect"))
	}
}

func TestSkewBoundsHelper(t *testing.T) {
	b := SkewBounds(3, 0.5, 2)
	for i := 0; i < 3; i++ {
		if b.Lower[i] != 1.5 || b.Upper[i] != 2 {
			t.Fatalf("window [%g,%g]", b.Lower[i], b.Upper[i])
		}
	}
}

func TestDistHelper(t *testing.T) {
	if Dist(Point{0, 0}, Point{3, 4}) != 7 {
		t.Error("Dist wrong")
	}
}

func TestRadiusWithoutTopology(t *testing.T) {
	inst, _ := NewInstance([]Point{{0, 0}, {10, 0}})
	if r := inst.Radius(); math.Abs(r-5) > 1e-12 {
		t.Fatalf("radius = %g, want 5", r)
	}
	inst.SetSource(Point{0, 10})
	if r := inst.Radius(); math.Abs(r-20) > 1e-12 {
		t.Fatalf("radius with source = %g, want 20", r)
	}
}

func TestSingleSinkWithSource(t *testing.T) {
	inst, _ := NewInstance([]Point{{3, 4}})
	inst.SetSource(Point{0, 0})
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	tree, err := inst.Solve(Uniform(1, 7, 10), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tree.Cost-7) > 1e-7 {
		t.Fatalf("cost = %g, want 7", tree.Cost)
	}
}

func TestElmoreZeroSkewFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	sinks := randPoints(rng, 9)
	caps := make([]float64, 9)
	for i := range caps {
		caps[i] = 1 + rng.Float64()*3
	}
	tree, err := ElmoreZeroSkew(sinks, 0.1, 0.1, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Skew > 1e-7*(1+tree.MaxDelay) {
		t.Fatalf("Elmore ZST skew %g", tree.Skew)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation of the two Elmore-domain solvers: the SLP given a
// window around the exact-ZST delay, on the ZST's own topology, must stay
// feasible and within sight of the constructive tree's cost.
func TestElmoreSLPVsExactZST(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sinks := randPoints(rng, 7)
	zstTree, err := ElmoreZeroSkew(sinks, 0.05, 0.05, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst, _ := NewInstance(sinks)
	if err := inst.UseCustomTopology(zstTree.Parent); err != nil {
		t.Fatal(err)
	}
	d := zstTree.MaxDelay
	slp, err := inst.SolveElmore(Uniform(7, 0.95*d, 1.05*d), 0.05, 0.05, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range slp.SinkDelays {
		if sd < 0.95*d-1e-6*d || sd > 1.05*d+1e-6*d {
			t.Fatalf("SLP delay %g outside [%g, %g]", sd, 0.95*d, 1.05*d)
		}
	}
	if slp.Cost > 1.5*zstTree.Cost {
		t.Fatalf("SLP cost %g far above exact-ZST cost %g", slp.Cost, zstTree.Cost)
	}
}

func TestWriteJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sinks := randPoints(rng, 5)
	inst, _ := NewInstance(sinks)
	if err := inst.UseBalancedTopology(); err != nil {
		t.Fatal(err)
	}
	tree, err := inst.Solve(Uniform(5, 0, 2*inst.Radius()), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded TreeJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.NumSinks != 5 || decoded.Cost != tree.Cost || len(decoded.Routes) != len(tree.Parent) {
		t.Fatalf("round trip mismatch: %+v", decoded)
	}
	// Route polylines must sum to the tree cost.
	var total float64
	for _, route := range decoded.Routes {
		for j := 1; j < len(route); j++ {
			total += Dist(route[j-1], route[j])
		}
	}
	if math.Abs(total-tree.Cost) > 1e-6*(1+tree.Cost) {
		t.Fatalf("serialized routes sum to %g, cost %g", total, tree.Cost)
	}
}

// TestRetightenRejectsBadWindows pins the facade-level validation: a
// NaN or empty (l > u) window must error out of Solved.Retighten
// directly, before the warm engine sees the edit, and the session must
// stay usable afterwards.
func TestRetightenRejectsBadWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, err := NewInstance(randPoints(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	solved, err := inst.SolveECO(Uniform(10, 0.8*r, 1.3*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer solved.Close()
	for _, tc := range []struct {
		name string
		l, u float64
	}{
		{"nan lower", math.NaN(), 1.3 * r},
		{"nan upper", 0.8 * r, math.NaN()},
		{"empty", 1.3 * r, 0.8 * r},
	} {
		if err := solved.Retighten(0, tc.l, tc.u); err == nil {
			t.Errorf("%s: Retighten(0, %g, %g) accepted", tc.name, tc.l, tc.u)
		}
	}
	if err := solved.Retighten(-1, 0.8*r, 1.3*r); err == nil {
		t.Error("out-of-range sink accepted")
	}
	// The rejected edits must not have wedged the session.
	if err := solved.Retighten(0, 0.9*r, 1.3*r); err != nil {
		t.Fatalf("valid Retighten after rejections: %v", err)
	}
	if _, err := solved.Resolve(); err != nil {
		t.Fatalf("Resolve after rejected edits: %v", err)
	}
}
