package lubt

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"lubt/internal/obs"
)

// traceSpan mirrors the lubt-trace/1 span shape for test decoding.
type traceSpan struct {
	Name     string         `json:"name"`
	StartUS  *float64       `json:"start_us"`
	DurUS    *float64       `json:"dur_us"`
	Attrs    map[string]any `json:"attrs"`
	Children []traceSpan    `json:"children"`
}

func findSpan(sp *traceSpan, name string) *traceSpan {
	if sp.Name == name {
		return sp
	}
	for i := range sp.Children {
		if got := findSpan(&sp.Children[i], name); got != nil {
			return got
		}
	}
	return nil
}

func findAllSpans(sp *traceSpan, name string) []*traceSpan {
	var out []*traceSpan
	if sp.Name == name {
		out = append(out, sp)
	}
	for i := range sp.Children {
		out = append(out, findAllSpans(&sp.Children[i], name)...)
	}
	return out
}

// TestSolveTraceGolden drives the public API with tracing on and pins the
// emitted document: schema string, the span hierarchy of a linear-delay
// solve (solve → ebf → round → {lp-solve, separation} and solve → embed →
// bottom-up/top-down), and the key attributes.
func TestSolveTraceGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sinks := randPoints(rng, 12)
	inst, err := NewInstance(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	var buf bytes.Buffer
	tree, err := inst.Solve(Uniform(12, 0.8*r, 1.3*r), &Options{TraceJSON: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Schema string    `json:"schema"`
		Root   traceSpan `json:"root"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Schema != obs.TraceSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, obs.TraceSchema)
	}
	if doc.Root.Name != "solve" {
		t.Fatalf("root span %q, want solve", doc.Root.Name)
	}
	for _, name := range []string{"ebf", "round", "lp-solve", "separation", "embed", "bottom-up", "top-down"} {
		if findSpan(&doc.Root, name) == nil {
			t.Errorf("span %q missing from trace", name)
		}
	}
	// Structural checks: round spans nest under ebf and carry lp-solve +
	// separation children; every span has timing fields.
	ebf := findSpan(&doc.Root, "ebf")
	round := findSpan(ebf, "round")
	if round == nil || findSpan(round, "lp-solve") == nil || findSpan(round, "separation") == nil {
		t.Fatalf("round structure wrong: %+v", round)
	}
	if round.StartUS == nil || round.DurUS == nil {
		t.Error("round span missing start_us/dur_us")
	}
	if v, ok := findSpan(round, "separation").Attrs["violated"]; !ok {
		t.Error("separation span lacks violated attr")
	} else if _, isNum := v.(float64); !isNum {
		t.Errorf("violated attr not numeric: %T", v)
	}
	if s, ok := findSpan(round, "lp-solve").Attrs["status"]; !ok || s != "optimal" {
		t.Errorf("lp-solve status attr = %v", s)
	}
	if findSpan(&doc.Root, "embed").Children[0].Name != "bottom-up" {
		t.Error("embed's first child is not bottom-up")
	}

	// The public stats carry the new gauges alongside the trace.
	st := tree.Stats
	if st.LPIterations <= 0 || st.PivotMax <= 0 {
		t.Errorf("stats missing pivot data: %+v", st)
	}
	out := st.String()
	for _, want := range []string{"eta-len", "residual", "pivot-el"} {
		if !strings.Contains(out, want) {
			t.Errorf("SolveStats.String missing %q:\n%s", want, out)
		}
	}
}

// TestSolveElmoreTrace checks the Elmore path's root span and per-SLP
// iteration children, and pins the slp-iter restaging attributes: each
// span wraps one restage + warm solve of the persistent engine, so it
// must carry the per-iteration pivot, restage and row-replacement deltas.
func TestSolveElmoreTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	sinks := randPoints(rng, 8)
	inst, err := NewInstance(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	// First find the unconstrained Elmore delay spread, then force a real
	// multi-iteration SLP with a two-sided window above it.
	probe, err := inst.SolveElmore(Uniform(8, 0, 1e9), 0.1, 0.2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	worst := probe.MaxDelay
	var buf bytes.Buffer
	tree, err := inst.SolveElmore(Uniform(8, worst, 3*worst), 0.1, 0.2, nil, &Options{TraceJSON: &buf})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string    `json:"schema"`
		Root   traceSpan `json:"root"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "solve-elmore" {
		t.Fatalf("root span %q, want solve-elmore", doc.Root.Name)
	}
	for _, name := range []string{"slp", "ebf", "slp-iter", "embed"} {
		if findSpan(&doc.Root, name) == nil {
			t.Errorf("span %q missing from Elmore trace", name)
		}
	}
	iters := findAllSpans(&doc.Root, "slp-iter")
	if len(iters) < 2 {
		t.Fatalf("%d slp-iter spans; the window should take several iterations", len(iters))
	}
	totalRestages := 0.0
	for i, sp := range iters {
		for _, attr := range []string{"iter", "rows", "pivots", "restages", "row_replacements", "tau"} {
			v, ok := sp.Attrs[attr]
			if !ok {
				t.Fatalf("slp-iter %d lacks attr %q (attrs %v)", i, attr, sp.Attrs)
			}
			if _, isNum := v.(float64); !isNum {
				t.Fatalf("slp-iter %d attr %q not numeric: %T", i, attr, v)
			}
		}
		if s, ok := sp.Attrs["status"]; !ok || s != "optimal" {
			t.Errorf("slp-iter %d status attr = %v", i, s)
		}
		totalRestages += sp.Attrs["restages"].(float64)
	}
	// The first iteration stages the engine cold; later ones restage the
	// trust boxes inside the span — so the spans must witness restaging.
	if iters[0].Attrs["restages"].(float64) != 0 {
		t.Errorf("first slp-iter restaged %v times before the first solve", iters[0].Attrs["restages"])
	}
	if totalRestages == 0 {
		t.Error("no slp-iter span recorded a restage — spans are not wrapping the warm path")
	}
	// The merged SLP stats are surfaced on the tree, restages included.
	if tree.Stats.LPIterations <= 0 || tree.Stats.Rounds <= 0 {
		t.Errorf("Elmore tree stats empty: %+v", tree.Stats)
	}
	if tree.Stats.Restages != int(totalRestages) {
		t.Errorf("tree stats restages %d != Σ slp-iter attrs %v", tree.Stats.Restages, totalRestages)
	}
	if tree.Stats.DevexResets < 0 {
		t.Errorf("DevexResets went negative across restages: %d", tree.Stats.DevexResets)
	}
}

// TestSolveECOTrace drives the ECO facade with tracing on: the session's
// warm re-solve must appear as an eco-resolve span carrying the warm
// pivot count.
func TestSolveECOTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	sinks := randPoints(rng, 10)
	inst, err := NewInstance(sinks)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	var buf bytes.Buffer
	solved, err := inst.SolveECO(Uniform(10, 0.8*r, 1.3*r), &Options{TraceJSON: &buf})
	if err != nil {
		t.Fatal(err)
	}
	first := solved.Tree()
	newL := first.SinkDelays[0] + 0.05*r
	if err := solved.Retighten(0, newL, newL+0.5*r); err != nil {
		t.Fatal(err)
	}
	tree, err := solved.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Verify(); err != nil {
		t.Fatal(err)
	}
	if tree.Stats.Restages == 0 {
		t.Errorf("retighten+resolve recorded no restage: %+v", tree.Stats)
	}
	if err := solved.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string    `json:"schema"`
		Root   traceSpan `json:"root"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Name != "solve-eco" {
		t.Fatalf("root span %q, want solve-eco", doc.Root.Name)
	}
	eco := findSpan(&doc.Root, "eco-resolve")
	if eco == nil {
		t.Fatal("eco-resolve span missing from trace")
	}
	p, ok := eco.Attrs["pivots"]
	if !ok {
		t.Fatalf("eco-resolve span lacks pivots attr: %v", eco.Attrs)
	}
	if pf, isNum := p.(float64); !isNum || int(pf) != solved.ResolvePivots() {
		t.Errorf("eco-resolve pivots attr %v != ResolvePivots %d", p, solved.ResolvePivots())
	}
}

// TestSolveNoTraceIsSilent pins that a nil TraceJSON produces no tracer
// work and identical results.
func TestSolveNoTraceIsSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	sinks := randPoints(rng, 10)
	inst, _ := NewInstance(sinks)
	if err := inst.UseSkewGuidedTopology(10); err != nil {
		t.Fatal(err)
	}
	r := inst.Radius()
	a, err := inst.Solve(Uniform(10, 0, 1.5*r), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	b, err := inst.Solve(Uniform(10, 0, 1.5*r), &Options{TraceJSON: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("tracing changed the solve: cost %g vs %g", a.Cost, b.Cost)
	}
	if buf.Len() == 0 {
		t.Error("trace writer received nothing")
	}
}
