// Package lubt constructs Lower and Upper Bounded delay routing Trees
// (LUBTs) in the Manhattan plane using linear programming, implementing
// Oh, Pyo and Pedram, "Constructing Lower and Upper Bounded Delay Routing
// Trees Using Linear Programming" (USC CENG 96-05 / DAC 1996).
//
// A LUBT is a Steiner tree rooted at a source such that the delay from
// the source to each sink s_i lies in a prescribed window [l_i, u_i].
// Under the linear delay model the minimum-cost tree for a fixed topology
// is the solution of a linear program over the *edge lengths* (the
// Edge-Based Formulation, EBF); Steiner point positions follow from a
// DME-style geometric pass. The formulation subsumes global routing
// (l = 0), bounded-skew clock routing (u − l = skew bound) and zero-skew
// clock routing (l = u) as special cases.
//
// Typical use:
//
//	inst := lubt.NewInstance(sinks)                 // sinks in the plane
//	_ = inst.UseSkewGuidedTopology(skew)            // or Balanced/Custom
//	tree, err := inst.Solve(lubt.Uniform(len(sinks), l, u), nil)
//	// tree.Cost, tree.SinkDelays, tree.Locations, tree.Verify() ...
//
// The package also exposes the bounded-skew baseline the paper compares
// against (BoundedSkewBaseline) and the Elmore-delay extension
// (SolveElmore).
package lubt

import (
	"errors"
	"fmt"
	"io"
	"math"

	"lubt/internal/bst"
	"lubt/internal/core"
	"lubt/internal/delay"
	"lubt/internal/embed"
	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/obs"
	"lubt/internal/topology"
	"lubt/internal/zst"
)

// Point is a location in the Manhattan plane.
type Point struct {
	X, Y float64
}

// Dist returns the Manhattan distance between two points.
func Dist(a, b Point) float64 { return geom.Dist(gp(a), gp(b)) }

func gp(p Point) geom.Point    { return geom.Point(p) }
func fromG(p geom.Point) Point { return Point(p) }

// ErrInfeasible reports that no tree satisfies the requested bounds under
// the chosen topology (cf. Fig. 1 of the paper).
var ErrInfeasible = errors.New("lubt: no tree satisfies the bounds under this topology")

// Bounds is the per-sink delay window, indexed like the sink slice
// (0-based).
type Bounds struct {
	Lower, Upper []float64
}

// Uniform gives all m sinks the window [l, u]. Use math.Inf(1) for an
// unbounded upper limit.
func Uniform(m int, l, u float64) Bounds {
	b := Bounds{Lower: make([]float64, m), Upper: make([]float64, m)}
	for i := range b.Lower {
		b.Lower[i] = l
		b.Upper[i] = u
	}
	return b
}

// SkewBounds is the tolerable-skew clock routing window of §6: all delays
// in [u−skew, u].
func SkewBounds(m int, skew, u float64) Bounds {
	return Uniform(m, u-skew, u)
}

func (b Bounds) toCore(m int) (core.Bounds, error) {
	if len(b.Lower) != m || len(b.Upper) != m {
		return core.Bounds{}, fmt.Errorf("lubt: bounds sized %d/%d for %d sinks",
			len(b.Lower), len(b.Upper), m)
	}
	cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	copy(cb.L[1:], b.Lower)
	copy(cb.U[1:], b.Upper)
	return cb, nil
}

// Options tune a solve.
type Options struct {
	// Solver selects the LP method: "simplex" (default — row generation on
	// the sparse revised dual-simplex engine with warm starts),
	// "densesimplex" (the previous dense-tableau warm engine, kept for
	// ablation), "coldsimplex" (two-phase primal simplex re-solved from
	// scratch each round) or "ipm" (the interior-point method, the solver
	// family the paper used via LOQO).
	Solver string
	// Pricing selects the leaving-row rule of the revised dual-simplex
	// engine: "" or "devex" (the default, reference-weight pricing),
	// "mostviolated" (the classic rule, kept as the ablation baseline) or
	// "steepest" (exact steepest edge, the Devex cross-check). Only valid
	// with Solver "" / "simplex"; any other solver rejects it.
	Pricing string
	// Weights holds per-edge objective weights (§7), indexed by edge
	// (child node id); nil means unit weights.
	Weights []float64
	// Placement selects where nodes land inside their feasible regions:
	// "nearest" (default) or "center".
	Placement string
	// FullMatrix disables the §4.6 constraint reduction and states all
	// C(m,2) Steiner rows upfront.
	FullMatrix bool
	// OracleWorkers caps the separation oracle's worker pool; 0 means
	// GOMAXPROCS. The oracle's output order is deterministic for any
	// worker count.
	OracleWorkers int
	// Presolve controls the dominance-pruning presolve pass: "" (auto —
	// on from 2048 sinks up, off below so small solves keep the legacy
	// oracle exactly), "on", or "off". Presolved solves report the pruned
	// row count in SolveStats.PresolvePrunedRows and never change the
	// optimum. Requires every sink to be a leaf (Lemma 3.1); other
	// topologies quietly run the legacy oracle.
	Presolve string
	// Decompose controls root-branch subtree decomposition: "" (auto —
	// engages from 2048 sinks up when the source is fixed and the
	// topology has two or more root branches), "on" (also permits the
	// bounded free-source coordination passes, falling back to the
	// monolithic solve when branches stay coupled), or "off".
	// SolveStats.Subtrees reports the branch count (0 = monolithic).
	Decompose string
	// TraceJSON, when non-nil, enables span tracing for the solve and
	// writes the resulting span tree (schema "lubt-trace/1"; see package
	// internal/obs) to the writer on success. Nil (the default) disables
	// tracing entirely — the disabled path is allocation-free.
	TraceJSON io.Writer
}

// tracer builds the solve tracer when tracing is requested; the nil
// tracer it otherwise returns disables every obs call site.
func (o *Options) tracer(root string) *obs.Tracer {
	if o == nil || o.TraceJSON == nil {
		return nil
	}
	return obs.NewTracer(root)
}

// writeTrace closes the tracer and emits its JSON when tracing is on.
func (o *Options) writeTrace(tr *obs.Tracer) error {
	if !tr.Enabled() {
		return nil
	}
	tr.Close()
	if err := tr.WriteJSON(o.TraceJSON); err != nil {
		return fmt.Errorf("lubt: writing trace: %w", err)
	}
	return nil
}

// lpSolver maps the option string to an explicit lp.Solver plus a warm
// engine name; a nil solver selects the incremental engine named by the
// second return value ("" means the default revised dual simplex).
func (o *Options) lpSolver() (lp.Solver, string, error) {
	if o == nil {
		return nil, "", nil
	}
	switch o.Solver {
	case "", "simplex":
		return nil, "", nil
	case "densesimplex":
		return nil, "dense", nil
	case "coldsimplex":
		return &lp.Simplex{}, "", nil
	case "ipm":
		return &lp.IPM{}, "", nil
	}
	return nil, "", fmt.Errorf("lubt: unknown solver %q", o.Solver)
}

func (o *Options) embedOptions() (*embed.Options, error) {
	eo := &embed.Options{}
	if o != nil {
		switch o.Placement {
		case "", "nearest":
		case "center":
			eo.Policy = embed.Center
		default:
			return nil, fmt.Errorf("lubt: unknown placement policy %q", o.Placement)
		}
	}
	return eo, nil
}

// Instance is a LUBT problem under construction: sink locations, an
// optional fixed source, and a routing topology.
type Instance struct {
	sinks  []geom.Point
	source *geom.Point
	tree   *topology.Tree
}

// NewInstance starts an instance over the given sinks (at least one).
func NewInstance(sinks []Point) (*Instance, error) {
	if len(sinks) == 0 {
		return nil, errors.New("lubt: instance needs at least one sink")
	}
	in := &Instance{sinks: make([]geom.Point, len(sinks))}
	for i, s := range sinks {
		in.sinks[i] = gp(s)
	}
	return in, nil
}

// SetSource fixes the source location (making Eq. 3 of the paper apply
// instead of Eq. 4). Call before choosing a topology.
func (in *Instance) SetSource(p Point) {
	s := gp(p)
	in.source = &s
}

// NumSinks returns the sink count m.
func (in *Instance) NumSinks() int { return len(in.sinks) }

// Radius returns the paper's §2 radius: source-to-farthest-sink distance
// when the source is fixed, half the sink diameter otherwise. Delay
// bounds are commonly expressed as multiples of this value.
func (in *Instance) Radius() float64 {
	return in.coreInstance(in.treeOrNil()).Radius()
}

func (in *Instance) treeOrNil() *topology.Tree {
	if in.tree != nil {
		return in.tree
	}
	// Radius does not depend on the topology; synthesize a trivial one.
	t, err := topology.Balanced(in.sinks, in.source != nil)
	if err != nil {
		// Single sink without source: fall back to a 2-node chain.
		t = topology.MustNew([]int{-1, 0}, 1)
	}
	return t
}

func (in *Instance) coreInstance(t *topology.Tree) *core.Instance {
	ci := &core.Instance{Tree: t, SinkLoc: make([]geom.Point, len(in.sinks)+1)}
	copy(ci.SinkLoc[1:], in.sinks)
	ci.Source = in.source
	return ci
}

// UseBalancedTopology installs a recursive-bipartition binary topology.
func (in *Instance) UseBalancedTopology() error {
	t, err := topology.Balanced(in.sinks, in.source != nil)
	if err != nil {
		return err
	}
	in.tree = t
	return nil
}

// UseSkewGuidedTopology installs the topology produced by the baseline
// bounded-skew generator at the given skew bound — the methodology of the
// paper's §8, which adopts the generator of its reference [9]. Use
// math.Inf(1) for a pure nearest-neighbour Steiner topology.
func (in *Instance) UseSkewGuidedTopology(skewBound float64) error {
	res, err := bst.Route(in.sinks, skewBound, in.source)
	if err != nil {
		return err
	}
	in.tree = res.Tree
	return nil
}

// UseCustomTopology installs a caller-provided topology as a parent
// vector: node 0 is the root (the source if one is set), nodes 1…m are the
// sinks in input order, higher ids are Steiner points. Nodes with more
// than two children are split with zero-length edges (Fig. 2).
func (in *Instance) UseCustomTopology(parent []int) error {
	t, err := topology.New(parent, len(in.sinks))
	if err != nil {
		return err
	}
	t, err = t.SplitHighDegree()
	if err != nil {
		return err
	}
	in.tree = t
	return nil
}

// Topology returns the current topology as a parent vector, or nil if none
// was chosen yet.
func (in *Instance) Topology() []int {
	if in.tree == nil {
		return nil
	}
	return append([]int(nil), in.tree.Parent...)
}

// Solve runs the EBF linear program (Theorem 4.2: minimum cost for the
// topology under linear delay) and embeds the result. A topology must
// have been chosen. Returns ErrInfeasible when the bounds are
// unsatisfiable under the topology.
func (in *Instance) Solve(b Bounds, opt *Options) (*Tree, error) {
	if in.tree == nil {
		return nil, errors.New("lubt: choose a topology before solving")
	}
	cb, err := b.toCore(len(in.sinks))
	if err != nil {
		return nil, err
	}
	solver, engine, err := opt.lpSolver()
	if err != nil {
		return nil, err
	}
	tr := opt.tracer("solve")
	copts := &core.Options{Solver: solver, Engine: engine, Tracer: tr}
	if opt != nil {
		copts.FullMatrix = opt.FullMatrix
		copts.OracleWorkers = opt.OracleWorkers
		copts.Pricing = opt.Pricing
		copts.Presolve = opt.Presolve
		copts.Decompose = opt.Decompose
		if opt.Weights != nil {
			copts.Weights = opt.Weights
		}
	}
	ci := in.coreInstance(in.tree)
	res, err := core.Solve(ci, cb, copts)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	tree, err := in.finish(ci, cb, res.E, res.Cost, opt, tr)
	if err != nil {
		return nil, err
	}
	tree.Stats = solveStatsFrom(res)
	if err := opt.writeTrace(tr); err != nil {
		return nil, err
	}
	return tree, nil
}

// SolveElmore runs the §7 Elmore-delay extension: the delay windows are
// interpreted under the Elmore model and solved by sequential linear
// programming (heuristic; see package core). Rw/Cw are wire resistance
// and capacitance per unit length; sinkCap is indexed like the sinks (nil
// means zero loads).
func (in *Instance) SolveElmore(b Bounds, rw, cw float64, sinkCap []float64, opt *Options) (*Tree, error) {
	if in.tree == nil {
		return nil, errors.New("lubt: choose a topology before solving")
	}
	cb, err := b.toCore(len(in.sinks))
	if err != nil {
		return nil, err
	}
	solver, _, err := opt.lpSolver()
	if err != nil {
		return nil, err
	}
	mdl := delay.Elmore{Rw: rw, Cw: cw}
	if sinkCap != nil {
		mdl.SinkCap = make([]float64, len(in.sinks)+1)
		copy(mdl.SinkCap[1:], sinkCap)
	}
	tr := opt.tracer("solve-elmore")
	eopts := &core.ElmoreOptions{Model: mdl, Solver: solver, Tracer: tr}
	if opt != nil && opt.Weights != nil {
		eopts.Weights = opt.Weights
	}
	ci := in.coreInstance(in.tree)
	res, err := core.SolveElmore(ci, cb, eopts)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	tree, err := in.finish(ci, core.UniformBounds(len(in.sinks), 0, math.Inf(1)), res.E, res.Cost, opt, tr)
	if err != nil {
		return nil, err
	}
	// Report Elmore delays instead of linear ones.
	for i := range tree.SinkDelays {
		tree.SinkDelays[i] = res.Delays[i+1]
	}
	tree.recomputeStats()
	// The merged SLP record (warm start + one lp.Stats per iteration)
	// becomes the tree's public stats.
	tree.Stats = solveStatsFromLP(res.Stats)
	if err := opt.writeTrace(tr); err != nil {
		return nil, err
	}
	return tree, nil
}

// finish embeds edge lengths and assembles the public Tree.
func (in *Instance) finish(ci *core.Instance, cb core.Bounds, e []float64, cost float64, opt *Options, tr *obs.Tracer) (*Tree, error) {
	eo, err := opt.embedOptions()
	if err != nil {
		return nil, err
	}
	eo.Tracer = tr
	pl, err := embed.Place(ci.Tree, ci.SinkLoc, ci.Source, e, eo)
	if err != nil {
		return nil, fmt.Errorf("lubt: embedding failed: %w", err)
	}
	t := ci.Tree
	delays := t.Delays(e)
	tree := &Tree{
		Parent:      append([]int(nil), t.Parent...),
		NumSinks:    t.NumSinks,
		EdgeLengths: append([]float64(nil), e...),
		Cost:        cost,
		SinkDelays:  make([]float64, t.NumSinks),
		Locations:   make([]Point, t.N()),
		Elongation:  append([]float64(nil), pl.Elongation...),
		inst:        ci,
		bounds:      cb,
		placement:   pl,
	}
	for i := 1; i <= t.NumSinks; i++ {
		tree.SinkDelays[i-1] = delays[i]
	}
	for i, p := range pl.Loc {
		tree.Locations[i] = fromG(p)
	}
	tree.recomputeStats()
	return tree, nil
}

// ElmoreZeroSkew routes the sinks with the exact zero-skew algorithm of
// the paper's reference [4] (Tsay, ICCAD'91) under the Elmore delay model:
// merging segments are balanced by closed-form tapping points, with wire
// snaking where no split of the direct wire balances. All sink Elmore
// delays in the result are exactly equal. It complements SolveElmore the
// way BoundedSkewBaseline complements Solve: a constructive baseline from
// the literature next to the paper's optimization formulation.
func ElmoreZeroSkew(sinks []Point, rw, cw float64, sinkCap []float64, source *Point) (*Tree, error) {
	gs := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		gs[i] = gp(s)
	}
	var src *geom.Point
	if source != nil {
		s := gp(*source)
		src = &s
	}
	mdl := delay.Elmore{Rw: rw, Cw: cw}
	if sinkCap != nil {
		mdl.SinkCap = make([]float64, len(sinks)+1)
		copy(mdl.SinkCap[1:], sinkCap)
	}
	res, err := zst.Route(gs, mdl, src)
	if err != nil {
		return nil, err
	}
	t := res.Tree
	ci := &core.Instance{Tree: t, SinkLoc: make([]geom.Point, len(sinks)+1), Source: src}
	copy(ci.SinkLoc[1:], gs)
	tree := &Tree{
		Parent:      append([]int(nil), t.Parent...),
		NumSinks:    t.NumSinks,
		EdgeLengths: append([]float64(nil), res.E...),
		Cost:        res.Cost,
		SinkDelays:  make([]float64, t.NumSinks),
		Locations:   make([]Point, t.N()),
		Elongation:  append([]float64(nil), res.Placement.Elongation...),
		inst:        ci,
		bounds:      core.UniformBounds(t.NumSinks, 0, math.Inf(1)),
		placement:   res.Placement,
	}
	for i := 1; i <= t.NumSinks; i++ {
		tree.SinkDelays[i-1] = res.Delays[i]
	}
	for i, p := range res.Placement.Loc {
		tree.Locations[i] = fromG(p)
	}
	tree.recomputeStats()
	return tree, nil
}

// BoundedSkewBaseline routes the sinks with the reimplemented
// bounded-skew generator of the paper's reference [9]: greedy
// nearest-neighbour merging with delay-interval bookkeeping. It is the
// comparison baseline of Table 1 and the topology provider for the LUBT
// methodology. skewBound may be math.Inf(1).
func BoundedSkewBaseline(sinks []Point, skewBound float64, source *Point) (*Tree, error) {
	gs := make([]geom.Point, len(sinks))
	for i, s := range sinks {
		gs[i] = gp(s)
	}
	var src *geom.Point
	if source != nil {
		s := gp(*source)
		src = &s
	}
	res, err := bst.Route(gs, skewBound, src)
	if err != nil {
		return nil, err
	}
	t := res.Tree
	ci := &core.Instance{Tree: t, SinkLoc: make([]geom.Point, len(sinks)+1), Source: src}
	copy(ci.SinkLoc[1:], gs)
	tree := &Tree{
		Parent:      append([]int(nil), t.Parent...),
		NumSinks:    t.NumSinks,
		EdgeLengths: append([]float64(nil), res.E...),
		Cost:        res.Cost,
		SinkDelays:  make([]float64, t.NumSinks),
		Locations:   make([]Point, t.N()),
		Elongation:  append([]float64(nil), res.Placement.Elongation...),
		inst:        ci,
		bounds:      core.UniformBounds(t.NumSinks, 0, math.Inf(1)),
		placement:   res.Placement,
	}
	for i := 1; i <= t.NumSinks; i++ {
		tree.SinkDelays[i-1] = res.Delays[i]
	}
	for i, p := range res.Placement.Loc {
		tree.Locations[i] = fromG(p)
	}
	tree.recomputeStats()
	return tree, nil
}
