package lubt

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"lubt/internal/core"
	"lubt/internal/embed"
	"lubt/internal/lp"
)

// Tree is a routed LUBT: topology, optimal edge lengths, the embedding,
// and summary statistics.
type Tree struct {
	// Parent is the topology as a parent vector (node 0 = root).
	Parent []int
	// NumSinks is m; nodes 1…m are sinks (matching the input order, sink
	// i+1 ↔ sinks[i]), higher ids are Steiner points.
	NumSinks int
	// EdgeLengths is indexed by edge (child node); entry 0 unused. The
	// length includes any snaking elongation.
	EdgeLengths []float64
	// Cost is the weighted total wirelength Σ w_k e_k (unit weights unless
	// overridden).
	Cost float64
	// SinkDelays is indexed like the input sink slice (0-based).
	SinkDelays []float64
	// Locations gives the embedded position of every node.
	Locations []Point
	// Elongation[k] is the snaking slack of edge k: EdgeLengths[k] minus
	// the Manhattan span of its endpoints.
	Elongation []float64
	// MinDelay, MaxDelay and Skew summarize SinkDelays.
	MinDelay, MaxDelay, Skew float64
	// Stats records the LP work behind the solve (zero-valued for the
	// constructive baselines, which run no LP).
	Stats SolveStats

	inst      *core.Instance
	bounds    core.Bounds
	placement *embed.Placement
}

// SolveStats is the public observability record of a Solve call: how much
// LP work the §4.6 row-generation loop did and where the time went. The
// engine counters (pivots, refactorizations, basis size, fill-in) come
// from the LP layer; the round fields from the row-generation loop.
type SolveStats struct {
	// Rounds is the number of row-generation rounds; SteinerRows the
	// Steiner rows stated in the final LP (compare against C(m,2)).
	Rounds      int
	SteinerRows int
	// LPIterations counts simplex pivots (or IPM iterations) across all
	// rounds. Refactorizations, Resets, BasisSize and FillIn are revised
	// dual-simplex internals: basis refactorization count, full basis
	// resets after numerical trouble, the structural-core dimension of the
	// basis, and the LU fill-in beyond the basis core at the last
	// refactorization.
	LPIterations     int
	Refactorizations int
	Resets           int
	BasisSize        int
	FillIn           int
	// LogicalRows counts constraint rows as stated (an EQ or ranged row
	// once); TableauRows counts engine-internal rows — the boxed revised
	// engine stores each delay window as ONE row with a bounded slack,
	// while the dense engines lower it to a ≤/≥ pair.
	// LoweredTableauRows is what the two-row lowering would need, so
	// (TableauRows, LoweredTableauRows) measures the delay-window row
	// halving. RangedRows counts logical rows stated with a two-sided (or
	// exact) window; RowNonzeros the stored constraint nonzeros.
	LogicalRows        int
	TableauRows        int
	LoweredTableauRows int
	RangedRows         int
	RowNonzeros        int
	// BoundFlips counts nonbasic bound-to-bound flips taken inside the
	// boxed dual ratio test (cheaper than pivots: one shared FTRAN per
	// batch).
	BoundFlips int
	// Restages counts post-solve edits the engine absorbed without
	// refactorizing (bound boxes, costs, rhs-only row retightens);
	// RowReplacements counts structural row rewrites (coefficient pattern
	// changes, deletions, revivals). Both stay 0 on cold solvers.
	Restages        int
	RowReplacements int
	// PricingScheme names the leaving-row rule the revised engine ran
	// with ("devex", "most-violated", "steepest-exact"; empty for the
	// other solvers). DevexResets counts Devex reference-framework
	// restarts forced by weight overflow; WeightMin/WeightMax bracket the
	// reference weights at the end of the solve (0 under most-violated).
	PricingScheme        string
	DevexResets          int
	WeightMin, WeightMax float64
	// EtaLen is the eta-file length consumed by the engine's last
	// refactorization; NumericalResidual is the terminal numerical-health
	// gauge (eta-replay drift for the revised engine, final scaled KKT
	// residual for the IPM, worst constraint violation of the returned
	// vertex for the cold simplex). PivotMin/PivotMax bracket the |pivot
	// element| magnitudes accepted across the solve — a PivotMin many
	// orders below PivotMax warns of ill-conditioned bases. ResetReasons
	// lists one reason code per basis reset, in order (see lp.Stats).
	EtaLen             int
	NumericalResidual  float64
	PivotMin, PivotMax float64
	ResetReasons       []string
	// PresolvePrunedRows counts candidate Steiner rows the dominance
	// presolve proved implied and never generated or priced (0 with
	// presolve off or below the auto threshold). Subtrees is the number of
	// root-branch subproblems the solve was decomposed into (0 for a
	// monolithic solve). PeakRows is the largest tableau row count any
	// single engine held — under decomposition this is the per-branch
	// memory high-water mark, not the sum.
	PresolvePrunedRows int
	Subtrees           int
	PeakRows           int
	// ViolatedByRound is the separation oracle's violated-pair count per
	// round (0 in the last entry on convergence).
	ViolatedByRound []int
	// SeparationTime is wall time spent scanning sink pairs; SolveTime is
	// wall time inside LP solves.
	SeparationTime time.Duration
	SolveTime      time.Duration
}

// String renders the stats as a compact multi-line summary (what
// cmd/lubt -stats prints).
func (s SolveStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds %d  steiner-rows %d  lp-iterations %d\n",
		s.Rounds, s.SteinerRows, s.LPIterations)
	fmt.Fprintf(&b, "rows %d logical / %d tableau (%d lowered, %d ranged)  nnz %d\n",
		s.LogicalRows, s.TableauRows, s.LoweredTableauRows, s.RangedRows, s.RowNonzeros)
	fmt.Fprintf(&b, "refactorizations %d  basis %d  fill-in %d  resets %d  bound-flips %d\n",
		s.Refactorizations, s.BasisSize, s.FillIn, s.Resets, s.BoundFlips)
	if s.Restages > 0 || s.RowReplacements > 0 {
		fmt.Fprintf(&b, "restages %d  row-replacements %d\n", s.Restages, s.RowReplacements)
	}
	if s.PresolvePrunedRows > 0 || s.Subtrees > 0 || s.PeakRows > 0 {
		fmt.Fprintf(&b, "presolve-pruned %d  subtrees %d  peak-rows %d\n",
			s.PresolvePrunedRows, s.Subtrees, s.PeakRows)
	}
	fmt.Fprintf(&b, "eta-len %d  residual %.3g  pivot-el [%.3g, %.3g]\n",
		s.EtaLen, s.NumericalResidual, s.PivotMin, s.PivotMax)
	if s.PricingScheme != "" {
		fmt.Fprintf(&b, "pricing %s  devex-resets %d  weights [%.3g, %.3g]\n",
			s.PricingScheme, s.DevexResets, s.WeightMin, s.WeightMax)
	}
	fmt.Fprintf(&b, "sep-scan %v  lp-solve %v", s.SeparationTime.Round(time.Microsecond), s.SolveTime.Round(time.Microsecond))
	if len(s.ResetReasons) > 0 {
		fmt.Fprintf(&b, "\nreset-reasons %v", s.ResetReasons)
	}
	if len(s.ViolatedByRound) > 0 {
		fmt.Fprintf(&b, "\nviolated/round %v", s.ViolatedByRound)
	}
	return b.String()
}

// solveStatsFrom converts the internal result record to the public one.
func solveStatsFrom(res *core.Result) SolveStats {
	s := solveStatsFromLP(res.Stats)
	s.Rounds = res.Rounds
	s.SteinerRows = res.RowsUsed
	s.LPIterations = res.LPIterations
	return s
}

// solveStatsFromLP maps a raw lp.Stats record onto the public SolveStats
// (used directly for the Elmore path, whose merged record already carries
// rounds and pivots).
func solveStatsFromLP(st lp.Stats) SolveStats {
	return SolveStats{
		Rounds:             st.Rounds,
		LPIterations:       st.Pivots,
		Refactorizations:   st.Refactorizations,
		Resets:             st.Resets,
		BasisSize:          st.BasisSize,
		FillIn:             st.FillIn,
		LogicalRows:        st.LogicalRows,
		TableauRows:        st.TableauRows,
		LoweredTableauRows: st.LoweredTableauRows,
		RangedRows:         st.RangedRows,
		RowNonzeros:        st.RowNonzeros,
		BoundFlips:         st.BoundFlips,
		Restages:           st.Restages,
		RowReplacements:    st.RowReplacements,
		PricingScheme:      st.PricingScheme,
		DevexResets:        st.DevexResets,
		WeightMin:          st.WeightMin,
		WeightMax:          st.WeightMax,
		EtaLen:             st.EtaLen,
		NumericalResidual:  st.NumericalResidual,
		PresolvePrunedRows: st.PresolvePrunedRows,
		Subtrees:           st.Subtrees,
		PeakRows:           st.PeakRows,
		PivotMin:           st.PivotMin,
		PivotMax:           st.PivotMax,
		ResetReasons:       append([]string(nil), st.ResetReasons...),
		ViolatedByRound:    append([]int(nil), st.ViolatedByRound...),
		SeparationTime:     st.SeparationTime,
		SolveTime:          st.SolveTime,
	}
}

func (t *Tree) recomputeStats() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, d := range t.SinkDelays {
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	t.MinDelay, t.MaxDelay, t.Skew = lo, hi, hi-lo
}

// Verify re-checks the tree end to end: every EBF constraint by full
// enumeration (the bounds it was solved with) and the geometric
// consistency of the embedding. It returns nil for a valid tree.
func (t *Tree) Verify() error {
	if err := core.Verify(t.inst, t.bounds, t.EdgeLengths, 1e-5*(1+t.inst.Radius())); err != nil {
		return err
	}
	var srcLoc = t.inst.Source
	return embed.VerifyPlacement(t.inst.Tree, t.inst.SinkLoc, srcLoc, t.EdgeLengths,
		t.placement, 1e-5*(1+t.inst.Radius()))
}

// Routes returns one rectilinear polyline per edge (indexed by edge,
// entry 0 nil) realizing each edge's exact length, elongation rendered as
// a snaking spur.
func (t *Tree) Routes() [][]Point {
	rs := embed.Routes(t.inst.Tree, t.placement, t.EdgeLengths)
	out := make([][]Point, len(rs))
	for i, r := range rs {
		if r == nil {
			continue
		}
		pts := make([]Point, len(r))
		for j, p := range r {
			pts[j] = fromG(p)
		}
		out[i] = pts
	}
	return out
}

// TotalElongation sums the snaking slack over all edges — the wirelength
// spent purely on meeting lower bounds.
func (t *Tree) TotalElongation() float64 {
	var s float64
	for _, e := range t.Elongation {
		if e > 0 {
			s += e
		}
	}
	return s
}

// WriteSVG renders the routed tree as a standalone SVG: sinks as squares,
// the source as a circle, Steiner points as dots, wires as polylines.
func (t *Tree) WriteSVG(w io.Writer) error {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range t.Locations {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	span := math.Max(maxX-minX, maxY-minY)
	if span == 0 {
		span = 1
	}
	pad := span * 0.05
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" viewBox="%g %g %g %g" width="800" height="800">`+"\n",
		minX-pad, minY-pad, span+2*pad, span+2*pad); err != nil {
		return err
	}
	sw := span / 400
	for _, route := range t.Routes() {
		if route == nil {
			continue
		}
		fmt.Fprintf(w, `<polyline fill="none" stroke="#456" stroke-width="%g" points="`, sw)
		for _, p := range route {
			fmt.Fprintf(w, "%g,%g ", p.X, maxY-(p.Y-minY)) // flip y for SVG
		}
		fmt.Fprintln(w, `"/>`)
	}
	mark := span / 150
	for i, p := range t.Locations {
		y := maxY - (p.Y - minY)
		switch {
		case i == 0:
			fmt.Fprintf(w, `<circle cx="%g" cy="%g" r="%g" fill="#c33"/>`+"\n", p.X, y, 1.8*mark)
		case i <= t.NumSinks:
			fmt.Fprintf(w, `<rect x="%g" y="%g" width="%g" height="%g" fill="#283"/>`+"\n",
				p.X-mark, y-mark, 2*mark, 2*mark)
		default:
			fmt.Fprintf(w, `<circle cx="%g" cy="%g" r="%g" fill="#888"/>`+"\n", p.X, y, 0.7*mark)
		}
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("lubt.Tree(%d sinks, cost %.2f, delays [%.3f, %.3f], skew %.3f)",
		t.NumSinks, t.Cost, t.MinDelay, t.MaxDelay, t.Skew)
}
