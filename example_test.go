package lubt_test

import (
	"fmt"
	"math"

	"lubt"
)

// ExampleInstance_Solve routes four sinks with a tolerable-skew window and
// prints the verified result.
func ExampleInstance_Solve() {
	sinks := []lubt.Point{{X: 0, Y: 10}, {X: 10, Y: 10}, {X: 0, Y: 0}, {X: 10, Y: 0}}
	inst, _ := lubt.NewInstance(sinks)
	inst.SetSource(lubt.Point{X: 5, Y: 5})
	_ = inst.UseBalancedTopology()

	r := inst.Radius()                                  // farthest source-sink distance: 10
	tree, err := inst.Solve(lubt.Uniform(4, r, r), nil) // zero skew at the radius
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("cost %.0f, skew %.0f, verified: %v\n", tree.Cost, tree.Skew, tree.Verify() == nil)
	// Output: cost 30, skew 0, verified: true
}

// ExampleInstance_Solve_globalRouting shows the l = 0 special case: a
// delay-capped Steiner tree.
func ExampleInstance_Solve_globalRouting() {
	sinks := []lubt.Point{{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 4, Y: 4}}
	inst, _ := lubt.NewInstance(sinks)
	_ = inst.UseBalancedTopology()

	tree, err := inst.Solve(lubt.Uniform(3, 0, math.Inf(1)), nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("steiner cost %.0f\n", tree.Cost)
	// Output: steiner cost 12
}

// ExampleUniform builds the per-sink window slices.
func ExampleUniform() {
	b := lubt.Uniform(3, 1, 2)
	fmt.Println(b.Lower, b.Upper)
	// Output: [1 1 1] [2 2 2]
}

// ExampleSkewBounds states the §6 tolerable-skew window.
func ExampleSkewBounds() {
	b := lubt.SkewBounds(2, 0.5, 2)
	fmt.Println(b.Lower, b.Upper)
	// Output: [1.5 1.5] [2 2]
}
