package workloads

import "testing"

func TestLoad(t *testing.T) {
	in, err := Load("prim1-s")
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "prim1-s" || len(in.Sinks) != 269/4 {
		t.Fatalf("loaded %q with %d sinks", in.Name, len(in.Sinks))
	}
	if _, err := Load("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustLoad("bogus")
}

func TestCustomAndNames(t *testing.T) {
	if len(Names()) != 9 {
		t.Errorf("Names = %v", Names())
	}
	c := Custom("x", 10, 1)
	if len(c.Sinks) != 10 {
		t.Error("Custom size wrong")
	}
}

// TestScaleClassesRegistered pins the r6/r7 scale-up classes (10k and
// 100k sinks, the presolve + decomposition workloads) to the registry:
// both load through the public API, deterministically.
func TestScaleClassesRegistered(t *testing.T) {
	for _, tc := range []struct {
		name  string
		sinks int
	}{
		{"r6", 10000},
		{"r7", 100000},
		{"r6-s", 2500},
		{"r7-s", 25000},
	} {
		in, err := Load(tc.name)
		if err != nil {
			t.Fatalf("Load(%s): %v", tc.name, err)
		}
		if len(in.Sinks) != tc.sinks {
			t.Errorf("%s: %d sinks, want %d", tc.name, len(in.Sinks), tc.sinks)
		}
		again := MustLoad(tc.name)
		if in.Sinks[0] != again.Sinks[0] || in.Sinks[len(in.Sinks)-1] != again.Sinks[len(in.Sinks)-1] {
			t.Errorf("%s: generation is not deterministic", tc.name)
		}
	}
}
