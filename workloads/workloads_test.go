package workloads

import "testing"

func TestLoad(t *testing.T) {
	in, err := Load("prim1-s")
	if err != nil {
		t.Fatal(err)
	}
	if in.Name != "prim1-s" || len(in.Sinks) != 269/4 {
		t.Fatalf("loaded %q with %d sinks", in.Name, len(in.Sinks))
	}
	if _, err := Load("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustLoad("bogus")
}

func TestCustomAndNames(t *testing.T) {
	if len(Names()) != 7 {
		t.Errorf("Names = %v", Names())
	}
	c := Custom("x", 10, 1)
	if len(c.Sinks) != 10 {
		t.Error("Custom size wrong")
	}
}
