// Package workloads exposes the benchmark instances used throughout the
// repository — deterministic synthetic stand-ins for the prim1/prim2
// (MCNC) and r1–r5 (Tsay) clock benchmarks of the paper's evaluation,
// plus the r6/r7 scale classes (10k and 100k sinks, no published
// counterpart) that exercise the presolve + decomposition path —
// through the public lubt types. See DESIGN.md for why stand-ins are
// used and what they preserve.
package workloads

import (
	"lubt"
	"lubt/internal/wkld"
)

// Instance is a named benchmark: sink locations plus the synthetic clock
// source pad.
type Instance struct {
	Name   string
	Sinks  []lubt.Point
	Source lubt.Point
}

// Names lists the available full-size benchmarks; append "-s" to any name
// for the scaled variant.
func Names() []string { return wkld.Names() }

// Load builds the named benchmark ("prim1", "r3-s", …).
func Load(name string) (*Instance, error) {
	b, err := wkld.Generate(name)
	if err != nil {
		return nil, err
	}
	return convert(b), nil
}

// MustLoad is Load for examples and tests; it panics on error.
func MustLoad(name string) *Instance {
	in, err := Load(name)
	if err != nil {
		panic(err)
	}
	return in
}

// Custom builds an ad-hoc uniform instance with the given sink count and
// seed.
func Custom(name string, count int, seed int64) *Instance {
	return convert(wkld.Custom(name, count, seed))
}

func convert(b *wkld.Benchmark) *Instance {
	in := &Instance{
		Name:   b.Name,
		Sinks:  make([]lubt.Point, len(b.Sinks)),
		Source: lubt.Point{X: b.Source.X, Y: b.Source.Y},
	}
	for i, s := range b.Sinks {
		in.Sinks[i] = lubt.Point{X: s.X, Y: s.Y}
	}
	return in
}
