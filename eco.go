package lubt

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/core"
	"lubt/internal/obs"
)

// Solved is a solved instance held open for incremental re-optimization —
// the engineering-change-order (ECO) workflow where a sink's delay window
// is retightened or an edge's weight changes after the tree is routed.
// The LP engine keeps its basis, factorization and Steiner row pool
// across edits, so Resolve after a local edit costs a handful of dual
// pivots instead of a cold solve.
//
// Obtain one with Instance.SolveECO, apply Retighten/Reweight edits, then
// Resolve to get the re-routed tree. A Solved is not safe for concurrent
// use.
type Solved struct {
	in   *Instance
	ci   *core.Instance
	sess *core.Session
	opt  *Options
	tr   *obs.Tracer
	tree *Tree
}

// SolveECO solves like Solve but returns a Solved that keeps the LP
// engine warm for incremental Retighten/Reweight/Resolve edits. Only the
// default restageable revised engine supports ECO sessions; setting
// Options.Solver to an explicit cold method is an error.
func (in *Instance) SolveECO(b Bounds, opt *Options) (*Solved, error) {
	if in.tree == nil {
		return nil, errors.New("lubt: choose a topology before solving")
	}
	cb, err := b.toCore(len(in.sinks))
	if err != nil {
		return nil, err
	}
	solver, engine, err := opt.lpSolver()
	if err != nil {
		return nil, err
	}
	tr := opt.tracer("solve-eco")
	copts := &core.Options{Solver: solver, Engine: engine, Tracer: tr}
	if opt != nil {
		copts.FullMatrix = opt.FullMatrix
		copts.OracleWorkers = opt.OracleWorkers
		copts.Pricing = opt.Pricing
		if opt.Weights != nil {
			copts.Weights = opt.Weights
		}
	}
	ci := in.coreInstance(in.tree)
	sess, err := core.NewSession(ci, cb, copts)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	s := &Solved{in: in, ci: ci, sess: sess, opt: opt, tr: tr}
	if err := s.rebuildTree(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Solved) rebuildTree() error {
	res := s.sess.Result()
	tree, err := s.in.finish(s.ci, s.sess.Bounds(), res.E, res.Cost, s.opt, s.tr)
	if err != nil {
		return err
	}
	tree.Stats = solveStatsFrom(res)
	s.tree = tree
	return nil
}

// Tree returns the most recent routed tree (from SolveECO or the last
// successful Resolve).
func (s *Solved) Tree() *Tree { return s.tree }

// Bounds returns a copy of the session's current delay windows, indexed
// like the input sink slice (0-based). After Retighten edits it reflects
// the staged windows even before the next Resolve — callers diffing a
// requested window set against the session state (the lubtd warm-basis
// cache) see exactly what the engine has been told so far.
func (s *Solved) Bounds() Bounds {
	cb := s.sess.Bounds()
	return Bounds{
		Lower: append([]float64(nil), cb.L[1:]...),
		Upper: append([]float64(nil), cb.U[1:]...),
	}
}

// Retighten replaces sink i's delay window with [l, u] (sink indexed like
// the input slice, 0-based) and restages the engine in place. The edit
// takes effect at the next Resolve. A malformed window — NaN on either
// side, or l > u — is rejected here at the facade, before it can reach
// the warm engine.
func (s *Solved) Retighten(sink int, l, u float64) error {
	if sink < 0 || sink >= s.in.NumSinks() {
		return fmt.Errorf("lubt: Retighten sink %d of %d", sink, s.in.NumSinks())
	}
	if math.IsNaN(l) || math.IsNaN(u) || l > u {
		return fmt.Errorf("lubt: Retighten sink %d with invalid window [%g, %g]", sink, l, u)
	}
	return s.sess.Retighten(sink+1, l, u)
}

// Reweight sets edge k's objective weight (§7), restaging the engine's
// costs. Edges are indexed by child node id as in Tree.EdgeLengths.
func (s *Solved) Reweight(edge int, w float64) error {
	return s.sess.Reweight(edge, w)
}

// Resolve re-optimizes warm from the previous basis after edits and
// re-embeds the tree. Returns ErrInfeasible (wrapped) when the edited
// windows admit no tree; the session stays usable — relax and retry.
func (s *Solved) Resolve() (*Tree, error) {
	if _, err := s.sess.Resolve(); err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if err := s.rebuildTree(); err != nil {
		return nil, err
	}
	return s.tree, nil
}

// ResolvePivots returns the dual-pivot count of the most recent solve
// alone (SolveECO's cold solve, or the last Resolve) — the warm side of
// the warm-vs-cold ECO comparison.
func (s *Solved) ResolvePivots() int { return s.sess.ResolvePivots() }

// Close flushes the session's trace (when Options.TraceJSON was set). No
// further edits are possible on a closed session's tracer.
func (s *Solved) Close() error { return s.opt.writeTrace(s.tr) }
