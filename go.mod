module lubt

go 1.22
