package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	httppprof "net/http/pprof"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"lubt"
	"lubt/internal/obs"
)

// DefaultCacheSize is the warm-session LRU capacity when Config leaves
// it zero.
const DefaultCacheSize = 64

// DefaultFlightSize is the flight-recorder ring capacity when Config
// leaves it zero.
const DefaultFlightSize = 64

// maxBodyBytes bounds a request body (custom instances with tens of
// thousands of sinks fit comfortably; unbounded bodies do not).
const maxBodyBytes = 64 << 20

// Cache outcomes as recorded in histograms, flight entries and pprof
// labels. "cold" covers both cache misses and explicit bypasses (the
// work done is the same full solve); requests that error before an
// outcome is committed record as "error".
const (
	outcomeCold    = "cold"
	outcomeWarmHit = "warm_hit"
	outcomeWarmEco = "warm_eco"
	outcomeError   = "error"
)

// Config tunes a Server.
type Config struct {
	// Workers caps concurrent solves; 0 means GOMAXPROCS. Requests
	// beyond the cap queue; a request whose client goes away while
	// queued is dropped with 503.
	Workers int
	// CacheSize bounds the warm-basis session cache (LRU entries);
	// 0 means DefaultCacheSize.
	CacheSize int
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: the profiling endpoints expose process internals and
	// belong behind an operator's explicit flag.
	EnablePprof bool
	// FlightSize bounds the flight-recorder ring (last N completed
	// solver requests); 0 means DefaultFlightSize.
	FlightSize int
	// SlowSolve, when positive, logs any /solve or /eco request that
	// takes at least this long at Warn level with its full span tree.
	SlowSolve time.Duration
	// Logger receives access logs and slow-solve reports; nil discards.
	Logger *slog.Logger
}

// solveHists groups the per-outcome histograms (restages is nil for the
// cold outcome — nothing is restaged on a cold solve).
type solveHists struct {
	seconds  *obs.Histogram
	pivots   *obs.Histogram
	restages *obs.Histogram
}

// Server is the lubtd HTTP service: JSON solve requests over the public
// lubt facade, a bounded worker pool, and the keyed warm-basis cache
// that turns repeat solves on a topology into warm dual re-solves.
// Construct with New; it implements http.Handler.
type Server struct {
	workers   int
	metrics   *obs.Metrics
	cache     *cache
	mux       *http.ServeMux
	sem       chan struct{}
	log       *slog.Logger
	flight    *obs.FlightRecorder
	start     time.Time
	slowSolve time.Duration
	reqSeq    atomic.Uint64

	hQueueWait *obs.Histogram
	hBuild     *obs.Histogram
	hOutcome   map[string]solveHists
}

// Routes lists every HTTP route the server can register. docs/API.md
// must document each one — TestAPIDocRoutes gates that. /debug/pprof/
// is only mounted when Config.EnablePprof is set.
func Routes() []string {
	return []string{"/solve", "/eco", "/metrics", "/healthz", "/debug/flight", "/debug/pprof/"}
}

// New builds a Server. Every required metric name — counters, gauges
// and histograms — is pre-seeded so /metrics validates before the first
// request.
func New(cfg Config) *Server {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := cfg.CacheSize
	if size <= 0 {
		size = DefaultCacheSize
	}
	flightSize := cfg.FlightSize
	if flightSize <= 0 {
		flightSize = DefaultFlightSize
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	m := obs.NewMetrics()
	s := &Server{
		workers:   workers,
		metrics:   m,
		cache:     newCache(size, m),
		sem:       make(chan struct{}, workers),
		log:       logger,
		flight:    obs.NewFlightRecorder(flightSize),
		start:     time.Now(),
		slowSolve: cfg.SlowSolve,
	}
	m.SetGauge("workers", int64(workers))
	m.SetGauge("inflight", 0)
	m.SetGauge("uptime_seconds", 0)
	m.SetInfo("build_info",
		obs.InfoLabel{Key: "go_version", Value: runtime.Version()},
		obs.InfoLabel{Key: "revision", Value: vcsRevision()})
	for _, name := range requiredCounters {
		m.Add(name, 0)
	}
	s.hQueueWait = m.Histogram("queue_wait_seconds")
	s.hBuild = m.Histogram("build_seconds")
	s.hOutcome = map[string]solveHists{
		outcomeCold: {
			seconds: m.Histogram("solve_seconds_cold"),
			pivots:  m.Histogram("solve_pivots_cold"),
		},
		outcomeWarmHit: {
			seconds:  m.Histogram("solve_seconds_warm_hit"),
			pivots:   m.Histogram("solve_pivots_warm_hit"),
			restages: m.Histogram("restages_warm_hit"),
		},
		outcomeWarmEco: {
			seconds:  m.Histogram("solve_seconds_warm_eco"),
			pivots:   m.Histogram("solve_pivots_warm_eco"),
			restages: m.Histogram("restages_warm_eco"),
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.instrumentSolver("/solve", s.handleSolve))
	mux.HandleFunc("/eco", s.instrumentSolver("/eco", s.handleEco))
	mux.HandleFunc("/metrics", s.instrument(s.handleMetrics))
	mux.HandleFunc("/healthz", s.instrument(s.handleHealthz))
	mux.HandleFunc("/debug/flight", s.instrument(s.handleFlight))
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	s.mux = mux
	return s
}

// vcsRevision returns the VCS commit baked into the binary by the go
// tool, or "unknown" (tests and `go run` builds carry no stamp).
func vcsRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				return kv.Value
			}
		}
	}
	return "unknown"
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's registry (the /metrics source) for
// in-process consumers and tests.
func (s *Server) Metrics() *obs.Metrics { return s.metrics }

// Flight exposes the flight recorder (the /debug/flight source) for
// in-process consumers — cmd/lubtd dumps it on SIGQUIT.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// CacheLen reports the number of warm sessions currently held.
func (s *Server) CacheLen() int { return s.cache.len() }

// Close releases every cached warm session. Call after the HTTP server
// has drained (http.Server.Shutdown); in-use sessions are closed as
// their requests finish.
func (s *Server) Close() { s.cache.closeAll() }

// reqState is the per-request observability context threaded through
// the solver handlers: the request id correlating access log, flight
// entry and trace; the always-on tracer; and the cache outcome once a
// path commits to one.
type reqState struct {
	id      string
	route   string
	start   time.Time
	tr      *obs.Tracer
	outcome string
}

// statusWriter captures the status code written by a handler for the
// access log and flight entry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument counts the request and converts handler panics into 500s —
// a daemon must not die because one request hit an engine invariant.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Inc("requests_total")
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Inc("solve_errors")
				writeError(w, &httpError{status: 500, code: "internal", detail: "panic while serving request"})
			}
		}()
		h(w, r)
	}
}

// instrumentSolver is instrument plus the full per-request
// observability for the solver routes: request id (echoed as
// X-Request-Id), pprof labels segmenting profiles by route and request,
// the always-on flight-recorder entry, the access log, and the
// slow-solve report.
func (s *Server) instrumentSolver(route string, h func(http.ResponseWriter, *http.Request, *reqState)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.Inc("requests_total")
		st := &reqState{id: fmt.Sprintf("r%06d", s.reqSeq.Add(1)), route: route, start: time.Now()}
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", st.id)
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.Inc("solve_errors")
				writeError(sw, &httpError{status: 500, code: "internal", detail: "panic while serving request"})
			}
			s.finishRequest(sw, st)
		}()
		pprof.Do(r.Context(), pprof.Labels("lubt_route", route, "lubt_req", st.id), func(ctx context.Context) {
			h(sw, r.WithContext(ctx), st)
		})
	}
}

// finishRequest completes a solver request's observability: closes the
// trace, records the flight entry, writes the access log line, and
// reports over-budget requests with their full span tree.
func (s *Server) finishRequest(sw *statusWriter, st *reqState) {
	st.tr.Close()
	dur := time.Since(st.start)
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	outcome := st.outcome
	if outcome == "" {
		outcome = outcomeError
	}
	s.flight.Record(obs.FlightEntry{
		ID: st.id, Route: st.route, Outcome: outcome, Status: status,
		Start: st.start, Duration: dur, Root: st.tr.Root(),
	})
	durMS := float64(dur) / float64(time.Millisecond)
	s.log.Info("request",
		slog.String("id", st.id), slog.String("route", st.route),
		slog.Int("status", status), slog.String("outcome", outcome),
		slog.Float64("dur_ms", durMS))
	if s.slowSolve > 0 && dur >= s.slowSolve && st.tr.Enabled() {
		attrs := []any{
			slog.String("id", st.id), slog.String("route", st.route),
			slog.Float64("dur_ms", durMS),
			slog.Float64("threshold_ms", float64(s.slowSolve)/float64(time.Millisecond)),
		}
		var buf bytes.Buffer
		if err := st.tr.WriteJSON(&buf); err == nil {
			var compact bytes.Buffer
			if json.Compact(&compact, buf.Bytes()) == nil {
				attrs = append(attrs, slog.String("trace", compact.String()))
			}
		}
		s.log.Warn("slow solve", attrs...)
	}
}

// labelOutcome layers the lubt_cache outcome label onto the current
// span's pprof labels, so CPU profiles segment cold vs warm work. The
// label lives until the span ends (End restores the parent's labels).
func labelOutcome(sp *obs.Span, outcome string) {
	pprof.SetGoroutineLabels(pprof.WithLabels(sp.Context(), pprof.Labels("lubt_cache", outcome)))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	writeJSON(w, e.status, ErrorResponse{Error: e.code, Detail: e.detail})
}

// requirePost rejects non-POST methods with a JSON 405.
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &httpError{status: 405, code: "method_not_allowed", detail: r.Method + " not allowed; POST"})
		return false
	}
	return true
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, &httpError{status: 405, code: "method_not_allowed", detail: r.Method + " not allowed; GET"})
		return false
	}
	return true
}

// acquireSlot blocks until a worker slot frees up or the client goes
// away. Callers pair it with releaseSlot.
func (s *Server) acquireSlot(r *http.Request) *httpError {
	select {
	case s.sem <- struct{}{}:
		s.metrics.AddGauge("inflight", 1)
		return nil
	case <-r.Context().Done():
		return &httpError{status: 503, code: "unavailable", detail: "request canceled while queued for a worker"}
	}
}

func (s *Server) releaseSlot() {
	<-s.sem
	s.metrics.AddGauge("inflight", -1)
}

// decodeStrict parses a JSON body rejecting unknown fields (catching
// client-side typos like "lowerr") and trailing garbage.
func decodeStrict(r *http.Request, w http.ResponseWriter, v any) *httpError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("decoding request body: %v", err)
	}
	return nil
}

// attachTrace closes the request tracer and embeds its lubt-trace/1
// document in the response.
func attachTrace(resp *SolveResponse, tr *obs.Tracer) {
	if !tr.Enabled() {
		return
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err == nil {
		resp.Trace = json.RawMessage(buf.Bytes())
	}
}

// countError folds an error response into the stats spine.
func (s *Server) countError(herr *httpError) {
	s.metrics.Inc("solve_errors")
	if herr.code == "infeasible" {
		s.metrics.Inc("infeasible_total")
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, st *reqState) {
	if !requirePost(w, r) {
		return
	}
	s.metrics.Inc("solve_requests")
	var req SolveRequest
	if herr := decodeStrict(r, w, &req); herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	// The tracer is always on for solver routes — it feeds the flight
	// recorder and the slow-solve report; the response only carries the
	// trace when the client asked for it.
	st.tr = obs.NewTracerCtx(r.Context(), "serve-solve")
	qStart := time.Now()
	sp := st.tr.Start("queue-wait")
	if herr := s.acquireSlot(r); herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	defer s.releaseSlot()
	sp.End()
	s.hQueueWait.ObserveDuration(time.Since(qStart))
	resp, herr := s.solve(&req, st)
	if herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	if req.Trace {
		attachTrace(resp, st.tr)
	}
	writeJSON(w, 200, resp)
}

// buildInstance assembles the lubt.Instance and resolved topology for a
// solve request.
func (s *Server) buildInstance(req *SolveRequest) (inst *lubt.Instance, sinks []lubt.Point, source *lubt.Point, parent []int, herr *httpError) {
	if len(req.Sinks) == 0 {
		return nil, nil, nil, nil, badRequest("request needs at least one sink")
	}
	sinks = make([]lubt.Point, len(req.Sinks))
	for i, p := range req.Sinks {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, nil, nil, nil, badRequest("sink %d location (%g, %g) is not finite", i, p.X, p.Y)
		}
		sinks[i] = lubt.Point{X: p.X, Y: p.Y}
	}
	inst, err := lubt.NewInstance(sinks)
	if err != nil {
		return nil, nil, nil, nil, badRequest("%v", err)
	}
	if req.Source != nil {
		if math.IsNaN(req.Source.X) || math.IsNaN(req.Source.Y) ||
			math.IsInf(req.Source.X, 0) || math.IsInf(req.Source.Y, 0) {
			return nil, nil, nil, nil, badRequest("source location is not finite")
		}
		source = &lubt.Point{X: req.Source.X, Y: req.Source.Y}
		inst.SetSource(*source)
	}
	spec := req.Topology
	typ := "skew"
	if spec != nil && spec.Type != "" {
		typ = spec.Type
	}
	switch typ {
	case "skew":
		if spec != nil && spec.Parent != nil {
			return nil, nil, nil, nil, badRequest("topology.parent is only valid with type \"custom\"")
		}
		bound := math.Inf(1)
		if spec != nil && spec.SkewBound != nil {
			bound = *spec.SkewBound
			if math.IsNaN(bound) || bound < 0 {
				return nil, nil, nil, nil, badRequest("topology.skew_bound %g must be ≥ 0", bound)
			}
			if req.Normalized && !math.IsInf(bound, 1) {
				bound *= inst.Radius()
			}
		}
		if err := inst.UseSkewGuidedTopology(bound); err != nil {
			return nil, nil, nil, nil, badRequest("building skew-guided topology: %v", err)
		}
	case "balanced":
		if spec.Parent != nil || spec.SkewBound != nil {
			return nil, nil, nil, nil, badRequest("topology type \"balanced\" takes no parent or skew_bound")
		}
		if err := inst.UseBalancedTopology(); err != nil {
			return nil, nil, nil, nil, badRequest("building balanced topology: %v", err)
		}
	case "custom":
		if spec.SkewBound != nil {
			return nil, nil, nil, nil, badRequest("topology type \"custom\" takes no skew_bound")
		}
		if len(spec.Parent) == 0 {
			return nil, nil, nil, nil, badRequest("topology type \"custom\" needs a parent vector")
		}
		if err := inst.UseCustomTopology(spec.Parent); err != nil {
			return nil, nil, nil, nil, badRequest("custom topology: %v", err)
		}
	default:
		return nil, nil, nil, nil, badRequest("unknown topology type %q (skew, balanced or custom)", typ)
	}
	return inst, sinks, source, inst.Topology(), nil
}

// mapSolveErr translates a facade solve error: infeasible windows are
// the client's 422; anything else surfaces as a 400 with the facade's
// validation message.
func mapSolveErr(err error) *httpError {
	if errors.Is(err, lubt.ErrInfeasible) {
		return &httpError{status: 422, code: "infeasible", detail: err.Error()}
	}
	return badRequest("%v", err)
}

// solve runs one /solve request end to end: build, key, then the cold,
// warm or bypass path.
func (s *Server) solve(req *SolveRequest, st *reqState) (*SolveResponse, *httpError) {
	tr := st.tr
	bStart := time.Now()
	sp := tr.Start("build")
	inst, sinks, source, parent, herr := s.buildInstance(req)
	if herr != nil {
		sp.End()
		return nil, herr
	}
	radius := inst.Radius()
	b, herr := req.bounds(len(sinks), radius)
	if herr != nil {
		sp.End()
		return nil, herr
	}
	if req.Weights != nil {
		if len(req.Weights) != len(parent) {
			sp.End()
			return nil, badRequest("weights has %d entries for %d nodes in the resolved topology", len(req.Weights), len(parent))
		}
		for k := 1; k < len(req.Weights); k++ {
			if w := req.Weights[k]; w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				sp.End()
				return nil, badRequest("weight %d = %g must be finite and ≥ 0", k, w)
			}
		}
	}
	switch req.Pricing {
	case "", "devex", "mostviolated", "steepest":
	default:
		sp.End()
		return nil, badRequest("unknown pricing %q (devex, mostviolated or steepest)", req.Pricing)
	}
	key := requestKey(sinks, source, parent, req.Pricing)
	sp.SetInt("nodes", len(parent))
	sp.End()
	s.hBuild.ObserveDuration(time.Since(bStart))

	opts := &lubt.Options{Pricing: req.Pricing, Weights: req.Weights}
	if req.Cold {
		return s.solveBypass(inst, b, opts, key, radius, "bypass", st)
	}
	for attempt := 0; attempt < 2; attempt++ {
		e, _ := s.cache.acquire(key)
		e.mu.Lock()
		if e.closed {
			// Raced an eviction between acquire and lock; re-acquire
			// once, then give up on caching this request.
			e.mu.Unlock()
			continue
		}
		if e.solved == nil {
			resp, herr := s.solveColdFill(e, inst, b, opts, req, key, radius, st)
			e.mu.Unlock()
			return resp, herr
		}
		resp, herr := s.solveWarmHit(e, b, req.Weights, len(parent), key, st)
		e.mu.Unlock()
		return resp, herr
	}
	return s.solveBypass(inst, b, opts, key, radius, "bypass", st)
}

// solveBypass is the uncached cold path (explicit Cold requests, or a
// request that twice raced cache evictions).
func (s *Server) solveBypass(inst *lubt.Instance, b lubt.Bounds, opts *lubt.Options, key string, radius float64, state string, st *reqState) (*SolveResponse, *httpError) {
	st.outcome = outcomeCold
	start := time.Now()
	sp := st.tr.Start("solve")
	sp.SetString("cache", state)
	labelOutcome(sp, outcomeCold)
	tree, err := inst.Solve(b, opts)
	sp.End()
	if err != nil {
		return nil, mapSolveErr(err)
	}
	pivots := tree.Stats.LPIterations
	s.metrics.Inc("cache_bypass")
	s.metrics.Add("cold_pivots_total", int64(pivots))
	oh := s.hOutcome[outcomeCold]
	oh.seconds.ObserveDuration(time.Since(start))
	oh.pivots.Observe(float64(pivots))
	return &SolveResponse{
		Key: key, Cache: state,
		Pivots: pivots, ColdPivots: pivots,
		Rounds: tree.Stats.Rounds,
		Cost:   tree.Cost, Radius: radius, Tree: tree,
	}, nil
}

// solveColdFill owns a pending cache entry: run the cold solve, park
// the warm session in the entry. Caller holds e.mu.
func (s *Server) solveColdFill(e *entry, inst *lubt.Instance, b lubt.Bounds, opts *lubt.Options, req *SolveRequest, key string, radius float64, st *reqState) (*SolveResponse, *httpError) {
	st.outcome = outcomeCold
	start := time.Now()
	sp := st.tr.Start("solve")
	sp.SetString("cache", "miss")
	labelOutcome(sp, outcomeCold)
	solved, err := inst.SolveECO(b, opts)
	if err != nil {
		sp.End()
		// Do not cache a failed solve; requests queued on this entry
		// fall back to their own cold attempts.
		s.cache.remove(e)
		e.closeLocked()
		return nil, mapSolveErr(err)
	}
	e.solved = solved
	if req.Weights != nil {
		e.weights = append([]float64(nil), req.Weights...)
	}
	tree := solved.Tree()
	e.coldPivots = tree.Stats.LPIterations
	e.radius = radius
	sp.SetInt("pivots", e.coldPivots)
	sp.End()
	s.metrics.Inc("cache_misses")
	s.metrics.Add("cold_pivots_total", int64(e.coldPivots))
	oh := s.hOutcome[outcomeCold]
	oh.seconds.ObserveDuration(time.Since(start))
	oh.pivots.Observe(float64(e.coldPivots))
	return &SolveResponse{
		Key: key, Cache: "miss",
		Pivots: e.coldPivots, ColdPivots: e.coldPivots,
		Rounds: tree.Stats.Rounds,
		Cost:   tree.Cost, Radius: radius, Tree: tree,
	}, nil
}

// solveWarmHit restages a cached session to the requested windows and
// weights and re-solves warm from its kept basis. Caller holds e.mu.
func (s *Server) solveWarmHit(e *entry, b lubt.Bounds, weights []float64, nodes int, key string, st *reqState) (*SolveResponse, *httpError) {
	st.outcome = outcomeWarmHit
	start := time.Now()
	sp := st.tr.Start("resolve")
	sp.SetString("cache", "hit")
	labelOutcome(sp, outcomeWarmHit)
	edits := 0
	cur := e.solved.Bounds()
	for i := range b.Lower {
		if cur.Lower[i] == b.Lower[i] && cur.Upper[i] == b.Upper[i] {
			continue
		}
		if err := e.solved.Retighten(i, b.Lower[i], b.Upper[i]); err != nil {
			sp.End()
			return nil, badRequest("%v", err)
		}
		edits++
	}
	for k := 1; k < nodes; k++ {
		want, have := 1.0, 1.0
		if weights != nil {
			want = weights[k]
		}
		if e.weights != nil {
			have = e.weights[k]
		}
		if want == have {
			continue
		}
		if err := e.solved.Reweight(k, want); err != nil {
			sp.End()
			return nil, badRequest("%v", err)
		}
		edits++
	}
	if weights == nil {
		e.weights = nil
	} else {
		e.weights = append(e.weights[:0], weights...)
	}
	resp, herr := s.resolveLocked(e, key, edits, outcomeWarmHit, start, sp)
	sp.End()
	return resp, herr
}

// resolveLocked re-solves a staged session and assembles the response —
// the shared tail of the warm-hit and /eco paths. Caller holds e.mu and
// owns the span.
func (s *Server) resolveLocked(e *entry, key string, edits int, outcome string, start time.Time, sp *obs.Span) (*SolveResponse, *httpError) {
	tree, err := e.solved.Resolve()
	if err != nil {
		if errors.Is(err, lubt.ErrInfeasible) {
			// The session survives an infeasible window set (the facade
			// contract); keep the entry for the client's relaxed retry.
			s.metrics.Inc("cache_hits")
			return nil, &httpError{status: 422, code: "infeasible", detail: err.Error()}
		}
		s.cache.remove(e)
		e.closeLocked()
		return nil, &httpError{status: 500, code: "internal", detail: err.Error()}
	}
	pivots := e.solved.ResolvePivots()
	sp.SetInt("pivots", pivots)
	sp.SetInt("edits", edits)
	s.metrics.Inc("cache_hits")
	s.metrics.Add("warm_pivots_total", int64(pivots))
	s.metrics.Add("restages_total", int64(edits))
	oh := s.hOutcome[outcome]
	oh.seconds.ObserveDuration(time.Since(start))
	oh.pivots.Observe(float64(pivots))
	oh.restages.Observe(float64(edits))
	return &SolveResponse{
		Key: key, Cache: "hit",
		Pivots: pivots, ColdPivots: e.coldPivots,
		Rounds: tree.Stats.Rounds, Restages: edits,
		Cost: tree.Cost, Radius: e.radius, Tree: tree,
	}, nil
}

func (s *Server) handleEco(w http.ResponseWriter, r *http.Request, st *reqState) {
	if !requirePost(w, r) {
		return
	}
	s.metrics.Inc("eco_requests")
	var req EcoRequest
	if herr := decodeStrict(r, w, &req); herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	if req.Key == "" {
		herr := badRequest("eco request needs the key of a previous /solve")
		s.countError(herr)
		writeError(w, herr)
		return
	}
	st.tr = obs.NewTracerCtx(r.Context(), "serve-eco")
	qStart := time.Now()
	sp := st.tr.Start("queue-wait")
	if herr := s.acquireSlot(r); herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	defer s.releaseSlot()
	sp.End()
	s.hQueueWait.ObserveDuration(time.Since(qStart))
	resp, herr := s.eco(&req, st)
	if herr != nil {
		s.countError(herr)
		writeError(w, herr)
		return
	}
	if req.Trace {
		attachTrace(resp, st.tr)
	}
	writeJSON(w, 200, resp)
}

// eco applies targeted edits to a cached warm session. Edits apply in
// order; on a rejected edit the earlier ones remain staged (the facade
// contract — the next Resolve picks them up).
func (s *Server) eco(req *EcoRequest, st *reqState) (*SolveResponse, *httpError) {
	unknown := &httpError{status: 404, code: "unknown_key",
		detail: "no warm session for key " + req.Key + " (evicted or never solved); POST /solve first"}
	e := s.cache.lookup(req.Key)
	if e == nil {
		return nil, unknown
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.solved == nil {
		return nil, unknown
	}
	st.outcome = outcomeWarmEco
	start := time.Now()
	sp := st.tr.Start("resolve")
	defer sp.End()
	sp.SetString("cache", "hit")
	labelOutcome(sp, outcomeWarmEco)
	edits := 0
	for _, edit := range req.Retighten {
		l, u := edit.window()
		if math.IsNaN(l) || math.IsNaN(u) || l > u {
			return nil, badWindow("sink %d window [%g, %g] is empty or not a number", edit.Sink, l, u)
		}
		if err := e.solved.Retighten(edit.Sink, l, u); err != nil {
			return nil, badRequest("%v", err)
		}
		edits++
	}
	if len(req.Reweight) > 0 && e.weights == nil {
		// Materialize the unit vector so the diff bookkeeping of later
		// /solve hits on this key stays exact.
		e.weights = make([]float64, len(e.solved.Tree().Parent))
		for k := 1; k < len(e.weights); k++ {
			e.weights[k] = 1
		}
	}
	for _, edit := range req.Reweight {
		if math.IsNaN(edit.Weight) || math.IsInf(edit.Weight, 0) {
			return nil, badRequest("edge %d weight %g is not finite", edit.Edge, edit.Weight)
		}
		if err := e.solved.Reweight(edit.Edge, edit.Weight); err != nil {
			return nil, badRequest("%v", err)
		}
		e.weights[edit.Edge] = edit.Weight
		edits++
	}
	return s.resolveLocked(e, req.Key, edits, outcomeWarmEco, start, sp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	s.metrics.SetGauge("uptime_seconds", int64(time.Since(s.start)/time.Second))
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		_ = s.metrics.WriteJSON(w)
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.metrics.WriteProm(w)
	default:
		writeError(w, badRequest("unknown format %q (json or prom)", format))
	}
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.flight.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, 200, map[string]string{"status": "ok"})
}
