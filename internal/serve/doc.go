// Package serve is the lubtd HTTP service: a JSON front end over the
// public lubt facade that amortizes LP work across requests.
//
// The interesting part is the keyed warm-basis cache. A solve request is
// split into what fixes the LP's structure (sink/source geometry, the
// resolved topology, the pricing rule — hashed into a canonical topology
// key) and what a restageable engine absorbs in place (delay windows,
// edge weights). Requests sharing a key are routed to one held-open
// lubt.Solved session: the first pays the cold solve, every later one is
// diffed against the session's staged state, restaged with
// Retighten/Reweight, and re-solved warm from the kept basis — a
// handful of dual pivots instead of a cold solve. /eco edits a cached
// session directly by key.
//
// Sessions are single-threaded by contract, so each cache entry carries
// a mutex serializing all use of its session; concurrent requests on one
// key queue and re-solve one after another, each warm from the basis the
// previous one left behind. The cache is a bounded LRU — evicted
// sessions are closed once their in-flight request (if any) finishes.
// Solves run under a bounded worker pool (GOMAXPROCS slots by default).
//
// Telemetry: /metrics serves the lubtd-metrics/2 document (counters,
// gauges, and latency/pivot histograms split by cache outcome — cold,
// warm_hit, warm_eco) that ValidateMetricsJSON checks in the ci.sh
// smoke, and the same registry as a Prometheus text exposition under
// ?format=prom (ValidatePromText). Every /solve and /eco request runs
// under an always-on tracer feeding a bounded flight-recorder ring
// (/debug/flight, lubtd-flight/1, ValidateFlightJSON) and gets a
// request id correlating the X-Request-Id header, the slog access log,
// the flight entry and any slow-solve report (Config.SlowSolve).
// Profiles segment by route, request and cache outcome via pprof labels
// (lubt_route, lubt_req, lubt_cache); net/http/pprof mounts under
// /debug/pprof/ when Config.EnablePprof is set.
//
// The wire contract — routes, schemas, error codes, metric names — is
// documented in docs/API.md; the serving architecture (request
// lifecycle, cache keying, when a request falls off the warm path) in
// DESIGN.md §7.
package serve
