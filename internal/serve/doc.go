// Package serve is the lubtd HTTP service: a JSON front end over the
// public lubt facade that amortizes LP work across requests.
//
// The interesting part is the keyed warm-basis cache. A solve request is
// split into what fixes the LP's structure (sink/source geometry, the
// resolved topology, the pricing rule — hashed into a canonical topology
// key) and what a restageable engine absorbs in place (delay windows,
// edge weights). Requests sharing a key are routed to one held-open
// lubt.Solved session: the first pays the cold solve, every later one is
// diffed against the session's staged state, restaged with
// Retighten/Reweight, and re-solved warm from the kept basis — a
// handful of dual pivots instead of a cold solve. /eco edits a cached
// session directly by key.
//
// Sessions are single-threaded by contract, so each cache entry carries
// a mutex serializing all use of its session; concurrent requests on one
// key queue and re-solve one after another, each warm from the basis the
// previous one left behind. The cache is a bounded LRU — evicted
// sessions are closed once their in-flight request (if any) finishes.
// Solves run under a bounded worker pool (GOMAXPROCS slots by default);
// /metrics serves the lubtd-metrics/1 counter document that
// ValidateMetricsJSON checks in the ci.sh smoke.
//
// The wire contract — routes, schemas, error codes, metric names — is
// documented in docs/API.md; the serving architecture (request
// lifecycle, cache keying, when a request falls off the warm path) in
// DESIGN.md §7.
package serve
