package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"lubt/internal/wkld"
)

// benchPost drives one request through the handler stack without a
// network hop — the benchmarks measure the service, not the socket.
func benchPost(b *testing.B, srv *Server, path string, body any) solveWire {
	b.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 200 {
		b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var out solveWire
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		b.Fatal(err)
	}
	return out
}

func benchSetup(b *testing.B) (*Server, *wkld.Benchmark, float64, float64, float64) {
	b.Helper()
	srv := New(Config{})
	bench := wkld.MustGenerate("prim1-s")
	base := solveReq(bench, 0, 0)
	base.Cold = true
	buf, _ := json.Marshal(base)
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(buf))
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	var resp solveWire
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil || rr.Code != 200 {
		b.Fatalf("baseline: status %d err %v", rr.Code, err)
	}
	u := resp.Tree.MaxDelay
	l := math.Max(0, u-0.1*resp.Radius)
	return srv, bench, l, u, resp.Radius
}

// BenchmarkServeColdSolve is the no-cache control: every iteration pays
// a full cold solve (Cold: true bypasses the warm-basis cache).
func BenchmarkServeColdSolve(b *testing.B) {
	srv, bench, l, u, _ := benchSetup(b)
	defer srv.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := solveReq(bench, l, u)
		req.Cold = true
		benchPost(b, srv, "/solve", req)
	}
}

// BenchmarkServeWarmSolve measures the headline path: repeat solves on
// one topology key with drifting windows, each served warm from the
// cached basis. Compare against BenchmarkServeColdSolve for the
// service-level amortization.
func BenchmarkServeWarmSolve(b *testing.B) {
	srv, bench, l, u, radius := benchSetup(b)
	defer srv.Close()
	benchPost(b, srv, "/solve", solveReq(bench, l, u)) // seed the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate between two nearby windows so every hit restages.
		ui := u * (1 + 0.01*float64(i%2+1))
		li := math.Max(0, ui-0.12*radius)
		resp := benchPost(b, srv, "/solve", solveReq(bench, li, ui))
		if resp.Cache != "hit" {
			b.Fatalf("iteration served %q, want hit", resp.Cache)
		}
	}
}
