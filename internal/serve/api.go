package serve

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"lubt"
	"lubt/internal/obs"
)

// PointJSON is a plane location on the wire.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TopologySpec selects the routing topology for a solve request.
type TopologySpec struct {
	// Type is "skew" (default: the bounded-skew-guided generator, the
	// paper's §8 methodology), "balanced" (recursive bipartition) or
	// "custom" (caller-provided Parent vector).
	Type string `json:"type"`
	// SkewBound guides the "skew" generator; omitted/null means +inf (a
	// pure nearest-neighbour Steiner topology). Interpreted as a multiple
	// of the radius when the request is normalized.
	SkewBound *float64 `json:"skew_bound,omitempty"`
	// Parent is the "custom" topology as a parent vector: node 0 the
	// root, nodes 1…m the sinks in input order, higher ids Steiner
	// points. High-degree nodes are split server-side (Fig. 2), so the
	// resolved topology in the response may have more nodes.
	Parent []int `json:"parent,omitempty"`
}

// SolveRequest is the POST /solve body. Delay windows come either as
// per-sink arrays (lower/upper, indexed like sinks) or as a uniform
// window (lower_all/upper_all); an omitted upper — or any entry ≤ 0 —
// means unbounded (+inf; JSON has no infinity literal). With normalized
// set, every bound and the topology skew bound are multiples of the
// instance radius, as in the paper's tables.
type SolveRequest struct {
	Sinks      []PointJSON   `json:"sinks"`
	Source     *PointJSON    `json:"source,omitempty"`
	Topology   *TopologySpec `json:"topology,omitempty"`
	Lower      []float64     `json:"lower,omitempty"`
	Upper      []float64     `json:"upper,omitempty"`
	LowerAll   float64       `json:"lower_all,omitempty"`
	UpperAll   float64       `json:"upper_all,omitempty"`
	Normalized bool          `json:"normalized,omitempty"`
	// Weights are per-edge objective weights (§7), indexed by child node
	// id in the RESOLVED topology (length = node count; entry 0 unused);
	// nil means unit weights. The resolved parent vector is returned in
	// every response's tree.parent.
	Weights []float64 `json:"weights,omitempty"`
	// Pricing selects the dual-simplex leaving-row rule ("", "devex",
	// "mostviolated", "steepest"). Part of the cache key: sessions are
	// never shared across pricing rules.
	Pricing string `json:"pricing,omitempty"`
	// Cold bypasses the warm-basis cache: the solve runs on a fresh
	// instance and is not cached. Use for one-shot topology experiments
	// that should not displace warm sessions.
	Cold bool `json:"cold,omitempty"`
	// Trace captures a lubt-trace/1 span tree of the request lifecycle
	// (queue wait, build, solve) in the response.
	Trace bool `json:"trace,omitempty"`
}

// WindowEdit retightens one sink's delay window (sink indexed like the
// original request's sink array, 0-based). Upper ≤ 0 means +inf.
type WindowEdit struct {
	Sink  int     `json:"sink"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// WeightEdit reprices one edge (edge = child node id in the resolved
// topology).
type WeightEdit struct {
	Edge   int     `json:"edge"`
	Weight float64 `json:"weight"`
}

// EcoRequest is the POST /eco body: targeted edits against the warm
// session cached under Key (returned by a previous /solve). Bounds and
// weights are in absolute routing units — the ECO path has no
// normalized mode.
type EcoRequest struct {
	Key       string       `json:"key"`
	Retighten []WindowEdit `json:"retighten,omitempty"`
	Reweight  []WeightEdit `json:"reweight,omitempty"`
	Trace     bool         `json:"trace,omitempty"`
}

// SolveResponse is the success body of /solve and /eco.
type SolveResponse struct {
	// Key is the canonical topology key the request mapped to; feed it
	// to /eco for targeted warm edits.
	Key string `json:"key"`
	// Cache reports how the request was served: "miss" (cold solve, now
	// cached), "hit" (warm re-solve on the cached basis) or "bypass"
	// (cold, uncached).
	Cache string `json:"cache"`
	// Pivots is the dual-pivot count of THIS request's solve;
	// ColdPivots the cached session's original cold-solve count (equal
	// on a miss — their ratio is the warm-start amortization).
	Pivots     int `json:"pivots"`
	ColdPivots int `json:"cold_pivots"`
	// Rounds and Restages summarize the row-generation and restaging
	// work of this request (tree.stats in full lives under Tree).
	Rounds   int `json:"rounds"`
	Restages int `json:"restages"`
	// Cost is the weighted wirelength; Radius the instance radius
	// (normalize bounds against it).
	Cost   float64 `json:"cost"`
	Radius float64 `json:"radius"`
	// Tree is the routed tree in the stable TreeJSON shape of the lubt
	// package (topology, edge lengths, locations, routes, delays).
	Tree *lubt.Tree `json:"tree"`
	// Trace is the lubt-trace/1 request span tree when Trace was set.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Error is a
// stable machine code ("bad_request", "infeasible", "unknown_key",
// "method_not_allowed", "unavailable", "internal"); Detail is
// human-readable and may change between versions.
type ErrorResponse struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

// httpError carries an error response through the handler plumbing.
type httpError struct {
	status int
	code   string
	detail string
}

func (e *httpError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.detail) }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: 400, code: "bad_request", detail: fmt.Sprintf(format, args...)}
}

// badWindow is the 422 for a structurally malformed delay window (NaN,
// or lower > upper): the request parsed fine but can never be solved,
// mirroring the 422 used for infeasible instances. Validated at request
// decoding for both /solve and /eco so a bad window never reaches a
// solver — or worse, a cached warm engine.
func badWindow(format string, args ...any) *httpError {
	return &httpError{status: 422, code: "bad_window", detail: fmt.Sprintf(format, args...)}
}

// inf replaces the wire convention "≤ 0 means unbounded" with +inf.
func inf(u float64) float64 {
	if u <= 0 {
		return math.Inf(1)
	}
	return u
}

// bounds assembles the request's delay windows for m sinks, scaled by
// the radius when normalized.
func (req *SolveRequest) bounds(m int, radius float64) (lubt.Bounds, *httpError) {
	scale := 1.0
	if req.Normalized {
		scale = radius
	}
	var b lubt.Bounds
	switch {
	case req.Lower == nil && req.Upper == nil:
		b = lubt.Uniform(m, req.LowerAll*scale, inf(req.UpperAll)*scale)
	default:
		if req.Lower != nil && len(req.Lower) != m {
			return b, badRequest("lower has %d entries for %d sinks", len(req.Lower), m)
		}
		if req.Upper != nil && len(req.Upper) != m {
			return b, badRequest("upper has %d entries for %d sinks", len(req.Upper), m)
		}
		b = lubt.Uniform(m, 0, math.Inf(1))
		for i := 0; i < m; i++ {
			if req.Lower != nil {
				b.Lower[i] = req.Lower[i] * scale
			}
			if req.Upper != nil {
				b.Upper[i] = inf(req.Upper[i]) * scale
			}
		}
	}
	for i := 0; i < m; i++ {
		l, u := b.Lower[i], b.Upper[i]
		if math.IsNaN(l) || math.IsNaN(u) || math.IsInf(l, 0) {
			return b, badWindow("sink %d window [%g, %g] is not a number", i, l, u)
		}
		if l < 0 || l > u {
			return b, badWindow("sink %d window [%g, %g] is empty or negative", i, l, u)
		}
	}
	return b, nil
}

// window returns the edit's bounds with the wire +inf convention
// applied to the upper limit.
func (e WindowEdit) window() (l, u float64) { return e.Lower, inf(e.Upper) }

// requestKey is the canonical topology key: a hash over the sink
// coordinates (exact float bits), the source, the RESOLVED parent
// vector and the pricing rule. Everything a warm re-solve can absorb —
// delay windows, edge weights — is deliberately excluded; everything
// that would need a fresh engine is included.
func requestKey(sinks []lubt.Point, source *lubt.Point, parent []int, pricing string) string {
	h := sha256.New()
	var buf [8]byte
	wf := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte("lubt-key/1\x00"))
	wi(len(sinks))
	for _, p := range sinks {
		wf(p.X)
		wf(p.Y)
	}
	if source != nil {
		h.Write([]byte{1})
		wf(source.X)
		wf(source.Y)
	} else {
		h.Write([]byte{0})
	}
	wi(len(parent))
	for _, p := range parent {
		wi(p)
	}
	h.Write([]byte(pricing))
	return "t:" + hex.EncodeToString(h.Sum(nil)[:12])
}

// requiredCounters, requiredGauges and requiredHistograms are the
// metric names every /metrics document must carry; the name sets are
// append-only within lubtd-metrics/2 (additions are fine,
// removals/renames bump the major version). docs/API.md documents each
// name.
var requiredCounters = []string{
	"requests_total", "solve_requests", "eco_requests",
	"cache_hits", "cache_misses", "cache_evictions", "cache_bypass",
	"warm_pivots_total", "cold_pivots_total",
	"solve_errors", "infeasible_total", "restages_total",
}

var requiredGauges = []string{
	"workers", "inflight", "cache_size", "cache_capacity",
	"build_info", "uptime_seconds",
}

var requiredHistograms = []string{
	"queue_wait_seconds", "build_seconds",
	"solve_seconds_cold", "solve_seconds_warm_hit", "solve_seconds_warm_eco",
	"solve_pivots_cold", "solve_pivots_warm_hit", "solve_pivots_warm_eco",
	"restages_warm_hit", "restages_warm_eco",
}

// metricsHistogramDoc is one histogram in a lubtd-metrics/2 document as
// the validators decode it.
type metricsHistogramDoc struct {
	Count   uint64  `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	P50     float64 `json:"p50"`
	P99     float64 `json:"p99"`
	Buckets []struct {
		LE    float64 `json:"le"`
		Count uint64  `json:"count"`
	} `json:"buckets"`
}

// validateHistogramDoc checks one histogram's internal consistency: the
// cumulative bucket series is monotone in both boundary and count, the
// series never exceeds the total (finite boundaries only — overflow
// samples live past the last JSON bucket), and the scalar summaries
// are ordered.
func validateHistogramDoc(name string, h metricsHistogramDoc) error {
	prevLE := math.Inf(-1)
	var prevCum uint64
	for i, b := range h.Buckets {
		if math.IsNaN(b.LE) || math.IsInf(b.LE, 0) {
			return fmt.Errorf("histogram %q bucket %d: boundary %v is not finite", name, i, b.LE)
		}
		if b.LE <= prevLE {
			return fmt.Errorf("histogram %q bucket %d: boundary %v not increasing", name, i, b.LE)
		}
		if b.Count < prevCum {
			return fmt.Errorf("histogram %q bucket %d: cumulative count %d decreased", name, i, b.Count)
		}
		prevLE, prevCum = b.LE, b.Count
	}
	if prevCum > h.Count {
		return fmt.Errorf("histogram %q: bucket series %d exceeds count %d", name, prevCum, h.Count)
	}
	if h.Count > 0 {
		if h.Min > h.Max {
			return fmt.Errorf("histogram %q: min %v > max %v", name, h.Min, h.Max)
		}
		if h.P50 > h.P99 {
			return fmt.Errorf("histogram %q: p50 %v > p99 %v", name, h.P50, h.P99)
		}
	}
	return nil
}

// ValidateMetricsJSON checks that data is a well-formed lubtd-metrics/2
// document: strict top-level key set, correct schema string, every
// required counter, gauge and histogram present, counters non-negative,
// the gauges inside their structural ranges, and every histogram's
// cumulative bucket series monotone. It backs the ci.sh lubtd-smoke
// gate the way experiments.ValidateBenchJSON backs the bench smoke.
func ValidateMetricsJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc struct {
		Schema     string                         `json:"schema"`
		Counters   map[string]int64               `json:"counters"`
		Gauges     map[string]int64               `json:"gauges"`
		Histograms map[string]metricsHistogramDoc `json:"histograms"`
	}
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("metrics json: %w", err)
	}
	if doc.Schema != obs.MetricsSchema {
		return fmt.Errorf("metrics json: schema %q, want %q", doc.Schema, obs.MetricsSchema)
	}
	for _, name := range requiredCounters {
		v, ok := doc.Counters[name]
		if !ok {
			return fmt.Errorf("metrics json: missing counter %q", name)
		}
		if v < 0 {
			return fmt.Errorf("metrics json: counter %q = %d is negative", name, v)
		}
	}
	for _, name := range requiredGauges {
		if _, ok := doc.Gauges[name]; !ok {
			return fmt.Errorf("metrics json: missing gauge %q", name)
		}
	}
	if doc.Gauges["workers"] < 1 {
		return fmt.Errorf("metrics json: workers gauge = %d, want ≥ 1", doc.Gauges["workers"])
	}
	if doc.Gauges["cache_capacity"] < 1 {
		return fmt.Errorf("metrics json: cache_capacity gauge = %d, want ≥ 1", doc.Gauges["cache_capacity"])
	}
	if doc.Gauges["inflight"] < 0 || doc.Gauges["cache_size"] < 0 {
		return fmt.Errorf("metrics json: negative inflight/cache_size gauge")
	}
	if doc.Gauges["cache_size"] > doc.Gauges["cache_capacity"] {
		return fmt.Errorf("metrics json: cache_size %d exceeds cache_capacity %d",
			doc.Gauges["cache_size"], doc.Gauges["cache_capacity"])
	}
	if doc.Gauges["build_info"] != 1 {
		return fmt.Errorf("metrics json: build_info gauge = %d, want 1", doc.Gauges["build_info"])
	}
	if doc.Gauges["uptime_seconds"] < 0 {
		return fmt.Errorf("metrics json: negative uptime_seconds gauge")
	}
	for _, name := range requiredHistograms {
		h, ok := doc.Histograms[name]
		if !ok {
			return fmt.Errorf("metrics json: missing histogram %q", name)
		}
		if err := validateHistogramDoc(name, h); err != nil {
			return fmt.Errorf("metrics json: %w", err)
		}
	}
	for name, h := range doc.Histograms {
		if err := validateHistogramDoc(name, h); err != nil {
			return fmt.Errorf("metrics json: %w", err)
		}
	}
	return nil
}

// ValidatePromText checks that data is a well-formed Prometheus text
// exposition of the lubtd registry: every line is a comment or a
// `name[{labels}] value` sample, every required counter/gauge/histogram
// appears under its `lubtd_` name, each TYPE is declared before its
// samples, and every histogram's `_bucket` series is cumulative,
// monotone and ends at le="+Inf" agreeing with `_count`. It backs the
// ci.sh prom-scrape gate.
func ValidatePromText(data []byte) error {
	types := map[string]string{}
	values := map[string]float64{} // bare (unlabeled) samples
	type bucket struct {
		le  float64
		cum float64
	}
	buckets := map[string][]bucket{}
	labeled := map[string]bool{} // names seen with a non-le label set

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "# TYPE ") {
				parts := strings.Fields(line)
				if len(parts) != 4 {
					return fmt.Errorf("prom text line %d: malformed TYPE comment %q", lineNo, line)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("prom text line %d: unknown type %q", lineNo, parts[3])
				}
				types[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return fmt.Errorf("prom text line %d: no sample value in %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := parsePromValue(valStr)
		if err != nil {
			return fmt.Errorf("prom text line %d: %v", lineNo, err)
		}
		name := key
		labels := ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				return fmt.Errorf("prom text line %d: unterminated label set in %q", lineNo, line)
			}
			name, labels = key[:i], key[i+1:len(key)-1]
		}
		if !promNameOK(name) {
			return fmt.Errorf("prom text line %d: illegal metric name %q", lineNo, name)
		}
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && strings.HasPrefix(labels, `le="`) {
			leStr := strings.TrimSuffix(strings.TrimPrefix(labels, `le="`), `"`)
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("prom text line %d: bad le %q", lineNo, leStr)
			}
			buckets[base] = append(buckets[base], bucket{le: le, cum: val})
			continue
		}
		if labels != "" {
			labeled[name] = true
			continue
		}
		values[name] = val
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("prom text: %w", err)
	}

	for _, name := range requiredCounters {
		pn := "lubtd_" + name
		if types[pn] != "counter" {
			return fmt.Errorf("prom text: %s not declared as counter", pn)
		}
		if v, ok := values[pn]; !ok || v < 0 {
			return fmt.Errorf("prom text: counter %s missing or negative", pn)
		}
	}
	for _, name := range requiredGauges {
		pn := "lubtd_" + name
		if types[pn] != "gauge" {
			return fmt.Errorf("prom text: %s not declared as gauge", pn)
		}
		if _, ok := values[pn]; !ok && !labeled[pn] {
			return fmt.Errorf("prom text: gauge %s missing", pn)
		}
	}
	for _, name := range requiredHistograms {
		pn := "lubtd_" + name
		if types[pn] != "histogram" {
			return fmt.Errorf("prom text: %s not declared as histogram", pn)
		}
		bs := buckets[pn]
		if len(bs) == 0 {
			return fmt.Errorf("prom text: histogram %s has no _bucket series", pn)
		}
		prevLE := math.Inf(-1)
		prevCum := -1.0
		for i, b := range bs {
			if b.le <= prevLE {
				return fmt.Errorf("prom text: %s_bucket boundary %v not increasing (entry %d)", pn, b.le, i)
			}
			if b.cum < prevCum {
				return fmt.Errorf("prom text: %s_bucket cumulative count decreased at le=%v", pn, b.le)
			}
			prevLE, prevCum = b.le, b.cum
		}
		if !math.IsInf(bs[len(bs)-1].le, 1) {
			return fmt.Errorf("prom text: %s_bucket series does not end at le=\"+Inf\"", pn)
		}
		count, ok := values[pn+"_count"]
		if !ok {
			return fmt.Errorf("prom text: missing %s_count", pn)
		}
		if bs[len(bs)-1].cum != count {
			return fmt.Errorf("prom text: %s +Inf bucket %v != _count %v", pn, bs[len(bs)-1].cum, count)
		}
		if _, ok := values[pn+"_sum"]; !ok {
			return fmt.Errorf("prom text: missing %s_sum", pn)
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func promNameOK(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidateFlightJSON checks that data is a well-formed lubtd-flight/1
// document: strict key set, correct schema, entries within capacity,
// legal routes/outcomes/statuses, and every embedded trace a
// lubt-trace/1 document. It backs the ci.sh flight-scrape gate.
func ValidateFlightJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc struct {
		Schema   string `json:"schema"`
		Capacity int    `json:"capacity"`
		Dropped  uint64 `json:"dropped"`
		Entries  []struct {
			ID          string `json:"id"`
			Route       string `json:"route"`
			Outcome     string `json:"outcome"`
			Status      int    `json:"status"`
			StartUnixUS int64  `json:"start_unix_us"`
			DurUS       int64  `json:"dur_us"`
			Trace       *struct {
				Schema string          `json:"schema"`
				Root   json.RawMessage `json:"root"`
			} `json:"trace"`
		} `json:"entries"`
	}
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("flight json: %w", err)
	}
	if doc.Schema != obs.FlightSchema {
		return fmt.Errorf("flight json: schema %q, want %q", doc.Schema, obs.FlightSchema)
	}
	if doc.Capacity < 1 {
		return fmt.Errorf("flight json: capacity %d, want ≥ 1", doc.Capacity)
	}
	if len(doc.Entries) > doc.Capacity {
		return fmt.Errorf("flight json: %d entries exceed capacity %d", len(doc.Entries), doc.Capacity)
	}
	for i, e := range doc.Entries {
		if e.ID == "" {
			return fmt.Errorf("flight json: entry %d has no id", i)
		}
		if e.Route != "/solve" && e.Route != "/eco" {
			return fmt.Errorf("flight json: entry %d route %q is not a solver route", i, e.Route)
		}
		switch e.Outcome {
		case "cold", "warm_hit", "warm_eco", "error":
		default:
			return fmt.Errorf("flight json: entry %d outcome %q unknown", i, e.Outcome)
		}
		if e.Status < 100 || e.Status > 599 {
			return fmt.Errorf("flight json: entry %d status %d out of range", i, e.Status)
		}
		if e.DurUS < 0 {
			return fmt.Errorf("flight json: entry %d negative duration", i)
		}
		if e.Trace != nil {
			if e.Trace.Schema != obs.TraceSchema {
				return fmt.Errorf("flight json: entry %d trace schema %q, want %q", i, e.Trace.Schema, obs.TraceSchema)
			}
			if len(e.Trace.Root) == 0 {
				return fmt.Errorf("flight json: entry %d trace has no root span", i)
			}
		}
	}
	return nil
}
