package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"lubt"
	"lubt/internal/obs"
)

// PointJSON is a plane location on the wire.
type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// TopologySpec selects the routing topology for a solve request.
type TopologySpec struct {
	// Type is "skew" (default: the bounded-skew-guided generator, the
	// paper's §8 methodology), "balanced" (recursive bipartition) or
	// "custom" (caller-provided Parent vector).
	Type string `json:"type"`
	// SkewBound guides the "skew" generator; omitted/null means +inf (a
	// pure nearest-neighbour Steiner topology). Interpreted as a multiple
	// of the radius when the request is normalized.
	SkewBound *float64 `json:"skew_bound,omitempty"`
	// Parent is the "custom" topology as a parent vector: node 0 the
	// root, nodes 1…m the sinks in input order, higher ids Steiner
	// points. High-degree nodes are split server-side (Fig. 2), so the
	// resolved topology in the response may have more nodes.
	Parent []int `json:"parent,omitempty"`
}

// SolveRequest is the POST /solve body. Delay windows come either as
// per-sink arrays (lower/upper, indexed like sinks) or as a uniform
// window (lower_all/upper_all); an omitted upper — or any entry ≤ 0 —
// means unbounded (+inf; JSON has no infinity literal). With normalized
// set, every bound and the topology skew bound are multiples of the
// instance radius, as in the paper's tables.
type SolveRequest struct {
	Sinks      []PointJSON   `json:"sinks"`
	Source     *PointJSON    `json:"source,omitempty"`
	Topology   *TopologySpec `json:"topology,omitempty"`
	Lower      []float64     `json:"lower,omitempty"`
	Upper      []float64     `json:"upper,omitempty"`
	LowerAll   float64       `json:"lower_all,omitempty"`
	UpperAll   float64       `json:"upper_all,omitempty"`
	Normalized bool          `json:"normalized,omitempty"`
	// Weights are per-edge objective weights (§7), indexed by child node
	// id in the RESOLVED topology (length = node count; entry 0 unused);
	// nil means unit weights. The resolved parent vector is returned in
	// every response's tree.parent.
	Weights []float64 `json:"weights,omitempty"`
	// Pricing selects the dual-simplex leaving-row rule ("", "devex",
	// "mostviolated", "steepest"). Part of the cache key: sessions are
	// never shared across pricing rules.
	Pricing string `json:"pricing,omitempty"`
	// Cold bypasses the warm-basis cache: the solve runs on a fresh
	// instance and is not cached. Use for one-shot topology experiments
	// that should not displace warm sessions.
	Cold bool `json:"cold,omitempty"`
	// Trace captures a lubt-trace/1 span tree of the request lifecycle
	// (queue wait, build, solve) in the response.
	Trace bool `json:"trace,omitempty"`
}

// WindowEdit retightens one sink's delay window (sink indexed like the
// original request's sink array, 0-based). Upper ≤ 0 means +inf.
type WindowEdit struct {
	Sink  int     `json:"sink"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// WeightEdit reprices one edge (edge = child node id in the resolved
// topology).
type WeightEdit struct {
	Edge   int     `json:"edge"`
	Weight float64 `json:"weight"`
}

// EcoRequest is the POST /eco body: targeted edits against the warm
// session cached under Key (returned by a previous /solve). Bounds and
// weights are in absolute routing units — the ECO path has no
// normalized mode.
type EcoRequest struct {
	Key       string       `json:"key"`
	Retighten []WindowEdit `json:"retighten,omitempty"`
	Reweight  []WeightEdit `json:"reweight,omitempty"`
	Trace     bool         `json:"trace,omitempty"`
}

// SolveResponse is the success body of /solve and /eco.
type SolveResponse struct {
	// Key is the canonical topology key the request mapped to; feed it
	// to /eco for targeted warm edits.
	Key string `json:"key"`
	// Cache reports how the request was served: "miss" (cold solve, now
	// cached), "hit" (warm re-solve on the cached basis) or "bypass"
	// (cold, uncached).
	Cache string `json:"cache"`
	// Pivots is the dual-pivot count of THIS request's solve;
	// ColdPivots the cached session's original cold-solve count (equal
	// on a miss — their ratio is the warm-start amortization).
	Pivots     int `json:"pivots"`
	ColdPivots int `json:"cold_pivots"`
	// Rounds and Restages summarize the row-generation and restaging
	// work of this request (tree.stats in full lives under Tree).
	Rounds   int `json:"rounds"`
	Restages int `json:"restages"`
	// Cost is the weighted wirelength; Radius the instance radius
	// (normalize bounds against it).
	Cost   float64 `json:"cost"`
	Radius float64 `json:"radius"`
	// Tree is the routed tree in the stable TreeJSON shape of the lubt
	// package (topology, edge lengths, locations, routes, delays).
	Tree *lubt.Tree `json:"tree"`
	// Trace is the lubt-trace/1 request span tree when Trace was set.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// ErrorResponse is the body of every non-2xx response. Error is a
// stable machine code ("bad_request", "infeasible", "unknown_key",
// "method_not_allowed", "unavailable", "internal"); Detail is
// human-readable and may change between versions.
type ErrorResponse struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

// httpError carries an error response through the handler plumbing.
type httpError struct {
	status int
	code   string
	detail string
}

func (e *httpError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.detail) }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: 400, code: "bad_request", detail: fmt.Sprintf(format, args...)}
}

// inf replaces the wire convention "≤ 0 means unbounded" with +inf.
func inf(u float64) float64 {
	if u <= 0 {
		return math.Inf(1)
	}
	return u
}

// bounds assembles the request's delay windows for m sinks, scaled by
// the radius when normalized.
func (req *SolveRequest) bounds(m int, radius float64) (lubt.Bounds, *httpError) {
	scale := 1.0
	if req.Normalized {
		scale = radius
	}
	var b lubt.Bounds
	switch {
	case req.Lower == nil && req.Upper == nil:
		b = lubt.Uniform(m, req.LowerAll*scale, inf(req.UpperAll)*scale)
	default:
		if req.Lower != nil && len(req.Lower) != m {
			return b, badRequest("lower has %d entries for %d sinks", len(req.Lower), m)
		}
		if req.Upper != nil && len(req.Upper) != m {
			return b, badRequest("upper has %d entries for %d sinks", len(req.Upper), m)
		}
		b = lubt.Uniform(m, 0, math.Inf(1))
		for i := 0; i < m; i++ {
			if req.Lower != nil {
				b.Lower[i] = req.Lower[i] * scale
			}
			if req.Upper != nil {
				b.Upper[i] = inf(req.Upper[i]) * scale
			}
		}
	}
	for i := 0; i < m; i++ {
		l, u := b.Lower[i], b.Upper[i]
		if math.IsNaN(l) || math.IsNaN(u) || math.IsInf(l, 0) {
			return b, badRequest("sink %d window [%g, %g] is not a number", i, l, u)
		}
		if l < 0 || l > u {
			return b, badRequest("sink %d window [%g, %g] is empty or negative", i, l, u)
		}
	}
	return b, nil
}

// window returns the edit's bounds with the wire +inf convention
// applied to the upper limit.
func (e WindowEdit) window() (l, u float64) { return e.Lower, inf(e.Upper) }

// requestKey is the canonical topology key: a hash over the sink
// coordinates (exact float bits), the source, the RESOLVED parent
// vector and the pricing rule. Everything a warm re-solve can absorb —
// delay windows, edge weights — is deliberately excluded; everything
// that would need a fresh engine is included.
func requestKey(sinks []lubt.Point, source *lubt.Point, parent []int, pricing string) string {
	h := sha256.New()
	var buf [8]byte
	wf := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte("lubt-key/1\x00"))
	wi(len(sinks))
	for _, p := range sinks {
		wf(p.X)
		wf(p.Y)
	}
	if source != nil {
		h.Write([]byte{1})
		wf(source.X)
		wf(source.Y)
	} else {
		h.Write([]byte{0})
	}
	wi(len(parent))
	for _, p := range parent {
		wi(p)
	}
	h.Write([]byte(pricing))
	return "t:" + hex.EncodeToString(h.Sum(nil)[:12])
}

// requiredCounters and requiredGauges are the metric names every
// /metrics document must carry; the name set is append-only within
// lubtd-metrics/1 (additions are fine, removals/renames bump the major
// version). docs/API.md documents each name.
var requiredCounters = []string{
	"requests_total", "solve_requests", "eco_requests",
	"cache_hits", "cache_misses", "cache_evictions", "cache_bypass",
	"warm_pivots_total", "cold_pivots_total",
	"solve_errors", "infeasible_total", "restages_total",
}

var requiredGauges = []string{"workers", "inflight", "cache_size", "cache_capacity"}

// ValidateMetricsJSON checks that data is a well-formed lubtd-metrics/1
// document: strict top-level key set, correct schema string, every
// required counter and gauge present, counters non-negative and the
// gauges inside their structural ranges. It backs the ci.sh lubtd-smoke
// gate the way experiments.ValidateBenchJSON backs the bench smoke.
func ValidateMetricsJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("metrics json: %w", err)
	}
	if doc.Schema != obs.MetricsSchema {
		return fmt.Errorf("metrics json: schema %q, want %q", doc.Schema, obs.MetricsSchema)
	}
	for _, name := range requiredCounters {
		v, ok := doc.Counters[name]
		if !ok {
			return fmt.Errorf("metrics json: missing counter %q", name)
		}
		if v < 0 {
			return fmt.Errorf("metrics json: counter %q = %d is negative", name, v)
		}
	}
	for _, name := range requiredGauges {
		if _, ok := doc.Gauges[name]; !ok {
			return fmt.Errorf("metrics json: missing gauge %q", name)
		}
	}
	if doc.Gauges["workers"] < 1 {
		return fmt.Errorf("metrics json: workers gauge = %d, want ≥ 1", doc.Gauges["workers"])
	}
	if doc.Gauges["cache_capacity"] < 1 {
		return fmt.Errorf("metrics json: cache_capacity gauge = %d, want ≥ 1", doc.Gauges["cache_capacity"])
	}
	if doc.Gauges["inflight"] < 0 || doc.Gauges["cache_size"] < 0 {
		return fmt.Errorf("metrics json: negative inflight/cache_size gauge")
	}
	if doc.Gauges["cache_size"] > doc.Gauges["cache_capacity"] {
		return fmt.Errorf("metrics json: cache_size %d exceeds cache_capacity %d",
			doc.Gauges["cache_size"], doc.Gauges["cache_capacity"])
	}
	return nil
}
