package serve

import (
	"container/list"
	"sync"

	"lubt"
	"lubt/internal/obs"
)

// entry is one cached warm session. The entry mutex serializes ALL use
// of the session — a lubt.Solved (and the core.Session under it) is
// single-threaded by contract, so every warm re-solve, edit, and the
// final Close hold e.mu for their whole duration. Concurrent requests
// on one topology key therefore queue on e.mu and re-solve one after
// another, each warm from the basis the previous one left behind.
type entry struct {
	key  string
	elem *list.Element

	mu     sync.Mutex
	solved *lubt.Solved
	// weights is the per-edge weight vector the session currently
	// prices (nil = unit weights); diffed against each request so only
	// changed edges are restaged.
	weights []float64
	// coldPivots is the session's original cold-solve pivot count — the
	// denominator of every warm/cold amortization report.
	coldPivots int
	radius     float64
	// closed marks an evicted (or failed) entry: the session is gone
	// and the entry must not be used. Requests that raced the eviction
	// fall back to an uncached cold solve.
	closed bool
}

// closeLocked releases the entry's session. Caller holds e.mu.
func (e *entry) closeLocked() {
	if e.closed {
		return
	}
	e.closed = true
	if e.solved != nil {
		_ = e.solved.Close()
		e.solved = nil
	}
}

// cache is the keyed warm-basis session cache: an LRU map from
// canonical topology key to a held-open lubt.Solved. Lock order is
// strictly cache.mu → nothing (the global lock never waits on an entry
// lock; victims are closed after it is released), while entry.mu may
// take cache.mu (remove on a failed solve) — so the two never deadlock.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	order   *list.List // front = most recently used
	metrics *obs.Metrics
}

func newCache(capacity int, m *obs.Metrics) *cache {
	if capacity < 1 {
		capacity = 1
	}
	m.SetGauge("cache_capacity", int64(capacity))
	m.SetGauge("cache_size", 0)
	return &cache{
		cap:     capacity,
		entries: map[string]*entry{},
		order:   list.New(),
		metrics: m,
	}
}

// acquire returns the entry for key, creating a pending one on first
// sight, and reports whether the key was already present. The caller
// must lock entry.mu before touching the session; a pending entry
// (solved == nil) means the caller owns the cold solve. Creating an
// entry may evict least-recently-used sessions beyond capacity; those
// are closed here, after the global lock is released (an evicted
// session that is mid-solve is closed as soon as its request finishes).
func (c *cache) acquire(key string) (e *entry, found bool) {
	var victims []*entry
	c.mu.Lock()
	if e, found = c.entries[key]; found {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		return e, true
	}
	e = &entry{key: key}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	for c.order.Len() > c.cap {
		back := c.order.Back()
		v := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, v.key)
		victims = append(victims, v)
	}
	c.metrics.SetGauge("cache_size", int64(c.order.Len()))
	c.mu.Unlock()
	for _, v := range victims {
		v.mu.Lock()
		v.closeLocked()
		v.mu.Unlock()
		c.metrics.Inc("cache_evictions")
	}
	return e, false
}

// lookup returns the entry for key without creating one, refreshing its
// LRU position on a hit.
func (c *cache) lookup(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(e.elem)
	return e
}

// remove drops the entry from the index (idempotent — the entry may
// already have been evicted). The caller holds e.mu and is responsible
// for closeLocked.
func (c *cache) remove(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.entries[e.key]; ok && cur == e {
		delete(c.entries, e.key)
		c.order.Remove(e.elem)
		c.metrics.SetGauge("cache_size", int64(c.order.Len()))
	}
}

// len reports the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// closeAll drains the cache, closing every session — the shutdown path.
// In-use entries are closed as their requests finish (closeLocked waits
// on each entry's mutex).
func (c *cache) closeAll() {
	c.mu.Lock()
	all := make([]*entry, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*entry))
	}
	c.entries = map[string]*entry{}
	c.order.Init()
	c.metrics.SetGauge("cache_size", 0)
	c.mu.Unlock()
	for _, e := range all {
		e.mu.Lock()
		e.closeLocked()
		e.mu.Unlock()
	}
}
