package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"lubt/internal/experiments"
	"lubt/internal/wkld"
)

// treeWire is the slice of TreeJSON the tests need (lubt.Tree has no
// UnmarshalJSON; responses decode into this instead).
type treeWire struct {
	NumSinks   int       `json:"num_sinks"`
	Parent     []int     `json:"parent"`
	SinkDelays []float64 `json:"sink_delays"`
	Cost       float64   `json:"cost"`
	MaxDelay   float64   `json:"max_delay"`
}

type solveWire struct {
	Key        string          `json:"key"`
	Cache      string          `json:"cache"`
	Pivots     int             `json:"pivots"`
	ColdPivots int             `json:"cold_pivots"`
	Rounds     int             `json:"rounds"`
	Restages   int             `json:"restages"`
	Cost       float64         `json:"cost"`
	Radius     float64         `json:"radius"`
	Tree       *treeWire       `json:"tree"`
	Trace      json.RawMessage `json:"trace"`
}

type errorWire struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal %s body: %v", path, err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func decodeSolve(t *testing.T, rr *httptest.ResponseRecorder) solveWire {
	t.Helper()
	if rr.Code != 200 {
		t.Fatalf("status %d, body %s", rr.Code, rr.Body.String())
	}
	var out solveWire
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("decoding solve response: %v", err)
	}
	return out
}

func decodeError(t *testing.T, body io.Reader, status, wantStatus int, wantCode string) errorWire {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status %d, want %d", status, wantStatus)
	}
	var out errorWire
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		t.Fatalf("decoding error response: %v", err)
	}
	if out.Error != wantCode {
		t.Fatalf("error code %q, want %q (detail: %s)", out.Error, wantCode, out.Detail)
	}
	return out
}

// solveReq builds a uniform-window request for a workload benchmark.
func solveReq(b *wkld.Benchmark, lower, upper float64) *SolveRequest {
	sinks := make([]PointJSON, len(b.Sinks))
	for i, p := range b.Sinks {
		sinks[i] = PointJSON{X: p.X, Y: p.Y}
	}
	src := PointJSON{X: b.Source.X, Y: b.Source.Y}
	return &SolveRequest{Sinks: sinks, Source: &src, LowerAll: lower, UpperAll: upper}
}

// coldBaseline runs an unconstrained bypass solve and returns the tight
// window the EngineStats methodology uses (0.1·radius below max delay).
func coldBaseline(t *testing.T, srv *Server, b *wkld.Benchmark) (l, u, radius float64) {
	t.Helper()
	req := solveReq(b, 0, 0)
	req.Cold = true
	resp := decodeSolve(t, postJSON(t, srv, "/solve", req))
	if resp.Cache != "bypass" {
		t.Fatalf("cold baseline served %q, want bypass", resp.Cache)
	}
	u = resp.Tree.MaxDelay
	l = math.Max(0, u-0.1*resp.Radius)
	return l, u, resp.Radius
}

func TestHealthz(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil || body["status"] != "ok" {
		t.Fatalf("body %s (err %v)", rr.Body.String(), err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	cases := []struct{ method, path, allow string }{
		{http.MethodGet, "/solve", "POST"},
		{http.MethodGet, "/eco", "POST"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodDelete, "/healthz", "GET"},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.path, nil)
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, req)
		decodeError(t, rr.Body, rr.Code, 405, "method_not_allowed")
		if got := rr.Header().Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestSolveBadRequests(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("bad8", 8, 1)
	post := func(body any) *httptest.ResponseRecorder { return postJSON(t, srv, "/solve", body) }

	t.Run("unknown field", func(t *testing.T) {
		rr := post(map[string]any{"sinks": []PointJSON{{X: 1, Y: 1}}, "lowerr": 3})
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
	t.Run("no sinks", func(t *testing.T) {
		rr := post(&SolveRequest{})
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
	t.Run("empty window", func(t *testing.T) {
		req := solveReq(b, 5000, 10) // lower > upper
		rr := post(req)
		decodeError(t, rr.Body, rr.Code, 422, "bad_window")
	})
	t.Run("nan window", func(t *testing.T) {
		// JSON cannot carry a NaN literal, but a normalized request over a
		// degenerate zero-radius instance produces one below the decoder
		// (+Inf upper × 0 radius); bounds() must reject it as 422.
		req := solveReq(b, 0, 0)
		req.Lower = []float64{math.NaN()}
		req.Upper = []float64{9000}
		if _, herr := req.bounds(1, 0); herr == nil {
			t.Fatal("NaN lower accepted")
		} else if herr.status != 422 || herr.code != "bad_window" {
			t.Fatalf("NaN lower: got %d %q, want 422 bad_window", herr.status, herr.code)
		}
		nan := &SolveRequest{Normalized: true, UpperAll: math.NaN()}
		if _, herr := nan.bounds(1, 1); herr == nil {
			t.Fatal("NaN upper accepted")
		} else if herr.status != 422 || herr.code != "bad_window" {
			t.Fatalf("NaN upper: got %d %q, want 422 bad_window", herr.status, herr.code)
		}
	})
	t.Run("window length", func(t *testing.T) {
		req := solveReq(b, 0, 0)
		req.Lower = []float64{1, 2, 3} // 8 sinks
		rr := post(req)
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
	t.Run("unknown topology", func(t *testing.T) {
		req := solveReq(b, 0, 0)
		req.Topology = &TopologySpec{Type: "hilbert"}
		rr := post(req)
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
	t.Run("unknown pricing", func(t *testing.T) {
		req := solveReq(b, 0, 0)
		req.Pricing = "bland"
		rr := post(req)
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
	t.Run("weights length", func(t *testing.T) {
		req := solveReq(b, 0, 0)
		req.Weights = []float64{1}
		rr := post(req)
		decodeError(t, rr.Body, rr.Code, 400, "bad_request")
	})
}

func TestEcoUnknownKey(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	rr := postJSON(t, srv, "/eco", &EcoRequest{Key: "t:deadbeef"})
	decodeError(t, rr.Body, rr.Code, 404, "unknown_key")
	rr = postJSON(t, srv, "/eco", &EcoRequest{})
	decodeError(t, rr.Body, rr.Code, 400, "bad_request")
}

// TestSolveInfeasible pins the 422 mapping on a genuinely infeasible
// instance: a Fig. 1-style chain topology where a non-leaf sink must
// arrive exactly at the radius, forcing its child past it.
func TestSolveInfeasible(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	req := &SolveRequest{
		Sinks:      []PointJSON{{X: 10, Y: 0}, {X: 20, Y: 0}},
		Source:     &PointJSON{X: 0, Y: 0},
		Topology:   &TopologySpec{Type: "custom", Parent: []int{-1, 0, 1}},
		Normalized: true,
		LowerAll:   1, UpperAll: 1, // every sink exactly at the radius
	}
	rr := postJSON(t, srv, "/solve", req)
	decodeError(t, rr.Body, rr.Code, 422, "infeasible")
	if got := srv.Metrics().Counter("infeasible_total"); got != 1 {
		t.Fatalf("infeasible_total = %d, want 1", got)
	}
	// A failed cold solve must not park a dead entry in the cache.
	if n := srv.CacheLen(); n != 0 {
		t.Fatalf("cache holds %d entries after an infeasible cold solve, want 0", n)
	}
}

// TestServeWarmEndToEnd is the tentpole acceptance test, over a real
// HTTP round trip: a cold solve on prim1-s followed by an /eco retighten
// on the same key must be served from the warm session in under 25% of
// the cold pivot count (the WarmPivotDivisor budget shared with the
// lubtbench ECO gate), with the cache counters to prove where each
// request was served from.
func TestServeWarmEndToEnd(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	httpPost := func(path string, body any) *http.Response {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	decode := func(resp *http.Response) solveWire {
		t.Helper()
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d, body %s", resp.StatusCode, body)
		}
		var out solveWire
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return out
	}

	b := wkld.MustGenerate("prim1-s")
	// Unconstrained bypass to learn the window, as in EngineStats.
	base := solveReq(b, 0, 0)
	base.Cold = true
	baseResp := decode(httpPost("/solve", base))
	radius := baseResp.Radius
	u := baseResp.Tree.MaxDelay
	l := math.Max(0, u-0.1*radius)

	cold := decode(httpPost("/solve", solveReq(b, l, u)))
	if cold.Cache != "miss" {
		t.Fatalf("first keyed solve served %q, want miss", cold.Cache)
	}
	if cold.Pivots != cold.ColdPivots || cold.Pivots <= 0 {
		t.Fatalf("miss pivots %d / cold %d, want equal and positive", cold.Pivots, cold.ColdPivots)
	}

	// Retighten sink 0 past its routed delay — the lubtbench ECO probe,
	// through the service.
	newL := cold.Tree.SinkDelays[0] + 0.05*radius
	warm := decode(httpPost("/eco", &EcoRequest{
		Key:       cold.Key,
		Retighten: []WindowEdit{{Sink: 0, Lower: newL, Upper: math.Max(u, newL)}},
	}))
	if warm.Cache != "hit" {
		t.Fatalf("eco served %q, want hit", warm.Cache)
	}
	if warm.Restages != 1 {
		t.Fatalf("eco applied %d restages, want 1", warm.Restages)
	}
	if warm.ColdPivots != cold.Pivots {
		t.Fatalf("eco cold_pivots %d, want the miss's %d", warm.ColdPivots, cold.Pivots)
	}
	if err := experiments.CheckWarmPivots("serve e2e: prim1-s", warm.Pivots, warm.ColdPivots); err != nil {
		t.Fatal(err)
	}

	// The metrics document must validate and tell the same story.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	doc, _ := io.ReadAll(mresp.Body)
	if err := ValidateMetricsJSON(doc); err != nil {
		t.Fatal(err)
	}
	m := srv.Metrics()
	if hits, misses, bypass := m.Counter("cache_hits"), m.Counter("cache_misses"), m.Counter("cache_bypass"); hits != 1 || misses != 1 || bypass != 1 {
		t.Fatalf("cache_hits=%d cache_misses=%d cache_bypass=%d, want 1/1/1", hits, misses, bypass)
	}
	if warmTotal, coldTotal := m.Counter("warm_pivots_total"), m.Counter("cold_pivots_total"); warmTotal != int64(warm.Pivots) || coldTotal < int64(cold.Pivots) {
		t.Fatalf("warm_pivots_total=%d cold_pivots_total=%d, want %d and ≥ %d",
			warmTotal, coldTotal, warm.Pivots, cold.Pivots)
	}

	// The solve-latency and pivot histograms must be populated, split by
	// outcome: two cold requests (bypass + miss) and one warm /eco.
	if got := m.Histogram("solve_seconds_cold").Count(); got != 2 {
		t.Errorf("solve_seconds_cold count = %d, want 2", got)
	}
	if got := m.Histogram("solve_pivots_cold").Count(); got != 2 {
		t.Errorf("solve_pivots_cold count = %d, want 2", got)
	}
	if got := m.Histogram("solve_seconds_warm_eco").Count(); got != 1 {
		t.Errorf("solve_seconds_warm_eco count = %d, want 1", got)
	}
	if got := m.Histogram("solve_pivots_warm_eco").Quantile(1); got != float64(warm.Pivots) {
		t.Errorf("warm_eco pivot max = %v, want %d", got, warm.Pivots)
	}
	if got := m.Histogram("restages_warm_eco").Sum(); got != 1 {
		t.Errorf("restages_warm_eco sum = %v, want 1", got)
	}
	if got := m.Histogram("queue_wait_seconds").Count(); got != 3 {
		t.Errorf("queue_wait_seconds count = %d, want 3", got)
	}
	if got := m.Histogram("build_seconds").Count(); got != 2 {
		t.Errorf("build_seconds count = %d, want 2", got)
	}

	// The Prometheus exposition of the same state must validate.
	presp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatalf("GET /metrics?format=prom: %v", err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content type %q", ct)
	}
	prom, _ := io.ReadAll(presp.Body)
	if err := ValidatePromText(prom); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(prom, []byte(`lubtd_solve_seconds_cold_count 2`)) {
		t.Errorf("prom exposition missing cold histogram count:\n%s", prom)
	}

	// The flight recorder must hold all four requests, oldest first.
	fresp, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatalf("GET /debug/flight: %v", err)
	}
	defer fresp.Body.Close()
	flight, _ := io.ReadAll(fresp.Body)
	if err := ValidateFlightJSON(flight); err != nil {
		t.Fatal(err)
	}
	var fdoc struct {
		Entries []struct {
			ID      string `json:"id"`
			Route   string `json:"route"`
			Outcome string `json:"outcome"`
			Status  int    `json:"status"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(flight, &fdoc); err != nil {
		t.Fatal(err)
	}
	if len(fdoc.Entries) != 3 {
		t.Fatalf("flight holds %d entries, want 3", len(fdoc.Entries))
	}
	wantFlights := []struct{ route, outcome string }{
		{"/solve", "cold"}, {"/solve", "cold"}, {"/eco", "warm_eco"},
	}
	for i, want := range wantFlights {
		e := fdoc.Entries[i]
		if e.Route != want.route || e.Outcome != want.outcome || e.Status != 200 || e.ID == "" {
			t.Errorf("flight entry %d = %+v, want %s %s 200", i, e, want.route, want.outcome)
		}
	}
}

// TestSolveWarmHitRestagesWindows covers the /solve warm path: a second
// request on the same key with different windows is diffed and restaged,
// not re-solved cold.
func TestSolveWarmHitRestagesWindows(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("warm24", 24, 7)
	l, u, radius := coldBaseline(t, srv, b)

	cold := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, l, u)))
	if cold.Cache != "miss" {
		t.Fatalf("first keyed solve served %q, want miss", cold.Cache)
	}
	warm := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, math.Max(0, l-0.02*radius), u*1.02)))
	if warm.Cache != "hit" {
		t.Fatalf("second solve served %q, want hit", warm.Cache)
	}
	if warm.Key != cold.Key {
		t.Fatalf("key changed across windows: %s vs %s", warm.Key, cold.Key)
	}
	if warm.Restages == 0 {
		t.Fatal("warm hit with changed windows applied no restages")
	}
	if warm.Pivots >= cold.Pivots && cold.Pivots > 0 {
		t.Fatalf("warm hit took %d pivots, cold took %d — basis not reused", warm.Pivots, cold.Pivots)
	}
}

func TestTraceCapture(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("trace12", 12, 3)
	req := solveReq(b, 0, 0)
	req.Trace = true
	resp := decodeSolve(t, postJSON(t, srv, "/solve", req))
	if len(resp.Trace) == 0 {
		t.Fatal("trace requested but response carries none")
	}
	var trace struct {
		Schema string `json:"schema"`
		Root   struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(resp.Trace, &trace); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	if trace.Schema != "lubt-trace/1" {
		t.Fatalf("trace schema %q", trace.Schema)
	}
	if trace.Root.Name != "serve-solve" {
		t.Fatalf("trace root %q", trace.Root.Name)
	}
	got := map[string]bool{}
	for _, c := range trace.Root.Children {
		got[c.Name] = true
	}
	for _, want := range []string{"queue-wait", "build", "solve"} {
		if !got[want] {
			t.Errorf("trace missing span %q (have %v)", want, trace.Root.Children)
		}
	}
	// Untraced requests must not pay for span capture.
	plain := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, 0, 0)))
	if len(plain.Trace) != 0 {
		t.Fatal("trace emitted without being requested")
	}
}

// TestAPIDocRoutes gates the operator's manual: every route the server
// registers must be documented in docs/API.md.
func TestAPIDocRoutes(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md must exist and document the service: %v", err)
	}
	for _, route := range Routes() {
		if !strings.Contains(string(doc), "`"+route+"`") {
			t.Errorf("docs/API.md does not document route `%s`", route)
		}
	}
	// The metric names are part of the wire contract too.
	names := append(append([]string{}, requiredCounters...), requiredGauges...)
	names = append(names, requiredHistograms...)
	for _, name := range names {
		if !strings.Contains(string(doc), name) {
			t.Errorf("docs/API.md does not document metric %q", name)
		}
	}
}

// TestMetricsJSONFile validates a metrics document captured from a live
// daemon — the ci.sh lubtd smoke sets LUBTD_METRICS_JSON to the file it
// scraped after one cold and one warm request.
func TestMetricsJSONFile(t *testing.T) {
	path := os.Getenv("LUBTD_METRICS_JSON")
	if path == "" {
		t.Skip("LUBTD_METRICS_JSON not set (ci.sh smoke hook)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetricsJSON(data); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	// The smoke sends a solve and a warm eco on the same key; the scrape
	// must show the warm path was actually taken.
	if doc.Counters["cache_hits"] < 1 {
		t.Fatalf("live daemon served no cache hits: %s", data)
	}
	if doc.Counters["cache_misses"] < 1 {
		t.Fatalf("live daemon served no cache misses: %s", data)
	}
}

func TestValidateMetricsJSON(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	var buf bytes.Buffer
	if err := srv.Metrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateMetricsJSON(buf.Bytes()); err != nil {
		t.Fatalf("fresh server metrics must validate: %v", err)
	}
	bad := []struct {
		name string
		doc  string
	}{
		{"schema", `{"schema":"lubtd-metrics/9","counters":{},"gauges":{}}`},
		{"old major version", `{"schema":"lubtd-metrics/1","counters":{},"gauges":{}}`},
		{"missing counter", `{"schema":"lubtd-metrics/2","counters":{},"gauges":{},"histograms":{}}`},
		{"unknown key", `{"schema":"lubtd-metrics/2","counters":{},"gauges":{},"histograms":{},"extra":1}`},
		{"not json", `nope`},
	}
	for _, c := range bad {
		if err := ValidateMetricsJSON([]byte(c.doc)); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

func TestRequestKey(t *testing.T) {
	sinks := []PointJSON{{X: 1, Y: 2}, {X: 3, Y: 4}}
	mk := func(req *SolveRequest) string {
		srv := New(Config{})
		defer srv.Close()
		_, s, src, parent, herr := srv.buildInstance(req)
		if herr != nil {
			t.Fatalf("build: %v", herr)
		}
		return requestKey(s, src, parent, req.Pricing)
	}
	base := mk(&SolveRequest{Sinks: sinks})
	if base == "" || !strings.HasPrefix(base, "t:") {
		t.Fatalf("key %q", base)
	}
	if again := mk(&SolveRequest{Sinks: sinks}); again != base {
		t.Fatalf("key not deterministic: %s vs %s", again, base)
	}
	// Windows and weights are warm-absorbable: same key.
	if k := mk(&SolveRequest{Sinks: sinks, LowerAll: 10, UpperAll: 500, Weights: []float64{0, 2, 2}}); k != base {
		t.Fatalf("windows/weights changed the key: %s vs %s", k, base)
	}
	// Geometry, topology and pricing are structural: different keys.
	if k := mk(&SolveRequest{Sinks: []PointJSON{{X: 1, Y: 2}, {X: 3, Y: 5}}}); k == base {
		t.Fatal("moved sink kept the key")
	}
	if k := mk(&SolveRequest{Sinks: sinks, Source: &PointJSON{X: 9, Y: 9}}); k == base {
		t.Fatal("moved source kept the key")
	}
	// The key hashes the RESOLVED topology, not the generator name: on
	// two sinks both generators give the same star and must share a key...
	if k := mk(&SolveRequest{Sinks: sinks, Topology: &TopologySpec{Type: "balanced"}}); k != base {
		t.Fatal("identical resolved topologies got different keys")
	}
	// ...while an explicitly different parent vector gets its own key.
	chain := mk(&SolveRequest{Sinks: sinks, Topology: &TopologySpec{Type: "custom", Parent: []int{-1, 0, 1}}})
	if chain == base {
		t.Fatal("different resolved topology kept the key")
	}
	if k := mk(&SolveRequest{Sinks: sinks, Pricing: "steepest"}); k == base {
		t.Fatal("different pricing kept the key")
	}
}

// TestMetricsFormats covers the /metrics format switch: default JSON,
// format=prom text exposition, anything else a 400.
func TestMetricsFormats(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
		return rr
	}
	rr := get("/metrics")
	if rr.Code != 200 || !strings.HasPrefix(rr.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("JSON view: status %d, content type %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	if err := ValidateMetricsJSON(rr.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	rr = get("/metrics?format=prom")
	if rr.Code != 200 || !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("prom view: status %d, content type %q", rr.Code, rr.Header().Get("Content-Type"))
	}
	if err := ValidatePromText(rr.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	rr = get("/metrics?format=xml")
	decodeError(t, rr.Body, rr.Code, 400, "bad_request")
}

// TestFlightRingBound: with a small configured ring, the /debug/flight
// view holds only the last N requests and reports the overflow.
func TestFlightRingBound(t *testing.T) {
	srv := New(Config{FlightSize: 2})
	defer srv.Close()
	b := wkld.Custom("flight6", 6, 2)
	for i := 0; i < 3; i++ {
		req := solveReq(b, 0, 0)
		req.Cold = true
		decodeSolve(t, postJSON(t, srv, "/solve", req))
	}
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/flight", nil))
	if err := ValidateFlightJSON(rr.Body.Bytes()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int    `json:"capacity"`
		Dropped  uint64 `json:"dropped"`
		Entries  []struct {
			ID string `json:"id"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Capacity != 2 || doc.Dropped != 1 || len(doc.Entries) != 2 {
		t.Fatalf("capacity=%d dropped=%d entries=%d, want 2/1/2",
			doc.Capacity, doc.Dropped, len(doc.Entries))
	}
	if doc.Entries[0].ID != "r000002" || doc.Entries[1].ID != "r000003" {
		t.Fatalf("ring kept %s, %s — want the last two requests",
			doc.Entries[0].ID, doc.Entries[1].ID)
	}
}

// TestPprofGating: /debug/pprof/ is mounted only when EnablePprof is
// set.
func TestPprofGating(t *testing.T) {
	off := New(Config{})
	defer off.Close()
	rr := httptest.NewRecorder()
	off.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rr.Code != 404 {
		t.Fatalf("pprof disabled: status %d, want 404", rr.Code)
	}

	on := New(Config{EnablePprof: true})
	defer on.Close()
	rr = httptest.NewRecorder()
	on.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "goroutine") {
		t.Fatalf("pprof enabled: status %d, body %.120s", rr.Code, rr.Body.String())
	}
	rr = httptest.NewRecorder()
	on.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rr.Code != 200 {
		t.Fatalf("pprof cmdline: status %d", rr.Code)
	}
}

// TestAccessLogAndSlowSolve: every solver request writes an access-log
// line whose id matches the X-Request-Id header, and a request over the
// SlowSolve budget adds a Warn line carrying the full span tree.
func TestAccessLogAndSlowSolve(t *testing.T) {
	var logBuf bytes.Buffer
	srv := New(Config{
		SlowSolve: time.Nanosecond, // everything is over budget
		Logger:    slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	defer srv.Close()
	b := wkld.Custom("slow8", 8, 4)
	req := solveReq(b, 0, 0)
	req.Cold = true
	rr := postJSON(t, srv, "/solve", req)
	decodeSolve(t, rr)
	reqID := rr.Header().Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("no X-Request-Id header on a solver response")
	}

	var access, slow map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		switch rec["msg"] {
		case "request":
			access = rec
		case "slow solve":
			slow = rec
		}
	}
	if access == nil {
		t.Fatal("no access-log line written")
	}
	if access["id"] != reqID || access["route"] != "/solve" ||
		access["outcome"] != "cold" || access["status"] != 200.0 {
		t.Fatalf("access log fields wrong: %v", access)
	}
	if slow == nil {
		t.Fatal("no slow-solve line written")
	}
	if slow["id"] != reqID {
		t.Fatalf("slow-solve id %v, want %s", slow["id"], reqID)
	}
	traceStr, _ := slow["trace"].(string)
	var trace struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal([]byte(traceStr), &trace); err != nil || trace.Schema != "lubt-trace/1" {
		t.Fatalf("slow-solve trace not a lubt-trace/1 document: %v (%.120s)", err, traceStr)
	}
}

// TestValidatePromText covers the validator's rejection paths with
// hand-built bad expositions.
func TestValidatePromText(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	var good bytes.Buffer
	if err := srv.Metrics().WriteProm(&good); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePromText(good.Bytes()); err != nil {
		t.Fatalf("fresh server exposition must validate: %v", err)
	}
	text := good.String()
	bad := []struct {
		name string
		doc  string
	}{
		{"empty", ""},
		{"no value", text + "lubtd_orphan\n"},
		{"non-monotone bucket", strings.Replace(text,
			`lubtd_queue_wait_seconds_bucket{le="+Inf"} 0`,
			"lubtd_queue_wait_seconds_bucket{le=\"0.5\"} 5\nlubtd_queue_wait_seconds_bucket{le=\"1\"} 3\nlubtd_queue_wait_seconds_bucket{le=\"+Inf\"} 3", 1)},
		{"count mismatch", strings.Replace(text, "lubtd_queue_wait_seconds_count 0", "lubtd_queue_wait_seconds_count 9", 1)},
		{"missing histogram", strings.ReplaceAll(text, "lubtd_build_seconds", "lubtd_other_seconds")},
	}
	for _, c := range bad {
		if err := ValidatePromText([]byte(c.doc)); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

// TestValidateFlightJSON covers the flight validator's rejection paths.
func TestValidateFlightJSON(t *testing.T) {
	bad := []struct {
		name string
		doc  string
	}{
		{"schema", `{"schema":"lubtd-flight/9","capacity":2,"dropped":0,"entries":[]}`},
		{"unknown key", `{"schema":"lubtd-flight/1","capacity":2,"dropped":0,"entries":[],"x":1}`},
		{"over capacity", `{"schema":"lubtd-flight/1","capacity":1,"dropped":0,"entries":[
			{"id":"a","route":"/solve","outcome":"cold","status":200,"start_unix_us":1,"dur_us":1},
			{"id":"b","route":"/solve","outcome":"cold","status":200,"start_unix_us":2,"dur_us":1}]}`},
		{"bad route", `{"schema":"lubtd-flight/1","capacity":2,"dropped":0,"entries":[
			{"id":"a","route":"/metrics","outcome":"cold","status":200,"start_unix_us":1,"dur_us":1}]}`},
		{"bad outcome", `{"schema":"lubtd-flight/1","capacity":2,"dropped":0,"entries":[
			{"id":"a","route":"/solve","outcome":"tepid","status":200,"start_unix_us":1,"dur_us":1}]}`},
		{"not json", `nope`},
	}
	for _, c := range bad {
		if err := ValidateFlightJSON([]byte(c.doc)); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

// TestPromTextFile validates a Prometheus exposition captured from a
// live daemon — the ci.sh lubtd smoke sets LUBTD_PROM_TEXT to the file
// it scraped after the warm /eco call.
func TestPromTextFile(t *testing.T) {
	path := os.Getenv("LUBTD_PROM_TEXT")
	if path == "" {
		t.Skip("LUBTD_PROM_TEXT not set (ci.sh smoke hook)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePromText(data); err != nil {
		t.Fatal(err)
	}
	// The smoke's cold solve and warm eco must show up in the histograms.
	for _, want := range []string{
		"lubtd_solve_seconds_cold_count 1",
		"lubtd_solve_seconds_warm_eco_count 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("live exposition missing %q", want)
		}
	}
}

// TestFlightJSONFile validates a flight dump captured from a live
// daemon — the ci.sh lubtd smoke sets LUBTD_FLIGHT_JSON to the file it
// scraped after the warm /eco call; the ring must hold both requests.
func TestFlightJSONFile(t *testing.T) {
	path := os.Getenv("LUBTD_FLIGHT_JSON")
	if path == "" {
		t.Skip("LUBTD_FLIGHT_JSON not set (ci.sh smoke hook)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightJSON(data); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Entries []struct {
			Route   string `json:"route"`
			Outcome string `json:"outcome"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	routes := map[string]bool{}
	for _, e := range doc.Entries {
		routes[e.Route+":"+e.Outcome] = true
	}
	if !routes["/solve:cold"] || !routes["/eco:warm_eco"] {
		t.Fatalf("flight ring missing the smoke's requests: %s", data)
	}
}

func TestQueueOverload(t *testing.T) {
	// A request whose client disappears while queued is dropped with 503;
	// exercised via a pre-canceled context rather than actual saturation.
	srv := New(Config{Workers: 1})
	defer srv.Close()
	srv.sem <- struct{}{} // occupy the only worker slot
	defer func() { <-srv.sem }()
	b := wkld.Custom("q4", 4, 1)
	buf, _ := json.Marshal(solveReq(b, 0, 0))
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(buf))
	ctx, cancel := context.WithCancel(req.Context())
	cancel()
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req.WithContext(ctx))
	decodeError(t, rr.Body, rr.Code, 503, "unavailable")
}

// TestEcoBadWindow pins the /eco half of the window validation: a
// malformed retighten window (lower above a finite upper) must be
// rejected as 422 bad_window at request decoding — before it reaches
// the cached warm engine — and the session must stay usable afterwards.
func TestEcoBadWindow(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("badwin16", 16, 3)
	l, u, _ := coldBaseline(t, srv, b)
	cold := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, l, u)))
	if cold.Cache != "miss" {
		t.Fatalf("first keyed solve served %q, want miss", cold.Cache)
	}
	rr := postJSON(t, srv, "/eco", &EcoRequest{
		Key:       cold.Key,
		Retighten: []WindowEdit{{Sink: 1, Lower: u, Upper: 0.25 * u}},
	})
	decodeError(t, rr.Body, rr.Code, 422, "bad_window")
	again := decodeSolve(t, postJSON(t, srv, "/eco", &EcoRequest{Key: cold.Key}))
	if again.Cache != "hit" {
		t.Fatalf("session unusable after rejected window: served %q", again.Cache)
	}
}
