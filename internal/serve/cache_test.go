package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"lubt/internal/wkld"
)

// TestWarmHitMatchesColdObjective pins the cache's correctness contract:
// a warm re-solve on a cached basis must land on the same objective as a
// fresh cold solve of the same windows — the warm path is an
// optimization, never an approximation.
func TestWarmHitMatchesColdObjective(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("obj24", 24, 11)
	l, u, radius := coldBaseline(t, srv, b)

	// Seed the cache at window 1, then hit it at window 2.
	if resp := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, l, u))); resp.Cache != "miss" {
		t.Fatalf("seed served %q, want miss", resp.Cache)
	}
	l2, u2 := math.Max(0, l-0.03*radius), u*1.03
	warm := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, l2, u2)))
	if warm.Cache != "hit" {
		t.Fatalf("second window served %q, want hit", warm.Cache)
	}

	// Fresh cold solve of window 2, bypassing the cache.
	req := solveReq(b, l2, u2)
	req.Cold = true
	cold := decodeSolve(t, postJSON(t, srv, "/solve", req))
	if cold.Cache != "bypass" {
		t.Fatalf("control served %q, want bypass", cold.Cache)
	}
	if tol := 1e-6 * radius; math.Abs(warm.Cost-cold.Cost) > tol {
		t.Fatalf("warm objective %.9g vs cold %.9g differs by more than %g",
			warm.Cost, cold.Cost, tol)
	}
}

// TestConcurrentSameKeySerializes drives one topology key from many
// goroutines under the race detector: the entry mutex must serialize all
// session use, every request must succeed, and the counters must show
// one cold fill plus N warm hits.
func TestConcurrentSameKeySerializes(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("race20", 20, 5)
	l, u, radius := coldBaseline(t, srv, b)
	if resp := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, l, u))); resp.Cache != "miss" {
		t.Fatalf("seed served %q, want miss", resp.Cache)
	}

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine asks for its own window so every hit restages.
			ui := u * (1 + 0.01*float64(i+1))
			li := math.Max(0, ui-0.12*radius)
			body, err := json.Marshal(solveReq(b, li, ui))
			if err != nil {
				errs <- err
				return
			}
			req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(body))
			rr := httptest.NewRecorder()
			srv.ServeHTTP(rr, req)
			if rr.Code != 200 {
				errs <- fmt.Errorf("status %d: %s", rr.Code, rr.Body.String())
				return
			}
			var resp solveWire
			if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			if resp.Cache != "hit" {
				errs <- fmt.Errorf("served %q, want hit", resp.Cache)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	m := srv.Metrics()
	if misses, hits := m.Counter("cache_misses"), m.Counter("cache_hits"); misses != 1 || hits != n {
		t.Fatalf("cache_misses=%d cache_hits=%d, want 1 and %d", misses, hits, n)
	}
	if srv.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", srv.CacheLen())
	}
}

// TestEvictionClosesSession fills a capacity-1 cache past its bound and
// checks the LRU victim's session is actually closed (white-box) and its
// key no longer serves /eco.
func TestEvictionClosesSession(t *testing.T) {
	srv := New(Config{CacheSize: 1})
	defer srv.Close()
	bA := wkld.Custom("evictA", 12, 2)
	bB := wkld.Custom("evictB", 12, 3)

	respA := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(bA, 0, 0)))
	if respA.Cache != "miss" {
		t.Fatalf("A served %q, want miss", respA.Cache)
	}
	victim := srv.cache.lookup(respA.Key)
	if victim == nil {
		t.Fatal("entry A not in cache after a miss")
	}

	respB := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(bB, 0, 0)))
	if respB.Cache != "miss" {
		t.Fatalf("B served %q, want miss", respB.Cache)
	}
	if respB.Key == respA.Key {
		t.Fatal("distinct instances mapped to one key")
	}

	m := srv.Metrics()
	if got := m.Counter("cache_evictions"); got != 1 {
		t.Fatalf("cache_evictions = %d, want 1", got)
	}
	if srv.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", srv.CacheLen())
	}
	if got := m.Gauge("cache_size"); got != 1 {
		t.Fatalf("cache_size gauge = %d, want 1", got)
	}
	victim.mu.Lock()
	closed, gone := victim.closed, victim.solved == nil
	victim.mu.Unlock()
	if !closed || !gone {
		t.Fatalf("evicted entry closed=%v solved-nil=%v, want both true", closed, gone)
	}
	// The evicted key is off the warm path.
	rr := postJSON(t, srv, "/eco", &EcoRequest{Key: respA.Key})
	decodeError(t, rr.Body, rr.Code, 404, "unknown_key")
	// The survivor still serves warm hits.
	if resp := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(bB, 0, 0))); resp.Cache != "hit" {
		t.Fatalf("survivor served %q, want hit", resp.Cache)
	}
}

// TestEcoReweightUpdatesBookkeeping checks that /eco weight edits keep
// the entry's weight vector in sync, so a later /solve hit on the same
// key diffs against the session's true state.
func TestEcoReweightUpdatesBookkeeping(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	b := wkld.Custom("rw16", 16, 9)
	resp := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, 0, 0)))
	if resp.Cache != "miss" {
		t.Fatalf("seed served %q, want miss", resp.Cache)
	}
	edge := 1
	warm := decodeSolve(t, postJSON(t, srv, "/eco", &EcoRequest{
		Key:      resp.Key,
		Reweight: []WeightEdit{{Edge: edge, Weight: 3}},
	}))
	if warm.Cache != "hit" || warm.Restages != 1 {
		t.Fatalf("eco reweight: cache %q restages %d", warm.Cache, warm.Restages)
	}
	e := srv.cache.lookup(resp.Key)
	e.mu.Lock()
	got := e.weights[edge]
	e.mu.Unlock()
	if got != 3 {
		t.Fatalf("entry weight bookkeeping = %g, want 3", got)
	}
	// A /solve hit with unit weights must now restage the edge back.
	again := decodeSolve(t, postJSON(t, srv, "/solve", solveReq(b, 0, 0)))
	if again.Cache != "hit" || again.Restages != 1 {
		t.Fatalf("unit-weight hit: cache %q restages %d, want hit/1", again.Cache, again.Restages)
	}
}
