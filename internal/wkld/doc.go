// Package wkld provides the benchmark workloads of the paper's evaluation:
// prim1/prim2 (Jackson-Srinivasan-Kuh, MCNC) and r1–r5 (Tsay). The
// original sink coordinates are not distributable and are unavailable
// offline, so — per the substitution policy in DESIGN.md — this package
// generates deterministic synthetic stand-ins with the published sink
// counts, uniformly placed over a square die. Every generator is seeded by
// the benchmark name, so all tables and tests see identical instances
// across runs and machines.
//
// Scaled-down variants (suffix "-s", about a quarter of the sinks) keep
// default test and benchmark wall times small; the full-size instances are
// selected by the harness when LUBT_FULL=1.
package wkld
