package wkld

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateKnownNames(t *testing.T) {
	for _, name := range Names() {
		b, err := Generate(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(b.Sinks) != sinkCounts[name] {
			t.Errorf("%s: %d sinks, want %d", name, len(b.Sinks), sinkCounts[name])
		}
		for _, s := range b.Sinks {
			if s.X < 0 || s.X > Die || s.Y < 0 || s.Y > Die {
				t.Fatalf("%s: sink %v outside die", name, s)
			}
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	b, err := Generate("prim1-s")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sinks) != 269/4 {
		t.Errorf("prim1-s has %d sinks, want %d", len(b.Sinks), 269/4)
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("r1")
	b := MustGenerate("r1")
	for i := range a.Sinks {
		if a.Sinks[i] != b.Sinks[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c := MustGenerate("r2")
	same := true
	for i := range c.Sinks[:len(a.Sinks)] {
		if i < len(a.Sinks) && a.Sinks[i] != c.Sinks[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different benchmarks produced identical prefixes")
	}
}

func TestCustom(t *testing.T) {
	b := Custom("mine", 42, 7)
	if len(b.Sinks) != 42 || b.Name != "mine" {
		t.Fatalf("Custom: %d sinks name %q", len(b.Sinks), b.Name)
	}
	if Custom("mine", 42, 7).Sinks[3] != b.Sinks[3] {
		t.Error("Custom not deterministic")
	}
	if Custom("mine", 42, 8).Sinks[3] == b.Sinks[3] {
		t.Error("seed ignored")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := MustGenerate("prim1-s")
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || len(got.Sinks) != len(b.Sinks) || got.Source != b.Source {
		t.Fatalf("round trip mismatch: %q %d sinks", got.Name, len(got.Sinks))
	}
	for i := range b.Sinks {
		if got.Sinks[i] != b.Sinks[i] {
			t.Fatalf("sink %d: %v vs %v", i, got.Sinks[i], b.Sinks[i])
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                // no sinks
		"source 1\n1 2\n", // malformed source
		"1 2 3\n",         // too many fields
		"a b\n",           // not numbers
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadTolerant(t *testing.T) {
	in := "# myname\n\n  \nsource 5 5\n1 2\n3 4\n"
	b, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "myname" || len(b.Sinks) != 2 || b.Source.X != 5 {
		t.Fatalf("parsed %+v", b)
	}
}
