package wkld

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"lubt/internal/geom"
)

// Die is the synthetic die side length in routing units.
const Die = 10000.0

// published sink counts of the original benchmarks; r6/r7 are synthetic
// scale-up classes (one and two orders of magnitude past r4) for the
// presolve + decomposition path — no published counterpart exists, so
// round counts are used.
var sinkCounts = map[string]int{
	"prim1": 269,
	"prim2": 603,
	"r1":    267,
	"r2":    598,
	"r3":    862,
	"r4":    1903,
	"r5":    3101,
	"r6":    10000,
	"r7":    100000,
}

// Benchmark is one workload instance.
type Benchmark struct {
	Name  string
	Sinks []geom.Point
	// Source is the synthetic clock entry point (die edge midpoint, the
	// usual pad position); the LUBT tables use it only where a fixed
	// source is wanted.
	Source geom.Point
}

// Names returns the available full-size benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(sinkCounts))
	for n := range sinkCounts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Generate builds the named benchmark. A "-s" suffix selects the scaled
// variant (¼ of the sinks, minimum 16).
func Generate(name string) (*Benchmark, error) {
	base := strings.TrimSuffix(name, "-s")
	count, ok := sinkCounts[base]
	if !ok {
		return nil, fmt.Errorf("wkld: unknown benchmark %q (have %v)", name, Names())
	}
	if base != name {
		count = count / 4
		if count < 16 {
			count = 16
		}
	}
	return generate(name, count), nil
}

// MustGenerate is Generate for tests and benchmarks; it panics on error.
func MustGenerate(name string) *Benchmark {
	b, err := Generate(name)
	if err != nil {
		panic(err)
	}
	return b
}

func generate(name string, count int) *Benchmark {
	rng := rand.New(rand.NewSource(seedOf(name)))
	b := &Benchmark{
		Name:   name,
		Sinks:  make([]geom.Point, count),
		Source: geom.Pt(Die/2, 0),
	}
	for i := range b.Sinks {
		b.Sinks[i] = geom.Pt(rng.Float64()*Die, rng.Float64()*Die)
	}
	return b
}

// seedOf hashes the benchmark name into a deterministic seed (FNV-1a).
func seedOf(name string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// Custom builds an ad-hoc uniform benchmark with the given sink count and
// seed, for tests and sweeps.
func Custom(name string, count int, seed int64) *Benchmark {
	rng := rand.New(rand.NewSource(seed))
	b := &Benchmark{
		Name:   name,
		Sinks:  make([]geom.Point, count),
		Source: geom.Pt(Die/2, 0),
	}
	for i := range b.Sinks {
		b.Sinks[i] = geom.Pt(rng.Float64()*Die, rng.Float64()*Die)
	}
	return b
}

// Write serializes a benchmark in the plain-text sink-list format:
//
//	# <name>
//	source <x> <y>
//	<x> <y>        (one line per sink)
func (b *Benchmark) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", b.Name)
	fmt.Fprintf(bw, "source %g %g\n", b.Source.X, b.Source.Y)
	for _, s := range b.Sinks {
		fmt.Fprintf(bw, "%g %g\n", s.X, s.Y)
	}
	return bw.Flush()
}

// Read parses the format emitted by Write. Comment lines and blank lines
// are ignored; a missing source line leaves the zero point.
func Read(r io.Reader) (*Benchmark, error) {
	sc := bufio.NewScanner(r)
	b := &Benchmark{Name: "unnamed"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if name := strings.TrimSpace(strings.TrimPrefix(line, "#")); name != "" {
				b.Name = name
			}
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "source" {
			if len(fields) != 3 {
				return nil, fmt.Errorf("wkld: line %d: malformed source line", lineNo)
			}
			var x, y float64
			if _, err := fmt.Sscanf(fields[1]+" "+fields[2], "%g %g", &x, &y); err != nil {
				return nil, fmt.Errorf("wkld: line %d: %v", lineNo, err)
			}
			b.Source = geom.Pt(x, y)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("wkld: line %d: expected \"x y\"", lineNo)
		}
		var x, y float64
		if _, err := fmt.Sscanf(line, "%g %g", &x, &y); err != nil {
			return nil, fmt.Errorf("wkld: line %d: %v", lineNo, err)
		}
		b.Sinks = append(b.Sinks, geom.Pt(x, y))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(b.Sinks) == 0 {
		return nil, fmt.Errorf("wkld: no sinks in input")
	}
	return b, nil
}
