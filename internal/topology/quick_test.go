package topology

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickTree is a generatable random topology for testing/quick.
type quickTree struct {
	tree *Tree
	e    []float64
}

// Generate implements quick.Generator.
func (quickTree) Generate(r *rand.Rand, size int) reflect.Value {
	m := 2 + r.Intn(max(2, size))
	tree, err := RandomBinary(r, m, r.Intn(2) == 0)
	if err != nil {
		panic(err)
	}
	e := make([]float64, tree.N())
	for i := 1; i < tree.N(); i++ {
		e[i] = r.Float64() * 100
	}
	return reflect.ValueOf(quickTree{tree: tree, e: e})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Delay prefix sums are linear: Delays(α·e) = α·Delays(e).
func TestQuickDelaysLinearity(t *testing.T) {
	f := func(qt quickTree, alphaRaw uint8) bool {
		alpha := float64(alphaRaw) / 16
		scaled := make([]float64, len(qt.e))
		for i, v := range qt.e {
			scaled[i] = alpha * v
		}
		d1 := qt.tree.Delays(qt.e)
		d2 := qt.tree.Delays(scaled)
		for i := range d1 {
			if math.Abs(d2[i]-alpha*d1[i]) > 1e-9*(1+math.Abs(alpha*d1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PathLength is a metric on tree nodes: symmetric, zero on the diagonal,
// and satisfies the triangle inequality.
func TestQuickPathLengthMetric(t *testing.T) {
	f := func(qt quickTree, a, b, c uint16) bool {
		n := qt.tree.N()
		i, j, k := int(a)%n, int(b)%n, int(c)%n
		d := qt.tree.Delays(qt.e)
		pij := qt.tree.PathLength(i, j, d)
		pji := qt.tree.PathLength(j, i, d)
		pii := qt.tree.PathLength(i, i, d)
		pik := qt.tree.PathLength(i, k, d)
		pkj := qt.tree.PathLength(k, j, d)
		return math.Abs(pij-pji) < 1e-9 &&
			math.Abs(pii) < 1e-9 &&
			pij <= pik+pkj+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The LCA of two nodes lies on both root paths, and is the deepest such
// node.
func TestQuickLCAOnBothPaths(t *testing.T) {
	f := func(qt quickTree, a, b uint16) bool {
		n := qt.tree.N()
		i, j := int(a)%n, int(b)%n
		l := qt.tree.LCA(i, j)
		onPath := func(x, node int) bool {
			for y := x; ; y = qt.tree.Parent[y] {
				if y == node {
					return true
				}
				if y == 0 {
					return node == 0
				}
			}
		}
		if !onPath(i, l) || !onPath(j, l) {
			return false
		}
		// No deeper common ancestor: the LCA's children cannot both be
		// ancestors of i and j.
		for _, c := range qt.tree.Children(l) {
			if onPath(i, c) && onPath(j, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Postorder and preorder are permutations of the node set.
func TestQuickTraversalsArePermutations(t *testing.T) {
	f := func(qt quickTree) bool {
		for _, order := range [][]int{qt.tree.Postorder(), qt.tree.Preorder()} {
			if len(order) != qt.tree.N() {
				return false
			}
			seen := make([]bool, qt.tree.N())
			for _, n := range order {
				if n < 0 || n >= qt.tree.N() || seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
