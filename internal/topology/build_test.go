package topology

import (
	"math/rand"
	"testing"

	"lubt/internal/geom"
)

func TestBuilderSimple(t *testing.T) {
	b := NewBuilder(3)
	x := b.Merge(1, 2)
	b.Merge(x, 3)
	tree, err := b.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 5 || tree.NumSinks != 3 {
		t.Fatalf("shape: %v", tree)
	}
	if !tree.AllSinksAreLeaves() {
		t.Error("sinks not leaves")
	}
	if len(tree.Children(0)) != 2 {
		t.Errorf("root children = %d, want 2", len(tree.Children(0)))
	}
}

func TestBuilderWithSource(t *testing.T) {
	b := NewBuilder(2)
	b.Merge(1, 2)
	tree, err := b.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Children(0)) != 1 {
		t.Errorf("source degree = %d, want 1", len(tree.Children(0)))
	}
	if tree.N() != 4 {
		t.Errorf("N = %d, want 4", tree.N())
	}
}

func TestBuilderSingleSinkWithSource(t *testing.T) {
	b := NewBuilder(1)
	tree, err := b.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if tree.N() != 2 || tree.Parent[1] != 0 {
		t.Fatalf("single-sink tree wrong: %v", tree.Parent)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(3)
	if _, err := b.Finish(false); err == nil {
		t.Error("Finish with open clusters must fail")
	}
	b2 := NewBuilder(1)
	if _, err := b2.Finish(false); err == nil {
		t.Error("bare sink as root must fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on self-merge")
			}
		}()
		NewBuilder(2).Merge(1, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic on double merge")
			}
		}()
		b := NewBuilder(3)
		b.Merge(1, 2)
		b.Merge(1, 3)
	}()
}

func TestBalancedTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, m := range []int{2, 3, 7, 16, 33} {
		locs := make([]geom.Point, m)
		for i := range locs {
			locs[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		for _, src := range []bool{false, true} {
			tree, err := Balanced(locs, src)
			if err != nil {
				t.Fatal(err)
			}
			if tree.NumSinks != m || !tree.AllSinksAreLeaves() {
				t.Fatalf("m=%d src=%v: bad tree %v", m, src, tree)
			}
			if tree.MaxDegree() > 3 {
				t.Fatalf("m=%d: degree %d", m, tree.MaxDegree())
			}
			// A binary merge tree over m sinks has m−1 internal nodes
			// (plus the source node when present).
			want := 2*m - 1
			if src {
				want++
			}
			if tree.N() != want {
				t.Fatalf("m=%d src=%v: N=%d want %d", m, src, tree.N(), want)
			}
		}
	}
}

func TestBalancedRejectsTooFew(t *testing.T) {
	if _, err := Balanced(nil, false); err == nil {
		t.Error("expected error")
	}
	if _, err := Balanced([]geom.Point{{}}, false); err == nil {
		t.Error("expected error for one sink without source")
	}
	if _, err := Balanced([]geom.Point{{}}, true); err != nil {
		t.Errorf("one sink with source should work: %v", err)
	}
}

func TestRandomBinaryValid(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(30)
		src := rng.Intn(2) == 0
		tree, err := RandomBinary(rng, m, src)
		if err != nil {
			t.Fatal(err)
		}
		if tree.NumSinks != m || !tree.AllSinksAreLeaves() || tree.MaxDegree() > 3 {
			t.Fatalf("invalid random tree: %v", tree)
		}
	}
}

func TestStar(t *testing.T) {
	tree, err := Star(5, false)
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxDegree() != 5 {
		t.Errorf("star degree = %d", tree.MaxDegree())
	}
	tree2, err := Star(4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree2.Children(0)) != 1 || tree2.MaxDegree() != 5 {
		t.Errorf("star-with-source shape wrong")
	}
	if _, err := Star(1, false); err == nil {
		t.Error("expected error")
	}
}

func TestSplitHighDegree(t *testing.T) {
	tree, _ := Star(6, false)
	split, err := tree.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	if split.MaxDegree() > 3 {
		t.Fatalf("split left degree %d", split.MaxDegree())
	}
	if split.NumSinks != 6 || !split.AllSinksAreLeaves() {
		t.Fatal("split corrupted sinks")
	}
	// Forced-zero edges must connect only Steiner/root nodes.
	forced := 0
	for i := 1; i < split.N(); i++ {
		if split.ForcedZero[i] {
			forced++
			if split.IsSink(i) {
				t.Errorf("forced-zero edge %d attached to a sink", i)
			}
		}
	}
	if forced == 0 {
		t.Error("no forced-zero edges created")
	}
	// Root keeps at most two children and every sink keeps its identity.
	if len(split.Children(0)) > 2 {
		t.Error("root still high degree")
	}
}

func TestSplitNoopOnBinaryTree(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	tree, _ := RandomBinary(rng, 10, false)
	split, err := tree.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	if split != tree {
		t.Error("binary tree should be returned unchanged")
	}
}

func TestSplitPreservesLeafPaths(t *testing.T) {
	// Path sets between sinks must be preserved up to the inserted
	// zero-length edges: with those edges at length zero, all pairwise
	// path lengths are unchanged.
	tree, _ := Star(7, true)
	split, err := tree.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	e := make([]float64, tree.N())
	for i := 1; i < tree.N(); i++ {
		e[i] = float64(i)
	}
	es := make([]float64, split.N())
	copy(es, e) // node ids preserved for original nodes; new edges zero
	d, ds := tree.Delays(e), split.Delays(es)
	for s := 1; s <= 7; s++ {
		for r := s + 1; r <= 7; r++ {
			if got, want := split.PathLength(s, r, ds), tree.PathLength(s, r, d); got != want {
				t.Fatalf("pathlength(%d,%d): split %g, original %g", s, r, got, want)
			}
		}
	}
}
