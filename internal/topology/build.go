package topology

import (
	"fmt"
	"math/rand"
	"sort"

	"lubt/internal/geom"
)

// Builder assembles a binary topology over sinks 1…m by a sequence of
// merges, the way every clustering-based clock-topology generator works
// (nearest-neighbour merge [5], the generator of [9], recursive
// bipartition). Cluster handles are node ids: sinks 1…m initially, merges
// return new internal ids m+1, m+2, ….
type Builder struct {
	m      int
	parent []int // temp parent per node id, −1 while a cluster is open
	open   int   // clusters not yet merged
}

// NewBuilder starts a build over m ≥ 1 sinks.
func NewBuilder(m int) *Builder {
	if m < 1 {
		panic("topology: Builder needs at least one sink")
	}
	b := &Builder{m: m, parent: make([]int, m+1), open: m}
	for i := range b.parent {
		b.parent[i] = -1
	}
	return b
}

// Merge joins two open clusters under a new internal node and returns its
// id.
func (b *Builder) Merge(x, y int) int {
	b.check(x)
	b.check(y)
	if x == y {
		panic("topology: merging a cluster with itself")
	}
	id := len(b.parent)
	b.parent = append(b.parent, -1)
	b.parent[x] = id
	b.parent[y] = id
	b.open--
	return id
}

func (b *Builder) check(x int) {
	if x <= 0 || x >= len(b.parent) || x == 0 {
		panic(fmt.Sprintf("topology: bad cluster id %d", x))
	}
	if b.parent[x] != -1 {
		panic(fmt.Sprintf("topology: cluster %d already merged", x))
	}
}

// Finish produces the Tree. Exactly one open cluster (the top) must
// remain. With rootIsSource, a distinct root node 0 (the source, whose
// location is given) is attached above the top cluster and has degree one,
// matching §3 of the paper; otherwise the top cluster itself becomes the
// root node 0 (a Steiner point with two children whose location is free).
func (b *Builder) Finish(rootIsSource bool) (*Tree, error) {
	if b.open != 1 {
		return nil, fmt.Errorf("topology: %d unmerged clusters at Finish", b.open)
	}
	top := -1
	for i := 1; i < len(b.parent); i++ {
		if b.parent[i] == -1 {
			top = i
			break
		}
	}
	total := len(b.parent) // temp ids: 0 (reserved), 1…m sinks, m+1… internals
	if rootIsSource {
		// Temp node 0 becomes the source; the top cluster hangs below it.
		parent := make([]int, total)
		parent[0] = -1
		for i := 1; i < total; i++ {
			if i == top {
				parent[i] = 0
			} else {
				parent[i] = b.parent[i]
			}
		}
		return New(parent, b.m)
	}
	if top <= b.m {
		return nil, fmt.Errorf("topology: a bare sink cannot be the root; need ≥ 2 sinks")
	}
	// Drop the reserved temp id 0 and rename the top internal node to 0;
	// internals above it shift down by one.
	parent := make([]int, total-1)
	newID := func(tmp int) int {
		if tmp == top {
			return 0
		}
		if tmp > top {
			return tmp - 1
		}
		return tmp
	}
	parent[0] = -1
	for i := 1; i < total; i++ {
		if i == top {
			continue
		}
		parent[newID(i)] = newID(b.parent[i])
	}
	return New(parent, b.m)
}

// Balanced builds a binary topology by recursive geometric bipartition of
// the sink locations: each cluster is split at the median of its wider
// dimension. Deterministic and well-balanced; used as the topology when no
// skew-guided generator is wanted. locs[i] is the location of sink i+1.
func Balanced(locs []geom.Point, rootIsSource bool) (*Tree, error) {
	m := len(locs)
	if m < 1 || (m < 2 && !rootIsSource) {
		return nil, fmt.Errorf("topology: Balanced needs ≥ 2 sinks (or ≥ 1 with a source)")
	}
	b := NewBuilder(m)
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i + 1
	}
	var rec func(ids []int) int
	rec = func(ids []int) int {
		if len(ids) == 1 {
			return ids[0]
		}
		xlo, ylo, xhi, yhi := boundsOf(locs, ids)
		byX := xhi-xlo >= yhi-ylo
		sort.Slice(ids, func(a, bn int) bool {
			pa, pb := locs[ids[a]-1], locs[ids[bn]-1]
			if byX {
				if pa.X != pb.X {
					return pa.X < pb.X
				}
				return pa.Y < pb.Y
			}
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.X < pb.X
		})
		mid := len(ids) / 2
		l := rec(ids[:mid])
		r := rec(ids[mid:])
		return b.Merge(l, r)
	}
	rec(ids)
	return b.Finish(rootIsSource)
}

func boundsOf(locs []geom.Point, ids []int) (xlo, ylo, xhi, yhi float64) {
	pts := make([]geom.Point, len(ids))
	for i, id := range ids {
		pts[i] = locs[id-1]
	}
	return geom.BBox(pts)
}

// RandomBinary builds a uniformly random binary merge topology over m
// sinks; used by property tests.
func RandomBinary(rng *rand.Rand, m int, rootIsSource bool) (*Tree, error) {
	if m < 1 || (m < 2 && !rootIsSource) {
		return nil, fmt.Errorf("topology: RandomBinary needs ≥ 2 sinks (or ≥ 1 with a source)")
	}
	b := NewBuilder(m)
	open := make([]int, m)
	for i := range open {
		open[i] = i + 1
	}
	for len(open) > 1 {
		i := rng.Intn(len(open))
		j := rng.Intn(len(open) - 1)
		if j >= i {
			j++
		}
		id := b.Merge(open[i], open[j])
		// Remove the two merged clusters, add the new one.
		if i < j {
			i, j = j, i
		}
		open[i] = open[len(open)-1]
		open = open[:len(open)-1]
		open[j] = id
	}
	return b.Finish(rootIsSource)
}

// Star builds the topology with every sink directly under one internal
// node (which is the root, or hangs under the source). High-degree by
// construction; callers exercise SplitHighDegree with it.
func Star(m int, rootIsSource bool) (*Tree, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: Star needs ≥ 2 sinks")
	}
	if rootIsSource {
		// 0 = source, m+1 = hub under the source, sinks under the hub.
		parent := make([]int, m+2)
		parent[0] = -1
		parent[m+1] = 0
		for i := 1; i <= m; i++ {
			parent[i] = m + 1
		}
		return New(parent, m)
	}
	parent := make([]int, m+1)
	parent[0] = -1
	for i := 1; i <= m; i++ {
		parent[i] = 0
	}
	return New(parent, m)
}
