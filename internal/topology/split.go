package topology

// SplitHighDegree returns an equivalent topology in which every node has
// at most two children, inserting zero-length edges exactly as the
// degree-4 Steiner split of Fig. 2 in the paper: a node with k > 2
// children keeps its first child and delegates the remaining k−1 to a new
// Steiner point attached through an edge whose length is fixed to zero,
// recursively. Sink and root indices are preserved; new Steiner nodes are
// appended. The conversion does not change the LUBT solution space
// because the forced edges contribute nothing to any path.
//
// If the tree already satisfies the degree bound, the receiver is returned
// unchanged.
func (t *Tree) SplitHighDegree() (*Tree, error) {
	needs := false
	for i := 0; i < t.N(); i++ {
		if len(t.children[i]) > 2 {
			needs = true
			break
		}
	}
	if !needs {
		return t, nil
	}
	parent := append([]int(nil), t.Parent...)
	forced := append([]bool(nil), t.ForcedZero...)
	// children working copy.
	kids := make([][]int, len(parent))
	for i := range kids {
		kids[i] = append([]int(nil), t.children[i]...)
	}
	for i := 0; i < len(kids); i++ { // len grows as nodes are appended
		for len(kids[i]) > 2 {
			// New Steiner node adopts all children but the first.
			id := len(parent)
			parent = append(parent, i)
			forced = append(forced, true)
			adopted := append([]int(nil), kids[i][1:]...)
			kids[i] = []int{kids[i][0], id}
			kids = append(kids, adopted)
			for _, c := range adopted {
				parent[c] = id
			}
		}
	}
	nt, err := New(parent, t.NumSinks)
	if err != nil {
		return nil, err
	}
	copy(nt.ForcedZero, forced)
	return nt, nil
}
