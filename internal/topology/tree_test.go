package topology

import (
	"math"
	"math/rand"
	"testing"
)

// fig3Tree builds the 5-point example of §4.5 (Fig. 3): sinks 1…5,
// Steiner points 6,7,8, root 0 (source position not given). The structure
// is read off the paper's constraint list: e1+e6 is s1's root path, e2+e8
// is s2's, e3+e7+e8 is s3's — so 7's parent is 8, 8's and 6's parent is
// the root.
func fig3Tree(t *testing.T) *Tree {
	t.Helper()
	//            0
	//          /   \
	//         6     8
	//        / \   / \
	//       1   5 2   7
	//                / \
	//               3   4
	parent := []int{-1, 6, 8, 7, 7, 6, 0, 8, 0}
	tree, err := New(parent, 5)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestNewValidTree(t *testing.T) {
	tree := fig3Tree(t)
	if tree.N() != 9 || tree.NumEdges() != 8 || tree.NumSinks != 5 {
		t.Fatalf("shape wrong: %v", tree)
	}
	if !tree.AllSinksAreLeaves() {
		t.Error("fig3 sinks must be leaves")
	}
	if tree.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", tree.MaxDegree())
	}
	if !tree.IsSink(3) || tree.IsSink(6) || !tree.IsSteiner(6) || tree.IsSteiner(0) {
		t.Error("node classification wrong")
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		parent []int
		m      int
	}{
		{nil, 1},
		{[]int{0}, 1},        // root not −1
		{[]int{-1, 1}, 1},    // self-parent
		{[]int{-1, 5}, 1},    // out of range
		{[]int{-1, 2, 1}, 1}, // cycle 1↔2 unreachable from root
		{[]int{-1, 0}, 0},    // numSinks < 1
		{[]int{-1, 0}, 2},    // numSinks ≥ n
	}
	for i, c := range cases {
		if _, err := New(c.parent, c.m); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustNew([]int{0}, 1)
}

func TestPathToRoot(t *testing.T) {
	tree := fig3Tree(t)
	got := tree.PathToRoot(3)
	want := []int{3, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("path = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("path = %v, want %v", got, want)
		}
	}
	if len(tree.PathToRoot(0)) != 0 {
		t.Error("root path not empty")
	}
}

func TestPathMatchesPaperConstraints(t *testing.T) {
	// §4.5 lists path(s1,s3) = {e1,e6,e8,e7,e3} and path(s3,s4) = {e3,e4}.
	tree := fig3Tree(t)
	check := func(i, j int, want map[int]bool) {
		t.Helper()
		got := tree.Path(i, j)
		if len(got) != len(want) {
			t.Fatalf("path(%d,%d) = %v", i, j, got)
		}
		for _, e := range got {
			if !want[e] {
				t.Fatalf("path(%d,%d) contains unexpected edge %d", i, j, e)
			}
		}
	}
	check(1, 3, map[int]bool{1: true, 6: true, 8: true, 7: true, 3: true})
	check(3, 4, map[int]bool{3: true, 4: true})
	check(1, 5, map[int]bool{1: true, 5: true})
	check(2, 4, map[int]bool{2: true, 7: true, 4: true})
}

func TestLCAAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(20)
		tree, err := RandomBinary(rng, m, rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 100; q++ {
			i := rng.Intn(tree.N())
			j := rng.Intn(tree.N())
			if got, want := tree.LCA(i, j), tree.lcaNaive(i, j); got != want {
				t.Fatalf("LCA(%d,%d) = %d, want %d in %v", i, j, got, want, tree.Parent)
			}
		}
	}
}

func TestTraversalOrders(t *testing.T) {
	tree := fig3Tree(t)
	post := tree.Postorder()
	pre := tree.Preorder()
	if len(post) != tree.N() || len(pre) != tree.N() {
		t.Fatal("traversal length wrong")
	}
	seenPost := map[int]bool{}
	for _, n := range post {
		for _, c := range tree.Children(n) {
			if !seenPost[c] {
				t.Fatalf("postorder visits %d before child %d", n, c)
			}
		}
		seenPost[n] = true
	}
	seenPre := map[int]bool{}
	for _, n := range pre {
		if n != 0 && !seenPre[tree.Parent[n]] {
			t.Fatalf("preorder visits %d before parent", n)
		}
		seenPre[n] = true
	}
}

func TestDelaysAndPathLength(t *testing.T) {
	tree := fig3Tree(t)
	e := make([]float64, tree.N())
	// Edge lengths from a feasible hand solution of the §4.5 example.
	e[1], e[2], e[3], e[4], e[5], e[6], e[7], e[8] = 3, 4, 1, 1, 3, 1, 1, 1
	d := tree.Delays(e)
	if math.Abs(d[1]-4) > 1e-12 { // e1+e6
		t.Errorf("delay(s1) = %g", d[1])
	}
	if math.Abs(d[3]-3) > 1e-12 { // e3+e7+e8
		t.Errorf("delay(s3) = %g", d[3])
	}
	if math.Abs(tree.PathLength(3, 4, d)-2) > 1e-12 { // e3+e4
		t.Errorf("pathlength(3,4) = %g", tree.PathLength(3, 4, d))
	}
	if math.Abs(tree.PathLength(1, 3, d)-7) > 1e-12 { // e1+e6+e8+e7+e3 = 3+1+1+1+1
		t.Errorf("pathlength(1,3) = %g", tree.PathLength(1, 3, d))
	}
}

func TestDelaysPanicsOnShortVector(t *testing.T) {
	tree := fig3Tree(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	tree.Delays(make([]float64, 2))
}

func TestPathLengthMatchesExplicitPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(15)
		tree, err := RandomBinary(rng, m, rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		e := make([]float64, tree.N())
		for i := 1; i < tree.N(); i++ {
			e[i] = rng.Float64() * 10
		}
		d := tree.Delays(e)
		for q := 0; q < 50; q++ {
			i := rng.Intn(tree.N())
			j := rng.Intn(tree.N())
			var want float64
			for _, ed := range tree.Path(i, j) {
				want += e[ed]
			}
			if got := tree.PathLength(i, j, d); math.Abs(got-want) > 1e-9 {
				t.Fatalf("PathLength(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestString(t *testing.T) {
	if fig3Tree(t).String() == "" {
		t.Error("empty String")
	}
}
