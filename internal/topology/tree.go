package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Tree is a rooted tree topology. Construct with New and do not mutate the
// exported fields afterwards; derived structures are built eagerly.
type Tree struct {
	// Parent[i] is the parent node of node i; Parent[0] = −1.
	Parent []int
	// NumSinks is m: nodes 1…m are sinks, nodes m+1…len(Parent)−1 are
	// Steiner points.
	NumSinks int
	// ForcedZero[i] marks edge i as fixed to length zero (created by
	// degree-4 splitting, Fig. 2 of the paper). Entry 0 is unused.
	ForcedZero []bool

	children [][]int
	depth    []int
	// Euler tour arrays for O(1) LCA.
	eulerNode  []int
	eulerDepth []int
	firstVisit []int
	sparse     [][]int32
	log2       []int
}

// ErrInvalidTopology reports a malformed parent vector.
var ErrInvalidTopology = errors.New("topology: invalid tree")

// New builds and validates a tree from a parent vector. parent[0] must be
// −1; every other entry must reference an existing node; the structure
// must be a single tree rooted at node 0. numSinks is m ≥ 1; sink nodes
// are 1…m.
func New(parent []int, numSinks int) (*Tree, error) {
	n := len(parent)
	if n == 0 || parent[0] != -1 {
		return nil, fmt.Errorf("%w: node 0 must be the root", ErrInvalidTopology)
	}
	if numSinks < 1 || numSinks >= n {
		return nil, fmt.Errorf("%w: numSinks %d out of range for %d nodes", ErrInvalidTopology, numSinks, n)
	}
	t := &Tree{
		Parent:     append([]int(nil), parent...),
		NumSinks:   numSinks,
		ForcedZero: make([]bool, n),
	}
	if err := t.build(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New for hand-built test topologies; it panics on error.
func MustNew(parent []int, numSinks int) *Tree {
	t, err := New(parent, numSinks)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) build() error {
	n := len(t.Parent)
	t.children = make([][]int, n)
	for i := 1; i < n; i++ {
		p := t.Parent[i]
		if p < 0 || p >= n || p == i {
			return fmt.Errorf("%w: node %d has parent %d", ErrInvalidTopology, i, p)
		}
		t.children[p] = append(t.children[p], i)
	}
	// DFS from the root checks connectivity/acyclicity and records depth
	// and the Euler tour.
	t.depth = make([]int, n)
	t.firstVisit = make([]int, n)
	for i := range t.firstVisit {
		t.firstVisit[i] = -1
	}
	t.eulerNode = t.eulerNode[:0]
	t.eulerDepth = t.eulerDepth[:0]
	visited := 0
	// Iterative DFS keeping the Euler tour (node re-appended after each
	// child subtree).
	type frame struct{ node, child int }
	stack := []frame{{0, 0}}
	t.depth[0] = 0
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		node := f.node
		if f.child == 0 {
			if t.firstVisit[node] >= 0 {
				return fmt.Errorf("%w: cycle through node %d", ErrInvalidTopology, node)
			}
			t.firstVisit[node] = len(t.eulerNode)
			visited++
		}
		t.eulerNode = append(t.eulerNode, node)
		t.eulerDepth = append(t.eulerDepth, t.depth[node])
		if f.child < len(t.children[node]) {
			c := t.children[node][f.child]
			f.child++
			t.depth[c] = t.depth[node] + 1
			stack = append(stack, frame{c, 0})
		} else {
			stack = stack[:len(stack)-1]
		}
	}
	if visited != n {
		return fmt.Errorf("%w: %d of %d nodes unreachable from root", ErrInvalidTopology, n-visited, n)
	}
	t.buildSparse()
	return nil
}

// N returns the total node count (root + sinks + Steiner points).
func (t *Tree) N() int { return len(t.Parent) }

// NumEdges returns the number of edges, N()−1. Edge indices are 1…NumEdges.
func (t *Tree) NumEdges() int { return t.N() - 1 }

// IsSink reports whether node i is a sink.
func (t *Tree) IsSink(i int) bool { return i >= 1 && i <= t.NumSinks }

// IsSteiner reports whether node i is a Steiner point.
func (t *Tree) IsSteiner(i int) bool { return i > t.NumSinks && i < t.N() }

// Children returns the child list of node i (shared storage; do not
// mutate).
func (t *Tree) Children(i int) []int { return t.children[i] }

// Depth returns the edge depth of node i (root = 0).
func (t *Tree) Depth(i int) int { return t.depth[i] }

// Sinks returns the sink node indices 1…m.
func (t *Tree) Sinks() []int {
	s := make([]int, t.NumSinks)
	for i := range s {
		s[i] = i + 1
	}
	return s
}

// AllSinksAreLeaves reports whether every sink is a leaf — the condition
// of Lemma 3.1 under which every bound combination is feasible.
func (t *Tree) AllSinksAreLeaves() bool {
	for i := 1; i <= t.NumSinks; i++ {
		if len(t.children[i]) > 0 {
			return false
		}
	}
	return true
}

// MaxDegree returns the maximum node degree (parent + children edges).
func (t *Tree) MaxDegree() int {
	max := 0
	for i := 0; i < t.N(); i++ {
		d := len(t.children[i])
		if i != 0 {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}

// PathToRoot returns the edges (child-node indices) on the path from node
// i up to the root, nearest first.
func (t *Tree) PathToRoot(i int) []int {
	var edges []int
	for i != 0 {
		edges = append(edges, i)
		i = t.Parent[i]
	}
	return edges
}

// Path returns the edges on the unique path between nodes i and j.
func (t *Tree) Path(i, j int) []int {
	l := t.LCA(i, j)
	var edges []int
	for x := i; x != l; x = t.Parent[x] {
		edges = append(edges, x)
	}
	for x := j; x != l; x = t.Parent[x] {
		edges = append(edges, x)
	}
	return edges
}

// SinkOrder returns the sinks (1…NumSinks) in DFS first-visit order
// together with, for every node v, the half-open span [lo[v], hi[v]) of
// positions in that order covered by v's subtree. Because a DFS visits
// each subtree contiguously, a subtree's sink set is always one slice
// order[lo[v]:hi[v]] — this is what lets the presolve pass in
// internal/core enumerate child-subtree sink blocks without touching the
// Euler-tour internals. Nodes with no sinks below get an empty span
// (lo[v] == hi[v]).
func (t *Tree) SinkOrder() (order, lo, hi []int) {
	order = make([]int, t.NumSinks)
	for i := range order {
		order[i] = i + 1
	}
	sort.Slice(order, func(a, b int) bool {
		return t.firstVisit[order[a]] < t.firstVisit[order[b]]
	})
	pos := make([]int, t.N())
	for i := range pos {
		pos[i] = -1
	}
	for p, s := range order {
		pos[s] = p
	}
	n := t.N()
	lo = make([]int, n)
	hi = make([]int, n)
	for i := range lo {
		lo[i] = t.NumSinks // past any position; min-folds below
		hi[i] = -1
	}
	for _, v := range t.Postorder() {
		if pos[v] >= 0 {
			if pos[v] < lo[v] {
				lo[v] = pos[v]
			}
			if pos[v]+1 > hi[v] {
				hi[v] = pos[v] + 1
			}
		}
		if v != 0 {
			p := t.Parent[v]
			if lo[v] < lo[p] {
				lo[p] = lo[v]
			}
			if hi[v] > hi[p] {
				hi[p] = hi[v]
			}
		}
	}
	for v := range lo {
		if hi[v] < 0 {
			lo[v], hi[v] = 0, 0
		}
	}
	return order, lo, hi
}

// Postorder returns the nodes in postorder (children before parents).
func (t *Tree) Postorder() []int {
	order := make([]int, 0, t.N())
	var stack []int
	stack = append(stack, 0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, n)
		stack = append(stack, t.children[n]...)
	}
	// Reverse of a preorder with children pushed left-to-right is a valid
	// postorder with children visited right-to-left; reverse in place.
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	return order
}

// Preorder returns the nodes in preorder (parents before children).
func (t *Tree) Preorder() []int {
	order := make([]int, 0, t.N())
	stack := []int{0}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, n)
		for k := len(t.children[n]) - 1; k >= 0; k-- {
			stack = append(stack, t.children[n][k])
		}
	}
	return order
}

// Delays returns, for each node, the sum of the given edge lengths on its
// root path — delay(s_i) of Eq. (1) under the linear delay model. e is
// indexed by edge (child node); e[0] is ignored.
func (t *Tree) Delays(e []float64) []float64 {
	if len(e) < t.N() {
		panic("topology: Delays edge vector too short")
	}
	d := make([]float64, t.N())
	for _, n := range t.Preorder() {
		if n == 0 {
			continue
		}
		d[n] = d[t.Parent[n]] + e[n]
	}
	return d
}

// PathLength returns the total edge length on the path between nodes i and
// j given per-edge lengths e and the node delays computed by Delays(e).
func (t *Tree) PathLength(i, j int, delays []float64) float64 {
	l := t.LCA(i, j)
	return delays[i] + delays[j] - 2*delays[l]
}

// String summarizes the topology.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree(%d nodes, %d sinks, %d steiner)",
		t.N(), t.NumSinks, t.N()-1-t.NumSinks)
}
