// Package topology implements the rooted tree topologies of the LUBT
// paper (§2–§3): node/edge identification, validation, degree-4 Steiner
// splitting, path queries via constant-time LCA, and topology generators.
//
// The paper's indexing convention is used throughout: nodes are
// s₀, s₁, …, s_n where s₀ is the root (source), s₁…s_m are sinks and
// s_{m+1}…s_n are Steiner points. Edge e_i connects s_i to its parent, so
// edges are identified by their child node and edge index 0 is unused.
package topology
