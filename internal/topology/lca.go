package topology

// buildSparse precomputes a sparse table over the Euler tour for O(1)
// range-minimum queries, giving constant-time LCA. The EBF separation
// oracle (§4.6 constraint reduction) issues O(m²) path-length queries per
// round, so LCA speed matters.
func (t *Tree) buildSparse() {
	n := len(t.eulerDepth)
	t.log2 = make([]int, n+1)
	for i := 2; i <= n; i++ {
		t.log2[i] = t.log2[i/2] + 1
	}
	levels := t.log2[n] + 1
	t.sparse = make([][]int32, levels)
	t.sparse[0] = make([]int32, n)
	for i := 0; i < n; i++ {
		t.sparse[0][i] = int32(i)
	}
	for k := 1; k < levels; k++ {
		size := n - (1 << k) + 1
		if size <= 0 {
			break
		}
		t.sparse[k] = make([]int32, size)
		prev := t.sparse[k-1]
		half := 1 << (k - 1)
		for i := 0; i < size; i++ {
			a, b := prev[i], prev[i+half]
			if t.eulerDepth[a] <= t.eulerDepth[b] {
				t.sparse[k][i] = a
			} else {
				t.sparse[k][i] = b
			}
		}
	}
}

// LCA returns the lowest common ancestor of nodes i and j.
func (t *Tree) LCA(i, j int) int {
	a, b := t.firstVisit[i], t.firstVisit[j]
	if a > b {
		a, b = b, a
	}
	k := t.log2[b-a+1]
	x := t.sparse[k][a]
	y := t.sparse[k][b-(1<<k)+1]
	if t.eulerDepth[x] <= t.eulerDepth[y] {
		return t.eulerNode[x]
	}
	return t.eulerNode[y]
}

// lcaNaive is the reference implementation used by tests.
func (t *Tree) lcaNaive(i, j int) int {
	seen := map[int]bool{}
	for x := i; ; x = t.Parent[x] {
		seen[x] = true
		if x == 0 {
			break
		}
	}
	for x := j; ; x = t.Parent[x] {
		if seen[x] {
			return x
		}
	}
}
