package core

import (
	"math"
	"testing"

	"lubt/internal/bst"
	"lubt/internal/geom"
	"lubt/internal/wkld"
)

// benchInstance routes the named workload with the [9]-style baseline at
// skew bound 0.1·radius and wraps it as a core instance with the paper's
// tolerable-skew window (same methodology as internal/experiments).
func benchInstance(tb testing.TB, name string) (*Instance, Bounds) {
	tb.Helper()
	b, err := wkld.Generate(name)
	if err != nil {
		tb.Fatal(err)
	}
	radius := 0.0
	for _, s := range b.Sinks {
		radius = math.Max(radius, geom.Dist(b.Source, s))
	}
	base, err := bst.Route(b.Sinks, 0.1*radius, &b.Source)
	if err != nil {
		tb.Fatal(err)
	}
	in := &Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(b.Sinks)+1),
		Source:  &b.Source,
	}
	copy(in.SinkLoc[1:], b.Sinks)
	u := base.Stats.Max
	l := math.Max(0, u-0.1*radius)
	m := base.Tree.NumSinks
	cb := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	return in, cb
}

// BenchmarkWarmResolve times the full §4.6 row-generation loop — the
// repeated warm re-solves after each cutting-plane batch — on prim2-s,
// once per engine. This is the headline comparison for the revised
// dual-simplex engine versus the dense-tableau ablation.
func BenchmarkWarmResolve(b *testing.B) {
	in, cb := benchInstance(b, "prim2-s")
	for _, eng := range []string{"revised", "dense"} {
		b.Run(eng, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Solve(in, cb, &Options{Engine: eng})
				if err != nil {
					b.Fatal(err)
				}
				if res.Rounds == 0 {
					b.Fatal("no row-generation rounds")
				}
			}
		})
	}
}

// BenchmarkSeparationOracle times one full violated-pair scan over the
// optimal edge vector of prim2-s, serial versus the striped worker pool.
func BenchmarkSeparationOracle(b *testing.B) {
	in, cb := benchInstance(b, "prim2-s")
	res, err := Solve(in, cb, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Shrink the edges slightly so the scan finds work to report instead
	// of exiting on the first comparison.
	e := make([]float64, len(res.E))
	for i, v := range res.E {
		e[i] = 0.95 * v
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := violatedPairsN(in, e, 1e-9, 64, bc.workers); len(got) == 0 {
					b.Fatal("oracle found nothing")
				}
			}
		})
	}
}
