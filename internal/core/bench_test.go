package core

import (
	"math"
	"testing"

	"lubt/internal/bst"
	"lubt/internal/geom"
	"lubt/internal/wkld"
)

// benchInstance routes the named workload with the [9]-style baseline at
// skew bound 0.1·radius and wraps it as a core instance with the paper's
// tolerable-skew window (same methodology as internal/experiments).
func benchInstance(tb testing.TB, name string) (*Instance, Bounds) {
	tb.Helper()
	b, err := wkld.Generate(name)
	if err != nil {
		tb.Fatal(err)
	}
	radius := 0.0
	for _, s := range b.Sinks {
		radius = math.Max(radius, geom.Dist(b.Source, s))
	}
	base, err := bst.Route(b.Sinks, 0.1*radius, &b.Source)
	if err != nil {
		tb.Fatal(err)
	}
	in := &Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(b.Sinks)+1),
		Source:  &b.Source,
	}
	copy(in.SinkLoc[1:], b.Sinks)
	u := base.Stats.Max
	l := math.Max(0, u-0.1*radius)
	m := base.Tree.NumSinks
	cb := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	return in, cb
}

// BenchmarkWarmResolve times the full §4.6 row-generation loop — the
// repeated warm re-solves after each cutting-plane batch — per engine
// and pricing scheme. prim2-s carries the full lineup including the
// dense-tableau ablation; r4-s and r5-s are the degenerate-tie-heavy
// headline workloads where the pricing schemes separate (dense is
// omitted there: it is ~3× slower and adds nothing to the pricing
// comparison). Dual pivot counts are reported per op so the wall-time
// and pivot trends can be read from one `go test -bench` run.
func BenchmarkWarmResolve(b *testing.B) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"revised-devex", Options{Pricing: "devex"}},
		{"revised-mv", Options{Pricing: "mostviolated"}},
		{"revised-steepest", Options{Pricing: "steepest"}},
		{"dense", Options{Engine: "dense"}},
	}
	for _, bench := range []struct {
		name     string
		variants int // prefix of the lineup to run
	}{{"prim2-s", 4}, {"r4-s", 3}, {"r5-s", 3}} {
		in, cb := benchInstance(b, bench.name)
		for _, v := range variants[:bench.variants] {
			b.Run(bench.name+"/"+v.name, func(b *testing.B) {
				pivots := 0
				for i := 0; i < b.N; i++ {
					opt := v.opt
					res, err := Solve(in, cb, &opt)
					if err != nil {
						b.Fatal(err)
					}
					if res.Rounds == 0 {
						b.Fatal("no row-generation rounds")
					}
					pivots = res.Stats.Pivots
				}
				b.ReportMetric(float64(pivots), "pivots/op")
			})
		}
	}
}

// BenchmarkSeparationOracle times one full violated-pair scan over the
// optimal edge vector of prim2-s, serial versus the striped worker pool.
func BenchmarkSeparationOracle(b *testing.B) {
	in, cb := benchInstance(b, "prim2-s")
	res, err := Solve(in, cb, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Shrink the edges slightly so the scan finds work to report instead
	// of exiting on the first comparison.
	e := make([]float64, len(res.E))
	for i, v := range res.E {
		e[i] = 0.95 * v
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := violatedPairsN(in, e, 1e-9, 64, bc.workers); len(got) == 0 {
					b.Fatal("oracle found nothing")
				}
			}
		})
	}
}
