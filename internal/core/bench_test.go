package core

import (
	"math"
	"math/rand"
	"testing"

	"lubt/internal/bst"
	"lubt/internal/delay"
	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
	"lubt/internal/wkld"
)

// benchInstance routes the named workload with the [9]-style baseline at
// skew bound 0.1·radius and wraps it as a core instance with the paper's
// tolerable-skew window (same methodology as internal/experiments).
func benchInstance(tb testing.TB, name string) (*Instance, Bounds) {
	tb.Helper()
	b, err := wkld.Generate(name)
	if err != nil {
		tb.Fatal(err)
	}
	radius := 0.0
	for _, s := range b.Sinks {
		radius = math.Max(radius, geom.Dist(b.Source, s))
	}
	base, err := bst.Route(b.Sinks, 0.1*radius, &b.Source)
	if err != nil {
		tb.Fatal(err)
	}
	in := &Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(b.Sinks)+1),
		Source:  &b.Source,
	}
	copy(in.SinkLoc[1:], b.Sinks)
	u := base.Stats.Max
	l := math.Max(0, u-0.1*radius)
	m := base.Tree.NumSinks
	cb := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	return in, cb
}

// BenchmarkWarmResolve times the full §4.6 row-generation loop — the
// repeated warm re-solves after each cutting-plane batch — per engine
// and pricing scheme. prim2-s carries the full lineup including the
// dense-tableau ablation; r4-s and r5-s are the degenerate-tie-heavy
// headline workloads where the pricing schemes separate (dense is
// omitted there: it is ~3× slower and adds nothing to the pricing
// comparison). Dual pivot counts are reported per op so the wall-time
// and pivot trends can be read from one `go test -bench` run.
func BenchmarkWarmResolve(b *testing.B) {
	variants := []struct {
		name string
		opt  Options
	}{
		{"revised-devex", Options{Pricing: "devex"}},
		{"revised-mv", Options{Pricing: "mostviolated"}},
		{"revised-steepest", Options{Pricing: "steepest"}},
		{"dense", Options{Engine: "dense"}},
	}
	for _, bench := range []struct {
		name     string
		variants int // prefix of the lineup to run
	}{{"prim2-s", 4}, {"r4-s", 3}, {"r5-s", 3}} {
		in, cb := benchInstance(b, bench.name)
		for _, v := range variants[:bench.variants] {
			b.Run(bench.name+"/"+v.name, func(b *testing.B) {
				pivots := 0
				for i := 0; i < b.N; i++ {
					opt := v.opt
					res, err := Solve(in, cb, &opt)
					if err != nil {
						b.Fatal(err)
					}
					if res.Rounds == 0 {
						b.Fatal("no row-generation rounds")
					}
					pivots = res.Stats.Pivots
				}
				b.ReportMetric(float64(pivots), "pivots/op")
			})
		}
	}
}

// BenchmarkEcoResolve times the ECO edit loop on the tie-heavy headline
// workload: hold the r4-s solve open as a Session, retighten sink 1's
// window past its routed delay, and warm re-solve — against the cold
// dense-path re-solve of the same edited instance. The warm/cold pivot
// ratio is the number ci.sh gates (experiments.CheckEcoGate).
func BenchmarkEcoResolve(b *testing.B) {
	in, cb := benchInstance(b, "r4-s")
	radius := in.Radius()
	b.Run("warm", func(b *testing.B) {
		sess, err := NewSession(in, cb, nil)
		if err != nil {
			b.Fatal(err)
		}
		newL := sess.Result().Delays[1] + 0.05*radius
		newU := math.Max(cb.U[1], newL)
		b.ResetTimer()
		pivots := 0
		for i := 0; i < b.N; i++ {
			// Alternate between the retightened and the original window so
			// every iteration re-solves a real edit from the kept basis.
			l, u := newL, newU
			if i%2 == 1 {
				l, u = cb.L[1], cb.U[1]
			}
			if err := sess.Retighten(1, l, u); err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Resolve(); err != nil {
				b.Fatal(err)
			}
			pivots = sess.ResolvePivots()
		}
		b.ReportMetric(float64(pivots), "pivots/op")
	})
	b.Run("cold", func(b *testing.B) {
		sess, err := NewSession(in, cb, nil)
		if err != nil {
			b.Fatal(err)
		}
		newL := sess.Result().Delays[1] + 0.05*radius
		eb := Bounds{L: append([]float64(nil), cb.L...), U: append([]float64(nil), cb.U...)}
		eb.L[1] = newL
		eb.U[1] = math.Max(cb.U[1], newL)
		b.ResetTimer()
		pivots := 0
		for i := 0; i < b.N; i++ {
			res, err := Solve(in, eb, nil)
			if err != nil {
				b.Fatal(err)
			}
			pivots = res.Stats.Pivots
		}
		b.ReportMetric(float64(pivots), "pivots/op")
	})
}

// BenchmarkElmoreSLP times the Elmore sequential LP, persistent-engine
// default versus the dense per-iteration rebuild ablation: same
// instance, same delay windows, same trust-region schedule — the only
// difference is whether each linearization restages the kept basis or
// rebuilds an lp.Problem from scratch. The instance is the unit-scale
// random family the Elmore tests use (the SLP's linearization is
// scale-sensitive; the clock benches' coordinate magnitudes belong to
// the linear-delay tables).
func BenchmarkElmoreSLP(b *testing.B) {
	const m = 20
	rng := rand.New(rand.NewSource(83))
	tree, err := topology.RandomBinary(rng, m, false)
	if err != nil {
		b.Fatal(err)
	}
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
	for i := 1; i <= m; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.1}
	unconstrained, err := Solve(in, UniformBounds(m, 0, math.Inf(1)), nil)
	if err != nil {
		b.Fatal(err)
	}
	dl := mdl.Delays(in.Tree, unconstrained.E)
	worst := 0.0
	for i := 1; i <= m; i++ {
		worst = math.Max(worst, dl[i])
	}
	eb := UniformBounds(m, worst, 3*worst)
	for _, v := range []struct {
		name   string
		solver lp.Solver
	}{{"engine", nil}, {"dense", &lp.Simplex{}}} {
		b.Run(v.name, func(b *testing.B) {
			iters, pivots := 0, 0
			for i := 0; i < b.N; i++ {
				res, err := SolveElmore(in, eb, &ElmoreOptions{Model: mdl, Solver: v.solver})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
				pivots = res.Stats.Pivots
			}
			b.ReportMetric(float64(iters), "iters/op")
			b.ReportMetric(float64(pivots), "pivots/op")
		})
	}
}

// BenchmarkSeparationOracle times one full violated-pair scan over the
// optimal edge vector of prim2-s, serial versus the striped worker pool.
func BenchmarkSeparationOracle(b *testing.B) {
	in, cb := benchInstance(b, "prim2-s")
	res, err := Solve(in, cb, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Shrink the edges slightly so the scan finds work to report instead
	// of exiting on the first comparison.
	e := make([]float64, len(res.E))
	for i, v := range res.E {
		e[i] = 0.95 * v
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := violatedPairsN(in, e, 1e-9, 64, bc.workers); len(got) == 0 {
					b.Fatal("oracle found nothing")
				}
			}
		})
	}
}
