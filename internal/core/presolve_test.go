package core

import (
	"math"
	"testing"

	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

// TestPresolveAgreement is the presolve-must-never-change-the-answer
// suite: on the bench workloads, forcing the dominance-pruning oracle on
// must reproduce the legacy oracle's optimum across all four solver
// configurations — warm revised, dense tableau, cold simplex, IPM — to
// within the 1e-6·radius acceptance bar, and the pruned solutions must
// still pass full-matrix verification.
func TestPresolveAgreement(t *testing.T) {
	// The cold solvers re-solve the whole LP from scratch every
	// row-generation round, which is minutes-per-solve at r4-s size
	// (~7k active rows); they cross-check on the two smaller benches
	// and the warm engines carry the largest one.
	solvers := []struct {
		name     string
		maxSinks int
		opt      Options
	}{
		{"revised", math.MaxInt, Options{}},
		{"dense", math.MaxInt, Options{Engine: "dense"}},
		{"coldsimplex", 250, Options{Solver: &lp.Simplex{}}},
		{"ipm", 250, Options{Solver: &lp.IPM{}}},
	}
	for _, bench := range []string{"prim2-s", "r3-s", "r4-s"} {
		in, cb := benchInstance(t, bench)
		tol := 1e-6 * math.Max(1, in.Radius())
		off := mustSolve(t, in, cb, &Options{Presolve: "off"})
		for _, sv := range solvers {
			if in.Tree.NumSinks > sv.maxSinks {
				continue
			}
			if raceEnabled && sv.maxSinks != math.MaxInt {
				// The cold solvers are single-threaded math the detector
				// has nothing to say about, and instrumentation makes
				// them exceed the package timeout.
				continue
			}
			t.Run(bench+"/"+sv.name, func(t *testing.T) {
				opt := sv.opt
				opt.Presolve = "on"
				res := mustSolve(t, in, cb, &opt)
				if d := math.Abs(res.Cost - off.Cost); d > tol {
					t.Errorf("presolve-on cost %.10g vs off %.10g: |Δ| = %g > %g",
						res.Cost, off.Cost, d, tol)
				}
				// Feasibility at the same radius-scaled bar as the cost:
				// the IPM's residual is relative to the instance scale, so
				// a fixed absolute 1e-6 would flag healthy solutions on
				// the 10^4-radius benches.
				if err := Verify(in, cb, res.E, tol); err != nil {
					t.Errorf("presolve-on solution fails verification: %v", err)
				}
			})
		}
	}
}

// TestPresolvePrunesRows pins the acceptance bar that the pass actually
// bites on the headline workloads: a nonzero fraction of the candidate
// sink-pair rows must be dominated on r4-s and r5-s, and the stat must
// stay zero when presolve is off.
func TestPresolvePrunesRows(t *testing.T) {
	for _, bench := range []string{"r4-s", "r5-s"} {
		in, cb := benchInstance(t, bench)
		res := mustSolve(t, in, cb, &Options{Presolve: "on"})
		if res.Stats.PresolvePrunedRows <= 0 {
			t.Errorf("%s: presolve on but PresolvePrunedRows = %d", bench, res.Stats.PresolvePrunedRows)
		}
		if res.Stats.PeakRows <= 0 {
			t.Errorf("%s: PeakRows = %d, want > 0", bench, res.Stats.PeakRows)
		}
		off := mustSolve(t, in, cb, &Options{Presolve: "off"})
		if off.Stats.PresolvePrunedRows != 0 {
			t.Errorf("%s: presolve off but PresolvePrunedRows = %d", bench, off.Stats.PresolvePrunedRows)
		}
	}
}

// chainInstance is a path topology 0 → 1 → 2 → 3 with three sinks, sinks
// 1 and 2 interior — the nested-path shape of the containment arm.
func chainInstance() *Instance {
	return &Instance{
		Tree: topology.MustNew([]int{-1, 0, 1, 2}, 3),
		SinkLoc: []geom.Point{
			{},
			geom.Pt(0, 0), // s1
			geom.Pt(3, 3), // s2: far off the s1–s3 line
			geom.Pt(1, 0), // s3
		},
	}
}

// forkInstance is two root branches with two sinks each: Steiner nodes 5
// and 6 under the root, sinks 1, 2 below node 5 and sinks 3, 4 below
// node 6. All pairs crossing (5, 6) share the root as LCA.
func forkInstance() *Instance {
	return &Instance{
		Tree: topology.MustNew([]int{-1, 5, 5, 6, 6, 0, 0}, 4),
		SinkLoc: []geom.Point{
			{},
			geom.Pt(-1, 0),  // s1
			geom.Pt(-10, 0), // s2
			geom.Pt(1, 0),   // s3
			geom.Pt(10, 0),  // s4
		},
	}
}

func TestDominatesContainment(t *testing.T) {
	in := chainInstance()
	// dist(1,3) = 1 ≤ dist(2,3) = 5 and path(2,3) ⊆ path(1,3): dominated.
	if !dominatesContainment(in, 1, 3, 2, 3) {
		t.Error("nested path with shorter outer distance not dominated")
	}
	// Containment the other way round fails: 1 is not on path(2,3).
	if dominatesContainment(in, 2, 3, 1, 3) {
		t.Error("path(1,3) ⊄ path(2,3) yet reported dominated")
	}
	// Same paths, but dist(1,2) = 6 > dist(2,3) = 5: not dominated.
	if dominatesContainment(in, 1, 2, 2, 3) {
		t.Error("distance condition violated yet reported dominated")
	}
	// Self-domination must report false — a tie keeps its row.
	if dominatesContainment(in, 1, 3, 1, 3) {
		t.Error("row reported as dominating itself")
	}
	// Disjoint branches share no path at all.
	fork := forkInstance()
	if dominatesContainment(fork, 1, 2, 3, 4) {
		t.Error("pairs in disjoint branches reported as containment-dominated")
	}
}

func TestDominatesWindow(t *testing.T) {
	in := forkInstance()
	b := UniformBounds(4, 0, 2) // cu = 2, λ = 0 for every sink
	// dist(1,3) − λ1 − λ3 = 2 ≤ dist(2,4) − cu2 − cu4 = 20 − 4 = 16.
	if !dominatesWindow(in, b, 1, 3, 2, 4) {
		t.Error("window-dominated pair not detected")
	}
	// Reverse direction: 20 ≤ 2 − 4 is false.
	if dominatesWindow(in, b, 2, 4, 1, 3) {
		t.Error("dominance reported in the unsound direction")
	}
	// Self-domination must report false.
	if dominatesWindow(in, b, 2, 4, 2, 4) {
		t.Error("row reported as window-dominating itself")
	}
	// Without a finite upper window there is no cancellation bound.
	free := Bounds{L: make([]float64, 5), U: make([]float64, 5)}
	for i := 1; i <= 4; i++ {
		free.U[i] = math.Inf(1)
	}
	if dominatesWindow(in, free, 1, 3, 2, 4) {
		t.Error("dominance claimed without finite upper windows")
	}
	// Pairs under different LCAs never window-dominate each other.
	if dominatesWindow(in, b, 1, 2, 3, 4) {
		t.Error("pairs with different LCAs reported as window-dominated")
	}
	// A pair whose endpoint is the LCA itself (a non-leaf sink) loses the
	// cancelling d_v term, so the window argument does not apply even when
	// the distance test would pass: sink 1 has Steiner child 4 holding
	// sinks 2 and 3, and both pairs (1,2) and (1,3) meet at LCA 1 through
	// the same child subtree.
	deep := &Instance{
		Tree: topology.MustNew([]int{-1, 0, 4, 4, 1}, 3),
		SinkLoc: []geom.Point{
			{},
			geom.Pt(0, 0),  // s1: the LCA itself
			geom.Pt(4, 0),  // s2
			geom.Pt(-5, 0), // s3
		},
	}
	db := UniformBounds(3, 0, 0.1)
	// Distance test alone: dist(1,2) − 0 − 0 = 4 ≤ dist(1,3) − cu1 − cu3
	// = 5 − 0.2 — it would pass; the degenerate-LCA guard must refuse.
	if dominatesWindow(deep, db, 1, 2, 1, 3) {
		t.Error("degenerate endpoint-at-LCA pair reported as window-dominated")
	}
}

// TestPresolveWitnessTies pins the tie rule: when every pair in a block
// scores equally (here via l == u windows making λ = cu), exactly one
// row — the witness — survives and the rest are counted as pruned.
func TestPresolveWitnessTies(t *testing.T) {
	in := forkInstance()
	b := UniformBounds(4, 11, 11) // l == u: λ = cu = 11 for every sink
	ps := newPresolve(in, b)
	// Three blocks: the 2×2 cross-branch block at the root plus the two
	// 1×1 sibling blocks under Steiner nodes 5 and 6.
	if len(ps.blocks) != 3 {
		t.Fatalf("fork instance built %d blocks, want 3", len(ps.blocks))
	}
	var root *psBlock
	for i := range ps.blocks {
		if ps.blocks[i].v == 0 {
			root = &ps.blocks[i]
		}
	}
	if root == nil {
		t.Fatal("no block at the root")
	}
	if !root.allDominated {
		t.Error("equal-window root block not statically dominated")
	}
	if root.wi < 0 || root.wi == root.wj {
		t.Errorf("degenerate witness (%d, %d)", root.wi, root.wj)
	}
	// The 2×2 root block keeps its witness and prunes the other 3 pairs;
	// the 1×1 sibling blocks have nothing beyond their witness to prune.
	if got := ps.prunedRows(); got != 3 {
		t.Errorf("prunedRows = %d, want 3", got)
	}
	// Exactly one seeded row per block — ties keep exactly one row.
	if pairs := ps.seedPairs(); len(pairs) != 3 {
		t.Errorf("seeded %d rows, want exactly one per block (3)", len(pairs))
	}
}

// TestPresolveOracleMatchesLegacy cross-checks the block-structured
// separation oracle against violatedPairsN on a real workload at the
// all-zero point: every row the block oracle emits must be a violation
// the legacy oracle also reports (the block oracle may emit fewer —
// dominated rows are its whole point — but never rows of its own).
func TestPresolveOracleMatchesLegacy(t *testing.T) {
	in, cb := benchInstance(t, "prim2-s")
	ps := newPresolve(in, cb)
	zero := make([]float64, in.Tree.N()) // zero edges ⇒ zero delays
	tol := 1e-7 * math.Max(1, in.Radius())
	got := ps.violatedPairs(zero, tol, 1<<30, 1)
	want := violatedPairsN(in, zero, tol, 1<<30, 1)
	if len(got) > len(want) {
		t.Fatalf("block oracle returned %d rows, legacy %d", len(got), len(want))
	}
	// Every emitted row must also be a legacy violation.
	seen := make(map[[2]int]bool, len(want))
	for _, pr := range want {
		seen[pr] = true
	}
	for _, pr := range got {
		if !seen[pr] {
			t.Fatalf("block oracle emitted %v which the legacy oracle does not report", pr)
		}
	}
	if len(got) == 0 {
		t.Fatal("block oracle found no violations at the zero point")
	}
}

func TestScaleSettingValidation(t *testing.T) {
	in := fig3Instance(t)
	b := UniformBounds(5, 4, 6)
	for _, opt := range []*Options{
		{Presolve: "bogus"},
		{Decompose: "always"},
	} {
		if _, err := Solve(in, b, opt); err == nil {
			t.Errorf("Solve accepted %+v", opt)
		}
	}
	// The documented values all resolve.
	for _, v := range []string{"", "on", "off"} {
		if _, err := Solve(in, b, &Options{Presolve: v, Decompose: v}); err != nil {
			t.Errorf("Solve(Presolve=Decompose=%q): %v", v, err)
		}
	}
}
