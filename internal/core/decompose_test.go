package core

import (
	"math"
	"os"
	"runtime"
	"testing"

	"lubt/internal/bst"
	"lubt/internal/geom"
	"lubt/internal/wkld"
)

// partInstance is benchInstance with the sector-partitioned baseline:
// the root gets one branch per angular sector (behind the Fig. 2
// forced-zero split spine), which is the topology class the subtree
// decomposition targets.
func partInstance(tb testing.TB, name string, sectors int) (*Instance, Bounds) {
	tb.Helper()
	b, err := wkld.Generate(name)
	if err != nil {
		tb.Fatal(err)
	}
	radius := 0.0
	for _, s := range b.Sinks {
		radius = math.Max(radius, geom.Dist(b.Source, s))
	}
	base, err := bst.RoutePartitioned(b.Sinks, 0.1*radius, b.Source, sectors)
	if err != nil {
		tb.Fatal(err)
	}
	in := &Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(b.Sinks)+1),
		Source:  &b.Source,
	}
	copy(in.SinkLoc[1:], b.Sinks)
	u := base.Stats.Max
	l := math.Max(0, u-0.1*radius)
	m := base.Tree.NumSinks
	cb := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	return in, cb
}

// TestDecomposeAgreement checks exactness of the fixed-source branch
// decomposition: on a multi-branch r4-s instance the decomposed solve
// must match the monolithic optimum at the 1e-6·radius bar, pass
// full-matrix verification, and report the branch count in the stats.
func TestDecomposeAgreement(t *testing.T) {
	in, cb := partInstance(t, "r4-s", 4)
	if n := len(effectiveRootBranches(in.Tree)); n != 4 {
		t.Fatalf("partitioned instance has %d effective root branches, want 4", n)
	}
	tol := 1e-6 * math.Max(1, in.Radius())
	mono := mustSolve(t, in, cb, &Options{Presolve: "off", Decompose: "off"})
	for _, pres := range []string{"on", "off"} {
		dec := mustSolve(t, in, cb, &Options{Presolve: pres, Decompose: "on"})
		if dec.Stats.Subtrees != 4 {
			t.Errorf("presolve %s: Subtrees = %d, want 4", pres, dec.Stats.Subtrees)
		}
		if d := math.Abs(dec.Cost - mono.Cost); d > tol {
			t.Errorf("presolve %s: decomposed cost %.10g vs monolithic %.10g: |Δ| = %g > %g",
				pres, dec.Cost, mono.Cost, d, tol)
		}
		if err := Verify(in, cb, dec.E, 1e-6); err != nil {
			t.Errorf("presolve %s: decomposed solution fails verification: %v", pres, err)
		}
		if dec.Stats.PeakRows <= 0 || dec.Stats.PeakRows > mono.Stats.PeakRows {
			t.Errorf("presolve %s: PeakRows = %d (monolithic %d), want a smaller positive tableau",
				pres, dec.Stats.PeakRows, mono.Stats.PeakRows)
		}
	}
}

// TestDecomposeDeterminism pins the worker-stripe guarantee: the
// decomposed solve must produce bit-identical trees and objective
// whether the branches run on one worker or on all of them. The test is
// meaningful under -race, where goroutine interleaving is perturbed.
func TestDecomposeDeterminism(t *testing.T) {
	in, cb := partInstance(t, "r3-s", 4)
	opt1 := &Options{Decompose: "on", Presolve: "on", OracleWorkers: 1}
	optN := &Options{Decompose: "on", Presolve: "on", OracleWorkers: runtime.GOMAXPROCS(0)}
	a := mustSolve(t, in, cb, opt1)
	b := mustSolve(t, in, cb, optN)
	if a.Cost != b.Cost {
		t.Errorf("cost differs across worker counts: %v vs %v", a.Cost, b.Cost)
	}
	for k := range a.E {
		if a.E[k] != b.E[k] {
			t.Fatalf("edge %d differs across worker counts: %v vs %v", k, a.E[k], b.E[k])
		}
	}
	if a.Stats.Subtrees != b.Stats.Subtrees || a.Stats.PresolvePrunedRows != b.Stats.PresolvePrunedRows {
		t.Errorf("stats differ across worker counts: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestDecomposeFallback: forcing decomposition on a single-branch
// topology must quietly run the monolithic path (Subtrees stays 0) and
// still solve correctly.
func TestDecomposeFallback(t *testing.T) {
	in, cb := benchInstance(t, "prim2-s") // plain bst.Route: one root branch
	res := mustSolve(t, in, cb, &Options{Decompose: "on"})
	if res.Stats.Subtrees != 0 {
		t.Errorf("Subtrees = %d on a single-branch topology", res.Stats.Subtrees)
	}
	if err := Verify(in, cb, res.E, 1e-6); err != nil {
		t.Errorf("fallback solution fails verification: %v", err)
	}
}

// TestDecomposeFreeSource exercises the coordinated free-source path:
// with Decompose "on" and no fixed source, the bounded outer passes must
// either certify the branch solution or fall back — in both cases the
// final answer has to agree with the monolithic optimum.
func TestDecomposeFreeSource(t *testing.T) {
	in, cb := partInstance(t, "prim2-s", 3)
	in.Source = nil
	tol := 1e-6 * math.Max(1, in.Radius())
	mono := mustSolve(t, in, cb, &Options{Decompose: "off"})
	dec := mustSolve(t, in, cb, &Options{Decompose: "on"})
	if d := math.Abs(dec.Cost - mono.Cost); d > tol {
		t.Errorf("free-source decomposed cost %.10g vs monolithic %.10g: |Δ| = %g > %g",
			dec.Cost, mono.Cost, d, tol)
	}
	if err := Verify(in, cb, dec.E, 1e-6); err != nil {
		t.Errorf("free-source solution fails verification: %v", err)
	}
	// Auto must never engage the free-source heuristic.
	auto := mustSolve(t, in, cb, nil)
	if auto.Stats.Subtrees != 0 {
		t.Errorf("auto engaged free-source decomposition: Subtrees = %d", auto.Stats.Subtrees)
	}
}

// TestDecomposeScaleAuto pins the auto gate end-to-end on an r6-class
// instance: at ScaleAutoSinks and beyond, a default Solve must engage
// both presolve and decomposition, agree with the forced-off paths, and
// shrink the peak tableau.
func TestDecomposeScaleAuto(t *testing.T) {
	if testing.Short() {
		t.Skip("r6-class instance in -short mode")
	}
	in, cb := partInstance(t, "r6-s", 8)
	res := mustSolve(t, in, cb, nil)
	if res.Stats.Subtrees != 8 {
		t.Errorf("auto Subtrees = %d, want 8", res.Stats.Subtrees)
	}
	if res.Stats.PresolvePrunedRows <= 0 {
		t.Errorf("auto PresolvePrunedRows = %d, want > 0", res.Stats.PresolvePrunedRows)
	}
	if err := Verify(in, cb, res.E, 1e-6); err != nil {
		t.Errorf("auto solution fails verification: %v", err)
	}
}

// TestDecomposeR6Full is the full 10 000-sink end-to-end acceptance run
// (sectored baseline, auto presolve + decomposition, full-matrix
// verification at 1e-6·radius). It takes minutes of routing + solving,
// so it only runs when LUBT_SCALE_FULL is set:
//
//	LUBT_SCALE_FULL=1 go test ./internal/core -run TestDecomposeR6Full -v
func TestDecomposeR6Full(t *testing.T) {
	if os.Getenv("LUBT_SCALE_FULL") == "" {
		t.Skip("full r6 scale run; set LUBT_SCALE_FULL=1 to enable")
	}
	in, cb := partInstance(t, "r6", 8)
	res := mustSolve(t, in, cb, nil)
	if res.Stats.Subtrees != 8 {
		t.Errorf("auto Subtrees = %d, want 8", res.Stats.Subtrees)
	}
	if res.Stats.PresolvePrunedRows <= 0 {
		t.Errorf("auto PresolvePrunedRows = %d, want > 0", res.Stats.PresolvePrunedRows)
	}
	tol := 1e-6 * math.Max(1, in.Radius())
	if err := Verify(in, cb, res.E, tol); err != nil {
		t.Errorf("r6 solution fails verification: %v", err)
	}
	t.Logf("r6: cost=%.0f rounds=%d pruned=%d peakRows=%d",
		res.Cost, res.Rounds, res.Stats.PresolvePrunedRows, res.Stats.PeakRows)
}
