package core

import (
	"fmt"
	"math"
	"time"

	"lubt/internal/delay"
	"lubt/internal/lp"
	"lubt/internal/obs"
)

// ElmoreOptions tune SolveElmore.
type ElmoreOptions struct {
	// Model supplies r_w, c_w and sink loads. Required.
	Model delay.Elmore
	// Solver selects an explicit cold solver; each SLP iteration then
	// rebuilds a dense lp.Problem from scratch (the ablation baseline).
	// Nil (the default) runs the whole SLP on one persistent revised
	// engine: the trust region is restaged as variable boxes, the
	// linearized delay windows are replaced in place, and each iteration
	// warm-starts from the previous basis.
	Solver lp.Solver
	// MaxIter bounds SLP iterations; 0 means 300.
	MaxIter int
	// Tol is the Elmore bound-violation tolerance relative to the bound
	// magnitudes; 0 means 1e-6.
	Tol float64
	// Weights as in Options.
	Weights []float64
	// Tracer records the SLP solve as spans (one "slp-iter" per
	// linearization, plus the warm start's "ebf" sub-tree). Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer
}

// ElmoreResult is the outcome of the sequential-LP heuristic.
type ElmoreResult struct {
	E          []float64 // edge lengths
	Cost       float64   // weighted wirelength
	Delays     []float64 // Elmore delays per node
	Iterations int
	// MaxViolation is the residual Elmore delay-window violation in time
	// units (≤ the solver tolerance × bound scale on success).
	MaxViolation float64
	// IterStats holds one lp.Stats record per SLP iteration, in iteration
	// order. On the default engine path each record is the delta of the
	// persistent engine's counters across that iteration (pivots taken,
	// restages and row replacements absorbed, refactorizations) with the
	// gauges sampled after its solve; on the cold-solver path it describes
	// that iteration's dense subproblem. Stats is their fold (plus the
	// warm start's record) via lp.Stats.Merge, so e.g. Stats.Restages
	// equals the engine's cumulative restage count.
	IterStats []lp.Stats
	Stats     lp.Stats
}

// statsDelta returns cur − prev on the cumulative engine counters while
// keeping cur's gauges: the per-iteration record of a persistent engine.
func statsDelta(cur, prev lp.Stats) lp.Stats {
	d := cur
	d.Pivots -= prev.Pivots
	d.Refactorizations -= prev.Refactorizations
	d.Resets -= prev.Resets
	d.BoundFlips -= prev.BoundFlips
	d.Restages -= prev.Restages
	d.RowReplacements -= prev.RowReplacements
	d.DevexResets -= prev.DevexResets
	d.ResetReasons = append([]string(nil), cur.ResetReasons[len(prev.ResetReasons):]...)
	d.ViolatedByRound = nil
	d.SeparationTime = 0
	d.SolveTime = 0
	d.Rounds = 0
	return d
}

// SolveElmore solves the EBF under the Elmore delay model (§7). The
// delay constraints are quadratic in the edge lengths, so — as the paper
// notes — the problem is no longer an LP; following the paper's
// suggestion of a general nonlinear method, we use sequential linear
// programming: linearize the Elmore delays around the current point with
// the exact gradient, solve the resulting LP inside an ∞-norm trust
// region, and accept or shrink classically. The Steiner constraints stay
// exact (they are linear), maintained by the same separation oracle as the
// linear solver. The result is feasible but only locally optimal; with
// l=0 the feasible set is convex and SLP converges to the global optimum
// in practice.
func SolveElmore(in *Instance, b Bounds, opt *ElmoreOptions) (*ElmoreResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opt == nil || (opt.Model.Rw == 0 && opt.Model.Cw == 0) {
		return nil, fmt.Errorf("core: SolveElmore requires an Elmore model")
	}
	t := in.Tree
	m := t.NumSinks
	if len(b.L) != m+1 || len(b.U) != m+1 {
		return nil, fmt.Errorf("core: bounds sized %d/%d for %d sinks", len(b.L), len(b.U), m)
	}
	solver := opt.Solver // nil (default) selects the persistent revised engine
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 300
	}
	n := t.N()
	w := (&Options{Weights: opt.Weights}).weights(n)
	mdl := opt.Model
	tr := opt.Tracer
	slpSpan := tr.Start("slp")
	defer slpSpan.End()

	// Starting point: the minimum-wirelength tree (Steiner constraints
	// only), which satisfies the geometric constraints exactly. A nil
	// opt.Solver selects the fast incremental engine.
	start, err := Solve(in, UniformBounds(m, 0, math.Inf(1)), &Options{Solver: opt.Solver, Weights: opt.Weights, Tracer: tr})
	if err != nil {
		return nil, fmt.Errorf("core: Elmore warm start failed: %w", err)
	}
	e := start.E
	// The merged record starts from the warm start's engine counters; each
	// SLP iteration folds its own per-subproblem record in below.
	mergedStats := start.Stats
	var iterStats []lp.Stats

	// Delay padding: sinks below their lower bound get their leaf edge
	// elongated by the positive root of the quadratic delay increment
	//
	//	Δdelay = (r_w c_w / 2) δ² + r_w (c_w e_i + C_i + c_w·pathlen) δ,
	//
	// which only ever increases delays, so a few passes meet every lower
	// bound; SLP then repairs any upper bounds broken in the process.
	if mdl.Rw > 0 && mdl.Cw > 0 {
		for pass := 0; pass < 30; pass++ {
			d := mdl.Delays(t, e)
			caps := mdl.SubtreeCaps(t, e)
			lin := t.Delays(e)
			padded := false
			for i := 1; i <= m; i++ {
				need := b.L[i] - d[i]
				if need <= 0 {
					continue
				}
				qa := mdl.Rw * mdl.Cw / 2
				qb := mdl.Rw * (mdl.Cw*e[i] + caps[i] + mdl.Cw*lin[t.Parent[i]])
				e[i] += (-qb + math.Sqrt(qb*qb+4*qa*need)) / (2 * qa)
				padded = true
			}
			if !padded {
				break
			}
		}
	}

	// Scales for the dimensionless violation measure: delay-bound
	// violations are in time units, Steiner violations in length units.
	timeScale := 0.0
	for i := 1; i <= m; i++ {
		if !math.IsInf(b.U[i], 1) {
			timeScale = math.Max(timeScale, math.Abs(b.U[i]))
		}
		timeScale = math.Max(timeScale, math.Abs(b.L[i]))
	}
	if timeScale == 0 {
		timeScale = 1 // no finite bounds: only Steiner feasibility matters
	}
	geoScale := 1 + in.Radius()
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-6
	}

	// boundViol is the worst delay-window violation in time units.
	boundViol := func(e []float64) float64 {
		d := mdl.Delays(t, e)
		worst := 0.0
		for i := 1; i <= m; i++ {
			worst = math.Max(worst, b.L[i]-d[i])
			if !math.IsInf(b.U[i], 1) {
				worst = math.Max(worst, d[i]-b.U[i])
			}
		}
		return worst
	}
	// violation is the dimensionless residual driving acceptance.
	violation := func(e []float64) float64 {
		return math.Max(boundViol(e)/timeScale, steinerViolation(in, e)/geoScale)
	}
	cost := func(e []float64) float64 { return weightedCost(w, e) }

	// Filter acceptance: a step is accepted when it reduces the true
	// violation, or keeps feasibility (violation ≤ tol) while reducing
	// cost. This is robust where a fixed-penalty merit function stalls on
	// slowly-improving violations.
	better := func(candV, candC, curV, curC float64) bool {
		if curV > tol {
			return candV < curV-1e-15 || (candV <= curV+1e-15 && candC < curC-1e-12)
		}
		return candV <= tol && candC < curC-1e-12
	}

	// Growing Steiner row pool (pairs), seeded like the linear solver.
	pool := map[pairKey][2]int{}
	addPair := func(pr [2]int) {
		i, j := pr[0], pr[1]
		if i > j {
			i, j = j, i
		}
		pool[pairKey{i, j}] = [2]int{i, j}
	}
	for _, pr := range seedPairs(in) {
		addPair(pr)
	}

	tau := math.Max(in.Radius()/4, 1e-3)
	best := append([]float64(nil), e...)
	bestV, bestC := violation(best), cost(best)
	// Elastic penalty per unit of delay-window slack (time units →
	// wirelength units); escalated when violation stops improving.
	penalty := 100 * (1 + cost(e)) / timeScale

	// Elastic slack columns: one per finite delay-bound side, fixed across
	// iterations (the bounds do not change, only the linearization does).
	nSlack := 0
	for i := 1; i <= m; i++ {
		if b.L[i] > 0 {
			nSlack++
		}
		if !math.IsInf(b.U[i], 1) {
			nSlack++
		}
	}
	// Default path: ONE persistent revised engine for the whole SLP. The
	// trust region lives in the variable boxes (restaged between solves,
	// zero rows), the linearized delay windows are rows replaced in place
	// each iteration (a true coefficient rewrite: one refactorization, but
	// the basis membership survives), the Steiner pool is append-only, and
	// penalty escalation restages the slack costs. Each iteration
	// warm-starts from the previous trust-region subproblem's basis.
	useEngine := solver == nil
	var (
		rv             *lp.Revised
		rowLow, rowUpp []int // sink → engine tableau row of that window side, or −1
		poolAdded      map[pairKey]bool
		lastPenalty    float64
		prevStats      lp.Stats
	)
	if useEngine {
		costs := make([]float64, n+nSlack)
		for k := 1; k < n; k++ {
			costs[k] = w[k]
		}
		for s := 0; s < nSlack; s++ {
			costs[n+s] = penalty
		}
		rv = lp.NewRevised(n+nSlack, costs)
		rv.SetTracer(tr)
		for k := 1; k < n; k++ {
			if t.ForcedZero[k] {
				rv.SetVarBounds(k, 0, 0)
			}
		}
		rowLow = make([]int, m+1)
		rowUpp = make([]int, m+1)
		for i := range rowLow {
			rowLow[i], rowUpp[i] = -1, -1
		}
		poolAdded = map[pairKey]bool{}
		lastPenalty = penalty
		prevStats = rv.Stats()
	}
	iters := 0
	for ; iters < maxIter; iters++ {
		// Refresh Steiner pool at the current point.
		for _, pr := range violatedPairs(in, e, 1e-9*(1+in.Radius()), 4*m) {
			addPair(pr)
		}
		// Linearize at a floored point: the Elmore delay is a convex
		// (posynomial) quadratic, so its tangent anywhere is a global
		// underestimator — lower-bound rows stay valid — and the floor
		// keeps the gradient from vanishing on zero-length subtrees.
		ep := make([]float64, n)
		// The floor shrinks with the trust region so its model bias
		// vanishes as the iteration converges.
		floor := math.Min(0.02*(1+in.Radius()), 0.1*tau)
		for k := 1; k < n; k++ {
			ep[k] = math.Max(e[k], floor)
			if t.ForcedZero[k] {
				ep[k] = e[k]
			}
		}
		d := mdl.Delays(t, ep)
		// The slp-iter span wraps the whole iteration step: on the engine
		// path that is restage (trust boxes, penalty costs, window-row
		// replacement) + warm solve; on the cold path, build + solve.
		isp := tr.Start("slp-iter")
		isp.SetInt("iter", iters)
		var (
			sol *lp.Solution
			err error
			ist lp.Stats
		)
		if useEngine {
			// Trust region as restaged variable boxes (zero rows).
			for k := 1; k < n; k++ {
				if t.ForcedZero[k] {
					continue
				}
				rv.SetVarBounds(k, math.Max(e[k]-tau, 0), e[k]+tau)
			}
			if penalty != lastPenalty {
				for s := 0; s < nSlack; s++ {
					rv.SetCost(n+s, penalty)
				}
				lastPenalty = penalty
			}
			// Append newly separated Steiner rows (the pool only grows).
			for key, pr := range pool {
				if poolAdded[key] {
					continue
				}
				poolAdded[key] = true
				rv.AddRow(unitTermsOf(t.Path(pr[0], pr[1])), lp.GE, in.Dist(pr[0], pr[1]))
			}
			// Linearized Elmore delay windows with elastic slack:
			// d_j(e0) + g_j·(e−e0) + s ≥ l,  d_j(e0) + g_j·(e−e0) − s' ≤ u,
			// replaced in place each iteration (the gradient moved).
			slot := n
			for i := 1; i <= m; i++ {
				g := mdl.Gradient(t, ep, i)
				var terms []lp.Term
				off := d[i]
				for k := 1; k < n; k++ {
					if g[k] != 0 {
						terms = append(terms, lp.Term{Var: k, Coef: g[k]})
						off -= g[k] * ep[k]
					}
				}
				if b.L[i] > 0 {
					rows := append(append([]lp.Term(nil), terms...), lp.Term{Var: slot, Coef: 1})
					if rowLow[i] < 0 {
						rowLow[i] = rv.TableauRows()
						rv.AddRangedRow(rows, b.L[i]-off, math.Inf(1))
					} else {
						rv.ReplaceRangedRow(rowLow[i], rows, b.L[i]-off, math.Inf(1))
					}
					slot++
				}
				if !math.IsInf(b.U[i], 1) {
					rows := append(append([]lp.Term(nil), terms...), lp.Term{Var: slot, Coef: -1})
					if rowUpp[i] < 0 {
						rowUpp[i] = rv.TableauRows()
						rv.AddRangedRow(rows, math.Inf(-1), b.U[i]-off)
					} else {
						rv.ReplaceRangedRow(rowUpp[i], rows, math.Inf(-1), b.U[i]-off)
					}
					slot++
				}
			}
			isp.SetInt("rows", rv.NumRows())
			t0 := time.Now()
			sol, err = rv.Solve()
			dt := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("core: SLP subproblem failed: %w", err)
			}
			// Per-iteration record: the engine's counter deltas across this
			// restage+solve, with the gauges sampled after it.
			cur := rv.Stats()
			ist = statsDelta(cur, prevStats)
			prevStats = cur
			ist.SolveTime = dt
			ist.Rounds = 1
		} else {
			// Ablation path (explicit cold Solver): a fresh dense Problem
			// per iteration, exactly the pre-restaging pipeline.
			p := lp.NewProblem(n + nSlack)
			for k := 1; k < n; k++ {
				p.SetCost(k, w[k])
			}
			for s := 0; s < nSlack; s++ {
				p.SetCost(n+s, penalty)
			}
			for k := 1; k < n; k++ {
				if t.ForcedZero[k] {
					p.AddSumEQ([]int{k}, 0, "")
					continue
				}
				// Trust region.
				p.AddConstraint([]lp.Term{{Var: k, Coef: 1}}, lp.LE, e[k]+tau, "")
				if lo := e[k] - tau; lo > 0 {
					p.AddConstraint([]lp.Term{{Var: k, Coef: 1}}, lp.GE, lo, "")
				}
			}
			for _, pr := range pool {
				path := t.Path(pr[0], pr[1])
				p.AddSumGE(path, in.Dist(pr[0], pr[1]), "")
			}
			slack := n
			for i := 1; i <= m; i++ {
				g := mdl.Gradient(t, ep, i)
				var terms []lp.Term
				off := d[i]
				for k := 1; k < n; k++ {
					if g[k] != 0 {
						terms = append(terms, lp.Term{Var: k, Coef: g[k]})
						off -= g[k] * ep[k]
					}
				}
				if b.L[i] > 0 {
					rows := append(append([]lp.Term(nil), terms...), lp.Term{Var: slack, Coef: 1})
					p.AddConstraint(rows, lp.GE, b.L[i]-off, "")
					slack++
				}
				if !math.IsInf(b.U[i], 1) {
					rows := append(append([]lp.Term(nil), terms...), lp.Term{Var: slack, Coef: -1})
					p.AddConstraint(rows, lp.LE, b.U[i]-off, "")
					slack++
				}
			}
			isp.SetInt("rows", len(p.Cons))
			t0 := time.Now()
			sol, err = solver.Solve(p)
			dt := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("core: SLP subproblem failed: %w", err)
			}
			// The subproblem is cold, so pivots, size and terminal residual
			// fully describe it.
			ist = lp.Stats{
				Pivots:             sol.Iterations,
				LogicalRows:        len(p.Cons),
				TableauRows:        len(p.Cons),
				LoweredTableauRows: len(p.Cons), // Problem rows are lowered on entry
				NumericalResidual:  sol.NumericalResidual,
				SolveTime:          dt,
				Rounds:             1,
				GaugesValid:        true,
			}
			for _, c := range p.Cons {
				ist.RowNonzeros += len(c.Terms)
			}
		}
		iterStats = append(iterStats, ist)
		mergedStats.Merge(ist)
		isp.SetInt("pivots", ist.Pivots)
		isp.SetInt("restages", ist.Restages)
		isp.SetInt("row_replacements", ist.RowReplacements)
		isp.SetString("status", sol.Status.String())
		isp.SetFloat("tau", tau)
		isp.End()
		if sol.Status != lp.Optimal {
			// Elastic rows make genuine infeasibility impossible; treat
			// solver trouble as a failed step.
			tau *= 0.5
			if tau < 1e-10*(1+in.Radius()) {
				break
			}
			continue
		}
		cand := make([]float64, n)
		copy(cand[1:], sol.X[1:n])
		step := 0.0
		for k := 1; k < n; k++ {
			step = math.Max(step, math.Abs(cand[k]-e[k]))
		}
		candV, candC := violation(cand), cost(cand)
		curV, curC := violation(e), cost(e)
		if better(candV, candC, curV, curC) {
			e = cand
			tau = math.Min(tau*1.5, 8*(1+in.Radius()))
			if better(candV, candC, bestV, bestC) {
				copy(best, cand)
				bestV, bestC = candV, candC
			}
		} else {
			tau *= 0.5
			if curV > tol {
				// Violation is stuck: escalate the elastic penalty so the
				// next subproblem prioritizes feasibility over cost.
				penalty = math.Min(penalty*4, 1e12*(1+cost(e))/timeScale)
			}
		}
		if curV <= tol && step < 1e-7*(1+in.Radius()) {
			break
		}
		if tau < 1e-10*(1+in.Radius()) {
			break
		}
	}
	e = best
	if v := violation(e); v > tol {
		return nil, fmt.Errorf("%w (Elmore SLP stalled with residual %g)", ErrInfeasible, v)
	}
	return &ElmoreResult{
		E:            e,
		Cost:         cost(e),
		Delays:       mdl.Delays(t, e),
		Iterations:   iters,
		MaxViolation: boundViol(e),
		IterStats:    iterStats,
		Stats:        mergedStats,
	}, nil
}
