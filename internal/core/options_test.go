package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

// randomInstance builds a random feasible instance for option-path tests.
func randomInstance(t *testing.T, seed int64, m int) (*Instance, Bounds) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree, err := topology.RandomBinary(rng, m, false)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
	for i := 1; i <= m; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*60, rng.Float64()*60)
	}
	r := in.Radius()
	return in, UniformBounds(m, 0.4*r, 1.4*r)
}

func TestSolveMaxRoundsExhausted(t *testing.T) {
	in, b := randomInstance(t, 201, 12)
	// One round with a tiny batch cannot converge on most instances; when
	// it cannot, the error must say so rather than return a wrong tree.
	_, err := Solve(in, b, &Options{MaxRounds: 1, Batch: 1})
	if err != nil && !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSolveSmallBatchStillOptimal(t *testing.T) {
	in, b := randomInstance(t, 202, 10)
	slow, err := Solve(in, b, &Options{Batch: 1, MaxRounds: 10000})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Solve(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.Cost-fast.Cost) > 1e-6*(1+fast.Cost) {
		t.Fatalf("batch=1 cost %g vs default %g", slow.Cost, fast.Cost)
	}
	if slow.Rounds <= fast.Rounds {
		t.Logf("note: batch=1 used %d rounds vs %d", slow.Rounds, fast.Rounds)
	}
}

func TestSolveCustomTol(t *testing.T) {
	in, b := randomInstance(t, 203, 8)
	res, err := Solve(in, b, &Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(in, b, res.E, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestSolveWeightsSizeMismatchPanics(t *testing.T) {
	in, b := randomInstance(t, 204, 5)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	_, _ = Solve(in, b, &Options{Weights: []float64{1, 2}})
}

func TestColdSolverPathsAgree(t *testing.T) {
	in, b := randomInstance(t, 205, 9)
	inc, err := Solve(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(in, b, &Options{Solver: &lp.Simplex{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inc.Cost-cold.Cost) > 1e-6*(1+cold.Cost) {
		t.Fatalf("incremental %g vs cold %g", inc.Cost, cold.Cost)
	}
}

func TestFullMatrixWithSource(t *testing.T) {
	rng := rand.New(rand.NewSource(206))
	tree, err := topology.RandomBinary(rng, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, 7)}
	for i := 1; i <= 6; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
	}
	src := geom.Pt(20, -10)
	in.Source = &src
	r := in.Radius()
	b := UniformBounds(6, 0, 1.5*r)
	full, err := Solve(in, b, &Options{FullMatrix: true})
	if err != nil {
		t.Fatal(err)
	}
	// Full matrix with a source includes the m source rows: C(6,2)+6 = 21.
	if full.RowsUsed != 21 {
		t.Fatalf("RowsUsed = %d, want 21", full.RowsUsed)
	}
	rg, err := Solve(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Cost-rg.Cost) > 1e-6*(1+rg.Cost) {
		t.Fatalf("full %g vs rowgen %g", full.Cost, rg.Cost)
	}
}

func TestSteinerViolationHelper(t *testing.T) {
	in, _ := randomInstance(t, 207, 6)
	zero := make([]float64, in.Tree.N())
	if v := steinerViolation(in, zero); v <= 0 {
		t.Fatalf("zero tree should violate Steiner constraints, got %g", v)
	}
	res, err := Solve(in, UniformBounds(6, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := steinerViolation(in, res.E); v > 1e-5 {
		t.Fatalf("optimal tree violates by %g", v)
	}
}
