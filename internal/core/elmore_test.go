package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lubt/internal/delay"
	"lubt/internal/geom"
	"lubt/internal/topology"
)

func elmoreInstance(t *testing.T, rng *rand.Rand, m int) *Instance {
	t.Helper()
	tree, err := topology.RandomBinary(rng, m, false)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
	for i := 1; i <= m; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return in
}

func TestSolveElmoreUpperBoundOnly(t *testing.T) {
	// Convex case (l = 0): cap the Elmore delay above the unconstrained
	// tree's worst delay — the Steiner-minimal tree must already satisfy
	// it, and the solve must return essentially that tree.
	rng := rand.New(rand.NewSource(71))
	in := elmoreInstance(t, rng, 5)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.2}
	unconstrained, err := Solve(in, UniformBounds(5, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 1; i <= 5; i++ {
		worst = math.Max(worst, mdl.Delays(in.Tree, unconstrained.E)[i])
	}
	b := Bounds{L: make([]float64, 6), U: make([]float64, 6)}
	for i := 1; i <= 5; i++ {
		b.U[i] = worst * 1.01
	}
	res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > unconstrained.Cost*1.01+1e-6 {
		t.Fatalf("loose Elmore cap should not raise cost: %g vs %g",
			res.Cost, unconstrained.Cost)
	}
}

func TestSolveElmoreTightUpperBound(t *testing.T) {
	// A binding upper bound: delays must come in under it, Steiner
	// feasibility must hold (verified via the linear-geometry oracle).
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(4)
		in := elmoreInstance(t, rng, m)
		mdl := delay.Elmore{Rw: 0.05, Cw: 0.1}
		unconstrained, err := Solve(in, UniformBounds(m, 0, math.Inf(1)), nil)
		if err != nil {
			t.Fatal(err)
		}
		dl := mdl.Delays(in.Tree, unconstrained.E)
		worst := 0.0
		for i := 1; i <= m; i++ {
			worst = math.Max(worst, dl[i])
		}
		// Cap at 0.95 of the unconstrained worst; trials where that is
		// genuinely unreachable for the topology report ErrInfeasible and
		// are skipped below.
		b := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
		for i := 1; i <= m; i++ {
			b.U[i] = worst * 0.95
		}
		res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue // genuinely too tight for this topology
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := mdl.Delays(in.Tree, res.E)
		for i := 1; i <= m; i++ {
			if d[i] > b.U[i]*1.000001+1e-9 {
				t.Fatalf("trial %d: delay %g above cap %g", trial, d[i], b.U[i])
			}
		}
		// Steiner feasibility with loose linear bounds.
		loose := UniformBounds(m, 0, math.Inf(1))
		if err := Verify(in, loose, res.E, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveElmoreLowerBound(t *testing.T) {
	// Non-zero lower bounds (the non-convex case): sinks must be slowed
	// down to at least l by wire elongation.
	rng := rand.New(rand.NewSource(73))
	in := elmoreInstance(t, rng, 4)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.1}
	unconstrained, err := Solve(in, UniformBounds(4, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	dl := mdl.Delays(in.Tree, unconstrained.E)
	worst := 0.0
	for i := 1; i <= 4; i++ {
		worst = math.Max(worst, dl[i])
	}
	b := Bounds{L: make([]float64, 5), U: make([]float64, 5)}
	for i := 1; i <= 4; i++ {
		b.L[i] = worst     // force every sink up to the worst delay
		b.U[i] = worst * 3 // generous cap
	}
	res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	d := mdl.Delays(in.Tree, res.E)
	if res.MaxViolation > 1e-5*(1+worst) {
		t.Fatalf("reported violation %g too large", res.MaxViolation)
	}
	for i := 1; i <= 4; i++ {
		if d[i] < worst-res.MaxViolation-1e-12 {
			t.Fatalf("delay(s%d) = %g below lower bound %g beyond reported violation %g",
				i, d[i], worst, res.MaxViolation)
		}
	}
	if res.MaxViolation > 1e-3 {
		t.Fatalf("residual violation %g", res.MaxViolation)
	}
}

func TestSolveElmoreRequiresModel(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	in := elmoreInstance(t, rng, 3)
	if _, err := SolveElmore(in, UniformBounds(3, 0, 1), nil); err == nil {
		t.Error("nil options accepted")
	}
	if _, err := SolveElmore(in, UniformBounds(3, 0, 1), &ElmoreOptions{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestSolveElmoreBadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	in := elmoreInstance(t, rng, 3)
	bad := Bounds{L: make([]float64, 2), U: make([]float64, 2)}
	if _, err := SolveElmore(in, bad, &ElmoreOptions{Model: delay.Elmore{Rw: 1, Cw: 1}}); err == nil {
		t.Error("mis-sized bounds accepted")
	}
}
