package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lubt/internal/delay"
	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

func elmoreInstance(t *testing.T, rng *rand.Rand, m int) *Instance {
	t.Helper()
	tree, err := topology.RandomBinary(rng, m, false)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
	for i := 1; i <= m; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	return in
}

func TestSolveElmoreUpperBoundOnly(t *testing.T) {
	// Convex case (l = 0): cap the Elmore delay above the unconstrained
	// tree's worst delay — the Steiner-minimal tree must already satisfy
	// it, and the solve must return essentially that tree.
	rng := rand.New(rand.NewSource(71))
	in := elmoreInstance(t, rng, 5)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.2}
	unconstrained, err := Solve(in, UniformBounds(5, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 1; i <= 5; i++ {
		worst = math.Max(worst, mdl.Delays(in.Tree, unconstrained.E)[i])
	}
	b := Bounds{L: make([]float64, 6), U: make([]float64, 6)}
	for i := 1; i <= 5; i++ {
		b.U[i] = worst * 1.01
	}
	res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > unconstrained.Cost*1.01+1e-6 {
		t.Fatalf("loose Elmore cap should not raise cost: %g vs %g",
			res.Cost, unconstrained.Cost)
	}
}

func TestSolveElmoreTightUpperBound(t *testing.T) {
	// A binding upper bound: delays must come in under it, Steiner
	// feasibility must hold (verified via the linear-geometry oracle).
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(4)
		in := elmoreInstance(t, rng, m)
		mdl := delay.Elmore{Rw: 0.05, Cw: 0.1}
		unconstrained, err := Solve(in, UniformBounds(m, 0, math.Inf(1)), nil)
		if err != nil {
			t.Fatal(err)
		}
		dl := mdl.Delays(in.Tree, unconstrained.E)
		worst := 0.0
		for i := 1; i <= m; i++ {
			worst = math.Max(worst, dl[i])
		}
		// Cap at 0.95 of the unconstrained worst; trials where that is
		// genuinely unreachable for the topology report ErrInfeasible and
		// are skipped below.
		b := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
		for i := 1; i <= m; i++ {
			b.U[i] = worst * 0.95
		}
		res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue // genuinely too tight for this topology
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		d := mdl.Delays(in.Tree, res.E)
		for i := 1; i <= m; i++ {
			if d[i] > b.U[i]*1.000001+1e-9 {
				t.Fatalf("trial %d: delay %g above cap %g", trial, d[i], b.U[i])
			}
		}
		// Steiner feasibility with loose linear bounds.
		loose := UniformBounds(m, 0, math.Inf(1))
		if err := Verify(in, loose, res.E, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSolveElmoreLowerBound(t *testing.T) {
	// Non-zero lower bounds (the non-convex case): sinks must be slowed
	// down to at least l by wire elongation.
	rng := rand.New(rand.NewSource(73))
	in := elmoreInstance(t, rng, 4)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.1}
	unconstrained, err := Solve(in, UniformBounds(4, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	dl := mdl.Delays(in.Tree, unconstrained.E)
	worst := 0.0
	for i := 1; i <= 4; i++ {
		worst = math.Max(worst, dl[i])
	}
	b := Bounds{L: make([]float64, 5), U: make([]float64, 5)}
	for i := 1; i <= 4; i++ {
		b.L[i] = worst     // force every sink up to the worst delay
		b.U[i] = worst * 3 // generous cap
	}
	res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	d := mdl.Delays(in.Tree, res.E)
	if res.MaxViolation > 1e-5*(1+worst) {
		t.Fatalf("reported violation %g too large", res.MaxViolation)
	}
	for i := 1; i <= 4; i++ {
		if d[i] < worst-res.MaxViolation-1e-12 {
			t.Fatalf("delay(s%d) = %g below lower bound %g beyond reported violation %g",
				i, d[i], worst, res.MaxViolation)
		}
	}
	if res.MaxViolation > 1e-3 {
		t.Fatalf("residual violation %g", res.MaxViolation)
	}
}

func TestSolveElmoreRequiresModel(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	in := elmoreInstance(t, rng, 3)
	if _, err := SolveElmore(in, UniformBounds(3, 0, 1), nil); err == nil {
		t.Error("nil options accepted")
	}
	if _, err := SolveElmore(in, UniformBounds(3, 0, 1), &ElmoreOptions{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestSolveElmoreBadBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	in := elmoreInstance(t, rng, 3)
	bad := Bounds{L: make([]float64, 2), U: make([]float64, 2)}
	if _, err := SolveElmore(in, bad, &ElmoreOptions{Model: delay.Elmore{Rw: 1, Cw: 1}}); err == nil {
		t.Error("mis-sized bounds accepted")
	}
}

// elmoreWindowInstance builds a two-sided-window Elmore problem that
// needs several SLP iterations: non-zero lower bounds force elongation
// and a finite cap keeps both window sides stated.
func elmoreWindowInstance(t *testing.T, seed int64, m int) (*Instance, Bounds, delay.Elmore) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := elmoreInstance(t, rng, m)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.1}
	unconstrained, err := Solve(in, UniformBounds(m, 0, math.Inf(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	dl := mdl.Delays(in.Tree, unconstrained.E)
	worst := 0.0
	for i := 1; i <= m; i++ {
		worst = math.Max(worst, dl[i])
	}
	b := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		b.L[i] = worst
		b.U[i] = worst * 3
	}
	return in, b, mdl
}

// TestElmoreIterStatsMerge is the regression test for the per-iteration
// stats record: on the default engine path every IterStats entry must be
// a real counter delta of the persistent engine (restages and row
// replacements included) whose sum telescopes to the merged record, and
// its gauges must reflect the boxed engine's single-row ranged windows —
// not the len(p.Cons) mislabel the dense path used to stamp on both
// fields.
func TestElmoreIterStatsMerge(t *testing.T) {
	in, b, mdl := elmoreWindowInstance(t, 76, 5)
	res, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	// A convergence break exits the loop after recording the final
	// iteration but before the counter increments, so the record count is
	// Iterations or Iterations+1.
	if n := len(res.IterStats); n != res.Iterations && n != res.Iterations+1 {
		t.Fatalf("%d IterStats records for %d iterations", n, res.Iterations)
	}
	if res.Iterations < 2 {
		t.Fatalf("window instance converged in %d iterations; the restage path never ran", res.Iterations)
	}
	var sumPivots, sumRestages, sumReplacements int
	for it, ist := range res.IterStats {
		sumPivots += ist.Pivots
		sumRestages += ist.Restages
		sumReplacements += ist.RowReplacements
		if !ist.GaugesValid {
			t.Errorf("iteration %d: gauges not sampled from the engine", it)
		}
		// Real engine gauges, not a hand-stamped per-Problem record: the
		// stored-nonzero count is live and the lowered count can only meet
		// or exceed the tableau count (the SLP's window sides are one-sided
		// rows, so here they coincide — but never undershoot).
		if ist.RowNonzeros <= 0 || ist.TableauRows <= 0 {
			t.Errorf("iteration %d: empty row gauges (%d rows, %d nnz)",
				it, ist.TableauRows, ist.RowNonzeros)
		}
		if ist.LoweredTableauRows < ist.TableauRows {
			t.Errorf("iteration %d: lowered %d < tableau %d",
				it, ist.LoweredTableauRows, ist.TableauRows)
		}
		if ist.Rounds != 1 {
			t.Errorf("iteration %d: rounds = %d, want 1", it, ist.Rounds)
		}
		// Counter deltas of a persistent engine are never negative; a
		// negative delta means statsDelta and the engine's cumulative
		// counters (DevexResets across restages especially) disagree.
		if ist.Pivots < 0 || ist.Restages < 0 || ist.RowReplacements < 0 ||
			ist.Refactorizations < 0 || ist.DevexResets < 0 || ist.BoundFlips < 0 {
			t.Errorf("iteration %d: negative counter delta: %+v", it, ist)
		}
	}
	// Iteration 1 builds the engine pre-solve (no restaging yet); every
	// later iteration restages the trust boxes.
	if res.IterStats[0].Restages != 0 {
		t.Errorf("iteration 0 restaged %d times before the first solve", res.IterStats[0].Restages)
	}
	for it := 1; it < len(res.IterStats); it++ {
		if res.IterStats[it].Restages == 0 {
			t.Errorf("iteration %d: no trust-region restage recorded", it)
		}
	}
	if sumRestages == 0 {
		t.Error("no restages across the whole SLP — the engine is being rebuilt per iteration")
	}
	// The merged record folds the warm start (which restages nothing) plus
	// the per-iteration deltas, so the cumulative engine counters must
	// telescope exactly.
	if res.Stats.Restages != sumRestages {
		t.Errorf("merged Restages %d != Σ per-iteration %d", res.Stats.Restages, sumRestages)
	}
	if res.Stats.RowReplacements != sumReplacements {
		t.Errorf("merged RowReplacements %d != Σ per-iteration %d", res.Stats.RowReplacements, sumReplacements)
	}
	if res.Stats.Pivots < sumPivots {
		t.Errorf("merged Pivots %d < Σ per-iteration %d (warm start missing?)", res.Stats.Pivots, sumPivots)
	}
}

// TestElmoreEngineVsDenseAblation runs the same window instance through
// the default persistent engine and the explicit cold-solver ablation:
// both must satisfy the windows, and the cold path's IterStats must keep
// its documented dense shape (logical == tableau == lowered rows).
func TestElmoreEngineVsDenseAblation(t *testing.T) {
	in, b, mdl := elmoreWindowInstance(t, 77, 4)
	warm, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveElmore(in, b, &ElmoreOptions{Model: mdl, Solver: &lp.Simplex{}})
	if err != nil {
		t.Fatal(err)
	}
	scale := 1 + math.Max(warm.Cost, cold.Cost)
	for _, res := range []*ElmoreResult{warm, cold} {
		d := mdl.Delays(in.Tree, res.E)
		for i := 1; i <= in.Tree.NumSinks; i++ {
			if d[i] < b.L[i]-res.MaxViolation-1e-9*scale || d[i] > b.U[i]+res.MaxViolation+1e-9*scale {
				t.Errorf("delay(s%d) = %g outside [%g, %g] beyond reported violation %g",
					i, d[i], b.L[i], b.U[i], res.MaxViolation)
			}
		}
	}
	// SLP is a local heuristic, but on the same instance the two pivot
	// paths should land within a few percent of each other.
	if ratio := warm.Cost / cold.Cost; ratio > 1.05 || ratio < 1/1.05 {
		t.Errorf("engine cost %g vs dense-ablation cost %g (ratio %g)", warm.Cost, cold.Cost, ratio)
	}
	for it, ist := range cold.IterStats {
		if ist.Restages != 0 || ist.RowReplacements != 0 {
			t.Errorf("cold iteration %d reports restages %d / replacements %d",
				it, ist.Restages, ist.RowReplacements)
		}
		if ist.LogicalRows != ist.TableauRows || ist.TableauRows != ist.LoweredTableauRows {
			t.Errorf("cold iteration %d: rows %d/%d/%d, want identical dense counts",
				it, ist.LogicalRows, ist.TableauRows, ist.LoweredTableauRows)
		}
	}
	if warm.Stats.Restages == 0 {
		t.Error("engine path recorded no restages")
	}
	if cold.Stats.Restages != 0 {
		t.Errorf("dense ablation recorded %d restages", cold.Stats.Restages)
	}
}
