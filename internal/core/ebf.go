package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"lubt/internal/lp"
	"lubt/internal/obs"
)

// Options tune the EBF solve.
type Options struct {
	// Solver selects an explicit cold solver (two-phase simplex or the
	// interior-point method); each row-generation round then re-solves the
	// whole LP from scratch. Nil (the default) picks an incremental warm
	// engine instead, chosen by Engine.
	Solver lp.Solver
	// Engine selects the incremental engine used when Solver is nil:
	// "" or "revised" is the sparse revised dual simplex (the default),
	// "dense" or "densesimplex" the dense-tableau ablation engine.
	Engine string
	// Pricing selects the leaving-row rule of the revised engine (see
	// lp.ParsePricing): "" or "devex" (the default), "mostviolated" for
	// the classic most-violated rule, "steepest" for the exact
	// steepest-edge cross-check. Only meaningful for the revised engine;
	// setting it with a cold Solver or the dense engine is an error.
	Pricing string
	// OracleWorkers bounds the separation-oracle worker pool; 0 means
	// GOMAXPROCS. The oracle's output is deterministic regardless.
	OracleWorkers int
	// Weights is the per-edge objective weight w_k (§7 "different weights
	// on edges"), indexed by edge; nil means all ones. Entry 0 is unused.
	Weights []float64
	// FullMatrix disables row generation and states all C(m,2) Steiner
	// rows upfront (the ablation baseline for §4.6).
	FullMatrix bool
	// MaxRounds bounds row-generation rounds; 0 means 200.
	MaxRounds int
	// Batch is the number of violated rows added per round; 0 means
	// max(64, m).
	Batch int
	// Tol is the Steiner-violation tolerance, scaled by the instance
	// radius; 0 means 1e-7.
	Tol float64
	// Presolve controls the dominance-pruning presolve pass (see
	// presolve.go): "" is auto — on for instances with at least
	// ScaleAutoSinks sinks, keeping the legacy oracle byte-for-byte on
	// every smaller instance — "on" forces it, "off" disables it.
	// Presolve requires the Lemma 3.1 all-sinks-are-leaves topology;
	// otherwise the legacy oracle runs regardless of this setting.
	// FullMatrix and the ECO Session always run without presolve (the
	// Session's window edits would invalidate the dominance witnesses).
	Presolve string
	// Decompose controls root-branch subtree decomposition (see
	// decompose.go): "" is auto — on when the source is fixed, the
	// topology has at least two root branches and the instance has at
	// least ScaleAutoSinks sinks — "on" forces it where structurally
	// possible (with a free source this engages the bounded
	// outer-coordination passes and falls back to the monolithic solve
	// when branches stay coupled), "off" disables it.
	Decompose string
	// Tracer records solve spans (rounds, LP solves, separation scans,
	// engine refactorizations) when non-nil. Nil disables tracing at zero
	// cost — every obs call is a nil-receiver no-op.
	Tracer *obs.Tracer
}

// ScaleAutoSinks is the sink count at which the "" (auto) settings of
// Options.Presolve and Options.Decompose engage: large enough that every
// benchmark class at or below r5-s keeps the legacy monolithic path (and
// its pinned pivot trajectories), small enough that the r6/r7 scale
// classes get the pruned, decomposed path by default.
const ScaleAutoSinks = 2048

// scaleSetting lowers a Presolve/Decompose option string to a decision
// for an instance with m sinks ("" = auto at the ScaleAutoSinks
// threshold). Unknown values are reported by Validate-time callers.
func scaleSetting(s string, m int) (bool, error) {
	switch s {
	case "":
		return m >= ScaleAutoSinks, nil
	case "on":
		return true, nil
	case "off":
		return false, nil
	}
	return false, fmt.Errorf("core: unknown presolve/decompose setting %q (want \"\", \"on\" or \"off\")", s)
}

// scaleSettings resolves both scale options against the instance.
// FullMatrix disables presolve (the ablation states every row by
// definition) and decomposition; auto decomposition additionally
// requires a fixed source — the regime where root branches are exactly
// independent given the seeded source rows.
func (o *Options) scaleSettings(in *Instance) (presolveOn, decomposeOn bool, err error) {
	m := in.Tree.NumSinks
	pStr, dStr := "", ""
	full := false
	if o != nil {
		pStr, dStr, full = o.Presolve, o.Decompose, o.FullMatrix
	}
	presolveOn, err = scaleSetting(pStr, m)
	if err != nil {
		return false, false, err
	}
	decomposeOn, err = scaleSetting(dStr, m)
	if err != nil {
		return false, false, err
	}
	if full {
		presolveOn, decomposeOn = false, false
	}
	if dStr == "" && in.Source == nil {
		decomposeOn = false // auto never engages the coupled-source heuristic
	}
	if !in.Tree.AllSinksAreLeaves() {
		// The block oracle enumerates sink pairs by (LCA, child-subtree
		// pair); a sink that is an ancestor of another sink forms pairs
		// outside every block, so dominance pruning is complete only under
		// the Lemma 3.1 all-sinks-are-leaves condition. Fall back to the
		// legacy oracle (stats report zero pruned rows) otherwise.
		presolveOn = false
	}
	return presolveOn, decomposeOn, nil
}

// tracer returns the configured tracer, nil (disabled) when opt is nil.
func (o *Options) tracer() *obs.Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// engine builds the RowEngine the row-generation loop runs on: a warm
// incremental engine by default, or a cold adapter around the explicit
// solver for cross-checking and ablation.
func (o *Options) engine(n int, w []float64) (lp.RowEngine, error) {
	pricing := ""
	if o != nil {
		pricing = o.Pricing
	}
	if o != nil && o.Solver != nil {
		if pricing != "" {
			return nil, fmt.Errorf("core: Pricing %q has no effect with an explicit cold Solver", pricing)
		}
		return newColdEngine(n, w, o.Solver), nil
	}
	name := ""
	if o != nil {
		name = o.Engine
	}
	switch name {
	case "", "revised":
		p, err := lp.ParsePricing(pricing)
		if err != nil {
			return nil, fmt.Errorf("core: %v", err)
		}
		rv := lp.NewRevised(n, w)
		rv.SetPricing(p)
		return rv, nil
	case "dense", "densesimplex":
		if pricing != "" {
			return nil, fmt.Errorf("core: Pricing %q has no effect with the dense engine", pricing)
		}
		return lp.NewIncremental(n, w), nil
	}
	return nil, fmt.Errorf("core: unknown LP engine %q", name)
}

// loopParams lowers the option fields driving the row-generation loop to
// their effective values (defaults applied, tolerance scaled by radius).
func (o *Options) loopParams(in *Instance) (maxRounds, batch int, tol float64, workers int) {
	maxRounds = 200
	if o != nil && o.MaxRounds > 0 {
		maxRounds = o.MaxRounds
	}
	if o != nil {
		batch = o.Batch
	}
	if batch == 0 {
		batch = in.Tree.NumSinks
		if batch < 64 {
			batch = 64
		}
	}
	tol = 1e-7
	if o != nil && o.Tol > 0 {
		tol = o.Tol
	}
	tol *= math.Max(1, in.Radius())
	if o != nil {
		workers = o.OracleWorkers
	}
	return maxRounds, batch, tol, workers
}

func (o *Options) weights(n int) []float64 {
	if o != nil && o.Weights != nil {
		if len(o.Weights) != n {
			panic(fmt.Sprintf("core: %d weights for %d edges", len(o.Weights), n))
		}
		return o.Weights
	}
	w := make([]float64, n)
	for i := 1; i < n; i++ {
		w[i] = 1
	}
	return w
}

// pairKey identifies an unordered fixed-point pair (stored with i ≤ j).
type pairKey struct{ i, j int }

// delayWindow lowers a sink's delay bounds (l, u) to the ranged-row
// window the engines consume: a non-positive lower bound is vacuous (path
// lengths are non-negative), an exact l = u window survives even at zero,
// and a fully unbounded window states no row at all (ok = false).
func delayWindow(l, u float64) (lo, hi float64, ok bool) {
	lo = l
	if lo <= 0 {
		lo = math.Inf(-1)
	}
	hi = u
	if l == u {
		lo, hi = l, u
	}
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		return 0, 0, false
	}
	return lo, hi, true
}

// genState is the row-generation loop state, shared between Solve (one
// run to convergence, then discarded) and the ECO Session (one run per
// Resolve against the same warm engine and Steiner row pool).
type genState struct {
	in        *Instance
	eng       lp.RowEngine
	w         []float64
	have      map[pairKey]bool
	full      bool
	batch     int
	maxRounds int
	tol       float64 // already scaled by the instance radius
	workers   int
	tr        *obs.Tracer
	// ps, when non-nil, replaces the flat separation scan with the
	// block-structured dominance-pruning oracle (presolve.go).
	ps *presolve
}

// addPair states the Steiner row for fixed-point pair (i, j) once.
func (g *genState) addPair(i, j int) {
	if i > j {
		i, j = j, i
	}
	k := pairKey{i, j}
	if g.have[k] {
		return
	}
	g.have[k] = true
	g.eng.AddRow(unitTermsOf(g.in.Tree.Path(i, j)), lp.GE, g.in.Dist(i, j))
}

// run executes separation rounds — solve, scan, append violated rows —
// until the oracle comes back clean, and assembles the Result from the
// engine's cumulative counters.
func (g *genState) run() (*Result, error) {
	t := g.in.Tree
	n := t.N()
	res := &Result{}
	var violByRound []int
	var solveTime, sepTime time.Duration
	for round := 0; ; round++ {
		if round >= g.maxRounds {
			return nil, fmt.Errorf("core: row generation did not converge in %d rounds", g.maxRounds)
		}
		rsp := g.tr.Start("round")
		rsp.SetInt("round", round)
		rsp.SetInt("rows", g.eng.NumRows())

		lsp := g.tr.Start("lp-solve")
		t0 := time.Now()
		sol, err := g.eng.Solve()
		solveTime += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("core: LP solve failed: %w", err)
		}
		lsp.SetInt("pivots", g.eng.Iterations())
		lsp.SetString("status", sol.Status.String())
		lsp.End()
		switch sol.Status {
		case lp.Optimal:
		case lp.Infeasible:
			// A subset of the true constraints is already infeasible, so
			// the full problem is too.
			return nil, fmt.Errorf("%w (LP infeasible after %d rounds)", ErrInfeasible, round)
		default:
			return nil, fmt.Errorf("core: LP returned %v", sol.Status)
		}
		res.Rounds = round + 1
		res.LPIterations = g.eng.Iterations()

		e := make([]float64, n)
		copy(e[1:], sol.X[1:n])
		ssp := g.tr.Start("separation")
		t1 := time.Now()
		var viol [][2]int
		if g.ps != nil {
			viol = g.ps.violatedPairs(t.Delays(e), g.tol, g.batch, g.workers)
		} else {
			viol = violatedPairsN(g.in, e, g.tol, g.batch, g.workers)
		}
		sepTime += time.Since(t1)
		ssp.SetInt("violated", len(viol))
		ssp.End()
		violByRound = append(violByRound, len(viol))
		rsp.End()
		if len(viol) == 0 || g.full {
			res.E = e
			res.Delays = t.Delays(e)
			res.Cost = weightedCost(g.w, e)
			res.RowsUsed = len(g.have)
			st := g.eng.Stats()
			st.Rounds = res.Rounds
			st.ViolatedByRound = violByRound
			st.SolveTime = solveTime
			st.SeparationTime = sepTime
			if g.ps != nil {
				st.PresolvePrunedRows = g.ps.prunedRows()
			}
			st.PeakRows = g.eng.TableauRows()
			res.Stats = st
			return res, nil
		}
		for _, pr := range viol {
			g.addPair(pr[0], pr[1])
		}
	}
}

// Result is a solved EBF instance.
type Result struct {
	// E holds the optimal edge lengths, indexed by edge (entry 0 unused).
	E []float64
	// Cost is the weighted tree cost Σ w_k e_k.
	Cost float64
	// Delays holds per-node linear delays under E.
	Delays []float64
	// Rounds is the number of row-generation rounds used.
	Rounds int
	// RowsUsed is the number of Steiner rows in the final LP (compare
	// against C(m,2) for the §4.6 reduction factor).
	RowsUsed int
	// LPIterations accumulates simplex/IPM iterations across rounds.
	LPIterations int
	// Stats is the unified observability record: engine counters (pivots,
	// refactorizations, basis size, fill-in) plus row-generation fields
	// (rounds, per-round violated counts, separation and solve wall time).
	Stats lp.Stats
}

// Solve computes the minimum-cost LUBT edge lengths for the instance and
// bounds (Theorem 4.2). It returns ErrInfeasible when no tree satisfies
// the bounds under the given topology.
//
// By default (Options.Solver nil) the row-generation loop runs on the
// sparse revised dual-simplex engine, which warm-starts from the previous
// basis after each batch of violated Steiner rows — the fast realization
// of the §4.6 constraint reduction. Options.Engine selects the dense
// tableau engine instead for ablation; passing an explicit Solver (cold
// simplex or the interior-point method) re-solves each round from
// scratch for cross-checking. All paths share this one loop, written
// against lp.RowEngine.
func Solve(in *Instance, b Bounds, opt *Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(in); err != nil {
		return nil, err
	}
	t := in.Tree
	n := t.N() // LP variables: edges 1…n−1 mapped to columns 1…n−1 (column 0 unused but harmless)
	maxRounds, batch, tol, workers := opt.loopParams(in)
	w := opt.weights(n)

	presolveOn, decomposeOn, err := opt.scaleSettings(in)
	if err != nil {
		return nil, err
	}
	if decomposeOn {
		if res, done, err := solveDecomposed(in, b, opt, presolveOn); done {
			return res, err
		}
		// Not decomposable (or branches stayed coupled): monolithic path.
	}

	tr := opt.tracer()
	ebfSpan := tr.Start("ebf")
	defer ebfSpan.End()

	eng, err := opt.engine(n, w)
	if err != nil {
		return nil, err
	}
	// Engines with internal phases (the revised engine's refactorizations
	// and resets) record them as spans under the current round.
	if tc, ok := eng.(lp.Traceable); ok {
		tc.SetTracer(tr)
	}
	// Forced-zero edges from degree splitting: engines with native
	// variable boxes (the boxed revised dual simplex) fix the variable —
	// zero rows, zero ratio-test work — everyone else gets an explicit EQ
	// row. Then the delay rows (§4.2): each finite window l ≤ path ≤ u is
	// ONE logical ranged row (the boxed engine stores it once with the
	// row's slack bounded by u − l; the dense/cold engines lower it back
	// to the classic ≤/≥ pair), one-sided windows degrade to single rows,
	// and l = u pins the row's slack instead of splitting an equality.
	vb, _ := eng.(lp.VarBounder)
	for k := 1; k < n; k++ {
		if t.ForcedZero[k] {
			if vb != nil {
				vb.SetVarBounds(k, 0, 0)
			} else {
				eng.AddRow([]lp.Term{{Var: k, Coef: 1}}, lp.EQ, 0)
			}
		}
	}
	for i := 1; i <= t.NumSinks; i++ {
		lo, hi, ok := delayWindow(b.L[i], b.U[i])
		if !ok {
			continue // fully unbounded window: no constraint at all
		}
		eng.AddRangedRow(unitTermsOf(t.PathToRoot(i)), lo, hi)
	}

	gen := &genState{
		in:        in,
		eng:       eng,
		w:         w,
		have:      map[pairKey]bool{},
		full:      opt != nil && opt.FullMatrix,
		batch:     batch,
		maxRounds: maxRounds,
		tol:       tol,
		workers:   workers,
		tr:        tr,
	}
	if presolveOn && !gen.full {
		gen.ps = newPresolve(in, b)
	}
	switch {
	case gen.full:
		for i := 1; i <= t.NumSinks; i++ {
			for j := i + 1; j <= t.NumSinks; j++ {
				gen.addPair(i, j)
			}
		}
		if in.Source != nil {
			for i := 1; i <= t.NumSinks; i++ {
				gen.addPair(0, i)
			}
		}
	case gen.ps != nil:
		// Dominance needs every block witness stated from round 0; implied
		// source rows are dropped here — the prune half of presolve.
		for _, pr := range gen.ps.seedPairs() {
			gen.addPair(pr[0], pr[1])
		}
	default:
		for _, pr := range seedPairs(in) {
			gen.addPair(pr[0], pr[1])
		}
	}
	return gen.run()
}

// coldEngine adapts an explicit lp.Solver to the RowEngine interface: rows
// accumulate in one Problem and every Solve re-optimizes it from scratch.
// It exists for cross-checking the warm engines against the cold simplex
// and the interior-point method.
type coldEngine struct {
	p           *lp.Problem
	solver      lp.Solver
	iterations  int
	logicalRows int
	tableauRows int
	rangedRows  int
	// residual is the worst Solution.NumericalResidual any solve reported
	// (the cold solvers' terminal numerical-health gauge).
	residual float64
}

func newColdEngine(n int, w []float64, solver lp.Solver) *coldEngine {
	p := lp.NewProblem(n)
	for k := 1; k < n; k++ {
		p.SetCost(k, w[k])
	}
	// Variable 0 is a dummy (edges are 1-indexed); pin it to zero so the
	// interior-point method never sees a dangling column.
	p.AddSumEQ([]int{0}, 0, "dummy")
	return &coldEngine{p: p, solver: solver}
}

func (ce *coldEngine) AddRow(terms []lp.Term, op lp.Op, rhs float64) {
	ce.logicalRows++
	ce.tableauRows++
	if op == lp.EQ {
		ce.tableauRows++
		ce.rangedRows++
	}
	ce.p.AddConstraint(terms, op, rhs, "")
}

// AddRangedRow lowers lo ≤ Σ terms ≤ hi to the constraint forms the cold
// solvers (two-phase simplex, interior point) understand: an EQ row for an
// exact window, otherwise the finite sides as GE/LE rows. One logical row
// either way, matching the RowEngine counting contract.
func (ce *coldEngine) AddRangedRow(terms []lp.Term, lo, hi float64) {
	ce.logicalRows++
	switch {
	case lo == hi:
		ce.rangedRows++
		ce.tableauRows += 2
		ce.p.AddConstraint(terms, lp.EQ, lo, "")
	default:
		if !math.IsInf(lo, -1) && !math.IsInf(hi, 1) {
			ce.rangedRows++
		}
		if !math.IsInf(lo, -1) {
			ce.tableauRows++
			ce.p.AddConstraint(terms, lp.GE, lo, "")
		}
		if !math.IsInf(hi, 1) {
			ce.tableauRows++
			ce.p.AddConstraint(terms, lp.LE, hi, "")
		}
	}
}

func (ce *coldEngine) Solve() (*lp.Solution, error) {
	sol, err := ce.solver.Solve(ce.p)
	if sol != nil {
		ce.iterations += sol.Iterations
		if sol.NumericalResidual > ce.residual {
			ce.residual = sol.NumericalResidual
		}
	}
	return sol, err
}

func (ce *coldEngine) NumRows() int     { return ce.logicalRows }
func (ce *coldEngine) TableauRows() int { return ce.tableauRows }
func (ce *coldEngine) Iterations() int  { return ce.iterations }

func (ce *coldEngine) Stats() lp.Stats {
	st := lp.Stats{
		Pivots:             ce.iterations,
		LogicalRows:        ce.logicalRows,
		TableauRows:        ce.tableauRows,
		LoweredTableauRows: ce.tableauRows, // cold problems are already lowered
		RangedRows:         ce.rangedRows,
		NumericalResidual:  ce.residual,
		// Cold solvers sample their gauges too (factorization gauges are
		// legitimately zero; the residual is the terminal solver gauge).
		GaugesValid: true,
	}
	for _, c := range ce.p.Cons {
		st.RowNonzeros += len(c.Terms)
	}
	return st
}

func unitTermsOf(vars []int) []lp.Term {
	ts := make([]lp.Term, len(vars))
	for i, v := range vars {
		ts[i] = lp.Term{Var: v, Coef: 1}
	}
	return ts
}

// seedPairs returns the initial Steiner rows for row generation: for every
// internal node, the farthest sink pair straddling its two child subtrees
// (the candidate most likely to bind), plus every source-sink pair when
// the source is fixed. Farthest pairs come from rotated-coordinate
// extremes, so seeding costs O(n).
func seedPairs(in *Instance) [][2]int {
	t := in.Tree
	type extreme struct {
		minU, maxU, minV, maxV float64
		argMinU, argMaxU       int
		argMinV, argMaxV       int
	}
	ex := make([]extreme, t.N())
	post := t.Postorder()
	for _, k := range post {
		if t.IsSink(k) {
			u, v := in.SinkLoc[k].UV()
			ex[k] = extreme{u, u, v, v, k, k, k, k}
			continue
		}
		first := true
		for _, c := range t.Children(k) {
			if first {
				ex[k] = ex[c]
				first = false
				continue
			}
			if ex[c].minU < ex[k].minU {
				ex[k].minU, ex[k].argMinU = ex[c].minU, ex[c].argMinU
			}
			if ex[c].maxU > ex[k].maxU {
				ex[k].maxU, ex[k].argMaxU = ex[c].maxU, ex[c].argMaxU
			}
			if ex[c].minV < ex[k].minV {
				ex[k].minV, ex[k].argMinV = ex[c].minV, ex[c].argMinV
			}
			if ex[c].maxV > ex[k].maxV {
				ex[k].maxV, ex[k].argMaxV = ex[c].maxV, ex[c].argMaxV
			}
		}
		if first {
			// Internal node with no sink below (cannot happen in valid
			// merge topologies, but stay safe).
			ex[k] = extreme{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1), -1, -1, -1, -1}
		}
	}
	var pairs [][2]int
	for k := 0; k < t.N(); k++ {
		ch := t.Children(k)
		if len(ch) < 2 {
			continue
		}
		for a := 0; a < len(ch); a++ {
			for b := a + 1; b < len(ch); b++ {
				ea, eb := ex[ch[a]], ex[ch[b]]
				if ea.argMaxU < 0 || eb.argMaxU < 0 {
					continue
				}
				// Candidate farthest pairs across the two subtrees in each
				// rotated axis.
				cands := [][2]int{
					{ea.argMaxU, eb.argMinU}, {ea.argMinU, eb.argMaxU},
					{ea.argMaxV, eb.argMinV}, {ea.argMinV, eb.argMaxV},
				}
				best, bd := cands[0], -1.0
				for _, c := range cands {
					if d := in.Dist(c[0], c[1]); d > bd {
						best, bd = c, d
					}
				}
				pairs = append(pairs, best)
			}
		}
	}
	if in.Source != nil {
		for i := 1; i <= t.NumSinks; i++ {
			pairs = append(pairs, [2]int{0, i})
		}
	}
	return pairs
}

// sepViol is one violated Steiner pair found by the separation oracle.
type sepViol struct {
	pair   [2]int
	amount float64
}

// violatedPairs runs the separation oracle with the default worker count
// (GOMAXPROCS); see violatedPairsN.
func violatedPairs(in *Instance, e []float64, tol float64, batch int) [][2]int {
	return violatedPairsN(in, e, tol, batch, 0)
}

// violatedPairsN runs the separation oracle: it scans all fixed-point
// pairs for Steiner violations under edge lengths e and returns the worst
// `batch` of them. Path lengths use the O(1) LCA, so a scan is O(m²) —
// and embarrassingly parallel, so the sink-pair rows are striped across a
// worker pool (workers ≤ 0 means GOMAXPROCS). The result is deterministic
// for any worker count: the merged violations are sorted by amount with
// (i, j) as the tie-break before batching.
func violatedPairsN(in *Instance, e []float64, tol float64, batch, workers int) [][2]int {
	t := in.Tree
	d := t.Delays(e)
	m := t.NumSinks
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m < 64 {
		// Not enough pairs to amortize goroutine startup.
		workers = 1
	}
	if workers > m {
		workers = m
	}
	var vs []sepViol
	scan := func(start, stride int) []sepViol {
		var local []sepViol
		for i := 1 + start; i <= m; i += stride {
			for j := i + 1; j <= m; j++ {
				need := in.Dist(i, j)
				if need == 0 {
					continue
				}
				if pl := t.PathLength(i, j, d); need-pl > tol {
					local = append(local, sepViol{[2]int{i, j}, need - pl})
				}
			}
		}
		return local
	}
	if workers <= 1 {
		vs = scan(0, 1)
	} else {
		locals := make([][]sepViol, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				locals[w] = scan(w, workers)
			}(w)
		}
		wg.Wait()
		for _, l := range locals {
			vs = append(vs, l...)
		}
	}
	if in.Source != nil {
		for i := 1; i <= m; i++ {
			if need := in.Dist(0, i); need-d[i] > tol {
				vs = append(vs, sepViol{[2]int{0, i}, need - d[i]})
			}
		}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].amount != vs[b].amount {
			return vs[a].amount > vs[b].amount
		}
		if vs[a].pair[0] != vs[b].pair[0] {
			return vs[a].pair[0] < vs[b].pair[0]
		}
		return vs[a].pair[1] < vs[b].pair[1]
	})
	if len(vs) > batch {
		vs = vs[:batch]
	}
	out := make([][2]int, len(vs))
	for i, v := range vs {
		out[i] = v.pair
	}
	return out
}

// steinerViolation returns the worst Steiner-constraint violation of e
// over all fixed-point pairs (0 when geometrically feasible).
func steinerViolation(in *Instance, e []float64) float64 {
	t := in.Tree
	d := t.Delays(e)
	m := t.NumSinks
	worst := 0.0
	for i := 1; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if v := in.Dist(i, j) - t.PathLength(i, j, d); v > worst {
				worst = v
			}
		}
	}
	if in.Source != nil {
		for i := 1; i <= m; i++ {
			if v := in.Dist(0, i) - d[i]; v > worst {
				worst = v
			}
		}
	}
	return worst
}

func weightedCost(w, e []float64) float64 {
	var s float64
	for k := 1; k < len(e); k++ {
		s += w[k] * e[k]
	}
	return s
}

// Verify checks an edge-length vector against every EBF constraint by full
// enumeration (all C(m,2) Steiner rows, all delay rows, forced zeros,
// non-negativity). tol is absolute. It is the test oracle for Solve.
func Verify(in *Instance, b Bounds, e []float64, tol float64) error {
	t := in.Tree
	d := t.Delays(e)
	for k := 1; k < t.N(); k++ {
		if e[k] < -tol {
			return fmt.Errorf("core: edge %d negative (%g)", k, e[k])
		}
		if t.ForcedZero[k] && math.Abs(e[k]) > tol {
			return fmt.Errorf("core: forced-zero edge %d has length %g", k, e[k])
		}
	}
	m := t.NumSinks
	for i := 1; i <= m; i++ {
		if d[i] < b.L[i]-tol {
			return fmt.Errorf("core: sink %d delay %g below lower bound %g", i, d[i], b.L[i])
		}
		if d[i] > b.U[i]+tol {
			return fmt.Errorf("core: sink %d delay %g above upper bound %g", i, d[i], b.U[i])
		}
	}
	for i := 1; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			if pl, need := t.PathLength(i, j, d), in.Dist(i, j); pl < need-tol {
				return fmt.Errorf("core: Steiner constraint (%d,%d) violated: path %g < dist %g", i, j, pl, need)
			}
		}
	}
	if in.Source != nil {
		for i := 1; i <= m; i++ {
			if need := in.Dist(0, i); d[i] < need-tol {
				return fmt.Errorf("core: source-sink constraint %d violated: %g < %g", i, d[i], need)
			}
		}
	}
	return nil
}
