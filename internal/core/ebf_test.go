package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

// fig3Instance reproduces the §4.5 example structure: 5 sinks, Steiner
// points 6,7,8, root 0 with subtrees {1,5} (via 6) and {2,{3,4}} (via 8,7),
// source position not given. Sink coordinates are ours (the paper's figure
// coordinates are not recoverable from the text), but the topology and the
// constraint structure are exactly the paper's.
func fig3Instance(t *testing.T) *Instance {
	t.Helper()
	tree := topology.MustNew([]int{-1, 6, 8, 7, 7, 6, 0, 8, 0}, 5)
	in := &Instance{
		Tree: tree,
		SinkLoc: []geom.Point{
			{},            // unused
			geom.Pt(0, 0), // s1
			geom.Pt(6, 0), // s2
			geom.Pt(8, 2), // s3
			geom.Pt(8, 0), // s4
			geom.Pt(0, 2), // s5
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func mustSolve(t *testing.T, in *Instance, b Bounds, opt *Options) *Result {
	t.Helper()
	res, err := Solve(in, b, opt)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestPaperExample45(t *testing.T) {
	in := fig3Instance(t)
	r := in.Radius() // half the sink diameter
	if math.Abs(r-5) > 1e-12 {
		t.Fatalf("radius = %g, want 5", r)
	}
	// The paper uses lower bound 4 and upper bound 6; our radius is 5, so
	// the window [4, 6] brackets it just as in the paper ([4,6] around
	// radius with Eq. 4 satisfied: 6 ≥ 5).
	b := UniformBounds(5, 4, 6)
	res := mustSolve(t, in, b, nil)
	if err := Verify(in, b, res.E, 1e-6); err != nil {
		t.Fatalf("optimal solution fails verification: %v", err)
	}
	// Optimality against the full constraint matrix (all 10 Steiner rows).
	full := mustSolve(t, in, b, &Options{FullMatrix: true})
	if math.Abs(res.Cost-full.Cost) > 1e-6 {
		t.Fatalf("row generation %g vs full matrix %g", res.Cost, full.Cost)
	}
	// All delays within the window.
	for i := 1; i <= 5; i++ {
		if res.Delays[i] < 4-1e-9 || res.Delays[i] > 6+1e-9 {
			t.Fatalf("delay(s%d) = %g outside [4,6]", i, res.Delays[i])
		}
	}
}

func TestUnboundedDelayIsSteinerMinimum(t *testing.T) {
	// §4.3 first bullet: l=0, u=∞ reduces EBF to the optimal Steiner tree
	// under the topology. With sinks (0,0), (10,0), (5,5) and topology
	// ((1,2),3) the optimum is the RSMT cost 15.
	tree := topology.MustNew([]int{-1, 4, 4, 0, 0}, 3)
	in := &Instance{Tree: tree, SinkLoc: []geom.Point{{},
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 5)}}
	b := UniformBounds(3, 0, math.Inf(1))
	res := mustSolve(t, in, b, nil)
	if math.Abs(res.Cost-15) > 1e-7 {
		t.Fatalf("Steiner cost = %g, want 15", res.Cost)
	}
}

func TestZeroSkewEquality(t *testing.T) {
	// §4.3 last bullet: l=u=radius is zero-skew routing.
	in := fig3Instance(t)
	r := in.Radius()
	b := UniformBounds(5, r, r)
	if !b.Equal() {
		t.Fatal("bounds not recognized as equalities")
	}
	res := mustSolve(t, in, b, nil)
	if err := Verify(in, b, res.E, 1e-6); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 1; i <= 5; i++ {
		lo = math.Min(lo, res.Delays[i])
		hi = math.Max(hi, res.Delays[i])
	}
	if hi-lo > 1e-7 {
		t.Fatalf("skew = %g, want 0", hi-lo)
	}
}

func TestFigure1Infeasible(t *testing.T) {
	// §3 / Fig. 1(a): a topology in which a sink is not a leaf can make the
	// bounds unsatisfiable. Source at (0,0) (given), sink s1 at (5,0) with
	// sink s2 at (1,0) hanging below it; upper bound 6: delay(s2) must be
	// ≥ dist(s0,s1)+dist(s1,s2) = 9 > 6.
	tree := topology.MustNew([]int{-1, 0, 1}, 2)
	src := geom.Pt(0, 0)
	in := &Instance{Tree: tree,
		SinkLoc: []geom.Point{{}, geom.Pt(5, 0), geom.Pt(1, 0)},
		Source:  &src}
	if tree.AllSinksAreLeaves() {
		t.Fatal("test bug: s1 must be a non-leaf sink")
	}
	b := UniformBounds(2, 0, 6)
	_, err := Solve(in, b, nil)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestLemma31AlwaysFeasible(t *testing.T) {
	// Lemma 3.1: with all sinks leaves, any bounds satisfying Eq. (3)/(4)
	// admit a LUBT.
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(10)
		withSource := rng.Intn(2) == 0
		tree, err := topology.RandomBinary(rng, m, withSource)
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
		for i := 1; i <= m; i++ {
			in.SinkLoc[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		if withSource {
			s := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			in.Source = &s
		}
		// Legal window: u ≥ max(dist(s0,·)) or radius; l random below u.
		r := in.Radius()
		u := r * (1 + rng.Float64()*2)
		l := u * rng.Float64()
		b := UniformBounds(m, l, u)
		res, err := Solve(in, b, nil)
		if err != nil {
			t.Fatalf("trial %d (m=%d src=%v): %v", trial, m, withSource, err)
		}
		if err := Verify(in, b, res.E, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRowGenerationMatchesFullMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		m := 3 + rng.Intn(12)
		tree, err := topology.RandomBinary(rng, m, false)
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
		for i := 1; i <= m; i++ {
			in.SinkLoc[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		r := in.Radius()
		u := r * (1 + rng.Float64())
		l := u * rng.Float64() * 0.9
		b := UniformBounds(m, l, u)
		rg := mustSolve(t, in, b, nil)
		full := mustSolve(t, in, b, &Options{FullMatrix: true})
		if math.Abs(rg.Cost-full.Cost) > 1e-5*(1+full.Cost) {
			t.Fatalf("trial %d: rowgen %g vs full %g", trial, rg.Cost, full.Cost)
		}
		if rg.RowsUsed > full.RowsUsed {
			t.Fatalf("row generation used more rows (%d) than full matrix (%d)",
				rg.RowsUsed, full.RowsUsed)
		}
	}
}

func TestCostMonotoneInBounds(t *testing.T) {
	// Loosening the window can never increase the optimal cost.
	in := fig3Instance(t)
	r := in.Radius()
	prev := math.Inf(1)
	for _, width := range []float64{0, 0.5, 1, 2, 4} {
		b := UniformBounds(5, math.Max(0, r-width/2), r+width/2)
		res := mustSolve(t, in, b, nil)
		if res.Cost > prev+1e-7 {
			t.Fatalf("cost increased from %g to %g when loosening to width %g",
				prev, res.Cost, width)
		}
		prev = res.Cost
	}
}

func TestSimplexAndIPMAgreeOnEBF(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		m := 3 + rng.Intn(8)
		tree, err := topology.RandomBinary(rng, m, false)
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
		for i := 1; i <= m; i++ {
			in.SinkLoc[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
		}
		r := in.Radius()
		b := UniformBounds(m, 0.5*r, 1.5*r)
		sx := mustSolve(t, in, b, nil)
		ip := mustSolve(t, in, b, &Options{Solver: &lp.IPM{}})
		if math.Abs(sx.Cost-ip.Cost) > 1e-3*(1+sx.Cost) {
			t.Fatalf("trial %d: simplex %g vs ipm %g", trial, sx.Cost, ip.Cost)
		}
	}
}

func TestWeightedObjective(t *testing.T) {
	// §7 "different weights on edges": making one root edge expensive must
	// shift length to the cheaper side and never lower the weighted cost
	// below the uniform optimum's weighted value.
	in := fig3Instance(t)
	b := UniformBounds(5, 4, 6)
	uniform := mustSolve(t, in, b, nil)
	w := make([]float64, in.Tree.N())
	for i := range w {
		w[i] = 1
	}
	w[6] = 5 // edge from Steiner 6 to root
	weighted := mustSolve(t, in, b, &Options{Weights: w})
	if err := Verify(in, b, weighted.E, 1e-6); err != nil {
		t.Fatal(err)
	}
	var uniformWeighted float64
	for k := 1; k < in.Tree.N(); k++ {
		uniformWeighted += w[k] * uniform.E[k]
	}
	if weighted.Cost > uniformWeighted+1e-7 {
		t.Fatalf("weighted solve %g worse than uniform solution priced at %g",
			weighted.Cost, uniformWeighted)
	}
	if weighted.E[6] > uniform.E[6]+1e-9 {
		t.Logf("note: expensive edge did not shrink (%g vs %g)", weighted.E[6], uniform.E[6])
	}
}

func TestForcedZeroEdges(t *testing.T) {
	star, err := topology.Star(5, false)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := star.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, 6)}
	for i := 1; i <= 5; i++ {
		in.SinkLoc[i] = geom.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	r := in.Radius()
	b := UniformBounds(5, 0, 2*r)
	res := mustSolve(t, in, b, nil)
	for k := 1; k < tree.N(); k++ {
		if tree.ForcedZero[k] && math.Abs(res.E[k]) > 1e-9 {
			t.Fatalf("forced-zero edge %d has length %g", k, res.E[k])
		}
	}
	if err := Verify(in, b, res.E, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsValidation(t *testing.T) {
	in := fig3Instance(t)
	r := in.Radius()
	cases := []struct {
		l, u float64
		ok   bool
	}{
		{0, r * 2, true},
		{r, r, true},
		{-1, r, false},    // negative lower
		{r, r / 2, false}, // l > u
		{0, r / 2, false}, // u below radius (Eq. 4)
	}
	for i, c := range cases {
		err := UniformBounds(5, c.l, c.u).Validate(in)
		if (err == nil) != c.ok {
			t.Errorf("case %d [%g,%g]: err = %v, ok = %v", i, c.l, c.u, err, c.ok)
		}
	}
	// Wrong length.
	if err := UniformBounds(4, 0, r*2).Validate(in); err == nil {
		t.Error("mis-sized bounds accepted")
	}
}

func TestEq3ValidationWithSource(t *testing.T) {
	tree := topology.MustNew([]int{-1, 2, 0}, 1)
	src := geom.Pt(0, 0)
	in := &Instance{Tree: tree, SinkLoc: []geom.Point{{}, geom.Pt(10, 0)}, Source: &src}
	if err := UniformBounds(1, 0, 8).Validate(in); err == nil {
		t.Error("u=8 < dist 10 must violate Eq. 3")
	}
	if err := UniformBounds(1, 0, 12).Validate(in); err != nil {
		t.Errorf("u=12 rejected: %v", err)
	}
}

func TestInstanceValidate(t *testing.T) {
	if err := (&Instance{}).Validate(); err == nil {
		t.Error("nil tree accepted")
	}
	tree := topology.MustNew([]int{-1, 0, 0}, 2)
	if err := (&Instance{Tree: tree, SinkLoc: make([]geom.Point, 2)}).Validate(); err == nil {
		t.Error("mis-sized sink locations accepted")
	}
}

func TestSolveWithSourceLocation(t *testing.T) {
	// A fixed source participates in Steiner separation: delays must cover
	// the physical source-sink distance.
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(8)
		tree, err := topology.RandomBinary(rng, m, true)
		if err != nil {
			t.Fatal(err)
		}
		in := &Instance{Tree: tree, SinkLoc: make([]geom.Point, m+1)}
		for i := 1; i <= m; i++ {
			in.SinkLoc[i] = geom.Pt(rng.Float64()*30, rng.Float64()*30)
		}
		s := geom.Pt(rng.Float64()*30, rng.Float64()*30)
		in.Source = &s
		r := in.Radius()
		b := UniformBounds(m, 0, r*(1+rng.Float64()))
		res := mustSolve(t, in, b, nil)
		for i := 1; i <= m; i++ {
			if res.Delays[i] < in.Dist(0, i)-1e-6 {
				t.Fatalf("delay(s%d) = %g below source distance %g",
					i, res.Delays[i], in.Dist(0, i))
			}
		}
	}
}

func TestSkewWindow(t *testing.T) {
	b := SkewWindow(3, 0.5, 2)
	for i := 1; i <= 3; i++ {
		if b.L[i] != 1.5 || b.U[i] != 2 {
			t.Fatalf("window = [%g,%g]", b.L[i], b.U[i])
		}
	}
}
