package core

import (
	"errors"
	"math"
	"testing"

	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

// engineOptions enumerates every LP path through the row-generation loop:
// both warm engines and both cold cross-check solvers.
func engineOptions() map[string]*Options {
	return map[string]*Options{
		"revised":     nil,
		"dense":       {Engine: "dense"},
		"coldsimplex": {Solver: &lp.Simplex{}},
		"ipm":         {Solver: &lp.IPM{}},
	}
}

// TestZeroRadiusCoincidentSinks puts every sink (and the source) on one
// point: radius 0, every pairwise distance 0, every Steiner row
// degenerate. The optimum is the zero tree, and every engine must agree
// rather than cycle on the massively degenerate basis.
func TestZeroRadiusCoincidentSinks(t *testing.T) {
	tree := topology.MustNew([]int{-1, 5, 5, 6, 6, 0, 0}, 4)
	p := geom.Pt(7, 3)
	in := &Instance{Tree: tree, SinkLoc: []geom.Point{{}, p, p, p, p}, Source: &p}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, opt := range engineOptions() {
		res, err := Solve(in, UniformBounds(4, 0, 0), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cost > 1e-9 {
			t.Errorf("%s: zero-radius cost = %g, want 0", name, res.Cost)
		}
		for i := 1; i <= 4; i++ {
			if res.Delays[i] > 1e-9 {
				t.Errorf("%s: delay(s%d) = %g, want 0", name, i, res.Delays[i])
			}
		}
	}
}

// TestExactWindowCoincidentSinks keeps the coincident geometry but pins
// l = u = 5: all delay rows become equality rows and every sink must snake
// to exactly 5. Sharing the snaked length on the root edges is optimal.
func TestExactWindowCoincidentSinks(t *testing.T) {
	tree := topology.MustNew([]int{-1, 5, 5, 6, 6, 0, 0}, 4)
	p := geom.Pt(7, 3)
	in := &Instance{Tree: tree, SinkLoc: []geom.Point{{}, p, p, p, p}, Source: &p}
	for name, opt := range engineOptions() {
		res, err := Solve(in, UniformBounds(4, 5, 5), opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 1; i <= 4; i++ {
			if math.Abs(res.Delays[i]-5) > 1e-6 {
				t.Errorf("%s: delay(s%d) = %g, want exactly 5", name, i, res.Delays[i])
			}
		}
		// Two root edges of length 5 serve both subtrees: cost 10.
		if math.Abs(res.Cost-10) > 1e-6 {
			t.Errorf("%s: l=u cost = %g, want 10", name, res.Cost)
		}
	}
}

// TestExactWindowAllSolversAgree runs an exact-equality window l = u on a
// random instance through every engine; the EQ-splitting paths of the warm
// engines must match the cold solvers.
func TestExactWindowAllSolversAgree(t *testing.T) {
	in, _ := randomInstance(t, 208, 8)
	r := in.Radius()
	b := UniformBounds(8, 1.2*r, 1.2*r)
	var want float64
	for _, name := range []string{"revised", "dense", "coldsimplex", "ipm"} {
		res, err := Solve(in, b, engineOptions()[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 1; i <= 8; i++ {
			if math.Abs(res.Delays[i]-1.2*r) > 1e-5*(1+r) {
				t.Errorf("%s: delay(s%d) = %g, want %g", name, i, res.Delays[i], 1.2*r)
			}
		}
		if name == "revised" {
			want = res.Cost
			continue
		}
		if math.Abs(res.Cost-want) > 1e-6*(1+want) {
			t.Errorf("%s: cost %g vs revised %g", name, res.Cost, want)
		}
	}
}

// TestInfeasibleAfterWarmRounds builds the Fig. 1 situation: a
// pass-through sink s1 on the path to s2, with windows that satisfy the
// necessary conditions Eq. 2–4 and a seeded LP that is feasible. Only the
// generated Steiner cutting plane (s1,s2) — e₂ ≥ 30 against e₂ ≤ 10 —
// exposes infeasibility, so a warm engine sees it strictly after a
// successful solve and must report sticky infeasibility rather than
// return a bound-violating tree.
func TestInfeasibleAfterWarmRounds(t *testing.T) {
	tree := topology.MustNew([]int{-1, 0, 1}, 2)
	src := geom.Pt(0, 0)
	in := &Instance{Tree: tree, SinkLoc: []geom.Point{
		{},
		geom.Pt(0, 10), // s1, pass-through
		geom.Pt(20, 0), // s2, reached through s1
	}, Source: &src}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// u₁ = dist(0,s1) pins e₁ = 10; u₂ = dist(0,s2) then pins e₂ ≤ 10,
	// while dist(s1,s2) = 30 demands e₂ ≥ 30.
	b := Bounds{L: make([]float64, 3), U: []float64{0, 10, 20}}
	for _, name := range []string{"revised", "dense", "coldsimplex"} {
		_, err := Solve(in, b, engineOptions()[name])
		if !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: err = %v, want ErrInfeasible", name, err)
		}
	}
}

// TestOracleDeterministicAcrossWorkers fixes the separation scan's output
// order regardless of the worker count.
func TestOracleDeterministicAcrossWorkers(t *testing.T) {
	in, b := randomInstance(t, 209, 24)
	res, err := Solve(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := make([]float64, len(res.E))
	for i, v := range res.E {
		e[i] = 0.9 * v // shrink so the scan reports plenty of pairs
	}
	want := violatedPairsN(in, e, 1e-9, 32, 1)
	if len(want) == 0 {
		t.Fatal("oracle found nothing to compare")
	}
	for _, workers := range []int{2, 3, 4, 7} {
		got := violatedPairsN(in, e, 1e-9, 32, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs vs %d serial", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %v vs serial %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSolversAgreeOnScaledBench is the acceptance cross-check: the three
// public solver paths agree within 1e-6·radius on a -s workload.
func TestSolversAgreeOnScaledBench(t *testing.T) {
	in, cb := benchInstance(t, "prim1-s")
	radius := in.Radius()
	ref, err := Solve(in, cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dense", "coldsimplex", "ipm"} {
		res, err := Solve(in, cb, engineOptions()[name])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Cost-ref.Cost) > 1e-6*radius {
			t.Errorf("%s: cost %.9f vs revised %.9f (radius %g)", name, res.Cost, ref.Cost, radius)
		}
	}
}
