package core

import (
	"math"
	"testing"
)

// TestDelayWindowRowHalving pins the end-to-end effect of the boxed
// revised engine on the EBF: with a finite two-sided delay window every
// sink's delay constraint is ONE ranged tableau row in the revised engine
// but a ≤/≥ pair in the dense lowering, so the revised engine's tableau is
// smaller by exactly the ranged-row count while both report the same
// lowered count — and both reach the same optimum.
func TestDelayWindowRowHalving(t *testing.T) {
	in := fig3Instance(t)
	r := in.Radius()
	b := UniformBounds(5, 0.8*r, 1.2*r) // finite two-sided window per sink
	rev := mustSolve(t, in, b, &Options{Engine: "revised"})
	den := mustSolve(t, in, b, &Options{Engine: "dense"})
	if math.Abs(rev.Cost-den.Cost) > 1e-6*(1+r) {
		t.Fatalf("revised cost %.9g vs dense %.9g", rev.Cost, den.Cost)
	}
	rs, ds := rev.Stats, den.Stats
	if rs.RangedRows == 0 {
		t.Fatal("revised: no ranged rows recorded for a finite delay window")
	}
	if rs.TableauRows >= rs.LoweredTableauRows {
		t.Fatalf("revised: tableau %d not below lowered %d", rs.TableauRows, rs.LoweredTableauRows)
	}
	if got, want := rs.LoweredTableauRows-rs.TableauRows, rs.RangedRows; got != want {
		t.Fatalf("revised: saved %d rows, want one per ranged row (%d)", got, want)
	}
	if ds.TableauRows != ds.LoweredTableauRows {
		t.Fatalf("dense: tableau %d != lowered %d (dense IS the lowering)", ds.TableauRows, ds.LoweredTableauRows)
	}
	// The engines may disagree on logical rows only through the VarBounder
	// substitution (forced-zero edges become boxes, not rows); fig3 has
	// none, so the logical counts must match exactly.
	if rs.LogicalRows != ds.LogicalRows {
		t.Fatalf("logical rows revised %d vs dense %d", rs.LogicalRows, ds.LogicalRows)
	}
}

// TestExactWindowAcrossEngines drives the zero-skew corner (l = u) through
// the boxed engine, the dense lowering and the cold simplex, checking the
// delays and the objective agree to 1e-6·radius.
func TestExactWindowAcrossEngines(t *testing.T) {
	in := fig3Instance(t)
	r := in.Radius()
	b := UniformBounds(5, 1.1*r, 1.1*r)
	rev := mustSolve(t, in, b, &Options{Engine: "revised"})
	den := mustSolve(t, in, b, &Options{Engine: "dense"})
	cold := mustSolve(t, in, b, &Options{FullMatrix: true})
	tol := 1e-6 * (1 + r)
	if math.Abs(rev.Cost-den.Cost) > tol || math.Abs(rev.Cost-cold.Cost) > tol {
		t.Fatalf("costs revised %.9g dense %.9g cold %.9g", rev.Cost, den.Cost, cold.Cost)
	}
	for i := 1; i <= 5; i++ {
		if math.Abs(rev.Delays[i]-1.1*r) > tol {
			t.Fatalf("revised delay(s%d) = %g, want %g", i, rev.Delays[i], 1.1*r)
		}
	}
	// An exact window stores a fixed slack, not an EQ split: the saving
	// shows up in the stats exactly like a two-sided window.
	if rev.Stats.RangedRows == 0 || rev.Stats.TableauRows >= rev.Stats.LoweredTableauRows {
		t.Fatalf("revised l=u stats: %d ranged, rows %d/%d lowered",
			rev.Stats.RangedRows, rev.Stats.TableauRows, rev.Stats.LoweredTableauRows)
	}
}
