// Package core implements the paper's primary contribution: the
// Edge-Based Formulation (EBF) of the Lower/Upper Bounded delay routing
// Tree problem (§4 of Oh, Pyo, Pedram, DAC 1996). Given a rooted topology
// and per-sink delay bounds, it assembles the LP over edge lengths
//
//	min Σ w_k e_k
//	s.t. Σ_{e∈path(s_i,s_j)} e ≥ dist(s_i,s_j)    (Steiner constraints, §4.1)
//	     l_i ≤ Σ_{e∈path(s_0,s_i)} e ≤ u_i        (delay constraints, §4.2)
//	     e ≥ 0
//
// and solves it with the LP layer of internal/lp, using row generation to
// realize the constraint reduction of §4.6. The package also contains the
// sequential-LP heuristic for the Elmore-delay extension of §7.
//
// # How the constraints map onto the LP layer
//
// The row-generation loop is written against lp.RowEngine and hands each
// constraint to the engine in its natural shape:
//
//   - Steiner pairs enter as one-sided ≥ rows (AddRow with lp.GE), added
//     lazily: each round the separation oracle scans sink pairs for
//     violations and only the violated rows join the LP.
//   - Delay windows enter as ONE logical ranged row each via
//     AddRangedRow(path, l_i, u_i); a vacuous side (l_i ≤ 0 with the path
//     already non-negative) is stated as −∞ so pure upper-bound problems
//     stay one-sided, and l_i = u_i states the zero-skew equality. The
//     boxed revised engine stores the window in a single tableau row
//     (bounded slack); the dense and cold engines lower it to a ≤/≥ pair
//     — the before/after is visible in lp.Stats.TableauRows vs
//     .LoweredTableauRows.
//   - Forced-zero edges (the degree-splitting artifacts of
//     internal/topology) become variable boxes e_k ∈ [0, 0] via the
//     optional lp.VarBounder interface when the engine supports it, and
//     fall back to explicit EQ rows otherwise. Engines may therefore
//     disagree on LogicalRows by exactly the forced-zero count.
//
// Options.Engine selects the incremental engine ("revised" default,
// "dense" ablation); Options.Solver bypasses row generation warm starts
// with a cold solver (lp.Simplex or lp.IPM) re-solving from scratch each
// round; Options.FullMatrix states all C(m,2) Steiner rows up front.
//
// # Tolerances
//
// All acceptance checks are relative to the instance radius: Verify and
// the cross-engine tests use 1e-6·(1+radius), matching the LP layer's
// guarantees. Delays reported in Result.Delays are exact path sums over
// the returned edge lengths, not LP row activities.
package core
