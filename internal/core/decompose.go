package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"lubt/internal/geom"
	"lubt/internal/topology"
)

// This file is the subtree-decomposition layer: partition the sinks by
// root branch of the resolved topology, solve each branch's bounded
// subproblem on its own engine in parallel, and merge. Exactness rests
// on the structure of the cross-branch Steiner rows: a pair (i, j) in
// different root branches has LCA 0 (where d_0 = 0), so its row reads
// d_i + d_j ≥ dist(i, j).
//
//   - Fixed source: every branch states the seeded source rows
//     d_i ≥ dist(0, i), and the Manhattan triangle inequality gives
//     dist(i, j) ≤ dist(0, i) + dist(0, j) ≤ d_i + d_j — every
//     cross-branch row is implied, the objective is edge-separable, and
//     the independent branch optima compose into the exact global
//     optimum in one pass.
//
//   - Free source (Decompose "on" only): the independent pass is a
//     relaxation whose cost is a lower bound. If its merged solution
//     already satisfies the cross-branch rows (checked exactly via
//     rotated-coordinate branch extremes), it is optimal. Otherwise a
//     bounded number of outer passes raise per-sink delay floors — the
//     worst violated pair per branch pair gets its deficit split evenly
//     across its two endpoints, a constraint on each branch's root-path
//     edge variables — and the branches re-solve. The result is accepted
//     only if it becomes cross-feasible AND its cost stays within
//     decomposeGate·radius of the relaxation lower bound; anything else
//     falls back to the monolithic solve.

// decomposeGate is the optimality-agreement gate of the free-source
// coordination passes, as a fraction of the instance radius.
const decomposeGate = 1e-6

// decomposePasses bounds the free-source outer coordination passes.
const decomposePasses = 4

// branchProblem is one root branch lowered to a standalone instance:
// node 0 is the original root, sinks are renumbered 1…mb preserving
// relative order, and toOrig maps sub node ids back.
type branchProblem struct {
	in     *Instance
	b      Bounds
	toOrig []int
	res    *Result
}

// effectiveRootBranches collects the subtrees that hang off the root at
// delay zero: the root's own children, descending through forced-zero
// Steiner edges (the Fig. 2 degree-split spine, whose nodes sit at
// d = 0 just like the root, so their branches are exactly as independent
// as true root branches). Sink-less subtrees are skipped — they carry no
// rows and their edges stay at length zero in the merged solution.
func effectiveRootBranches(t *topology.Tree) []int {
	_, lo, hi := t.SinkOrder()
	var branches []int
	stack := []int{0}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.Children(v) {
			switch {
			case t.ForcedZero[c] && t.IsSteiner(c):
				stack = append(stack, c)
			case hi[c] > lo[c]:
				branches = append(branches, c)
			}
		}
	}
	return branches
}

// buildBranch extracts the branch rooted at child c of the original
// root. Weights w is the original per-edge weight vector (nil = unit).
func buildBranch(in *Instance, bd Bounds, w []float64, c int) (*branchProblem, []float64, error) {
	t := in.Tree
	// DFS collects the subtree in deterministic preorder.
	var nodes []int
	stack := []int{c}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes = append(nodes, x)
		ch := t.Children(x)
		for k := len(ch) - 1; k >= 0; k-- {
			stack = append(stack, ch[k])
		}
	}
	var sinks, steiner []int
	for _, x := range nodes {
		if t.IsSink(x) {
			sinks = append(sinks, x)
		} else {
			steiner = append(steiner, x)
		}
	}
	// Sinks keep their relative id order so per-sink data maps monotonically.
	for i := 1; i < len(sinks); i++ {
		for j := i; j > 0 && sinks[j] < sinks[j-1]; j-- {
			sinks[j], sinks[j-1] = sinks[j-1], sinks[j]
		}
	}
	mb := len(sinks)
	if mb == 0 {
		return nil, nil, fmt.Errorf("core: root branch %d has no sinks", c)
	}
	nSub := 1 + len(nodes)
	toOrig := make([]int, nSub)
	toSub := make(map[int]int, nSub)
	toOrig[0] = 0
	toSub[0] = 0
	for i, s := range sinks {
		toOrig[1+i] = s
		toSub[s] = 1 + i
	}
	for i, s := range steiner {
		toOrig[1+mb+i] = s
		toSub[s] = 1 + mb + i
	}
	parent := make([]int, nSub)
	parent[0] = -1
	for sub := 1; sub < nSub; sub++ {
		orig := toOrig[sub]
		if orig == c {
			parent[sub] = 0
			continue
		}
		parent[sub] = toSub[t.Parent[orig]]
	}
	sub, err := topology.New(parent, mb)
	if err != nil {
		return nil, nil, fmt.Errorf("core: branch %d topology: %w", c, err)
	}
	for subID := 1; subID < nSub; subID++ {
		sub.ForcedZero[subID] = t.ForcedZero[toOrig[subID]]
	}
	bin := &Instance{Tree: sub, SinkLoc: make([]geom.Point, mb+1), Source: in.Source}
	bb := Bounds{L: make([]float64, mb+1), U: make([]float64, mb+1)}
	for i := 1; i <= mb; i++ {
		bin.SinkLoc[i] = in.SinkLoc[toOrig[i]]
		bb.L[i] = bd.L[toOrig[i]]
		bb.U[i] = bd.U[toOrig[i]]
	}
	var wSub []float64
	if w != nil {
		wSub = make([]float64, nSub)
		for subID := 1; subID < nSub; subID++ {
			wSub[subID] = w[toOrig[subID]]
		}
	}
	return &branchProblem{in: bin, b: bb, toOrig: toOrig}, wSub, nil
}

// solveDecomposed attempts the branch-parallel solve. done == false
// means the caller should run the monolithic path (not decomposable, or
// the free-source coordination could not certify optimality); when done
// is true, res/err is the final outcome.
func solveDecomposed(in *Instance, bd Bounds, opt *Options, presolveOn bool) (res *Result, done bool, err error) {
	t := in.Tree
	branches := effectiveRootBranches(t)
	if len(branches) < 2 {
		return nil, false, nil
	}
	// Instance and bounds were already validated by Solve.
	var wOrig []float64
	if opt != nil {
		wOrig = opt.Weights
	}
	probs := make([]*branchProblem, len(branches))
	wSubs := make([][]float64, len(branches))
	for i, c := range branches {
		probs[i], wSubs[i], err = buildBranch(in, bd, wOrig, c)
		if err != nil {
			return nil, true, err
		}
	}

	branchOpt := func(i int) *Options {
		o := &Options{}
		if opt != nil {
			*o = *opt
		}
		o.Tracer = nil // branch solves run concurrently; spans stay monolithic
		o.Decompose = "off"
		o.Presolve = "off"
		if presolveOn {
			o.Presolve = "on"
		}
		o.Weights = wSubs[i]
		return o
	}

	// solveAll runs one pass of independent branch solves (floors already
	// folded into each problem's Bounds), parallel across branches.
	solveAll := func(dirty []bool) error {
		workers := 0
		if opt != nil {
			workers = opt.OracleWorkers
		}
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(probs) {
			workers = len(probs)
		}
		errs := make([]error, len(probs))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i := range probs {
			if dirty != nil && !dirty[i] {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				probs[i].res, errs[i] = Solve(probs[i].in, probs[i].b, branchOpt(i))
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}

	if err := solveAll(nil); err != nil {
		// A branch states a subset of the true constraints: its
		// infeasibility (or any other first-pass failure) is the
		// instance's.
		return nil, true, err
	}

	if in.Source == nil {
		relaxCost := 0.0
		for _, p := range probs {
			relaxCost += p.res.Cost
		}
		ok, err := coordinateFreeSource(in, bd, probs, solveAll, relaxCost)
		if err != nil || !ok {
			return nil, false, nil // too coupled — monolithic fallback
		}
	}

	return mergeBranches(in, probs), true, nil
}

// crossViolation returns the worst cross-branch Steiner violation
// max dist(i,j) − d_i − d_j over pairs in different branches, with an
// achieving pair, computed exactly from per-branch rotated extremes.
func crossViolation(in *Instance, probs []*branchProblem) (worst float64, wi, wj int) {
	exts := make([]ext4, len(probs))
	for bi, p := range probs {
		e := emptyExt4()
		for i := 1; i <= p.in.Tree.NumSinks; i++ {
			u, v := p.in.SinkLoc[i].UV()
			e.fold(sinkExt4(u, v, p.res.Delays[i], p.toOrig[i]))
		}
		exts[bi] = e
	}
	worst, wi, wj = math.Inf(-1), -1, -1
	for a := 0; a < len(probs); a++ {
		for b := a + 1; b < len(probs); b++ {
			if v, ia, jb := maxCombo(exts[a], exts[b]); v > worst {
				worst, wi, wj = v, ia, jb
			}
		}
	}
	return worst, wi, wj
}

// coordinateFreeSource runs the bounded outer passes for a free source.
// It returns ok == false when the branches stay coupled (cross rows
// still violated after the pass budget, a floor left a branch
// infeasible, or the final cost drifts past the decomposeGate from the
// relaxation lower bound).
func coordinateFreeSource(in *Instance, bd Bounds, probs []*branchProblem, solveAll func([]bool) error, relaxCost float64) (bool, error) {
	tol := 1e-7 * math.Max(1, in.Radius())
	branchOf := make(map[int]int)
	for bi, p := range probs {
		for i := 1; i <= p.in.Tree.NumSinks; i++ {
			branchOf[p.toOrig[i]] = bi
		}
	}
	subID := func(orig int) (int, int) {
		bi := branchOf[orig]
		for s := 1; s <= probs[bi].in.Tree.NumSinks; s++ {
			if probs[bi].toOrig[s] == orig {
				return bi, s
			}
		}
		panic("core: decompose lost a sink mapping")
	}
	for pass := 0; ; pass++ {
		worst, wi, wj := crossViolation(in, probs)
		if worst <= tol {
			total := 0.0
			for _, p := range probs {
				total += p.res.Cost
			}
			if total-relaxCost > decomposeGate*math.Max(1, in.Radius()) {
				return false, nil // feasible but past the agreement gate
			}
			return true, nil
		}
		if pass == decomposePasses {
			return false, nil // pass budget exhausted, still coupled
		}
		// Even-split the worst pair's deficit into per-sink floors and
		// re-solve the two touched branches.
		dirty := make([]bool, len(probs))
		for _, orig := range []int{wi, wj} {
			bi, s := subID(orig)
			floor := probs[bi].res.Delays[s] + worst/2
			if floor > probs[bi].b.U[s]+tol {
				return false, nil // floor collides with the upper window
			}
			if floor > probs[bi].b.L[s] {
				probs[bi].b.L[s] = floor
				dirty[bi] = true
			}
		}
		if err := solveAll(dirty); err != nil {
			return false, nil // heuristic floors broke a branch: fall back
		}
	}
}

// mergeBranches folds the per-branch results into one Result on the
// original topology, deterministically in branch order.
func mergeBranches(in *Instance, probs []*branchProblem) *Result {
	t := in.Tree
	n := t.N()
	res := &Result{E: make([]float64, n)}
	for _, p := range probs {
		for subID := 1; subID < p.in.Tree.N(); subID++ {
			res.E[p.toOrig[subID]] = p.res.E[subID]
		}
		res.Cost += p.res.Cost
		res.RowsUsed += p.res.RowsUsed
		res.LPIterations += p.res.LPIterations
		if p.res.Rounds > res.Rounds {
			res.Rounds = p.res.Rounds
		}
	}
	res.Delays = t.Delays(res.E)

	// Stats: counters sum via Merge; the row-count gauges are then
	// overridden with whole-instance totals, PeakRows with the largest
	// single-engine tableau — the decomposition's memory story — and
	// Subtrees with the branch count.
	var logical, tableau, lowered, ranged, nnz, peak int
	residual := 0.0
	for _, p := range probs {
		st := p.res.Stats
		res.Stats.Merge(st)
		logical += st.LogicalRows
		tableau += st.TableauRows
		lowered += st.LoweredTableauRows
		ranged += st.RangedRows
		nnz += st.RowNonzeros
		if st.PeakRows > peak {
			peak = st.PeakRows
		}
		if st.NumericalResidual > residual {
			residual = st.NumericalResidual
		}
	}
	res.Stats.LogicalRows = logical
	res.Stats.TableauRows = tableau
	res.Stats.LoweredTableauRows = lowered
	res.Stats.RangedRows = ranged
	res.Stats.RowNonzeros = nnz
	res.Stats.PeakRows = peak
	res.Stats.NumericalResidual = residual
	res.Stats.Rounds = res.Rounds
	res.Stats.Subtrees = len(probs)
	return res
}
