package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"lubt/internal/topology"
)

// This file is the presolve layer of the §4.6 row generation: dominance
// pruning over the sink-pair Steiner rows, plus the block-structured
// separation oracle that exploits it. The two dominance arms are
//
//  1. path containment: if path(k,l) ⊆ path(i,j) and dist(i,j) ≤
//     dist(k,l), then row (k,l) implies row (i,j) outright — the path sum
//     over the superset can only be larger (dominatesContainment);
//
//  2. window dominance at a common LCA: for pairs (i,j) and (k,l) whose
//     paths cross the same ordered child-subtree pair (A,B) under node v,
//     the shared d_v term cancels and the stated delay windows carry the
//     implication. If row (k,l) is stated and the windows enforce
//     d_k ≤ cu_k, d_l ≤ cu_l, then at every LP-feasible point
//     2·d_v ≤ cu_k + cu_l − dist(k,l), so with d_i ≥ λ_i, d_j ≥ λ_j,
//
//         pathlen(i,j) = d_i + d_j − 2·d_v
//                      ≥ λ_i + λ_j − cu_k − cu_l + dist(k,l),
//
//     which meets dist(i,j) whenever
//
//         dist(i,j) − λ_i − λ_j ≤ dist(k,l) − cu_k − cu_l.
//
//     Here cu_x is the sink's enforced (finite) upper window and λ_x the
//     enforced lower window, or 0 — path lengths are non-negative — when
//     the lower side is vacuous (dominatesWindow).
//
// The oracle keeps, per (node v, ordered child pair) block, the witness
// (k,l) maximizing dist(k,l) − cu_k − cu_l; the witness row is seeded
// into the LP so arm 2 holds at every iterate, and every other pair in
// the block passing the test above is never generated or priced. Because
// Manhattan distance is a max of four separable linear forms in the
// rotated coordinates u = x+y, v = x−y, the witness, the block-wide
// static maximum of dist − λ − λ, and the per-round exact bound on the
// block's worst violation all come from O(1) combinations of per-subtree
// extremes maintained in one O(n) bottom-up fold.

// psForms are the four rotated-coordinate linear forms whose pairwise
// maximum is the Manhattan distance: dist(k,l) = max_f form_f(k) +
// form_conj(f)(l), with conj(f) = f XOR 1.
const psForms = 4

// ext4 holds per-subtree maxima of the four forms, each shifted by a
// per-sink adjustment, with the achieving sink.
type ext4 struct {
	m   [psForms]float64
	arg [psForms]int
}

func emptyExt4() ext4 {
	var e ext4
	for f := 0; f < psForms; f++ {
		e.m[f] = math.Inf(-1)
		e.arg[f] = -1
	}
	return e
}

// fold widens e by o's extremes.
func (e *ext4) fold(o ext4) {
	for f := 0; f < psForms; f++ {
		if o.m[f] > e.m[f] {
			e.m[f] = o.m[f]
			e.arg[f] = o.arg[f]
		}
	}
}

// sinkExt4 builds the single-sink extreme record for sink s with the
// given per-sink adjustment (each form value is form(s) − adj).
func sinkExt4(u, v, adj float64, s int) ext4 {
	var e ext4
	e.m[0], e.m[1] = u-adj, -u-adj
	e.m[2], e.m[3] = v-adj, -v-adj
	for f := 0; f < psForms; f++ {
		e.arg[f] = s
	}
	return e
}

// maxCombo returns the exact maximum over pairs (k ∈ A, l ∈ B) of
// dist(k,l) − adj_k − adj_l given the adjusted extremes of the two
// subtrees, plus an achieving pair (−1s when either side is empty).
func maxCombo(a, b ext4) (best float64, argA, argB int) {
	best, argA, argB = math.Inf(-1), -1, -1
	for f := 0; f < psForms; f++ {
		if v := a.m[f] + b.m[f^1]; v > best {
			best, argA, argB = v, a.arg[f], b.arg[f^1]
		}
	}
	return best, argA, argB
}

// psBlock is one (internal node, ordered child-subtree pair) group of
// sink-pair rows. All pairs in a block share their LCA, so window
// dominance (arm 2) applies within it.
type psBlock struct {
	v, a, b int // node and the two child subtrees
	// score is the witness objective dist(k,l) − cu_k − cu_l (−Inf when no
	// pair with finite uppers exists); wi < wj is the witness pair.
	score  float64
	wi, wj int
	// allDominated marks a block whose static maximum of dist − λ − λ is ≤
	// score: every pair but the witness is dominated and the block is
	// skipped wholesale.
	allDominated bool
	// counted marks that the block's pruned-pair count has been folded
	// into the stats (set on the first scan, or at build time for
	// allDominated blocks). Written only by the block's striped owner.
	counted bool
}

// presolve is the dominance-pruning state of one Solve: immutable window
// terms and block structure plus the per-round dynamic extremes.
type presolve struct {
	in      *Instance
	lam, cu []float64 // enforced windows per sink (index 1…m)
	uu, vv  []float64 // rotated sink coordinates (index 1…m)

	order, lo, hi []int // DFS sink order and per-node spans

	blocks []psBlock
	// sourceImplied[i] marks source row (0,i) as implied by the sink's
	// enforced lower window (λ_i ≥ dist(0,i)); such rows are pruned.
	sourceImplied []bool

	// pruned counts dominated rows never generated or priced: the
	// closed-form count of allDominated blocks and implied source rows,
	// plus per-pair counts folded in on each block's first scan.
	pruned int64

	dynExt []ext4 // per-node extremes of form − d, rebuilt each round
}

// enforcedWindowTerms lowers the stated bounds to the per-sink terms the
// dominance arms may rely on: cu is the enforced upper window (+Inf when
// none is stated) and λ the enforced lower window clamped at the
// structural floor 0.
func enforcedWindowTerms(b Bounds, m int) (lam, cu []float64) {
	lam = make([]float64, m+1)
	cu = make([]float64, m+1)
	for i := 1; i <= m; i++ {
		lo, hi, ok := delayWindow(b.L[i], b.U[i])
		if !ok {
			cu[i] = math.Inf(1)
			continue
		}
		cu[i] = hi // delayWindow keeps hi = U[i] (possibly +Inf)
		if !math.IsInf(lo, -1) && lo > 0 {
			lam[i] = lo
		}
	}
	return lam, cu
}

// newPresolve builds the dominance state for one instance + bounds: the
// DFS spans, the per-block witnesses and static prune decisions, and the
// implied-source-row marks. Cost is O(n) plus O(blocks).
func newPresolve(in *Instance, b Bounds) *presolve {
	t := in.Tree
	m := t.NumSinks
	ps := &presolve{in: in}
	ps.lam, ps.cu = enforcedWindowTerms(b, m)
	ps.uu = make([]float64, m+1)
	ps.vv = make([]float64, m+1)
	for i := 1; i <= m; i++ {
		ps.uu[i], ps.vv[i] = in.SinkLoc[i].UV()
	}
	ps.order, ps.lo, ps.hi = t.SinkOrder()
	ps.dynExt = make([]ext4, t.N())

	// One bottom-up fold computes both adjusted extreme families.
	cuExt := make([]ext4, t.N())
	lamExt := make([]ext4, t.N())
	post := t.Postorder()
	for _, k := range post {
		cuExt[k] = emptyExt4()
		lamExt[k] = emptyExt4()
		if t.IsSink(k) {
			cuExt[k] = sinkExt4(ps.uu[k], ps.vv[k], ps.cu[k], k)
			lamExt[k] = sinkExt4(ps.uu[k], ps.vv[k], ps.lam[k], k)
		}
		for _, c := range t.Children(k) {
			cuExt[k].fold(cuExt[c])
			lamExt[k].fold(lamExt[c])
		}
	}

	for v := 0; v < t.N(); v++ {
		ch := t.Children(v)
		if len(ch) < 2 {
			continue
		}
		for a := 0; a < len(ch); a++ {
			for b := a + 1; b < len(ch); b++ {
				ca, cb := ch[a], ch[b]
				na := ps.hi[ca] - ps.lo[ca]
				nb := ps.hi[cb] - ps.lo[cb]
				if na == 0 || nb == 0 {
					continue
				}
				blk := psBlock{v: v, a: ca, b: cb, score: math.Inf(-1), wi: -1, wj: -1}
				score, wa, wb := maxCombo(cuExt[ca], cuExt[cb])
				if wa >= 0 && !math.IsInf(score, -1) {
					if wa > wb {
						wa, wb = wb, wa
					}
					blk.score, blk.wi, blk.wj = score, wa, wb
					staticMax, _, _ := maxCombo(lamExt[ca], lamExt[cb])
					if staticMax <= score {
						blk.allDominated = true
						blk.counted = true
						ps.pruned += int64(na)*int64(nb) - 1
					}
				}
				ps.blocks = append(ps.blocks, blk)
			}
		}
	}

	if in.Source != nil {
		ps.sourceImplied = make([]bool, m+1)
		for i := 1; i <= m; i++ {
			if ps.lam[i] >= in.Dist(0, i) {
				ps.sourceImplied[i] = true
				ps.pruned++
			}
		}
	}
	return ps
}

// seedPairs returns the rows to state upfront under presolve: every
// block's witness (arm 2 requires the witness row in the LP at every
// iterate) plus the non-implied source rows.
func (ps *presolve) seedPairs() [][2]int {
	var pairs [][2]int
	for _, blk := range ps.blocks {
		if blk.wi >= 0 {
			pairs = append(pairs, [2]int{blk.wi, blk.wj})
		}
	}
	if ps.in.Source != nil {
		for i := 1; i <= ps.in.Tree.NumSinks; i++ {
			if !ps.sourceImplied[i] {
				pairs = append(pairs, [2]int{0, i})
			}
		}
	}
	return pairs
}

// prunedRows returns the cumulative dominated-row count.
func (ps *presolve) prunedRows() int { return int(ps.pruned) }

// refreshDyn recomputes the per-node extremes of form − d over subtree
// sinks (O(n)) so each block's exact worst violation is available in
// O(1): maxCombo(dyn[a], dyn[b]) + 2·d[v].
func (ps *presolve) refreshDyn(d []float64) {
	t := ps.in.Tree
	for _, k := range t.Postorder() {
		e := emptyExt4()
		if t.IsSink(k) {
			e = sinkExt4(ps.uu[k], ps.vv[k], d[k], k)
		}
		for _, c := range t.Children(k) {
			e.fold(ps.dynExt[c])
		}
		ps.dynExt[k] = e
	}
}

// violatedPairs is the block-structured separation oracle: same contract
// and determinism guarantee as violatedPairsN (sorted by violation with
// the pair as tie-break, top batch), but it skips whole blocks whose
// exact violation bound clears the tolerance, and inside a scanned block
// it skips statically dominated pairs. Blocks are striped across the
// worker pool; each block has one owner per solve, which is what lets
// the first-scan prune counting run without locks.
func (ps *presolve) violatedPairs(d []float64, tol float64, batch, workers int) [][2]int {
	t := ps.in.Tree
	m := t.NumSinks
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if m < 64 || len(ps.blocks) == 0 {
		workers = 1
	}
	if workers > len(ps.blocks) && len(ps.blocks) > 0 {
		workers = len(ps.blocks)
	}
	ps.refreshDyn(d)

	var vs []sepViol
	var prunedNow int64
	scan := func(start, stride int) ([]sepViol, int64) {
		var local []sepViol
		var pruned int64
		for bi := start; bi < len(ps.blocks); bi += stride {
			blk := &ps.blocks[bi]
			if blk.allDominated {
				// Only the witness row can bind; it is already stated.
				continue
			}
			bound, _, _ := maxCombo(ps.dynExt[blk.a], ps.dynExt[blk.b])
			if bound+2*d[blk.v] <= tol {
				continue // exact bound: no pair in this block is violated
			}
			count := !blk.counted
			if count {
				blk.counted = true
			}
			dv2 := 2 * d[blk.v]
			for _, i := range ps.order[ps.lo[blk.a]:ps.hi[blk.a]] {
				for _, j := range ps.order[ps.lo[blk.b]:ps.hi[blk.b]] {
					need := ps.in.Dist(i, j)
					if need == 0 {
						continue
					}
					pi, pj := i, j
					if pi > pj {
						pi, pj = pj, pi
					}
					if pi != blk.wi || pj != blk.wj {
						if need-ps.lam[pi]-ps.lam[pj] <= blk.score {
							if count {
								pruned++
							}
							continue // dominated by the witness row
						}
					}
					if viol := need - d[i] - d[j] + dv2; viol > tol {
						local = append(local, sepViol{[2]int{pi, pj}, viol})
					}
				}
			}
		}
		return local, pruned
	}
	if workers <= 1 {
		vs, prunedNow = scan(0, 1)
	} else {
		locals := make([][]sepViol, workers)
		counts := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				locals[w], counts[w] = scan(w, workers)
			}(w)
		}
		wg.Wait()
		for w := range locals {
			vs = append(vs, locals[w]...)
			prunedNow += counts[w]
		}
	}
	ps.pruned += prunedNow

	if ps.in.Source != nil {
		for i := 1; i <= m; i++ {
			if ps.sourceImplied[i] {
				continue
			}
			if need := ps.in.Dist(0, i); need-d[i] > tol {
				vs = append(vs, sepViol{[2]int{0, i}, need - d[i]})
			}
		}
	}
	sort.Slice(vs, func(a, b int) bool {
		if vs[a].amount != vs[b].amount {
			return vs[a].amount > vs[b].amount
		}
		if vs[a].pair[0] != vs[b].pair[0] {
			return vs[a].pair[0] < vs[b].pair[0]
		}
		return vs[a].pair[1] < vs[b].pair[1]
	})
	if len(vs) > batch {
		vs = vs[:batch]
	}
	out := make([][2]int, len(vs))
	for i, v := range vs {
		out[i] = v.pair
	}
	return out
}

// dominatesContainment reports arm 1: row (k,l) implies row (i,j)
// because path(k,l) ⊆ path(i,j) — both k and l lie on the i–j path — and
// dist(i,j) ≤ dist(k,l). Self-domination ((i,j) = (k,l)) reports false.
func dominatesContainment(in *Instance, i, j, k, l int) bool {
	t := in.Tree
	if i > j {
		i, j = j, i
	}
	if k > l {
		k, l = l, k
	}
	if i == k && j == l {
		return false
	}
	anc := t.LCA(i, j)
	onPath := func(x int) bool {
		if t.LCA(x, anc) != anc {
			return false // above or beside the path's apex
		}
		return t.LCA(x, i) == x || t.LCA(x, j) == x
	}
	if !onPath(k) || !onPath(l) {
		return false
	}
	return in.Dist(i, j) <= in.Dist(k, l)
}

// dominatesWindow reports arm 2: row (i,j) is implied by the stated row
// (k,l) plus the delay windows, which requires both pairs to cross the
// same ordered child-subtree pair under their common LCA. The caller
// guarantees row (k,l) is (or will be) stated in the LP.
// Self-domination reports false — a tie must keep its witness.
func dominatesWindow(in *Instance, b Bounds, i, j, k, l int) bool {
	t := in.Tree
	if i > j {
		i, j = j, i
	}
	if k > l {
		k, l = l, k
	}
	if i == k && j == l {
		return false
	}
	v := t.LCA(i, j)
	if t.LCA(k, l) != v {
		return false
	}
	// Each pair must straddle the same two child subtrees of v. A pair
	// with an endpoint equal to v itself (a non-leaf sink) is degenerate:
	// its path-length formula loses the cancelling d_v term, so the
	// window argument does not apply.
	ci, cj := childToward(t, v, i), childToward(t, v, j)
	ck, cl := childToward(t, v, k), childToward(t, v, l)
	if ci == v || cj == v || ck == v || cl == v {
		return false
	}
	if !(ci == ck && cj == cl) && !(ci == cl && cj == ck) {
		return false
	}
	// The test is symmetric in (k,l), so no re-orientation is needed.
	lam, cu := enforcedWindowTerms(b, t.NumSinks)
	if math.IsInf(cu[k], 1) || math.IsInf(cu[l], 1) {
		return false
	}
	return in.Dist(i, j)-lam[i]-lam[j] <= in.Dist(k, l)-cu[k]-cu[l]
}

// childToward returns the child of v whose subtree contains x (v itself
// when x == v).
func childToward(t *topology.Tree, v, x int) int {
	if x == v {
		return v
	}
	for t.Parent[x] != v {
		x = t.Parent[x]
	}
	return x
}
