package core

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/geom"
	"lubt/internal/topology"
)

// Instance is one LUBT problem instance: a topology plus the fixed
// locations (sinks, and optionally the source).
type Instance struct {
	Tree *topology.Tree
	// SinkLoc is indexed by sink id 1…m; entry 0 is unused.
	SinkLoc []geom.Point
	// Source is the fixed source location, or nil when the source position
	// is free (Eq. 4 applies instead of Eq. 3).
	Source *geom.Point
}

// ErrInfeasible reports that no tree satisfies the bounds under the given
// topology (the situation of Fig. 1).
var ErrInfeasible = errors.New("core: no LUBT exists for this topology and bounds")

// Validate checks structural consistency.
func (in *Instance) Validate() error {
	if in.Tree == nil {
		return errors.New("core: instance has no topology")
	}
	if len(in.SinkLoc) != in.Tree.NumSinks+1 {
		return fmt.Errorf("core: %d sink locations for %d sinks",
			len(in.SinkLoc)-1, in.Tree.NumSinks)
	}
	return nil
}

// Dist returns the Manhattan distance between fixed points i and j, where
// 0 denotes the source (valid only when its location is given) and 1…m
// denote sinks.
func (in *Instance) Dist(i, j int) float64 {
	return geom.Dist(in.loc(i), in.loc(j))
}

func (in *Instance) loc(i int) geom.Point {
	if i == 0 {
		if in.Source == nil {
			panic("core: source location not given")
		}
		return *in.Source
	}
	return in.SinkLoc[i]
}

// Radius implements §2: with a given source it is the distance from the
// source to the farthest sink; otherwise it is half the sink diameter.
func (in *Instance) Radius() float64 {
	m := in.Tree.NumSinks
	if in.Source != nil {
		r := 0.0
		for i := 1; i <= m; i++ {
			r = math.Max(r, in.Dist(0, i))
		}
		return r
	}
	return geom.Diameter(in.SinkLoc[1:]) / 2
}

// Bounds holds the per-sink delay window [L[i], U[i]], indexed by sink id
// (entry 0 unused). Use math.Inf(1) for an unbounded upper limit.
type Bounds struct {
	L, U []float64
}

// UniformBounds gives every one of the m sinks the same window [l, u].
func UniformBounds(m int, l, u float64) Bounds {
	b := Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		b.L[i] = l
		b.U[i] = u
	}
	return b
}

// SkewWindow returns the uniform window [u−skew, u]: the tolerable-skew
// clock routing bounds of §6 with delay cap u.
func SkewWindow(m int, skew, u float64) Bounds {
	return UniformBounds(m, u-skew, u)
}

// Validate checks Eq. (2)–(4): 0 ≤ l_i ≤ u_i, and u_i at least
// dist(s0,s_i) (source given) or at least the radius (source free). These
// are the paper's necessary conditions; definite infeasibility beyond them
// is detected by the LP itself.
func (b Bounds) Validate(in *Instance) error {
	m := in.Tree.NumSinks
	if len(b.L) != m+1 || len(b.U) != m+1 {
		return fmt.Errorf("core: bounds sized %d/%d for %d sinks", len(b.L), len(b.U), m)
	}
	var radius float64
	if in.Source == nil {
		radius = in.Radius()
	}
	const slack = 1e-9
	for i := 1; i <= m; i++ {
		l, u := b.L[i], b.U[i]
		if l < 0 || l > u {
			return fmt.Errorf("core: sink %d has invalid window [%g, %g]", i, l, u)
		}
		if in.Source != nil {
			if d := in.Dist(0, i); u < d-slack-1e-9*d {
				return fmt.Errorf("core: sink %d upper bound %g below source distance %g (Eq. 3)", i, u, d)
			}
		} else if u < radius-slack-1e-9*radius {
			return fmt.Errorf("core: sink %d upper bound %g below radius %g (Eq. 4)", i, u, radius)
		}
	}
	return nil
}

// Equal reports whether every sink has a degenerate window l = u (the
// zero-skew case, which EBF states with equality rows, §4.6).
func (b Bounds) Equal() bool {
	for i := 1; i < len(b.L); i++ {
		if b.L[i] != b.U[i] {
			return false
		}
	}
	return true
}
