package core

import (
	"fmt"
	"math"

	"lubt/internal/lp"
)

// Session is an EBF solve held open for incremental re-optimization: the
// engineering-change-order (ECO) workflow where one sink's delay window
// is retightened or one edge's weight changes after the tree is built.
// The revised engine keeps its basis, factorization and Steiner row pool
// across edits, so a Resolve after a local edit costs a handful of dual
// pivots instead of a cold solve:
//
//   - Retighten rewrites a sink's delay row in place. The path terms are
//     unchanged, so the engine takes the rhs-only restage fast path — no
//     refactorization, one FTRAN.
//   - Reweight shifts one objective coefficient; the engine repairs the
//     duals with at most one BTRAN and re-prices.
//
// A Session is not safe for concurrent use.
type Session struct {
	in  *Instance
	b   Bounds
	w   []float64
	rv  *lp.Revised
	gen *genState
	// delayRow maps sink id → the engine tableau row holding its delay
	// window, or −1 when the window is vacuous (no row stated).
	delayRow []int
	res      *Result
	// lastPivots is the dual-pivot count of the most recent Resolve alone
	// (the warm-vs-cold ECO metric); lastRestages/lastRowRepl likewise.
	lastPivots int
}

// NewSession solves the instance like Solve and keeps the engine warm for
// incremental edits. Only the restageable revised engine supports
// sessions: an explicit cold Solver or the dense ablation engine is
// rejected (their tableaus cannot replace rows in place).
func NewSession(in *Instance, b Bounds, opt *Options) (*Session, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := b.Validate(in); err != nil {
		return nil, err
	}
	if opt != nil && opt.Solver != nil {
		return nil, fmt.Errorf("core: ECO sessions need the restageable revised engine, not an explicit cold Solver")
	}
	if opt != nil && opt.Engine != "" && opt.Engine != "revised" {
		return nil, fmt.Errorf("core: ECO sessions need the restageable revised engine, not %q", opt.Engine)
	}
	t := in.Tree
	n := t.N()
	w := append([]float64(nil), opt.weights(n)...)
	maxRounds, batch, tol, workers := opt.loopParams(in)
	tr := opt.tracer()

	eng, err := opt.engine(n, w)
	if err != nil {
		return nil, err
	}
	rv := eng.(*lp.Revised)
	rv.SetTracer(tr)
	for k := 1; k < n; k++ {
		if t.ForcedZero[k] {
			rv.SetVarBounds(k, 0, 0)
		}
	}
	s := &Session{
		in:       in,
		b:        Bounds{L: append([]float64(nil), b.L...), U: append([]float64(nil), b.U...)},
		w:        w,
		rv:       rv,
		delayRow: make([]int, t.NumSinks+1),
	}
	for i := 1; i <= t.NumSinks; i++ {
		s.delayRow[i] = -1
		lo, hi, ok := delayWindow(b.L[i], b.U[i])
		if !ok {
			continue
		}
		s.delayRow[i] = rv.TableauRows()
		rv.AddRangedRow(unitTermsOf(t.PathToRoot(i)), lo, hi)
	}
	s.gen = &genState{
		in:        in,
		eng:       rv,
		w:         w,
		have:      map[pairKey]bool{},
		full:      opt != nil && opt.FullMatrix,
		batch:     batch,
		maxRounds: maxRounds,
		tol:       tol,
		workers:   workers,
		tr:        tr,
	}
	if s.gen.full {
		for i := 1; i <= t.NumSinks; i++ {
			for j := i + 1; j <= t.NumSinks; j++ {
				s.gen.addPair(i, j)
			}
		}
		if in.Source != nil {
			for i := 1; i <= t.NumSinks; i++ {
				s.gen.addPair(0, i)
			}
		}
	} else {
		for _, pr := range seedPairs(in) {
			s.gen.addPair(pr[0], pr[1])
		}
	}
	pivots0 := rv.Iterations()
	res, err := s.gen.run()
	if err != nil {
		return nil, err
	}
	s.res = res
	s.lastPivots = rv.Iterations() - pivots0
	return s, nil
}

// Result returns the most recent solve's result (from NewSession or the
// last successful Resolve).
func (s *Session) Result() *Result { return s.res }

// Bounds returns a copy of the session's current delay windows.
func (s *Session) Bounds() Bounds {
	return Bounds{L: append([]float64(nil), s.b.L...), U: append([]float64(nil), s.b.U...)}
}

// ResolvePivots returns the dual-pivot count of the most recent solve
// alone (NewSession's cold solve, or the last Resolve's warm re-solve) —
// the numerator of the warm-vs-cold ECO comparison.
func (s *Session) ResolvePivots() int { return s.lastPivots }

// Retighten replaces sink i's delay window with [l, u] and restages the
// engine: the sink's ranged row is rewritten in place (same path terms,
// so the basis factorization survives untouched), added if the window was
// vacuous, or deleted if it became vacuous. The edit takes effect at the
// next Resolve. The window must satisfy the paper's per-sink necessary
// conditions (Eq. 2–4), mirroring Bounds.Validate.
func (s *Session) Retighten(sink int, l, u float64) error {
	m := s.in.Tree.NumSinks
	if sink < 1 || sink > m {
		return fmt.Errorf("core: Retighten sink %d of %d", sink, m)
	}
	if l < 0 || l > u || math.IsNaN(l) || math.IsNaN(u) {
		return fmt.Errorf("core: sink %d has invalid window [%g, %g]", sink, l, u)
	}
	const slack = 1e-9
	if s.in.Source != nil {
		if d := s.in.Dist(0, sink); u < d-slack-1e-9*d {
			return fmt.Errorf("core: sink %d upper bound %g below source distance %g (Eq. 3)", sink, u, d)
		}
	} else if r := s.in.Radius(); u < r-slack-1e-9*r {
		return fmt.Errorf("core: sink %d upper bound %g below radius %g (Eq. 4)", sink, u, r)
	}
	s.b.L[sink], s.b.U[sink] = l, u
	lo, hi, ok := delayWindow(l, u)
	row := s.delayRow[sink]
	switch {
	case row >= 0 && ok:
		s.rv.ReplaceRangedRow(row, unitTermsOf(s.in.Tree.PathToRoot(sink)), lo, hi)
	case row >= 0:
		s.rv.DeleteRow(row)
		s.delayRow[sink] = -1
	case ok:
		s.delayRow[sink] = s.rv.TableauRows()
		s.rv.AddRangedRow(unitTermsOf(s.in.Tree.PathToRoot(sink)), lo, hi)
	}
	return nil
}

// Reweight sets edge k's objective weight to w ≥ 0 and restages the
// engine's costs (§7 "different weights on edges"). The edit takes effect
// at the next Resolve.
func (s *Session) Reweight(edge int, w float64) error {
	n := s.in.Tree.N()
	if edge < 1 || edge >= n {
		return fmt.Errorf("core: Reweight edge %d of %d", edge, n-1)
	}
	if w < 0 || math.IsNaN(w) {
		return fmt.Errorf("core: edge %d weight %g must be non-negative", edge, w)
	}
	s.w[edge] = w // s.w aliases gen.w, so run() prices the new objective
	s.rv.SetCost(edge, w)
	return nil
}

// Resolve re-optimizes after Retighten/Reweight edits, warm from the
// previous basis, running separation rounds until the Steiner oracle is
// clean again (the row pool persists, so usually zero new rows). Returns
// ErrInfeasible (wrapped) when the edited windows admit no tree; the
// session stays usable — relax a window and Resolve again.
func (s *Session) Resolve() (*Result, error) {
	sp := s.gen.tr.Start("eco-resolve")
	defer sp.End()
	pivots0 := s.rv.Iterations()
	res, err := s.gen.run()
	s.lastPivots = s.rv.Iterations() - pivots0
	sp.SetInt("pivots", s.lastPivots)
	if err != nil {
		return nil, err
	}
	s.res = res
	return res, nil
}
