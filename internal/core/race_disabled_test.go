//go:build !race

package core

// raceEnabled mirrors race_enabled_test.go for uninstrumented builds.
const raceEnabled = false
