package core

import (
	"math"
	"testing"

	"lubt/internal/geom"
	"lubt/internal/lp"
	"lubt/internal/topology"
)

// pricingSchemes are the three leaving-row rules of the revised engine,
// in the order (default, ablation baseline, exact cross-check).
var pricingSchemes = []string{"devex", "mostviolated", "steepest"}

// TestPricingOptionErrors pins the option-validation contract: Pricing
// only means something on the revised engine, so combining it with the
// dense engine or an explicit cold solver must fail loudly instead of
// being silently ignored, and unknown scheme names are rejected.
func TestPricingOptionErrors(t *testing.T) {
	in, b := randomInstance(t, 210, 5)
	cases := map[string]*Options{
		"dense engine":  {Engine: "dense", Pricing: "devex"},
		"cold solver":   {Solver: &lp.Simplex{}, Pricing: "devex"},
		"unknown token": {Pricing: "dantzig"},
	}
	for name, opt := range cases {
		if _, err := Solve(in, b, opt); err == nil {
			t.Errorf("%s: Pricing misuse accepted", name)
		}
	}
	// The explicit spellings of the valid schemes must all be accepted.
	for _, scheme := range pricingSchemes {
		if _, err := Solve(in, b, &Options{Pricing: scheme}); err != nil {
			t.Errorf("pricing %q rejected: %v", scheme, err)
		}
	}
}

// TestPricingSchemesAgreeWithOracles runs a random instance through the
// revised engine under all three pricing schemes and checks each against
// the dense-tableau and IPM oracles at the 1e-6·radius acceptance bar:
// the pricing rule must change only the pivot path, never the optimum.
func TestPricingSchemesAgreeWithOracles(t *testing.T) {
	in, b := randomInstance(t, 211, 14)
	radius := in.Radius()
	dense, err := Solve(in, b, &Options{Engine: "dense"})
	if err != nil {
		t.Fatal(err)
	}
	ipm, err := Solve(in, b, &Options{Solver: &lp.IPM{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense.Cost-ipm.Cost) > 1e-6*radius {
		t.Fatalf("oracles disagree: dense %.9f ipm %.9f", dense.Cost, ipm.Cost)
	}
	for _, scheme := range pricingSchemes {
		res, err := Solve(in, b, &Options{Pricing: scheme})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if math.Abs(res.Cost-dense.Cost) > 1e-6*radius {
			t.Errorf("%s: cost %.9f vs dense oracle %.9f (radius %g)", scheme, res.Cost, dense.Cost, radius)
		}
		if math.Abs(res.Cost-ipm.Cost) > 1e-6*radius {
			t.Errorf("%s: cost %.9f vs ipm oracle %.9f (radius %g)", scheme, res.Cost, ipm.Cost, radius)
		}
	}
}

// tieHeavyStar builds the degenerate-tie stress instance: eight sinks at
// exactly the same Manhattan distance from the source on a star topology,
// with a ranged delay window strictly above that distance. Every delay
// row has identical structure and RHS, so the dual simplex faces banks of
// exactly-equal violations — the pattern the reference-weight pricing
// schemes exist to break without cycling.
func tieHeavyStar(t *testing.T) (*Instance, Bounds) {
	t.Helper()
	// Lattice points at Manhattan distance exactly 14 from the origin.
	pts := []geom.Point{
		geom.Pt(6, 8), geom.Pt(8, 6), geom.Pt(8, -6), geom.Pt(6, -8),
		geom.Pt(-6, -8), geom.Pt(-8, -6), geom.Pt(-8, 6), geom.Pt(-6, 8),
	}
	parents := make([]int, len(pts)+1)
	parents[0] = -1
	for i := 1; i <= len(pts); i++ {
		parents[i] = 0
	}
	tree := topology.MustNew(parents, len(pts))
	src := geom.Pt(0, 0)
	in := &Instance{Tree: tree, SinkLoc: append([]geom.Point{{}}, pts...), Source: &src}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// Window [16, 20] with every source-sink distance 14: all eight ranged
	// delay rows are violated by exactly the same amount at the start and
	// every edge must snake identically. Radius 14 satisfies u ≥ radius.
	return in, UniformBounds(len(pts), 16, 20)
}

// TestPricingSchemesTieHeavyStar is the degenerate-tie acceptance check:
// the tie-heavy boxed instance (banks of equal violations on ranged
// delay-window rows) must solve under all three pricing schemes without
// hitting IterLimit, agreeing with the dense and IPM oracles to
// 1e-6·radius; pivot counts are logged per scheme for -v runs.
func TestPricingSchemesTieHeavyStar(t *testing.T) {
	in, b := tieHeavyStar(t)
	radius := in.Radius()
	dense, err := Solve(in, b, &Options{Engine: "dense"})
	if err != nil {
		t.Fatal(err)
	}
	ipm, err := Solve(in, b, &Options{Solver: &lp.IPM{}})
	if err != nil {
		t.Fatal(err)
	}
	// Eight sinks each snaking to delay ≥ 16: the optimum is 8·16 = 128.
	if math.Abs(dense.Cost-128) > 1e-6*radius {
		t.Fatalf("dense oracle cost %.9f, want 128", dense.Cost)
	}
	for _, scheme := range pricingSchemes {
		res, err := Solve(in, b, &Options{Pricing: scheme})
		if err != nil {
			t.Fatalf("%s: %v (IterLimit here means the tie-break cycled)", scheme, err)
		}
		if math.Abs(res.Cost-dense.Cost) > 1e-6*radius {
			t.Errorf("%s: cost %.9f vs dense %.9f", scheme, res.Cost, dense.Cost)
		}
		if math.Abs(res.Cost-ipm.Cost) > 1e-6*radius {
			t.Errorf("%s: cost %.9f vs ipm %.9f", scheme, res.Cost, ipm.Cost)
		}
		for i := 1; i <= 8; i++ {
			if res.Delays[i] < 16-1e-6*radius || res.Delays[i] > 20+1e-6*radius {
				t.Errorf("%s: delay(s%d) = %g outside [16, 20]", scheme, i, res.Delays[i])
			}
		}
		t.Logf("%s: %d pivots, scheme %q", scheme, res.Stats.Pivots, res.Stats.PricingScheme)
	}
}

// TestDevexPivotOrderingR4S asserts the headline pivot-count win on the
// degenerate-tie-prone r4-s workload: Devex pricing must take strictly
// fewer dual pivots than the most-violated baseline (1665 vs 1749 at the
// time of writing), while both land on the same optimum. This is the
// in-tree twin of the ci.sh bench-smoke pivot gate.
func TestDevexPivotOrderingR4S(t *testing.T) {
	if testing.Short() {
		t.Skip("r4-s solve in -short mode")
	}
	in, cb := benchInstance(t, "r4-s")
	radius := in.Radius()
	devex, err := Solve(in, cb, &Options{Pricing: "devex"})
	if err != nil {
		t.Fatal(err)
	}
	mv, err := Solve(in, cb, &Options{Pricing: "mostviolated"})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(devex.Cost-mv.Cost) > 1e-6*radius {
		t.Fatalf("costs disagree: devex %.9f mv %.9f", devex.Cost, mv.Cost)
	}
	dp, mp := devex.Stats.Pivots, mv.Stats.Pivots
	t.Logf("r4-s pivots: devex %d, most-violated %d", dp, mp)
	if dp >= mp {
		t.Errorf("devex took %d pivots, most-violated %d — want strictly fewer on r4-s", dp, mp)
	}
	if devex.Stats.PricingScheme != "devex" || mv.Stats.PricingScheme != "most-violated" {
		t.Errorf("pricing labels: %q / %q", devex.Stats.PricingScheme, mv.Stats.PricingScheme)
	}
}
