package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lubt/internal/lp"
)

// TestSessionBasics pins the Session construction contract: explicit cold
// solvers and the dense ablation engine are rejected (their tableaus
// cannot replace rows in place), the initial solve matches a plain Solve,
// and bad edit arguments error without corrupting the session.
func TestSessionBasics(t *testing.T) {
	in, b := randomInstance(t, 230, 9)
	radius := in.Radius()
	if _, err := NewSession(in, b, &Options{Solver: &lp.Simplex{}}); err == nil {
		t.Error("explicit cold solver accepted")
	}
	if _, err := NewSession(in, b, &Options{Engine: "dense"}); err == nil {
		t.Error("dense engine accepted")
	}
	sess, err := NewSession(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain := mustSolve(t, in, b, nil)
	if math.Abs(sess.Result().Cost-plain.Cost) > 1e-6*radius {
		t.Errorf("session cold solve cost %.9f vs Solve %.9f", sess.Result().Cost, plain.Cost)
	}
	if err := sess.Retighten(0, 1, 2); err == nil {
		t.Error("sink 0 accepted")
	}
	if err := sess.Retighten(1, 5, 4); err == nil {
		t.Error("inverted window accepted")
	}
	if err := sess.Retighten(1, 0, 0.1*radius); err == nil {
		t.Error("window violating the Eq. 4 floor accepted")
	}
	if err := sess.Reweight(0, 1); err == nil {
		t.Error("edge 0 accepted")
	}
	if err := sess.Reweight(1, -1); err == nil {
		t.Error("negative weight accepted")
	}
	// The failed edits must not have touched the engine: a Resolve still
	// lands on the same optimum.
	res, err := sess.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-plain.Cost) > 1e-6*radius {
		t.Errorf("cost drifted to %.9f after rejected edits, want %.9f", res.Cost, plain.Cost)
	}
}

// TestSessionRetightenVsOracles is the restaging-vs-oracles agreement
// suite: after each of N random bound/weight edits, the warm re-solve
// must agree with a cold dense-engine solve AND the IPM of the same
// edited problem to 1e-6·radius — including on the infeasibility verdict.
// This extends the four-way agreement testing to the incremental path:
// restaging may change the pivot path, never the optimum.
func TestSessionRetightenVsOracles(t *testing.T) {
	const steps = 12
	in, b0 := randomInstance(t, 231, 12)
	m := in.Tree.NumSinks
	n := in.Tree.N()
	radius := in.Radius()
	rng := rand.New(rand.NewSource(231))

	sess, err := NewSession(in, b0, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]float64, n)
	for k := 1; k < n; k++ {
		w[k] = 1
	}
	for step := 0; step < steps; step++ {
		b := sess.Bounds()
		switch rng.Intn(3) {
		case 0: // raise one sink's lower bound (leaf-edge elongation absorbs it)
			i := 1 + rng.Intn(m)
			newL := b.L[i] + rng.Float64()*0.3*radius
			newU := math.Max(b.U[i], newL)
			if err := sess.Retighten(i, newL, newU); err != nil {
				t.Fatalf("step %d: retighten raise: %v", step, err)
			}
		case 1: // slide one sink's whole window, respecting the Eq. 4 floor
			i := 1 + rng.Intn(m)
			newU := radius * (1 + 0.5*rng.Float64())
			newL := math.Max(0, newU-(0.3+0.7*rng.Float64())*radius)
			if err := sess.Retighten(i, newL, newU); err != nil {
				t.Fatalf("step %d: retighten slide: %v", step, err)
			}
		case 2: // reprice one edge
			k := 1 + rng.Intn(n-1)
			w[k] = 0.5 + 1.5*rng.Float64()
			if err := sess.Reweight(k, w[k]); err != nil {
				t.Fatalf("step %d: reweight: %v", step, err)
			}
		}
		warm, warmErr := sess.Resolve()
		cur := sess.Bounds()
		dense, denseErr := Solve(in, cur, &Options{Engine: "dense", Weights: w})
		ipm, ipmErr := Solve(in, cur, &Options{Solver: &lp.IPM{}, Weights: w})
		if warmErr != nil {
			if !errors.Is(warmErr, ErrInfeasible) {
				t.Fatalf("step %d: warm resolve: %v", step, warmErr)
			}
			if denseErr == nil || !errors.Is(denseErr, ErrInfeasible) {
				t.Fatalf("step %d: warm infeasible but dense oracle says %v", step, denseErr)
			}
			if ipmErr == nil || !errors.Is(ipmErr, ErrInfeasible) {
				t.Fatalf("step %d: warm infeasible but ipm oracle says %v", step, ipmErr)
			}
			continue
		}
		if denseErr != nil || ipmErr != nil {
			t.Fatalf("step %d: warm feasible but oracles error: dense %v, ipm %v", step, denseErr, ipmErr)
		}
		if math.Abs(warm.Cost-dense.Cost) > 1e-6*radius {
			t.Errorf("step %d: warm cost %.9f vs dense oracle %.9f", step, warm.Cost, dense.Cost)
		}
		if math.Abs(warm.Cost-ipm.Cost) > 1e-6*radius {
			t.Errorf("step %d: warm cost %.9f vs ipm oracle %.9f", step, warm.Cost, ipm.Cost)
		}
		if err := Verify(in, cur, warm.E, 1e-5*(1+radius)); err != nil {
			t.Errorf("step %d: warm tree fails full verification: %v", step, err)
		}
	}
	st := sess.Result().Stats
	if st.Restages == 0 && st.RowReplacements == 0 {
		t.Error("no restages recorded across 12 edits — the session is cold-solving")
	}
}

// TestSessionInfeasibleThenRelax pins the recovery contract: an edit that
// makes the windows unsatisfiable yields ErrInfeasible from Resolve, and
// the session stays usable — relaxing the same sink's window and
// resolving again lands back on a verified optimum.
func TestSessionInfeasibleThenRelax(t *testing.T) {
	in, b := randomInstance(t, 232, 8)
	radius := in.Radius()
	sess, err := NewSession(in, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sink 1 must arrive in a sliver far above every other sink's upper
	// bound: its shared path edges would have to stretch past what the
	// other windows allow... but the leaf edge absorbs elongation, so to
	// force infeasibility pin every sink high and one low instead.
	m := in.Tree.NumSinks
	for i := 1; i <= m; i++ {
		if err := sess.Retighten(i, 3*radius, 3*radius); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Retighten(1, 0, radius); err != nil {
		t.Fatal(err)
	}
	// Sink 1 shares its root path prefix with some zero-skew sibling at
	// 3·radius; with u₁ = radius the shared prefix alone may already
	// overshoot. If the topology happens to keep it feasible, the check
	// below is vacuous for the infeasible half — but the relax half still
	// exercises recovery.
	_, werr := sess.Resolve()
	cold, cerr := Solve(in, sess.Bounds(), &Options{Engine: "dense"})
	if (werr != nil) != (cerr != nil) {
		t.Fatalf("warm/cold verdicts disagree: warm %v, cold %v", werr, cerr)
	}
	if werr != nil && !errors.Is(werr, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", werr)
	}
	if werr != nil && cold != nil {
		t.Fatalf("cold oracle returned a result alongside error %v", cerr)
	}
	// Relax sink 1 back into the common window and re-solve warm.
	if err := sess.Retighten(1, 3*radius, 3*radius); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ref := mustSolve(t, in, sess.Bounds(), nil)
	if math.Abs(res.Cost-ref.Cost) > 1e-6*radius {
		t.Errorf("post-relax cost %.9f vs reference %.9f", res.Cost, ref.Cost)
	}
	if err := Verify(in, sess.Bounds(), res.E, 1e-5*(1+radius)); err != nil {
		t.Errorf("post-relax tree fails verification: %v", err)
	}
}

// TestSessionWarmPivotAdvantage asserts the point of the whole layer on a
// real workload: a single-sink retighten re-solved warm must cost well
// under a quarter of the cold solve's pivots (the in-tree twin of the
// ci.sh ECO bench gate, which runs r4-s through lubtbench).
func TestSessionWarmPivotAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("bench instance in -short mode")
	}
	in, cb := benchInstance(t, "prim1-s")
	radius := in.Radius()
	sess, err := NewSession(in, cb, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := sess.ResolvePivots()
	d1 := sess.Result().Delays[1]
	newL := d1 + 0.05*radius
	newU := math.Max(cb.U[1], newL)
	if err := sess.Retighten(1, newL, newU); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Resolve(); err != nil {
		t.Fatal(err)
	}
	warm := sess.ResolvePivots()
	t.Logf("prim1-s retighten sink 1: %d warm pivots vs %d cold", warm, cold)
	if cold > 0 && warm*4 >= cold {
		t.Errorf("warm re-solve took %d pivots vs %d cold — restaging is not keeping the basis warm", warm, cold)
	}
	// The rhs-only fast path must have been taken: same path terms means
	// a Restage, not a structural RowReplacement.
	st := sess.Result().Stats
	if st.Restages == 0 {
		t.Errorf("retighten recorded no restage (stats %+v)", st)
	}
}
