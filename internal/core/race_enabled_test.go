//go:build race

package core

// raceEnabled reports whether the race detector instruments this test
// binary; the agreement suite uses it to skip the cold-solver
// cross-checks whose single-threaded number crunching would push the
// package past the test timeout under instrumentation (see
// TestPresolveAgreement).
const raceEnabled = true
