package delay

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lubt/internal/topology"
)

// quickInstance bundles a random tree, model and edge lengths for
// testing/quick.
type quickInstance struct {
	tree *topology.Tree
	mdl  Elmore
	e    []float64
}

// Generate implements quick.Generator.
func (quickInstance) Generate(r *rand.Rand, size int) reflect.Value {
	m := 2 + r.Intn(8)
	tree, err := topology.RandomBinary(r, m, r.Intn(2) == 0)
	if err != nil {
		panic(err)
	}
	caps := make([]float64, m+1)
	for i := 1; i <= m; i++ {
		caps[i] = r.Float64() * 5
	}
	e := make([]float64, tree.N())
	for i := 1; i < tree.N(); i++ {
		e[i] = r.Float64() * 10
	}
	return reflect.ValueOf(quickInstance{
		tree: tree,
		mdl:  Elmore{Rw: 0.1 + r.Float64(), Cw: 0.1 + r.Float64(), SinkCap: caps},
		e:    e,
	})
}

// Elmore delay dominates: every sink's Elmore delay is at least
// r_w·(linear path length)·(its own load)/… — specifically it is
// non-negative and non-decreasing along every root path.
func TestQuickElmoreMonotoneAlongPaths(t *testing.T) {
	f := func(qi quickInstance) bool {
		d := qi.mdl.Delays(qi.tree, qi.e)
		for i := 1; i < qi.tree.N(); i++ {
			if d[i] < d[qi.tree.Parent[i]]-1e-12 {
				return false
			}
		}
		return d[0] == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Superposition of loads: adding sink capacitance anywhere cannot decrease
// any delay.
func TestQuickElmoreLoadMonotone(t *testing.T) {
	f := func(qi quickInstance, which uint8, extraRaw uint8) bool {
		m := qi.tree.NumSinks
		sink := 1 + int(which)%m
		extra := float64(extraRaw) / 8
		before := qi.mdl.Delays(qi.tree, qi.e)
		heavier := qi.mdl
		heavier.SinkCap = append([]float64(nil), qi.mdl.SinkCap...)
		heavier.SinkCap[sink] += extra
		after := heavier.Delays(qi.tree, qi.e)
		for i := 1; i <= m; i++ {
			if after[i] < before[i]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The gradient is non-negative everywhere (the Elmore delay is monotone
// in every edge length).
func TestQuickElmoreGradientNonNegative(t *testing.T) {
	f := func(qi quickInstance, which uint8) bool {
		sink := 1 + int(which)%qi.tree.NumSinks
		g := qi.mdl.Gradient(qi.tree, qi.e, sink)
		for x := 1; x < qi.tree.N(); x++ {
			if g[x] < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Linear and Elmore agree on the zero-length tree (both all-zero).
func TestQuickZeroTree(t *testing.T) {
	f := func(qi quickInstance) bool {
		zero := make([]float64, qi.tree.N())
		for _, d := range qi.mdl.Delays(qi.tree, zero) {
			if d != 0 {
				return false
			}
		}
		for _, d := range Linear(qi.tree, zero) {
			if d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Stats must bracket every sink delay.
func TestQuickStatsBracket(t *testing.T) {
	f := func(qi quickInstance) bool {
		d := qi.mdl.Delays(qi.tree, qi.e)
		s := Stats(qi.tree, d)
		for i := 1; i <= qi.tree.NumSinks; i++ {
			if d[i] < s.Min-1e-12 || d[i] > s.Max+1e-12 {
				return false
			}
		}
		return math.Abs(s.Skew-(s.Max-s.Min)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
