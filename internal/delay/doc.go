// Package delay implements the two delay models of the LUBT paper: the
// linear model (Eq. 1, delay = source-sink path length) under which EBF is
// an exact linear program, and the Elmore model (Eq. 12, §7) under which
// EBF becomes a nonlinear program solved by sequential linear programming
// in internal/core.
package delay
