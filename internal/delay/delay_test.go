package delay

import (
	"math"
	"math/rand"
	"testing"

	"lubt/internal/topology"
)

// chain builds source → steiner → sink: 0 ── 2 ── 1.
func chain(t *testing.T) *topology.Tree {
	t.Helper()
	return topology.MustNew([]int{-1, 2, 0}, 1)
}

// twoSinks builds 0 ── {1, 2} (root with two sink children).
func twoSinks(t *testing.T) *topology.Tree {
	t.Helper()
	return topology.MustNew([]int{-1, 0, 0}, 2)
}

func TestLinearMatchesTopologyDelays(t *testing.T) {
	tr := twoSinks(t)
	e := []float64{0, 3, 5}
	d := Linear(tr, e)
	if d[1] != 3 || d[2] != 5 || d[0] != 0 {
		t.Errorf("Linear = %v", d)
	}
}

func TestStats(t *testing.T) {
	tr := twoSinks(t)
	s := Stats(tr, []float64{0, 3, 5})
	if s.Min != 3 || s.Max != 5 || s.Skew != 2 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestElmoreSingleWire(t *testing.T) {
	// One wire of length L from source to sink with load c_L:
	// delay = r_w L (c_w L / 2 + c_L).
	tr := topology.MustNew([]int{-1, 0}, 1)
	m := Elmore{Rw: 2, Cw: 3, SinkCap: []float64{0, 7}}
	e := []float64{0, 5}
	d := m.Delays(tr, e)
	want := 2.0 * 5 * (3.0*5/2 + 7)
	if math.Abs(d[1]-want) > 1e-12 {
		t.Errorf("delay = %g, want %g", d[1], want)
	}
}

func TestElmoreChain(t *testing.T) {
	// 0 ──e2── 2 ──e1── 1. C at node 2 = c_w e1 + cap(1); C at node 1 = cap(1).
	tr := chain(t)
	m := Elmore{Rw: 1, Cw: 1, SinkCap: []float64{0, 2}}
	e := []float64{0, 3, 4}
	c := m.SubtreeCaps(tr, e)
	if math.Abs(c[1]-2) > 1e-12 || math.Abs(c[2]-(3+2)) > 1e-12 {
		t.Fatalf("caps = %v", c)
	}
	d := m.Delays(tr, e)
	want2 := 4.0 * (4.0/2 + 5)   // edge e2
	want1 := want2 + 3*(3.0/2+2) // plus edge e1
	if math.Abs(d[2]-want2) > 1e-12 || math.Abs(d[1]-want1) > 1e-12 {
		t.Errorf("delays = %v, want d2=%g d1=%g", d, want2, want1)
	}
}

func TestElmoreBranchingLoads(t *testing.T) {
	// Root edge sees the capacitance of both branches.
	//      0
	//      |
	//      3      (e3)
	//     / \
	//    1   2    (e1, e2)
	tr := topology.MustNew([]int{-1, 3, 3, 0}, 2)
	m := Elmore{Rw: 1, Cw: 2, SinkCap: []float64{0, 1, 1}}
	e := []float64{0, 2, 2, 1}
	c := m.SubtreeCaps(tr, e)
	wantC3 := 2*2.0 + 1 + 2*2.0 + 1 // both wire caps + both sink loads
	if math.Abs(c[3]-wantC3) > 1e-12 {
		t.Fatalf("C3 = %g, want %g", c[3], wantC3)
	}
	d := m.Delays(tr, e)
	if math.Abs(d[1]-d[2]) > 1e-12 {
		t.Error("symmetric branches must have equal delay")
	}
}

func TestElmoreZeroLengths(t *testing.T) {
	tr := twoSinks(t)
	m := Elmore{Rw: 1, Cw: 1}
	d := m.Delays(tr, []float64{0, 0, 0})
	if d[1] != 0 || d[2] != 0 {
		t.Errorf("zero-length delays = %v", d)
	}
}

// Gradient must match finite differences on random trees.
func TestElmoreGradientFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		mSinks := 2 + rng.Intn(8)
		tr, err := topology.RandomBinary(rng, mSinks, rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		caps := make([]float64, mSinks+1)
		for i := 1; i <= mSinks; i++ {
			caps[i] = rng.Float64() * 3
		}
		m := Elmore{Rw: 0.5 + rng.Float64(), Cw: 0.5 + rng.Float64(), SinkCap: caps}
		e := make([]float64, tr.N())
		for i := 1; i < tr.N(); i++ {
			e[i] = rng.Float64()*5 + 0.1
		}
		sink := 1 + rng.Intn(mSinks)
		g := m.Gradient(tr, e, sink)
		const h = 1e-6
		for x := 1; x < tr.N(); x++ {
			ep := append([]float64(nil), e...)
			ep[x] += h
			em := append([]float64(nil), e...)
			em[x] -= h
			fd := (m.Delays(tr, ep)[sink] - m.Delays(tr, em)[sink]) / (2 * h)
			if math.Abs(fd-g[x]) > 1e-4*(1+math.Abs(fd)) {
				t.Fatalf("trial %d sink %d edge %d: grad %g, fd %g", trial, sink, x, g[x], fd)
			}
		}
	}
}

func TestElmoreGradientPanicsOnNonSink(t *testing.T) {
	tr := chain(t)
	m := Elmore{Rw: 1, Cw: 1}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	m.Gradient(tr, make([]float64, tr.N()), 2) // node 2 is a Steiner point
}

func TestElmoreNilSinkCap(t *testing.T) {
	tr := twoSinks(t)
	m := Elmore{Rw: 1, Cw: 1}
	d := m.Delays(tr, []float64{0, 1, 1})
	if d[1] != 0.5 || d[2] != 0.5 { // r·e·(c·e/2) with no load
		t.Errorf("delays = %v", d)
	}
}

// Monotonicity: under Elmore, lengthening any edge cannot decrease any
// sink delay.
func TestElmoreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 30; trial++ {
		mSinks := 2 + rng.Intn(6)
		tr, err := topology.RandomBinary(rng, mSinks, false)
		if err != nil {
			t.Fatal(err)
		}
		m := Elmore{Rw: 1, Cw: 1}
		e := make([]float64, tr.N())
		for i := 1; i < tr.N(); i++ {
			e[i] = rng.Float64() * 4
		}
		base := m.Delays(tr, e)
		x := 1 + rng.Intn(tr.N()-1)
		e[x] += 1
		bumped := m.Delays(tr, e)
		for i := 1; i <= mSinks; i++ {
			if bumped[i] < base[i]-1e-12 {
				t.Fatalf("delay of sink %d decreased after lengthening edge %d", i, x)
			}
		}
	}
}
