package delay

import (
	"fmt"
	"math"

	"lubt/internal/topology"
)

// Linear evaluates the linear delay model: the delay of each node is the
// sum of edge lengths on its root path. It is topology.Delays re-exported
// under the model's name so call sites read uniformly.
func Linear(t *topology.Tree, e []float64) []float64 {
	return t.Delays(e)
}

// SinkStats summarizes the sink delays of a tree: minimum, maximum and
// skew (max − min, §2 of the paper).
type SinkStats struct {
	Min, Max, Skew float64
}

// Stats computes SinkStats from per-node delays.
func Stats(t *topology.Tree, delays []float64) SinkStats {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 1; i <= t.NumSinks; i++ {
		lo = math.Min(lo, delays[i])
		hi = math.Max(hi, delays[i])
	}
	return SinkStats{Min: lo, Max: hi, Skew: hi - lo}
}

// Elmore is the distributed RC delay model of Eq. 12. Rw and Cw are the
// wire resistance and capacitance per unit length; SinkCap[i] is the load
// capacitance of sink i (indexed by sink id; entry 0 unused, and a nil
// slice means zero loads).
type Elmore struct {
	Rw, Cw  float64
	SinkCap []float64
}

// sinkCap returns the load of sink i.
func (m Elmore) sinkCap(i int) float64 {
	if m.SinkCap == nil || i >= len(m.SinkCap) {
		return 0
	}
	return m.SinkCap[i]
}

// SubtreeCaps returns C_k for every node: the total sink + wire
// capacitance of the subtree rooted at k, excluding edge e_k itself (the
// half term of Eq. 12 accounts for it).
func (m Elmore) SubtreeCaps(t *topology.Tree, e []float64) []float64 {
	c := make([]float64, t.N())
	for _, k := range t.Postorder() {
		if t.IsSink(k) {
			c[k] += m.sinkCap(k)
		}
		for _, ch := range t.Children(k) {
			c[k] += m.Cw*e[ch] + c[ch]
		}
	}
	return c
}

// Delays evaluates the Elmore delay at every node:
//
//	delay(s_j) = Σ_{e_k ∈ path(s0,s_j)} r_w e_k (c_w e_k / 2 + C_k).
func (m Elmore) Delays(t *topology.Tree, e []float64) []float64 {
	c := m.SubtreeCaps(t, e)
	d := make([]float64, t.N())
	for _, k := range t.Preorder() {
		if k == 0 {
			continue
		}
		d[k] = d[t.Parent[k]] + m.Rw*e[k]*(m.Cw*e[k]/2+c[k])
	}
	return d
}

// Gradient returns ∂delay(sink)/∂e_x for every edge x, used by the SLP
// solver. Two effects contribute: an edge on the sink's own root path has
// the direct derivative r_w(c_w e_x + C_x); and every edge x adds wire
// capacitance c_w e_x to the load of each of its ancestor edges, so edges
// on the common prefix of path(s0,sink) and path(s0,parent(x)) contribute
// r_w c_w Σ e_k over that prefix.
func (m Elmore) Gradient(t *topology.Tree, e []float64, sink int) []float64 {
	if !t.IsSink(sink) && sink != 0 {
		panic(fmt.Sprintf("delay: Gradient target %d is not a sink", sink))
	}
	c := m.SubtreeCaps(t, e)
	lin := t.Delays(e) // prefix sums of raw edge lengths
	onPath := make([]bool, t.N())
	for _, k := range t.PathToRoot(sink) {
		onPath[k] = true
	}
	g := make([]float64, t.N())
	for x := 1; x < t.N(); x++ {
		if onPath[x] {
			g[x] += m.Rw * (m.Cw*e[x] + c[x])
		}
		// Common prefix of the two root paths ends at LCA(sink, parent(x)).
		anc := t.LCA(sink, t.Parent[x])
		g[x] += m.Rw * m.Cw * lin[anc]
	}
	return g
}
