// Package bst implements the comparison baseline of the LUBT paper: a
// bounded-skew clock routing tree constructor in the style of reference
// [9] (Huang, Kahng, Tsao, DAC'95), which the paper both compares against
// (Table 1) and uses as its topology generator. Since the original code is
// not available, this is a faithful reimplementation of the published
// approach:
//
//   - greedy nearest-neighbour cluster merging, with the merge cost (and
//     hence the topology) driven by the skew budget exactly as in [9]'s
//     "topology changes dynamically during construction based on skew";
//   - per-cluster octilinear merge regions (the feasible regions of
//     bounded-skew routing) maintained with internal/geom's Octagon;
//   - exact delay-interval bookkeeping: every cluster tracks the min and
//     max path length from its merge point to its sinks, so the skew
//     bound holds exactly in the final tree (elongated wires are snaked
//     to their full nominal length, so path sums are exact regardless of
//     where points land inside their regions).
//
// One simplification against the full BST/DME algorithm is documented in
// DESIGN.md: delay intervals are treated as position-independent inside a
// merge region, which can cost some wirelength optimality but never skew
// correctness. The LUBT LP then improves on this baseline's cost under
// the same topology — the paper's central experiment.
package bst
