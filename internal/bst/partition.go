package bst

import (
	"fmt"
	"math"
	"sort"

	"lubt/internal/delay"
	"lubt/internal/embed"
	"lubt/internal/geom"
	"lubt/internal/topology"
)

// RoutePartitioned builds a baseline routing tree at scale by splitting
// the sinks into contiguous angular sectors around the source, routing
// each sector independently with Route, and hanging every sector tree
// off a common source root. Greedy cluster merging is quadratic in the
// sink count, so sectoring divides the construction cost by roughly the
// sector count; it also yields a topology whose root has one branch per
// non-empty sector, which is exactly the shape the subtree decomposition
// in internal/core exploits.
//
// The skew bound is enforced per sector: each sector tree respects it,
// but sector top-edge lengths differ, so the merged tree's global skew
// may exceed the bound. That looseness is deliberate — in the EBF
// methodology the baseline only fixes the topology and the delay window;
// retightening the skew is the LP's job.
//
// The partition is deterministic: sinks are ordered by angle about the
// source (ties broken by sink index) and chunked into near-equal runs.
// Sector count is clamped to the sink count; sectors < 2 degenerates to
// a plain Route call.
func RoutePartitioned(sinks []geom.Point, skewBound float64, source geom.Point, sectors int) (*Result, error) {
	m := len(sinks)
	if sectors > m {
		sectors = m
	}
	if sectors < 2 {
		return Route(sinks, skewBound, &source)
	}

	byAngle := make([]int, m) // 0-based sink indices
	for i := range byAngle {
		byAngle[i] = i
	}
	angle := func(i int) float64 {
		return math.Atan2(sinks[i].Y-source.Y, sinks[i].X-source.X)
	}
	sort.SliceStable(byAngle, func(a, b int) bool {
		aa, ab := angle(byAngle[a]), angle(byAngle[b])
		if aa != ab {
			return aa < ab
		}
		return byAngle[a] < byAngle[b]
	})

	// Route each near-equal angular run. Sector s covers byAngle[lo:hi).
	type sector struct {
		members []int // 0-based global sink indices, angular order
		res     *Result
	}
	var secs []sector
	for s := 0; s < sectors; s++ {
		lo, hi := s*m/sectors, (s+1)*m/sectors
		if lo == hi {
			continue
		}
		secs = append(secs, sector{members: byAngle[lo:hi]})
	}
	for si := range secs {
		pts := make([]geom.Point, len(secs[si].members))
		for j, gi := range secs[si].members {
			pts[j] = sinks[gi]
		}
		res, err := Route(pts, skewBound, &source)
		if err != nil {
			return nil, fmt.Errorf("bst: sector %d: %w", si, err)
		}
		secs[si].res = res
	}

	// Merge: node 0 is the source, sinks keep their global ids 1…m, and
	// each sector's Steiner nodes are renumbered after them in sector
	// order. Every sector tree is rooted at its own source node 0 with
	// its top cluster as the single child; that child reattaches to the
	// merged root.
	n := 1 + m
	for _, sec := range secs {
		n += sec.res.Tree.N() - 1 - sec.res.Tree.NumSinks
	}
	parent := make([]int, n)
	e := make([]float64, n)
	parent[0] = -1
	nextSteiner := 1 + m
	for _, sec := range secs {
		st := sec.res.Tree
		mapID := make([]int, st.N())
		mapID[0] = 0
		for sub := 1; sub <= st.NumSinks; sub++ {
			mapID[sub] = sec.members[sub-1] + 1
		}
		for sub := st.NumSinks + 1; sub < st.N(); sub++ {
			mapID[sub] = nextSteiner
			nextSteiner++
		}
		for sub := 1; sub < st.N(); sub++ {
			g := mapID[sub]
			parent[g] = mapID[st.Parent[sub]]
			e[g] = sec.res.E[sub]
		}
	}
	tree, err := topology.New(parent, m)
	if err != nil {
		return nil, fmt.Errorf("bst: merged sector topology: %w", err)
	}
	// A root with one child per sector violates the paper's degree bound;
	// the Fig. 2 split hangs the extra sectors off a forced-zero Steiner
	// spine, which preserves every path length (and which the subtree
	// decomposition in internal/core sees through when collecting root
	// branches).
	tree, err = tree.SplitHighDegree()
	if err != nil {
		return nil, fmt.Errorf("bst: merged sector topology: %w", err)
	}
	for len(e) < tree.N() {
		e = append(e, 0)
	}

	sinkLoc := make([]geom.Point, m+1)
	copy(sinkLoc[1:], sinks)
	pl, err := embed.Place(tree, sinkLoc, &source, e, nil)
	if err != nil {
		return nil, fmt.Errorf("bst: partitioned lengths failed to embed: %w", err)
	}
	delays := tree.Delays(e)
	res := &Result{
		Tree:      tree,
		E:         e,
		Delays:    delays,
		Stats:     delay.Stats(tree, delays),
		Placement: pl,
	}
	for k := 1; k < tree.N(); k++ {
		res.Cost += e[k]
	}
	return res, nil
}
