package bst

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/delay"
	"lubt/internal/embed"
	"lubt/internal/geom"
	"lubt/internal/topology"
)

// Result is a routed bounded-skew tree.
type Result struct {
	Tree *topology.Tree
	// E holds the constructed edge lengths (indexed by edge/child node).
	E []float64
	// Cost is the total wirelength Σ e_k.
	Cost float64
	// Delays holds linear delays per node.
	Delays []float64
	// Stats summarizes sink delays; Stats.Skew ≤ the requested bound.
	Stats delay.SinkStats
	// Placement is the DME embedding of the tree.
	Placement *embed.Placement
}

// Route builds a bounded-skew tree over the sinks with the given skew
// budget (may be math.Inf(1) for an unconstrained Steiner-style topology).
// sinks[i] is the location of sink i+1; source, when non-nil, is the fixed
// root location.
func Route(sinks []geom.Point, skewBound float64, source *geom.Point) (*Result, error) {
	m := len(sinks)
	if m == 0 {
		return nil, errors.New("bst: no sinks")
	}
	if skewBound < 0 {
		return nil, fmt.Errorf("bst: negative skew bound %g", skewBound)
	}
	if m == 1 && source == nil {
		return nil, errors.New("bst: a single sink needs a source location")
	}

	type cluster struct {
		node   int // temp node id
		mr     geom.Octagon
		lo, hi float64
		alive  bool
	}
	// Temp ids: sinks 1…m, internals m+1…2m−1 (the last internal is the
	// top). Index clusters by a dense slice.
	clusters := make([]cluster, 1, 2*m)
	for i, p := range sinks {
		clusters = append(clusters, cluster{node: i + 1, mr: geom.OctFromPoint(p), alive: true})
	}
	parent := make([]int, 2*m) // temp parent per node id
	eTmp := make([]float64, 2*m)
	for i := range parent {
		parent[i] = -1
	}

	// mergeCost returns the minimal added wirelength S = ea+eb for joining
	// clusters a and b under the skew budget, and the split (ea, eb).
	mergeCost := func(a, b *cluster) (s, ea, eb float64) {
		d := a.mr.Dist(b.mr)
		s = d
		if !math.IsInf(skewBound, 1) {
			s = math.Max(s, a.hi-b.lo-skewBound)
			s = math.Max(s, b.hi-a.lo-skewBound)
		}
		// Feasible ea range at sum s, from the two cross-skew constraints.
		loEa, hiEa := 0.0, s
		if !math.IsInf(skewBound, 1) {
			loEa = math.Max(loEa, (s-skewBound-a.lo+b.hi)/2)
			hiEa = math.Min(hiEa, (s+skewBound+b.lo-a.hi)/2)
		}
		// Aim at aligning the interval centers, clamped into the feasible
		// range (for skew bound 0 the range is the single balance point).
		balanced := (s + (b.lo+b.hi)/2 - (a.lo+a.hi)/2) / 2
		ea = math.Min(math.Max(balanced, loEa), hiEa)
		return s, ea, s - ea
	}

	alive := make([]int, 0, m) // indices into clusters
	for i := 1; i <= m; i++ {
		alive = append(alive, i)
	}
	// Lazily-maintained nearest neighbour per cluster index.
	nn := make([]int, 2*m)
	nnCost := make([]float64, 2*m)
	for i := range nn {
		nn[i] = -1
	}
	refresh := func(ci int) {
		nn[ci] = -1
		nnCost[ci] = math.Inf(1)
		for _, cj := range alive {
			if cj == ci {
				continue
			}
			if s, _, _ := mergeCost(&clusters[ci], &clusters[cj]); s < nnCost[ci] {
				nn[ci], nnCost[ci] = cj, s
			}
		}
	}

	nextNode := m + 1
	for len(alive) > 1 {
		bi := -1
		for _, ci := range alive {
			if nn[ci] < 0 || !clusters[nn[ci]].alive {
				refresh(ci)
			}
			if bi < 0 || nnCost[ci] < nnCost[bi] {
				bi = ci
			}
		}
		bj := nn[bi]
		a, b := &clusters[bi], &clusters[bj]
		_, ea, eb := mergeCost(a, b)
		merged := cluster{
			node:  nextNode,
			mr:    a.mr.Expand(ea).Intersect(b.mr.Expand(eb)),
			lo:    math.Min(a.lo+ea, b.lo+eb),
			hi:    math.Max(a.hi+ea, b.hi+eb),
			alive: true,
		}
		if merged.mr.Empty() {
			return nil, fmt.Errorf("bst: internal error: empty merge region joining %d and %d", a.node, b.node)
		}
		parent[a.node] = nextNode
		parent[b.node] = nextNode
		eTmp[a.node] = ea
		eTmp[b.node] = eb
		nextNode++
		a.alive = false
		b.alive = false
		// Replace the two clusters in the alive set with the merged one.
		out := alive[:0]
		for _, ci := range alive {
			if ci != bi && ci != bj {
				out = append(out, ci)
			}
		}
		clusters = append(clusters, merged)
		alive = append(out, len(clusters)-1)
		nn[len(clusters)-1] = -1
	}

	top := clusters[alive[0]]
	var tree *topology.Tree
	var e []float64
	var err error
	if source != nil {
		// Node 0 is the source; the top cluster hangs below it.
		parent[0] = -1
		parent[top.node] = 0
		eTmp[top.node] = top.mr.DistPoint(*source)
		tree, err = topology.New(parent[:nextNode], m)
		if err != nil {
			return nil, fmt.Errorf("bst: %w", err)
		}
		e = eTmp[:nextNode]
	} else {
		// The top internal node (always the max id) becomes node 0.
		n := nextNode - 1
		pArr := make([]int, n)
		e = make([]float64, n)
		newID := func(i int) int {
			if i == top.node {
				return 0
			}
			return i
		}
		pArr[0] = -1
		for i := 1; i < nextNode; i++ {
			if i == top.node {
				continue
			}
			pArr[newID(i)] = newID(parent[i])
			e[newID(i)] = eTmp[i]
		}
		tree, err = topology.New(pArr, m)
		if err != nil {
			return nil, fmt.Errorf("bst: %w", err)
		}
	}

	sinkLoc := make([]geom.Point, m+1)
	copy(sinkLoc[1:], sinks)
	pl, err := embed.Place(tree, sinkLoc, source, e, nil)
	if err != nil {
		return nil, fmt.Errorf("bst: constructed lengths failed to embed: %w", err)
	}
	delays := tree.Delays(e)
	res := &Result{
		Tree:      tree,
		E:         e,
		Delays:    delays,
		Stats:     delay.Stats(tree, delays),
		Placement: pl,
	}
	for k := 1; k < tree.N(); k++ {
		res.Cost += e[k]
	}
	return res, nil
}
