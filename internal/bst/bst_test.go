package bst

import (
	"math"
	"math/rand"
	"testing"

	"lubt/internal/core"
	"lubt/internal/embed"
	"lubt/internal/geom"
)

func randSinks(rng *rand.Rand, m int) []geom.Point {
	s := make([]geom.Point, m)
	for i := range s {
		s[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return s
}

func TestRouteRespectsSkewBound(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(20)
		sinks := randSinks(rng, m)
		bound := rng.Float64() * 50
		var source *geom.Point
		if rng.Intn(2) == 0 {
			s := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			source = &s
		}
		res, err := Route(sinks, bound, source)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Stats.Skew > bound+1e-7 {
			t.Fatalf("trial %d: skew %g exceeds bound %g", trial, res.Stats.Skew, bound)
		}
		if err := embed.VerifyPlacement(res.Tree, sinkLocSlice(sinks), source, res.E, res.Placement, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func sinkLocSlice(sinks []geom.Point) []geom.Point {
	s := make([]geom.Point, len(sinks)+1)
	copy(s[1:], sinks)
	return s
}

func TestRouteZeroSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(12)
		sinks := randSinks(rng, m)
		res, err := Route(sinks, 0, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Stats.Skew > 1e-7 {
			t.Fatalf("trial %d: zero-skew tree has skew %g", trial, res.Stats.Skew)
		}
	}
}

func TestRouteInfiniteBoundCheapest(t *testing.T) {
	// Loosening the skew bound must never increase the tree cost on the
	// same instance (the trend of Table 1's columns).
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(12)
		sinks := randSinks(rng, m)
		prev := math.Inf(-1)
		// Costs for decreasing tightness (0 is tightest).
		var costs []float64
		for _, b := range []float64{0, 10, 50, math.Inf(1)} {
			res, err := Route(sinks, b, nil)
			if err != nil {
				t.Fatalf("trial %d bound %g: %v", trial, b, err)
			}
			costs = append(costs, res.Cost)
		}
		_ = prev
		// Greedy topologies differ per bound, so strict monotonicity can
		// break occasionally; require the loosest bound to be no worse
		// than the tightest.
		if costs[len(costs)-1] > costs[0]+1e-7 {
			t.Fatalf("trial %d: infinite-bound cost %g exceeds zero-skew cost %g",
				trial, costs[len(costs)-1], costs[0])
		}
	}
}

func TestRouteSingleSink(t *testing.T) {
	src := geom.Pt(0, 0)
	res, err := Route([]geom.Point{geom.Pt(3, 4)}, 0, &src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-7) > 1e-9 {
		t.Fatalf("cost = %g, want 7", res.Cost)
	}
	if _, err := Route([]geom.Point{geom.Pt(3, 4)}, 0, nil); err == nil {
		t.Error("single sink without source accepted")
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(nil, 1, nil); err == nil {
		t.Error("no sinks accepted")
	}
	if _, err := Route(randSinks(rand.New(rand.NewSource(1)), 3), -1, nil); err == nil {
		t.Error("negative bound accepted")
	}
}

func TestRouteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	sinks := randSinks(rng, 15)
	a, err := Route(sinks, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(sinks, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Stats != b.Stats {
		t.Fatal("Route is not deterministic")
	}
}

func TestRouteSourceConnection(t *testing.T) {
	// Fixed source far from the sinks: every delay includes the trunk.
	src := geom.Pt(-100, 0)
	sinks := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}
	res, err := Route(sinks, 2, &src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Min < 100-1e-9 {
		t.Fatalf("min delay %g must include the 100-long trunk", res.Stats.Min)
	}
	if res.Stats.Skew > 2+1e-9 {
		t.Fatalf("skew %g exceeds 2", res.Stats.Skew)
	}
}

// The paper's central experiment (Table 1): on the baseline's own
// topology, with the baseline's own [shortest, longest] delays as the
// LUBT window, the LP never produces a more expensive tree (Theorem 4.2),
// and typically a cheaper one.
func TestLUBTNeverWorseThanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(16)
		sinks := randSinks(rng, m)
		bound := rng.Float64() * 40
		res, err := Route(sinks, bound, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		in := &core.Instance{Tree: res.Tree, SinkLoc: sinkLocSlice(sinks)}
		b := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
		for i := 1; i <= m; i++ {
			b.L[i] = res.Stats.Min
			b.U[i] = res.Stats.Max
		}
		lub, err := core.Solve(in, b, nil)
		if err != nil {
			t.Fatalf("trial %d: LUBT on baseline topology: %v", trial, err)
		}
		if lub.Cost > res.Cost*(1+1e-9)+1e-7 {
			t.Fatalf("trial %d: LUBT cost %g exceeds baseline %g on the same topology",
				trial, lub.Cost, res.Cost)
		}
	}
}
