package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime/pprof"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer("solve")
	a := tr.Start("a")
	a1 := tr.Start("a1")
	a1.SetInt("k", 3)
	a1.End()
	a.End()
	b := tr.Start("b")
	b.SetString("why", "because")
	b.SetFloat("x", 1.5)
	b.SetFloat("x", 2.5) // overwrite, not duplicate
	b.End()
	tr.Close()

	root := tr.Root()
	if root.Name() != "solve" || len(root.Children()) != 2 {
		t.Fatalf("root %q with %d children", root.Name(), len(root.Children()))
	}
	if got := root.Find("a1"); got == nil || got.Duration() < 0 {
		t.Fatalf("a1 not recorded: %v", got)
	}
	if v, ok := root.Find("a1").Attr("k"); !ok || v.(float64) != 3 {
		t.Errorf("a1 attr k = %v, %v", v, ok)
	}
	if v, ok := root.Find("b").Attr("x"); !ok || v.(float64) != 2.5 {
		t.Errorf("overwritten attr x = %v", v)
	}
	if v, ok := root.Find("b").Attr("why"); !ok || v.(string) != "because" {
		t.Errorf("string attr = %v", v)
	}
	if !root.done {
		t.Error("Close did not end the root")
	}
}

func TestEndClosesOpenDescendants(t *testing.T) {
	tr := NewTracer("solve")
	outer := tr.Start("outer")
	tr.Start("inner") // never explicitly ended
	outer.End()       // must sweep inner closed and pop to root
	if in := tr.Root().Find("inner"); in == nil || !in.done {
		t.Fatalf("inner not swept closed: %v", in)
	}
	if tr.cur != tr.Root() {
		t.Errorf("current span not popped to root")
	}
	// Ending again is a no-op.
	d := outer.Duration()
	time.Sleep(time.Millisecond)
	outer.End()
	if outer.Duration() != d {
		t.Error("double End changed the duration")
	}
	tr.Close()
}

// TestNilTracerAllocs pins the disabled-tracer contract: a nil *Tracer
// (and the nil *Span it hands out) must be allocation-free no-ops.
func TestNilTracerAllocs(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start("x")
		sp.SetInt("a", 1)
		sp.SetFloat("b", 2)
		sp.SetString("c", "d")
		sp.End()
		tr.Close()
		_ = tr.Root()
		_ = sp.Find("x")
		_, _ = sp.Attr("a")
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocated %.1f per op", allocs)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err == nil {
		t.Error("WriteJSON on nil tracer did not error")
	}
}

// TestTraceJSONSchema locks the lubt-trace/1 shape: top-level keys,
// per-span key set, attribute typing, and child nesting.
func TestTraceJSONSchema(t *testing.T) {
	tr := NewTracer("solve")
	sp := tr.Start("round")
	sp.SetInt("violated", 7)
	sp.SetString("engine", "revised")
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(top) != 2 {
		t.Fatalf("top-level keys %v, want exactly {schema, root}", keys(top))
	}
	var schema string
	if err := json.Unmarshal(top["schema"], &schema); err != nil || schema != TraceSchema {
		t.Fatalf("schema = %q, want %q", schema, TraceSchema)
	}

	var checkSpan func(raw json.RawMessage, path string)
	checkSpan = func(raw json.RawMessage, path string) {
		var sp map[string]json.RawMessage
		if err := json.Unmarshal(raw, &sp); err != nil {
			t.Fatalf("%s: not an object: %v", path, err)
		}
		for _, req := range []string{"name", "start_us", "dur_us"} {
			if _, ok := sp[req]; !ok {
				t.Errorf("%s: missing required key %q", path, req)
			}
		}
		for k := range sp {
			switch k {
			case "name", "start_us", "dur_us", "attrs", "children":
			default:
				t.Errorf("%s: unexpected key %q (schema drift — bump lubt-trace version)", path, k)
			}
		}
		var kids []json.RawMessage
		if c, ok := sp["children"]; ok {
			if err := json.Unmarshal(c, &kids); err != nil {
				t.Fatalf("%s: children not an array: %v", path, err)
			}
		}
		for i, c := range kids {
			checkSpan(c, path+".children["+string(rune('0'+i))+"]")
		}
	}
	checkSpan(top["root"], "root")

	// The attributes round-trip with their types.
	var tree struct {
		Root struct {
			Children []struct {
				Name  string         `json:"name"`
				Attrs map[string]any `json:"attrs"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Children) != 1 || tree.Root.Children[0].Name != "round" {
		t.Fatalf("children: %+v", tree.Root.Children)
	}
	attrs := tree.Root.Children[0].Attrs
	if attrs["violated"] != 7.0 || attrs["engine"] != "revised" {
		t.Errorf("attrs = %v", attrs)
	}
}

// TestTracerCtxLabels: spans layer their lubt_span label on top of the
// base context's labels, and Close restores the base rather than wiping
// the goroutine clean.
func TestTracerCtxLabels(t *testing.T) {
	base := pprof.WithLabels(context.Background(), pprof.Labels("lubt_route", "/solve"))
	tr := NewTracerCtx(base, "serve-solve")
	sp := tr.Start("build")
	if v, ok := pprof.Label(sp.Context(), "lubt_route"); !ok || v != "/solve" {
		t.Errorf("span lost the base label: %q %v", v, ok)
	}
	if v, ok := pprof.Label(sp.Context(), "lubt_span"); !ok || v != "build" {
		t.Errorf("span label = %q %v", v, ok)
	}
	sp.End()
	tr.Close()
	// A nil span hands back a usable background context.
	var nilSp *Span
	if nilSp.Context() == nil {
		t.Error("nil span Context returned nil")
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
