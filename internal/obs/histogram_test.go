package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestHistogramBasics checks count/sum/min/max bookkeeping and the
// duration recording unit.
func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("fresh histogram not zero")
	}
	h.Observe(2)
	h.Observe(0.5)
	h.ObserveDuration(1500 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got != 4 {
		t.Fatalf("sum = %v, want 4", got)
	}
	if h.Min() != 0.5 || h.Max() != 2 {
		t.Fatalf("min/max = %v/%v, want 0.5/2", h.Min(), h.Max())
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// under -race (ci.sh runs it) this pins the lock-free recording, and the
// final count must be exact.
func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 10000
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i+1) * 1e-6)
				if i%128 == 0 { // concurrent readers must stay consistent
					_ = h.Quantile(0.99)
					_ = h.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	const total = goroutines * perG
	if got := h.Count(); got != total {
		t.Fatalf("count = %d, want %d", got, total)
	}
	// Sum of 1e-6 * (1..total); CAS float accumulation is exact up to
	// fp rounding of the addition order.
	want := 1e-6 * float64(total) * float64(total+1) / 2
	if got := h.Sum(); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("sum = %v, want ≈ %v", got, want)
	}
	if h.Min() != 1e-6 || h.Max() != float64(total)*1e-6 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	snap := h.Snapshot()
	if snap.Count != total || snap.Buckets[len(snap.Buckets)-1].Count != total {
		t.Fatalf("snapshot count %d / final bucket %d, want %d",
			snap.Count, snap.Buckets[len(snap.Buckets)-1].Count, total)
	}
}

// TestNilHistogramAllocs pins the disabled-histogram contract, mirroring
// TestNilTracerAllocs: every method on a nil *Histogram is an
// allocation-free no-op or zero read.
func TestNilHistogramAllocs(t *testing.T) {
	var h *Histogram
	allocs := testing.AllocsPerRun(100, func() {
		h.Observe(1.5)
		h.ObserveDuration(time.Millisecond)
		_ = h.Count()
		_ = h.Sum()
		_ = h.Min()
		_ = h.Max()
		_ = h.Quantile(0.5)
		_ = h.Snapshot()
	})
	if allocs != 0 {
		t.Errorf("disabled histogram allocated %.1f per op", allocs)
	}
}

// TestHistogramQuantileBounds pins the log-linear estimation error: the
// reported quantile must be within one sub-bucket (a factor of
// 1 + 1/histSub) of the true sample quantile, and inside [Min, Max].
func TestHistogramQuantileBounds(t *testing.T) {
	h := NewHistogram()
	const n = 1000
	for i := 1; i <= n; i++ {
		h.Observe(float64(i))
	}
	const relErr = 1.0 / histSub
	for _, tc := range []struct {
		q    float64
		true float64
	}{
		{0.5, 500}, {0.9, 900}, {0.99, 990}, {1.0, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.true*(1-relErr) || got > tc.true*(1+relErr) {
			t.Errorf("Quantile(%v) = %v, want within %.2f%% of %v",
				tc.q, got, 100*relErr, tc.true)
		}
		if got < h.Min() || got > h.Max() {
			t.Errorf("Quantile(%v) = %v outside [%v, %v]", tc.q, got, h.Min(), h.Max())
		}
	}
	// Out-of-range q clamps rather than panics.
	if h.Quantile(-1) < 1 || h.Quantile(2) != h.Max() {
		t.Errorf("clamped quantiles wrong: %v, %v", h.Quantile(-1), h.Quantile(2))
	}
	// Empty histogram reads zero.
	if NewHistogram().Quantile(0.5) != 0 {
		t.Error("empty histogram quantile nonzero")
	}
}

// TestHistogramUnderflowOverflow: zeros and negatives land in the
// underflow bucket without panicking (NaN is dropped — see
// TestHistogramNonFinite); huge values hit the overflow bucket whose
// boundary is +Inf but whose quantile clamps to Max.
func TestHistogramUnderflowOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(math.NaN())
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2 (NaN dropped)", h.Count())
	}
	snap := h.Snapshot()
	if len(snap.Buckets) < 1 || snap.Buckets[0].Count != 2 {
		t.Fatalf("underflow bucket: %+v", snap.Buckets)
	}

	h2 := NewHistogram()
	h2.Observe(1e30) // beyond 2^40: overflow bucket
	if got := h2.Quantile(0.5); got != 1e30 {
		t.Fatalf("overflow quantile = %v, want clamped to max 1e30", got)
	}
	snap2 := h2.Snapshot()
	last := snap2.Buckets[len(snap2.Buckets)-1]
	if !math.IsInf(last.LE, 1) || last.Count != 1 {
		t.Fatalf("overflow snapshot: %+v", snap2.Buckets)
	}
}

// TestBucketIndexUpperRoundTrip: every value must fall strictly at or
// below its bucket's upper bound, and upper bounds must be increasing.
func TestBucketIndexUpperRoundTrip(t *testing.T) {
	for i := 1; i < numBuckets-1; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %v <= %v",
				i, bucketUpper(i), bucketUpper(i-1))
		}
	}
	for _, v := range []float64{1e-9, 3e-7, 0.001, 0.5, 1, 1.5, 7, 1000, 1e6, 1e11} {
		i := bucketIndex(v)
		if v > bucketUpper(i) {
			t.Errorf("v=%v above its bucket %d upper %v", v, i, bucketUpper(i))
		}
		// Buckets are half-open [lower, upper): a value strictly below the
		// previous bucket's bound landed too high.
		if i > 0 && v < bucketUpper(i-1) {
			t.Errorf("v=%v below previous bucket %d upper %v", v, i-1, bucketUpper(i-1))
		}
	}
}

// TestHistogramNonFinite is the regression suite for NaN and ±Inf in
// both the recording and the query path. A NaN sample must be dropped
// before it can poison the CAS-accumulated sum or the min/max (NaN
// propagates through every later addition and wins every comparison
// guard); ±Inf must bucket deterministically (+Inf cannot be allowed to
// reach the float→int sub-bucket conversion, which is undefined out of
// int range); and a NaN quantile must clamp like an out-of-range one
// instead of feeding uint64(NaN) into the rank.
func TestHistogramNonFinite(t *testing.T) {
	for _, tc := range []struct {
		name    string
		v       float64
		counted bool
		bucket  int // meaningful when counted
		wantSum float64
		wantMin float64
		wantMax float64
	}{
		{"nan dropped", math.NaN(), false, 0, 3, 3, 3},
		{"+inf overflows", math.Inf(1), true, numBuckets - 1, math.Inf(1), 3, math.Inf(1)},
		{"-inf underflows", math.Inf(-1), true, 0, math.Inf(-1), math.Inf(-1), 3},
		{"negative underflows", -7, true, 0, -4, -7, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram()
			h.Observe(3) // a clean sample the special value must not corrupt
			h.Observe(tc.v)
			want := uint64(2)
			if !tc.counted {
				want = 1
			}
			if h.Count() != want {
				t.Fatalf("count = %d, want %d", h.Count(), want)
			}
			if tc.counted && h.buckets[tc.bucket].Load() == 0 {
				t.Errorf("bucket %d empty, wanted the %v sample", tc.bucket, tc.v)
			}
			check := func(name string, got, want float64) {
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Errorf("%s = %v, want %v", name, got, want)
				}
				if math.IsNaN(got) {
					t.Errorf("%s is NaN", name)
				}
			}
			check("Sum", h.Sum(), tc.wantSum)
			check("Min", h.Min(), tc.wantMin)
			check("Max", h.Max(), tc.wantMax)
			// The query path: a NaN q behaves like q = 0 (clamped), never
			// an undefined conversion.
			if got := h.Quantile(math.NaN()); math.IsNaN(got) {
				t.Errorf("Quantile(NaN) = NaN")
			} else if want := h.Quantile(0); got != want {
				t.Errorf("Quantile(NaN) = %v, want the q=0 clamp %v", got, want)
			}
		})
	}
	// bucketIndex itself must be total over the float64 specials.
	for _, v := range []float64{math.NaN(), math.Inf(-1), 0, math.SmallestNonzeroFloat64} {
		if got := bucketIndex(v); got != 0 {
			t.Errorf("bucketIndex(%v) = %d, want underflow 0", v, got)
		}
	}
	if got := bucketIndex(math.Inf(1)); got != numBuckets-1 {
		t.Errorf("bucketIndex(+Inf) = %d, want overflow %d", got, numBuckets-1)
	}
}
