package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime/pprof"
	"time"
)

// TraceSchema identifies the JSON layout emitted by WriteJSON; bump it
// when the span-object key set changes (attribute additions do not count).
const TraceSchema = "lubt-trace/1"

// Tracer records a tree of spans. The zero value is not used; construct
// with NewTracer. A nil *Tracer is the disabled tracer: every method on
// it (and on the nil *Span its Start returns) is an allocation-free
// no-op. Spans must be recorded from a single goroutine.
type Tracer struct {
	root *Span
	cur  *Span
	base context.Context // label context restored by Close
}

// Span is one timed phase of a solve. The exported accessors exist for
// tests and in-process consumers; external consumers read the JSON form.
type Span struct {
	name     string
	start    time.Time
	dur      time.Duration
	done     bool
	attrs    []attr
	children []*Span
	parent   *Span
	tr       *Tracer
	ctx      context.Context // pprof label context while this span is open
}

// attr is one span attribute: numeric unless isStr is set.
type attr struct {
	key   string
	num   float64
	str   string
	isStr bool
}

// NewTracer starts an enabled tracer whose root span opens immediately,
// and installs the root's pprof label on the calling goroutine.
func NewTracer(rootName string) *Tracer {
	return NewTracerCtx(context.Background(), rootName)
}

// NewTracerCtx is NewTracer with an explicit base context: span pprof
// labels compose on top of any labels already carried by ctx (the
// daemon uses this so per-request lubt_route/lubt_cache labels survive
// under the per-phase lubt_span label), and Close restores ctx's labels
// rather than wiping the goroutine clean.
func NewTracerCtx(ctx context.Context, rootName string) *Tracer {
	t := &Tracer{base: ctx}
	root := &Span{name: rootName, start: time.Now(), tr: t}
	root.ctx = pprof.WithLabels(ctx, pprof.Labels("lubt_span", rootName))
	pprof.SetGoroutineLabels(root.ctx)
	t.root = root
	t.cur = root
	return t
}

// Enabled reports whether spans are being recorded (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a child span of the innermost open span and makes it
// current. Returns nil (a valid no-op span) on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{name: name, start: time.Now(), parent: t.cur, tr: t}
	s.ctx = pprof.WithLabels(t.cur.ctx, pprof.Labels("lubt_span", name))
	pprof.SetGoroutineLabels(s.ctx)
	t.cur.children = append(t.cur.children, s)
	t.cur = s
	return s
}

// Root returns the root span (nil on a nil tracer).
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Close ends the root span — and with it every span still open — and
// restores the goroutine's pprof labels to the tracer's base context.
// Idempotent; safe on nil.
func (t *Tracer) Close() {
	if t == nil {
		return
	}
	t.root.End()
	base := t.base
	if base == nil {
		base = context.Background()
	}
	pprof.SetGoroutineLabels(base)
}

// End closes the span: it fixes the duration, closes any descendants
// left open (error paths may unwind past inner spans), pops the
// tracer's current-span pointer and restores the parent's pprof label.
// Ending an already-ended span is a no-op, as is ending a nil span.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	t := s.tr
	if t != nil {
		onChain := false
		for c := t.cur; c != nil; c = c.parent {
			if c == s {
				onChain = true
				break
			}
		}
		if onChain {
			for c := t.cur; c != nil && c != s; c = c.parent {
				c.finish()
			}
			t.cur = s.parent
		}
	}
	s.finish()
	if t != nil && s.parent != nil {
		pprof.SetGoroutineLabels(s.parent.ctx)
	}
}

func (s *Span) finish() {
	if s.done {
		return
	}
	s.dur = time.Since(s.start)
	s.done = true
}

// SetFloat attaches (or overwrites) a numeric attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.set(attr{key: key, num: v})
}

// SetInt attaches (or overwrites) an integer attribute.
func (s *Span) SetInt(key string, v int) {
	if s == nil {
		return
	}
	s.set(attr{key: key, num: float64(v)})
}

// SetString attaches (or overwrites) a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.set(attr{key: key, str: v, isStr: true})
}

func (s *Span) set(a attr) {
	for i := range s.attrs {
		if s.attrs[i].key == a.key {
			s.attrs[i] = a
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (0 while open or for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Children returns the child spans in recording order (nil for nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Attr returns the attribute value for key and whether it was set.
// String attributes are returned as their string; numeric as float64.
func (s *Span) Attr(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	for _, a := range s.attrs {
		if a.key == key {
			if a.isStr {
				return a.str, true
			}
			return a.num, true
		}
	}
	return nil, false
}

// Context returns the pprof label context installed while the span is
// open (context.Background() for nil). Useful for handing the span's
// labels to helper goroutines via pprof.Do.
func (s *Span) Context() context.Context {
	if s == nil || s.ctx == nil {
		return context.Background()
	}
	return s.ctx
}

// Find returns the first descendant span (depth-first, including s)
// with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// spanJSON is the serialized form of one span (schema lubt-trace/1).
type spanJSON struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*spanJSON    `json:"children,omitempty"`
}

type traceJSON struct {
	Schema string    `json:"schema"`
	Root   *spanJSON `json:"root"`
}

func (s *Span) toJSON(epoch time.Time) *spanJSON {
	out := &spanJSON{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   s.dur.Microseconds(),
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.isStr {
				out.Attrs[a.key] = a.str
			} else {
				out.Attrs[a.key] = a.num
			}
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.toJSON(epoch))
	}
	return out
}

// WriteJSON closes the trace (ending any open spans) and writes the
// span tree in the lubt-trace/1 schema, indented for human reading.
// Calling it on a nil tracer is an error: the caller asked for a trace
// that was never recorded.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on a disabled tracer")
	}
	t.Close()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceJSON{Schema: TraceSchema, Root: t.root.toJSON(t.root.start)})
}
