package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-linear bucket scheme: each power-of-two octave [2^o, 2^(o+1)) is
// split into histSub equal-width linear sub-buckets, so a recorded value
// is located to within a factor of (histSub+1)/histSub ≈ 1.0625 of its
// bucket's bounds. Octaves below histMinExp collapse into the underflow
// bucket (index 0, which also holds zeros — a legitimate observation for
// pivot and restage counts); octaves at or above histMaxExp collapse
// into the overflow bucket. The range covers ~9.3e-10 … ~1.1e12, wide
// enough for both second-denominated latencies (sub-microsecond and up)
// and raw event counts (pivots, restages).
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // linear sub-buckets per octave
	histMinExp  = -30
	histMaxExp  = 40
	numBuckets  = (histMaxExp-histMinExp)*histSub + 2 // + underflow + overflow
)

// bucketIndex maps a value to its bucket. Non-positive values and NaN
// land in the underflow bucket, +Inf in the overflow bucket (Frexp(+Inf)
// returns an infinite fraction, which must not reach the float→int
// sub-bucket conversion — that conversion is undefined for values out of
// int range).
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	if math.IsInf(v, 1) {
		return numBuckets - 1
	}
	f, e := math.Frexp(v) // v = f·2^e, f ∈ [0.5, 1) ⇒ v ∈ [2^(e-1), 2^e)
	o := e - 1
	if o < histMinExp {
		return 0
	}
	if o >= histMaxExp {
		return numBuckets - 1
	}
	sub := int((f - 0.5) * (2 * histSub))
	if sub >= histSub {
		sub = histSub - 1
	}
	return 1 + (o-histMinExp)*histSub + sub
}

// bucketUpper returns the exclusive upper bound of bucket i (the `le`
// boundary reported in expositions): 2^histMinExp for the underflow
// bucket, +Inf for the overflow bucket.
func bucketUpper(i int) float64 {
	if i <= 0 {
		return math.Ldexp(1, histMinExp)
	}
	if i >= numBuckets-1 {
		return math.Inf(1)
	}
	i--
	return math.Ldexp(1+float64(i%histSub+1)/histSub, histMinExp+i/histSub)
}

// Histogram is a lock-free log-linear latency/count distribution:
// per-bucket atomic counters plus atomic count, sum and min/max. All
// methods are safe for concurrent use. A nil *Histogram is the disabled
// histogram, mirroring the nil *Tracer contract: Observe is an
// allocation-free no-op and every read returns zero. Construct enabled
// histograms with NewHistogram or Metrics.Histogram.
type Histogram struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	minBits atomic.Uint64 // float64 bits, CAS-lowered; +Inf until first Observe
	maxBits atomic.Uint64 // float64 bits, CAS-raised; -Inf until first Observe
	buckets [numBuckets]atomic.Uint64
}

// NewHistogram returns an empty enabled histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. NaN samples are dropped outright — one
// would otherwise poison the CAS-accumulated sum and min/max for the
// histogram's whole lifetime (NaN propagates through every later
// addition and wins every comparison guard). Negative samples count
// into the underflow bucket (they indicate a caller bug, but a
// telemetry layer must not panic the daemon over one). Allocation-free
// on both the enabled and the nil path.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Bucket before count: a concurrent Quantile that loads count first
	// always finds at least count samples distributed over the buckets.
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records d in seconds — the exposition unit for every
// latency histogram.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of recorded samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Min returns the smallest recorded sample, 0 when empty or nil.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest recorded sample, 0 when empty or nil.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q clamped to [0, 1]) of the
// recorded distribution: the upper bound of the bucket containing the
// nearest-rank sample, clamped into [Min, Max]. The estimate is
// therefore within one bucket of the true sample quantile — a relative
// error of at most 1/histSub = 6.25% (plus the clamp, which can only
// tighten it). Returns 0 on an empty or nil histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	// The clamp must catch NaN too: NaN fails both ordered comparisons,
	// and uint64(Ceil(NaN·n)) below would be an undefined conversion.
	if !(q > 0) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	est := h.Max()
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			est = bucketUpper(i)
			break
		}
	}
	if mx := h.Max(); est > mx {
		est = mx
	}
	if mn := h.Min(); est < mn {
		est = mn
	}
	return est
}

// HistogramBucket is one cumulative exposition point: Count samples
// were ≤ LE.
type HistogramBucket struct {
	LE    float64
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a histogram for
// exposition. Buckets is cumulative and sparse — only boundaries where
// the cumulative count increases appear, in increasing LE order, with a
// final {+Inf, Count} entry. Under concurrent recording the snapshot is
// internally consistent (Count is the bucket total), though it may lag
// the instantaneous counters.
type HistogramSnapshot struct {
	Count    uint64
	Sum      float64
	Min, Max float64
	Buckets  []HistogramBucket
}

// Snapshot captures the histogram for exposition (zero value for nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var snap HistogramSnapshot
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		snap.Buckets = append(snap.Buckets, HistogramBucket{LE: bucketUpper(i), Count: cum})
	}
	// Report the bucket total as the count so the cumulative series and
	// the _count line always agree, even mid-Observe.
	snap.Count = cum
	if n := len(snap.Buckets); n > 0 && !math.IsInf(snap.Buckets[n-1].LE, 1) {
		snap.Buckets = append(snap.Buckets, HistogramBucket{LE: math.Inf(1), Count: cum})
	}
	snap.Sum = h.Sum()
	snap.Min = h.Min()
	snap.Max = h.Max()
	return snap
}
