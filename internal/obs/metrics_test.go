package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Inc("requests_total")
	m.Add("requests_total", 2)
	if got := m.Counter("requests_total"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := m.Counter("never_written"); got != 0 {
		t.Fatalf("unwritten counter = %d, want 0", got)
	}
	m.SetGauge("inflight", 5)
	m.AddGauge("inflight", -2)
	if got := m.Gauge("inflight"); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestMetricsNegativeCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with negative delta did not panic")
		}
	}()
	NewMetrics().Add("x", -1)
}

// TestMetricsNilNoOps pins the nil-registry contract: writes are no-ops,
// reads return zero, WriteJSON refuses.
func TestMetricsNilNoOps(t *testing.T) {
	var m *Metrics
	m.Inc("a")
	m.Add("a", 7)
	m.SetGauge("g", 1)
	m.AddGauge("g", 1)
	if m.Counter("a") != 0 || m.Gauge("g") != 0 {
		t.Fatal("nil registry returned nonzero values")
	}
	c, g := m.Snapshot()
	if len(c) != 0 || len(g) != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if err := m.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil registry did not error")
	}
}

func TestMetricsSnapshotIsACopy(t *testing.T) {
	m := NewMetrics()
	m.Inc("a")
	c, g := m.Snapshot()
	c["a"] = 99
	g["x"] = 1
	if m.Counter("a") != 1 || m.Gauge("x") != 0 {
		t.Fatal("snapshot aliases the live maps")
	}
}

func TestMetricsWriteJSONSchema(t *testing.T) {
	m := NewMetrics()
	m.Add("cache_hits", 4)
	m.SetGauge("workers", 8)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("document has unexpected keys: %v", err)
	}
	if doc.Schema != MetricsSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, MetricsSchema)
	}
	if doc.Counters["cache_hits"] != 4 || doc.Gauges["workers"] != 8 {
		t.Fatalf("document values wrong: %+v", doc)
	}
}

// TestMetricsConcurrent hammers the registry from many goroutines; run
// under -race (ci.sh does) this pins the locking.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Inc("n")
				m.AddGauge("g", 1)
				m.AddGauge("g", -1)
				_ = m.Counter("n")
				_, _ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := m.Gauge("g"); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
