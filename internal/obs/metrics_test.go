package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestMetricsCountersAndGauges(t *testing.T) {
	m := NewMetrics()
	m.Inc("requests_total")
	m.Add("requests_total", 2)
	if got := m.Counter("requests_total"); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := m.Counter("never_written"); got != 0 {
		t.Fatalf("unwritten counter = %d, want 0", got)
	}
	m.SetGauge("inflight", 5)
	m.AddGauge("inflight", -2)
	if got := m.Gauge("inflight"); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
}

func TestMetricsNegativeCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with negative delta did not panic")
		}
	}()
	NewMetrics().Add("x", -1)
}

// TestMetricsNilNoOps pins the nil-registry contract: writes are no-ops,
// reads return zero, WriteJSON refuses.
func TestMetricsNilNoOps(t *testing.T) {
	var m *Metrics
	m.Inc("a")
	m.Add("a", 7)
	m.SetGauge("g", 1)
	m.AddGauge("g", 1)
	m.SetInfo("i", InfoLabel{Key: "k", Value: "v"})
	if m.Counter("a") != 0 || m.Gauge("g") != 0 {
		t.Fatal("nil registry returned nonzero values")
	}
	if m.Histogram("h") != nil {
		t.Fatal("nil registry handed out a live histogram")
	}
	if m.Info("i") != nil {
		t.Fatal("nil registry returned info labels")
	}
	c, g := m.Snapshot()
	if len(c) != 0 || len(g) != 0 {
		t.Fatal("nil snapshot not empty")
	}
	if err := m.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil registry did not error")
	}
}

func TestMetricsSnapshotIsACopy(t *testing.T) {
	m := NewMetrics()
	m.Inc("a")
	c, g := m.Snapshot()
	c["a"] = 99
	g["x"] = 1
	if m.Counter("a") != 1 || m.Gauge("x") != 0 {
		t.Fatal("snapshot aliases the live maps")
	}
}

func TestMetricsWriteJSONSchema(t *testing.T) {
	m := NewMetrics()
	m.Add("cache_hits", 4)
	m.SetGauge("workers", 8)
	h := m.Histogram("solve_seconds_cold")
	h.Observe(0.25)
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema     string           `json:"schema"`
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   uint64  `json:"count"`
			Sum     float64 `json:"sum"`
			Min     float64 `json:"min"`
			Max     float64 `json:"max"`
			P50     float64 `json:"p50"`
			P99     float64 `json:"p99"`
			Buckets []struct {
				LE    float64 `json:"le"`
				Count uint64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("document has unexpected keys: %v", err)
	}
	if doc.Schema != MetricsSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, MetricsSchema)
	}
	if doc.Counters["cache_hits"] != 4 || doc.Gauges["workers"] != 8 {
		t.Fatalf("document values wrong: %+v", doc)
	}
	hd, ok := doc.Histograms["solve_seconds_cold"]
	if !ok {
		t.Fatal("histogram missing from document")
	}
	if hd.Count != 2 || hd.Sum != 0.75 || hd.Min != 0.25 || hd.Max != 0.5 {
		t.Fatalf("histogram summary wrong: %+v", hd)
	}
	if hd.P50 <= 0 || hd.P99 < hd.P50 {
		t.Fatalf("quantiles wrong: p50=%v p99=%v", hd.P50, hd.P99)
	}
	// Buckets are cumulative, finite-boundary only, and end at the total.
	var prevLE float64
	var prevCum uint64
	for i, b := range hd.Buckets {
		if i > 0 && (b.LE <= prevLE || b.Count < prevCum) {
			t.Fatalf("bucket %d not monotone: %+v", i, hd.Buckets)
		}
		prevLE, prevCum = b.LE, b.Count
	}
	if n := len(hd.Buckets); n == 0 || hd.Buckets[n-1].Count != hd.Count {
		t.Fatalf("bucket series does not end at count: %+v", hd)
	}
}

// TestMetricsConcurrent hammers the registry from many goroutines; run
// under -race (ci.sh does) this pins the locking.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Inc("n")
				m.AddGauge("g", 1)
				m.AddGauge("g", -1)
				_ = m.Counter("n")
				_, _ = m.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n"); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := m.Gauge("g"); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
}
