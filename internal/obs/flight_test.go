package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func flightEntry(i int) FlightEntry {
	tr := NewTracer("serve-solve")
	sp := tr.Start("solve")
	sp.End()
	tr.Close()
	return FlightEntry{
		ID:       fmt.Sprintf("req-%d", i),
		Route:    "/solve",
		Outcome:  "cold",
		Status:   200,
		Start:    time.Unix(1700000000+int64(i), 0),
		Duration: time.Duration(i) * time.Millisecond,
		Root:     tr.Root(),
	}
}

// TestFlightRingEviction pins the bounded-ring semantics: oldest-first
// order, eviction once full, and the dropped counter.
func TestFlightRingEviction(t *testing.T) {
	f := NewFlightRecorder(2)
	if f.Cap() != 2 || f.Len() != 0 {
		t.Fatalf("fresh recorder cap/len = %d/%d", f.Cap(), f.Len())
	}
	for i := 1; i <= 3; i++ {
		f.Record(flightEntry(i))
	}
	if f.Len() != 2 || f.Dropped() != 1 {
		t.Fatalf("len/dropped = %d/%d, want 2/1", f.Len(), f.Dropped())
	}
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].ID != "req-2" || snap[1].ID != "req-3" {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	// Two more: wraps again, still oldest-first.
	f.Record(flightEntry(4))
	f.Record(flightEntry(5))
	snap = f.Snapshot()
	if snap[0].ID != "req-4" || snap[1].ID != "req-5" || f.Dropped() != 3 {
		t.Fatalf("after wrap: %+v dropped=%d", snap, f.Dropped())
	}
}

// TestFlightWriteJSONSchema locks the lubtd-flight/1 shape with a
// strict decoder, and checks the embedded trace is a full lubt-trace/1
// document.
func TestFlightWriteJSONSchema(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Record(flightEntry(1))
	f.Record(flightEntry(2))
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string `json:"schema"`
		Capacity int    `json:"capacity"`
		Dropped  uint64 `json:"dropped"`
		Entries  []struct {
			ID          string `json:"id"`
			Route       string `json:"route"`
			Outcome     string `json:"outcome"`
			Status      int    `json:"status"`
			StartUnixUS int64  `json:"start_unix_us"`
			DurUS       int64  `json:"dur_us"`
			Trace       struct {
				Schema string          `json:"schema"`
				Root   json.RawMessage `json:"root"`
			} `json:"trace"`
		} `json:"entries"`
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("document has unexpected keys: %v", err)
	}
	if doc.Schema != FlightSchema || doc.Capacity != 4 || doc.Dropped != 0 {
		t.Fatalf("header wrong: %+v", doc)
	}
	if len(doc.Entries) != 2 || doc.Entries[0].ID != "req-1" {
		t.Fatalf("entries wrong: %+v", doc.Entries)
	}
	e := doc.Entries[0]
	if e.Route != "/solve" || e.Outcome != "cold" || e.Status != 200 ||
		e.StartUnixUS != 1700000001000000 {
		t.Fatalf("entry fields wrong: %+v", e)
	}
	if e.Trace.Schema != TraceSchema || len(e.Trace.Root) == 0 {
		t.Fatalf("embedded trace wrong: %+v", e.Trace)
	}
}

// TestFlightNil pins the disabled-recorder contract.
func TestFlightNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEntry{ID: "x"})
	if f.Cap() != 0 || f.Len() != 0 || f.Dropped() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder returned nonzero state")
	}
	if err := f.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil recorder did not error")
	}
}

// TestFlightConcurrent: Record from many goroutines while snapshotting;
// run under -race this pins the locking, and the arithmetic must hold.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlightRecorder(8)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			_ = f.Snapshot()
			_ = f.Len()
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		f.Record(FlightEntry{ID: fmt.Sprintf("r%d", i)})
	}
	<-done
	if f.Len() != 8 || f.Dropped() != 92 {
		t.Fatalf("len/dropped = %d/%d, want 8/92", f.Len(), f.Dropped())
	}
}
