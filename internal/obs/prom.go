package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promNamespace prefixes every metric name in the text exposition, so
// lubtd's series never collide with another job's on a shared scrape.
const promNamespace = "lubtd_"

// promName maps a registry name to a legal Prometheus metric name:
// namespace prefix plus any character outside [a-zA-Z0-9_:] replaced
// by '_'. Registry names are already snake_case, so in practice this
// is just the prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promNamespace)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value: shortest round-trip decimal, with
// the exposition-format spellings of the infinities.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelEscape escapes a label value per the exposition format
// (backslash, double quote and newline).
func promLabelEscape(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders an info gauge's label set ("" when empty).
func promLabels(labels []InfoLabel) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key)[len(promNamespace):]) // sanitize, no namespace on label keys
		b.WriteString(`="`)
		b.WriteString(promLabelEscape(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): every counter and gauge as a single sample,
// info gauges with their identity labels, and every histogram as the
// conventional cumulative series — `name_bucket{le="..."}` lines ending
// at le="+Inf", then `name_sum` and `name_count`. Names are prefixed
// `lubtd_` and emitted in sorted order, so output is deterministic for
// a given state. Calling it on a nil registry is an error, mirroring
// WriteJSON.
func (m *Metrics) WriteProm(w io.Writer) error {
	if m == nil {
		return fmt.Errorf("obs: WriteProm on a disabled metrics registry")
	}
	counters, gauges := m.Snapshot()
	m.mu.Lock()
	infos := make(map[string][]InfoLabel, len(m.infos))
	for k, v := range m.infos {
		infos[k] = append([]InfoLabel(nil), v...)
	}
	m.mu.Unlock()
	hists := m.histogramRefs()

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " counter\n")
		bw.WriteString(pn + " " + strconv.FormatInt(counters[name], 10) + "\n")
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		bw.WriteString("# TYPE " + pn + " gauge\n")
		bw.WriteString(pn + promLabels(infos[name]) + " " + strconv.FormatInt(gauges[name], 10) + "\n")
	}
	for _, name := range sortedKeys(hists) {
		pn := promName(name)
		snap := hists[name].Snapshot()
		bw.WriteString("# TYPE " + pn + " histogram\n")
		wroteInf := false
		for _, b := range snap.Buckets {
			bw.WriteString(pn + `_bucket{le="` + promFloat(b.LE) + `"} ` +
				strconv.FormatUint(b.Count, 10) + "\n")
			wroteInf = wroteInf || math.IsInf(b.LE, 1)
		}
		if !wroteInf { // empty histogram: the +Inf bucket is still mandatory
			bw.WriteString(pn + `_bucket{le="+Inf"} ` + strconv.FormatUint(snap.Count, 10) + "\n")
		}
		bw.WriteString(pn + "_sum " + promFloat(snap.Sum) + "\n")
		bw.WriteString(pn + "_count " + strconv.FormatUint(snap.Count, 10) + "\n")
	}
	return bw.Flush()
}

// sortedKeys returns the map's keys in increasing order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
