package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// FlightSchema identifies the JSON layout emitted by
// FlightRecorder.WriteJSON; bump it when the document or entry key set
// changes.
const FlightSchema = "lubtd-flight/1"

// FlightEntry is one completed request in the flight recorder: identity
// and outcome fields that correlate with the access log, plus the full
// span tree (which must be ended before Record — entries are read
// concurrently with no further synchronization on the spans).
type FlightEntry struct {
	ID       string // request id, matches the access-log and trace ids
	Route    string // "/solve" or "/eco"
	Outcome  string // cache outcome: cold, warm_hit, warm_eco, error
	Status   int    // HTTP status written
	Start    time.Time
	Duration time.Duration
	Root     *Span // completed lubt-trace/1 span tree (may be nil)
}

// FlightRecorder is a bounded ring of the last Cap() completed request
// entries — the always-on "what just happened" buffer behind
// /debug/flight and the SIGQUIT dump. Recording overwrites the oldest
// entry once full; the total number overwritten is reported as
// `dropped`. Safe for concurrent use. A nil *FlightRecorder is the
// disabled recorder: Record is a no-op and reads return zero values,
// mirroring the nil *Tracer and *Metrics contracts.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []FlightEntry
	next    int    // ring index of the next write
	filled  bool   // ring has wrapped at least once
	dropped uint64 // entries overwritten since start
}

// NewFlightRecorder returns an empty recorder holding the last size
// entries (size < 1 is treated as 1).
func NewFlightRecorder(size int) *FlightRecorder {
	if size < 1 {
		size = 1
	}
	return &FlightRecorder{ring: make([]FlightEntry, 0, size)}
}

// Record appends a completed entry, evicting the oldest when full.
func (f *FlightRecorder) Record(e FlightEntry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, e)
	} else {
		f.ring[f.next] = e
		f.next = (f.next + 1) % cap(f.ring)
		f.filled = true
		f.dropped++
	}
	f.mu.Unlock()
}

// Cap returns the ring capacity (0 for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return cap(f.ring)
}

// Len returns the number of entries currently held (0 for nil).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}

// Dropped returns how many entries have been evicted (0 for nil).
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Snapshot returns the held entries oldest-first (nil for nil).
func (f *FlightRecorder) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEntry, 0, len(f.ring))
	if f.filled {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	} else {
		out = append(out, f.ring...)
	}
	return out
}

// flightEntryJSON is one serialized entry (schema lubtd-flight/1). The
// trace field reuses the lubt-trace/1 document verbatim, so existing
// trace tooling reads flight dumps unchanged.
type flightEntryJSON struct {
	ID          string     `json:"id"`
	Route       string     `json:"route"`
	Outcome     string     `json:"outcome"`
	Status      int        `json:"status"`
	StartUnixUS int64      `json:"start_unix_us"`
	DurUS       int64      `json:"dur_us"`
	Trace       *traceJSON `json:"trace,omitempty"`
}

type flightJSON struct {
	Schema   string            `json:"schema"`
	Capacity int               `json:"capacity"`
	Dropped  uint64            `json:"dropped"`
	Entries  []flightEntryJSON `json:"entries"`
}

// WriteJSON writes the ring oldest-first as an indented lubtd-flight/1
// document. Calling it on a nil recorder is an error, mirroring the
// other disabled-emitter contracts.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	if f == nil {
		return fmt.Errorf("obs: WriteJSON on a disabled flight recorder")
	}
	doc := flightJSON{
		Schema:   FlightSchema,
		Capacity: f.Cap(),
		Dropped:  f.Dropped(),
		Entries:  []flightEntryJSON{},
	}
	for _, e := range f.Snapshot() {
		ej := flightEntryJSON{
			ID:          e.ID,
			Route:       e.Route,
			Outcome:     e.Outcome,
			Status:      e.Status,
			StartUnixUS: e.Start.UnixMicro(),
			DurUS:       e.Duration.Microseconds(),
		}
		if e.Root != nil {
			ej.Trace = &traceJSON{Schema: TraceSchema, Root: e.Root.toJSON(e.Root.start)}
		}
		doc.Entries = append(doc.Entries, ej)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
