package obs

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestWritePromParseBack is the exposition golden test: write a
// populated registry, parse the text back line by line, and check the
// format invariants — TYPE lines, cumulative monotone _bucket series
// ending at le="+Inf", _count agreement, info-gauge labels.
func TestWritePromParseBack(t *testing.T) {
	m := NewMetrics()
	m.Add("requests_total", 7)
	m.SetGauge("workers", 4)
	m.SetInfo("build_info",
		InfoLabel{Key: "go_version", Value: "go1.x"},
		InfoLabel{Key: "revision", Value: `weird"rev\n`})
	h := m.Histogram("solve_seconds_cold")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.01)
	}
	m.Histogram("solve_seconds_warm_hit") // empty: still must expose +Inf/_sum/_count

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	types := map[string]string{}
	samples := map[string]float64{} // full sample line name{labels} → value
	type bkt struct {
		le  string
		cum float64
	}
	buckets := map[string][]bkt{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		var val float64
		if valStr == "+Inf" {
			val = 1e308
		} else {
			var err error
			val, err = strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		samples[key] = val
		if i := strings.Index(key, `_bucket{le="`); i >= 0 {
			name := key[:i]
			le := strings.TrimSuffix(key[i+len(`_bucket{le="`):], `"}`)
			buckets[name] = append(buckets[name], bkt{le: le, cum: val})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if types["lubtd_requests_total"] != "counter" || samples["lubtd_requests_total"] != 7 {
		t.Errorf("counter exposition wrong: type=%q val=%v",
			types["lubtd_requests_total"], samples["lubtd_requests_total"])
	}
	if types["lubtd_workers"] != "gauge" || samples["lubtd_workers"] != 4 {
		t.Errorf("gauge exposition wrong")
	}
	// Info gauge renders its labels, escaped.
	wantInfo := `lubtd_build_info{go_version="go1.x",revision="weird\"rev\\n"}`
	if v, ok := samples[wantInfo]; !ok || v != 1 {
		t.Errorf("info gauge missing or wrong; samples: %v", samples)
	}

	for _, name := range []string{"lubtd_solve_seconds_cold", "lubtd_solve_seconds_warm_hit"} {
		if types[name] != "histogram" {
			t.Fatalf("%s: TYPE = %q, want histogram", name, types[name])
		}
		bs := buckets[name]
		if len(bs) == 0 {
			t.Fatalf("%s: no _bucket series", name)
		}
		if bs[len(bs)-1].le != "+Inf" {
			t.Fatalf("%s: last bucket le = %q, want +Inf", name, bs[len(bs)-1].le)
		}
		prevLE := -1.0
		prevCum := -1.0
		for _, b := range bs {
			le := 1e308
			if b.le != "+Inf" {
				var err error
				le, err = strconv.ParseFloat(b.le, 64)
				if err != nil {
					t.Fatalf("%s: unparseable le %q", name, b.le)
				}
			}
			if le <= prevLE || b.cum < prevCum {
				t.Fatalf("%s: bucket series not monotone: %+v", name, bs)
			}
			prevLE, prevCum = le, b.cum
		}
		count, ok := samples[name+"_count"]
		if !ok || bs[len(bs)-1].cum != count {
			t.Fatalf("%s: +Inf bucket %v != _count %v", name, bs[len(bs)-1].cum, count)
		}
		if _, ok := samples[name+"_sum"]; !ok {
			t.Fatalf("%s: missing _sum", name)
		}
	}
	if samples["lubtd_solve_seconds_cold_count"] != 100 {
		t.Errorf("cold count = %v, want 100", samples["lubtd_solve_seconds_cold_count"])
	}
	if samples["lubtd_solve_seconds_warm_hit_count"] != 0 {
		t.Errorf("empty histogram count = %v, want 0", samples["lubtd_solve_seconds_warm_hit_count"])
	}

	// Nil registry refuses, like WriteJSON.
	var nilM *Metrics
	if err := nilM.WriteProm(&bytes.Buffer{}); err == nil {
		t.Error("WriteProm on nil registry did not error")
	}
}
