// Package obs is the observability layer of the LUBT pipeline:
// hierarchical wall-clock spans with attached attributes, pprof phase
// labels, a process-wide counter/gauge/histogram registry for the
// serving daemon (with JSON and Prometheus text expositions), and a
// bounded flight-recorder ring of completed request traces.
//
// # Span model
//
// A Tracer records a tree of Spans. Each span covers one phase of a
// solve; the canonical hierarchy produced by a traced lubt solve is
//
//	solve
//	├── ebf                      row-generation loop (internal/core)
//	│   └── round                one cutting-plane round
//	│       ├── lp-solve         warm LP re-solve
//	│       │   └── refactorize  basis refactorization (lp.Revised)
//	│       └── separation       violated-pair oracle scan
//	└── embed                    geometric embedding (internal/embed)
//	    ├── bottom-up            feasible-region merge
//	    └── top-down             placement walk
//
// (the Elmore path replaces "ebf" with "slp" and per-iteration
// "slp-iter" spans). Spans carry numeric and string attributes —
// violated-pair counts, pivot counts, numerical-health gauges, reset
// reason codes — set via SetInt, SetFloat and SetString.
//
// # Disabled tracer contract
//
// A nil *Tracer is the disabled tracer. Every method on *Tracer and
// *Span is a nil-receiver no-op that performs no allocation, so call
// sites are written unconditionally:
//
//	sp := tr.Start("separation") // tr may be nil
//	...
//	sp.SetInt("violated", n)     // sp is nil when tr was
//	sp.End()
//
// This is what keeps the instrumented hot paths free when tracing is
// off; TestNilTracerAllocs pins the zero-allocation property.
//
// # pprof labels
//
// While a span is open, the recording goroutine carries the pprof label
// lubt_span=<name>, so CPU profiles taken during a traced solve segment
// by phase (go tool pprof -tagfocus lubt_span=separation ...). Labels
// are inherited by goroutines started inside a span (the separation
// oracle's worker stripes). Spans must be started and ended on one
// goroutine — the tracer is not safe for concurrent span recording.
//
// # JSON schema (lubt-trace/1)
//
// Tracer.WriteJSON emits
//
//	{
//	  "schema": "lubt-trace/1",
//	  "root": {
//	    "name": "solve",
//	    "start_us": 0,          // offset from trace start, microseconds
//	    "dur_us": 12345,
//	    "attrs": {"cost": 812.5, ...},   // optional; numbers or strings
//	    "children": [ ...same shape... ] // optional
//	  }
//	}
//
// The key set of every span object is fixed (name, start_us, dur_us and
// the optional attrs/children); new information is added as attributes,
// never as new keys, so downstream consumers can rely on the shape.
// TestTraceJSONSchema locks this contract.
//
// # Metrics (lubtd-metrics/2)
//
// Where a Tracer describes ONE solve, a Metrics registry aggregates
// ACROSS solves — the counters behind the lubtd daemon's /metrics
// endpoint (internal/serve). Counters are monotone (requests, cache
// hits/misses/evictions, warm/cold pivot totals); gauges carry a
// current value (in-flight solves, cache size, worker-pool width);
// histograms carry distributions (latencies in seconds, pivot and
// restage counts), split by cache outcome. Metrics is safe for
// concurrent use and follows the same disabled-nil contract as Tracer:
// every method on a nil *Metrics is a no-op read of zero.
// Metrics.WriteJSON emits
//
//	{
//	  "schema": "lubtd-metrics/2",
//	  "counters":   {"cache_hits": 12, ...},
//	  "gauges":     {"inflight": 0, ...},
//	  "histograms": {"solve_seconds_cold": {
//	      "count": 3, "sum": 0.8, "min": 0.1, "max": 0.5,
//	      "p50": 0.21, "p99": 0.5,
//	      "buckets": [{"le": 0.125, "count": 1}, ...]   // cumulative
//	  }, ...}
//	}
//
// The document's key set is fixed at those four keys; counter, gauge
// and histogram NAMES are append-only within the major version. JSON
// bucket series carry finite boundaries only (JSON has no infinity
// literal) — the series total is `count`. The serving name set and its
// validator live in internal/serve (ValidateMetricsJSON); docs/API.md
// documents the wire contract.
//
// # Histograms
//
// Histogram is a lock-free log-linear distribution: each power-of-two
// octave splits into 16 linear sub-buckets, so Quantile estimates carry
// at most 1/16 = 6.25% relative error (see DESIGN §6). Observe is a
// few atomic operations — cheap enough for per-request hot paths — and
// a nil *Histogram (from a nil registry) is an allocation-free no-op,
// pinned by TestNilHistogramAllocs. Metrics.WriteProm emits the whole
// registry in the Prometheus text exposition format, histograms as
// cumulative `_bucket{le="..."}` / `_sum` / `_count` series under a
// `lubtd_` name prefix.
//
// # Flight recorder (lubtd-flight/1)
//
// FlightRecorder is a bounded mutex-guarded ring of the last N
// completed request span trees (FlightEntry: request id, route, cache
// outcome, HTTP status, wall time, root *Span). The daemon records
// every /solve and /eco request into it and dumps it at /debug/flight
// and on SIGQUIT; WriteJSON emits lubtd-flight/1, embedding each trace
// as an unmodified lubt-trace/1 document.
package obs
