package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// MetricsSchema identifies the JSON layout emitted by Metrics.WriteJSON;
// bump it when the document's key set changes (new counter or gauge
// names do not count — the name sets are append-only by design, like the
// lubt-bench/1 engine fields).
const MetricsSchema = "lubtd-metrics/1"

// Metrics is a concurrency-safe registry of named monotone counters and
// free-running gauges — the serving-side companion of the per-solve
// lp.Stats spine. Counters only ever increase (requests, cache hits,
// pivot totals); gauges hold a current value (in-flight solves, cache
// size). A nil *Metrics is the disabled registry: every write is a
// no-op and every read returns zero, mirroring the nil *Tracer contract.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
}

// NewMetrics returns an empty enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
	}
}

// Add increments counter name by delta. Counters are monotone: a
// negative delta panics (it indicates a bookkeeping bug, not load).
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %d for counter %q", delta, name))
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Inc is Add(name, 1).
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns the current value of a counter (0 if never written).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets gauge name to v.
func (m *Metrics) SetGauge(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// AddGauge moves gauge name by delta (either sign); use for in-flight
// style up/down tracking.
func (m *Metrics) AddGauge(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] += delta
	m.mu.Unlock()
}

// Gauge returns the current value of a gauge (0 if never written).
func (m *Metrics) Gauge(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Snapshot returns independent copies of the counter and gauge maps —
// a consistent point-in-time view (both maps are copied under one lock).
func (m *Metrics) Snapshot() (counters, gauges map[string]int64) {
	counters = map[string]int64{}
	gauges = map[string]int64{}
	if m == nil {
		return counters, gauges
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		counters[k] = v
	}
	for k, v := range m.gauges {
		gauges[k] = v
	}
	return counters, gauges
}

// metricsJSON is the serialized registry (schema lubtd-metrics/1).
type metricsJSON struct {
	Schema   string           `json:"schema"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
}

// WriteJSON writes the registry as an indented lubtd-metrics/1 document
// (encoding/json sorts the map keys, so output is deterministic for a
// given state). Calling it on a nil registry is an error: the caller
// asked to emit metrics that were never recorded.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		return fmt.Errorf("obs: WriteJSON on a disabled metrics registry")
	}
	counters, gauges := m.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(metricsJSON{Schema: MetricsSchema, Counters: counters, Gauges: gauges})
}
