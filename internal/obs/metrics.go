package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// MetricsSchema identifies the JSON layout emitted by Metrics.WriteJSON;
// bump it when the document's key set changes (new counter, gauge or
// histogram names do not count — the name sets are append-only by
// design, like the lubt-bench/1 engine fields). /2 added the
// `histograms` section.
const MetricsSchema = "lubtd-metrics/2"

// InfoLabel is one key/value identity label of an info gauge (see
// Metrics.SetInfo).
type InfoLabel struct {
	Key, Value string
}

// Metrics is a concurrency-safe registry of named monotone counters,
// free-running gauges and log-linear histograms — the serving-side
// companion of the per-solve lp.Stats spine. Counters only ever increase
// (requests, cache hits, pivot totals); gauges hold a current value
// (in-flight solves, cache size); histograms hold latency/count
// distributions (Histogram). A nil *Metrics is the disabled registry:
// every write is a no-op and every read returns zero, mirroring the nil
// *Tracer contract.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]int64
	gauges     map[string]int64
	histograms map[string]*Histogram
	infos      map[string][]InfoLabel
}

// NewMetrics returns an empty enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]int64),
		gauges:     make(map[string]int64),
		histograms: make(map[string]*Histogram),
		infos:      make(map[string][]InfoLabel),
	}
}

// Add increments counter name by delta. Counters are monotone: a
// negative delta panics (it indicates a bookkeeping bug, not load).
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	if delta < 0 {
		panic(fmt.Sprintf("obs: negative delta %d for counter %q", delta, name))
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Inc is Add(name, 1).
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns the current value of a counter (0 if never written).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets gauge name to v.
func (m *Metrics) SetGauge(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// AddGauge moves gauge name by delta (either sign); use for in-flight
// style up/down tracking.
func (m *Metrics) AddGauge(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] += delta
	m.mu.Unlock()
}

// Gauge returns the current value of a gauge (0 if never written).
func (m *Metrics) Gauge(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// SetInfo declares name as an info gauge: a constant-1 gauge whose
// payload is its identity labels (the Prometheus build_info idiom). The
// JSON document carries the constant under gauges; the text exposition
// renders the labels. Labels are copied.
func (m *Metrics) SetInfo(name string, labels ...InfoLabel) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = 1
	m.infos[name] = append([]InfoLabel(nil), labels...)
	m.mu.Unlock()
}

// Info returns the identity labels of an info gauge (nil if name was
// never declared with SetInfo).
func (m *Metrics) Info(name string) []InfoLabel {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]InfoLabel(nil), m.infos[name]...)
}

// Histogram returns the named histogram, creating it on first sight.
// Callers on hot paths should hold on to the returned pointer — Observe
// on a *Histogram is lock-free, the name lookup is not. Returns nil (the
// disabled histogram) on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = NewHistogram()
		m.histograms[name] = h
	}
	return h
}

// Snapshot returns independent copies of the counter and gauge maps —
// a consistent point-in-time view (both maps are copied under one lock).
func (m *Metrics) Snapshot() (counters, gauges map[string]int64) {
	counters = map[string]int64{}
	gauges = map[string]int64{}
	if m == nil {
		return counters, gauges
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range m.counters {
		counters[k] = v
	}
	for k, v := range m.gauges {
		gauges[k] = v
	}
	return counters, gauges
}

// histogramRefs copies the name → histogram map (the histograms
// themselves are shared — their reads are atomic).
func (m *Metrics) histogramRefs() map[string]*Histogram {
	refs := map[string]*Histogram{}
	if m == nil {
		return refs
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, h := range m.histograms {
		refs[k] = h
	}
	return refs
}

// metricsJSON is the serialized registry (schema lubtd-metrics/2).
type metricsJSON struct {
	Schema     string                   `json:"schema"`
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]histogramJSON `json:"histograms"`
}

// histogramJSON is one histogram in the lubtd-metrics/2 document:
// scalar summaries plus the sparse cumulative bucket series. Only
// finite boundaries are emitted (JSON has no infinity literal); the
// series total is `count`. p50/p99 are Quantile estimates — within the
// 6.25% log-linear bucket bound of the true sample quantiles.
type histogramJSON struct {
	Count   uint64       `json:"count"`
	Sum     float64      `json:"sum"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	P50     float64      `json:"p50"`
	P99     float64      `json:"p99"`
	Buckets []bucketJSON `json:"buckets"`
}

type bucketJSON struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

func histToJSON(h *Histogram) histogramJSON {
	snap := h.Snapshot()
	out := histogramJSON{
		Count:   snap.Count,
		Sum:     snap.Sum,
		Min:     snap.Min,
		Max:     snap.Max,
		P50:     h.Quantile(0.5),
		P99:     h.Quantile(0.99),
		Buckets: []bucketJSON{},
	}
	for _, b := range snap.Buckets {
		if math.IsInf(b.LE, 1) {
			continue
		}
		out.Buckets = append(out.Buckets, bucketJSON{LE: b.LE, Count: b.Count})
	}
	return out
}

// WriteJSON writes the registry as an indented lubtd-metrics/2 document
// (encoding/json sorts the map keys, so output is deterministic for a
// given state). Calling it on a nil registry is an error: the caller
// asked to emit metrics that were never recorded.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		return fmt.Errorf("obs: WriteJSON on a disabled metrics registry")
	}
	counters, gauges := m.Snapshot()
	hists := map[string]histogramJSON{}
	for name, h := range m.histogramRefs() {
		hists[name] = histToJSON(h)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(metricsJSON{Schema: MetricsSchema, Counters: counters, Gauges: gauges, Histograms: hists})
}
