package experiments

import (
	"bytes"
	"math"
	"testing"
)

// A single small benchmark keeps the experiment tests quick; the full
// grids run in cmd/lubtbench and bench_test.go.
var testBenches = []string{"prim1-s"}

func TestTable1ShapeProperties(t *testing.T) {
	rows, err := Table1(testBenches, []float64{0, 0.5, 2, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// Optimality: LUBT never worse than the baseline on the same
		// topology with the window the skew bound entitles it to.
		if r.LubtCost > r.BaseCost*(1+1e-9)+1e-6 {
			t.Errorf("%s skew %g: LUBT %g > baseline %g", r.Bench, r.SkewBound, r.LubtCost, r.BaseCost)
		}
		// The realized spread respects the skew bound.
		if !math.IsInf(r.SkewBound, 1) && r.Longest-r.Shortest > r.SkewBound+1e-6 {
			t.Errorf("%s skew %g: spread %g", r.Bench, r.SkewBound, r.Longest-r.Shortest)
		}
	}
	// Costs fall as the bound loosens (per bench the list is ordered).
	for i := 1; i < len(rows); i++ {
		if rows[i].Bench == rows[i-1].Bench && rows[i].LubtCost > rows[i-1].LubtCost*(1+1e-6) {
			t.Errorf("cost not monotone: skew %g cost %g vs skew %g cost %g",
				rows[i-1].SkewBound, rows[i-1].LubtCost, rows[i].SkewBound, rows[i].LubtCost)
		}
	}
	var buf bytes.Buffer
	RenderTable1(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable2ShapeProperties(t *testing.T) {
	rows, err := Table2(testBenches, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 || len(rows) > len(table2Shifts) {
		t.Fatalf("got %d rows", len(rows))
	}
	starred := 0
	for _, r := range rows {
		if r.Starred {
			starred++
		}
		if r.Upper-r.Lower > 0.5+1e-9 {
			t.Errorf("window [%g,%g] wider than skew bound", r.Lower, r.Upper)
		}
		if r.Cost <= 0 {
			t.Errorf("non-positive cost %g", r.Cost)
		}
	}
	if starred != 1 {
		t.Errorf("%d starred rows", starred)
	}
	// The paper's point: sliding the window changes cost only mildly.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range rows {
		lo = math.Min(lo, r.Cost)
		hi = math.Max(hi, r.Cost)
	}
	if hi > 2*lo {
		t.Errorf("window shifts doubled the cost: [%g, %g]", lo, hi)
	}
	var buf bytes.Buffer
	RenderTable2(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable3ShapeProperties(t *testing.T) {
	rows, err := Table3(testBenches)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(windows3) {
		t.Fatalf("got %d rows", len(rows))
	}
	// The [0.99,1] row is the most constrained and [0,2] the least; cost
	// must drop across that span (the paper's headline trend).
	if rows[len(rows)-1].Cost >= rows[0].Cost {
		t.Errorf("loosest window cost %g not below tightest %g",
			rows[len(rows)-1].Cost, rows[0].Cost)
	}
	var buf bytes.Buffer
	RenderTable3(rows).Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFigure8Shape(t *testing.T) {
	rows, err := Figure8("prim2-s")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("only %d points", len(rows))
	}
	// For a fixed upper bound, widening the window can only reduce cost.
	byUpper := map[float64][]FigRow{}
	for _, r := range rows {
		byUpper[r.Upper] = append(byUpper[r.Upper], r)
	}
	for u, series := range byUpper {
		for i := 1; i < len(series); i++ {
			// Series generated in increasing width order.
			if series[i].Cost > series[i-1].Cost*(1+1e-6) {
				t.Errorf("u=%g: widening [%g → %g] raised cost %g → %g", u,
					series[i-1].Lower, series[i].Lower, series[i-1].Cost, series[i].Cost)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure8(rows, "prim2-s").Render(&buf)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTableBenches(t *testing.T) {
	if got := TableBenches(false); got[0] != "prim1-s" || len(got) != 4 {
		t.Errorf("scaled names: %v", got)
	}
	if got := TableBenches(true); got[0] != "prim1" || len(got) != 4 {
		t.Errorf("full names: %v", got)
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Table1([]string{"bogus"}, []float64{0}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
