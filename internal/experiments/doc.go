// Package experiments regenerates every table and figure of the paper's
// evaluation (§8): Table 1 (baseline [9] vs LUBT across skew bounds),
// Table 2 (same skew, shifted delay windows), Table 3 (assorted bound
// combinations) and Figure 8 (the cost-vs-bounds trade-off curve for
// prim2), plus the LP engine statistics table behind `lubtbench -stats`.
// It is shared by cmd/lubtbench and the root bench_test.go.
//
// All bounds are expressed as multiples of the instance radius, exactly as
// in the paper ("all bounds are normalized to the radius"). Costs are
// absolute wirelength on our synthetic benchmark instances; per DESIGN.md
// the comparison of interest is the *shape* — who wins, monotonicity,
// where the knees are — not the 1996 absolute numbers.
//
// Methodology note (also in EXPERIMENTS.md): the paper ran the router of
// [9] at a skew bound B and fed its topology and its [shortest, longest]
// sink delays to LUBT as [l, u]. Our reimplemented baseline keeps sink
// delays much closer together than B (its merge rule balances delay
// intervals, using slack only to avoid elongation), so feeding its
// *observed* spread to LUBT would solve a nearly-zero-skew problem
// regardless of B. We therefore hand LUBT the full tolerable-skew window
// the bound entitles it to — [longest − B·radius, longest], §6 of the
// paper — which is exactly the freedom [9]'s spread gave LUBT in the
// original experiment.
package experiments
