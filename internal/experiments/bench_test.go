package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// TestBenchRecordsRoundTrip runs the smallest benchmark once and checks
// the record validates and carries sane engine data.
func TestBenchRecordsRoundTrip(t *testing.T) {
	recs, err := BenchRecords([]string{"prim1-s"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records for one benchmark", len(recs))
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if len(rec.Engines) != len(statEngines) {
		t.Fatalf("engines: %d, want %d (revised, revised-mv, dense)", len(rec.Engines), len(statEngines))
	}
	// All engine rows must agree on the optimum.
	for _, e := range rec.Engines[1:] {
		a, b := rec.Engines[0].Cost, e.Cost
		if a <= 0 || b <= 0 || a/b > 1.001 || b/a > 1.001 {
			t.Errorf("engine costs disagree: %s %g vs %s %g",
				rec.Engines[0].Engine, a, e.Engine, b)
		}
	}
	for _, e := range rec.Engines {
		if e.Pivots <= 0 || e.Rounds <= 0 || e.SteinerRows <= 0 {
			t.Errorf("%s: empty counters: %+v", e.Engine, e)
		}
	}
	// The revised rows must carry their pricing identity; dense has none.
	schemes := map[string]string{}
	for _, e := range rec.Engines {
		schemes[e.Engine] = e.PricingScheme
	}
	if schemes["revised"] != "devex" || schemes["revised-mv"] != "most-violated" {
		t.Errorf("pricing schemes: %v, want revised=devex revised-mv=most-violated", schemes)
	}
	if schemes["dense"] != "" {
		t.Errorf("dense engine reports pricing %q, want empty", schemes["dense"])
	}
	if err := CheckPivotGate(rec); err != nil {
		t.Errorf("pivot gate on prim1-s: %v", err)
	}
	// The revised row must carry a measured ECO probe and pass the warm
	// gate; the other engines cannot restage and must report zeros.
	for _, e := range rec.Engines {
		if e.Engine == "revised" {
			if e.EcoResolveMS <= 0 {
				t.Errorf("revised row missing ECO probe: eco_resolve_ms = %g", e.EcoResolveMS)
			}
		} else if e.EcoPivots != 0 || e.EcoResolveMS != 0 {
			t.Errorf("%s reports an ECO probe (%d pivots, %g ms), want zeros",
				e.Engine, e.EcoPivots, e.EcoResolveMS)
		}
	}
	if err := CheckEcoGate(rec); err != nil {
		t.Errorf("eco gate on prim1-s: %v", err)
	}
	// Quantiles come from real per-repeat samples: positive latency,
	// ordered, and (deterministic solver) pivot quantiles equal to the
	// first-run count.
	for _, e := range rec.Engines {
		if e.WallP50MS <= 0 || e.WallP99MS < e.WallP50MS {
			t.Errorf("%s: wall quantiles p50=%g p99=%g", e.Engine, e.WallP50MS, e.WallP99MS)
		}
		if e.LPSolveP50MS <= 0 || e.LPSolveP99MS < e.LPSolveP50MS {
			t.Errorf("%s: lp-solve quantiles p50=%g p99=%g", e.Engine, e.LPSolveP50MS, e.LPSolveP99MS)
		}
		if e.PivotsP50 != e.Pivots || e.PivotsP99 != e.Pivots {
			t.Errorf("%s: pivot quantiles p50=%d p99=%d, want both %d (deterministic solver)",
				e.Engine, e.PivotsP50, e.PivotsP99, e.Pivots)
		}
	}
}

// TestBenchJSONSchema locks the lubt-bench/1 key set: any new, removed or
// renamed field must bump the schema version.
func TestBenchJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	err := WriteBenchJSON(&buf, BenchRecord{
		Schema: BenchSchema, Bench: "x", Sinks: 1, Repeats: 1,
		Engines: []EngineRecord{{Engine: "revised"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"schema", "bench", "sinks", "repeats", "radius", "engines"}
	if len(top) != len(wantTop) {
		t.Errorf("top-level has %d keys, want %d", len(top), len(wantTop))
	}
	for _, k := range wantTop {
		if _, ok := top[k]; !ok {
			t.Errorf("missing top-level key %q", k)
		}
	}
	var engines []map[string]json.RawMessage
	if err := json.Unmarshal(top["engines"], &engines); err != nil {
		t.Fatal(err)
	}
	wantEng := []string{
		"engine", "cost", "rounds", "steiner_rows", "pivots", "bound_flips",
		"refactorizations", "resets", "basis_size", "fill_in", "eta_len",
		"tableau_rows", "lowered_tableau_rows", "ranged_rows", "row_nonzeros",
		"numerical_residual", "pivot_min", "pivot_max",
		"pricing_scheme", "devex_resets", "weight_min", "weight_max",
		"restages", "row_replacements", "eco_pivots", "eco_resolve_ms",
		"sep_scan_ns", "lp_solve_ns", "wall_ns",
		"wall_p50_ms", "wall_p99_ms", "lp_solve_p50_ms", "lp_solve_p99_ms",
		"pivots_p50", "pivots_p99",
		"presolve_pruned_rows", "subtrees", "peak_rows",
	}
	if len(engines[0]) != len(wantEng) {
		t.Errorf("engine record has %d keys, want %d (schema drift — bump lubt-bench version)",
			len(engines[0]), len(wantEng))
	}
	for _, k := range wantEng {
		if _, ok := engines[0][k]; !ok {
			t.Errorf("missing engine key %q", k)
		}
	}
}

// TestValidateBenchJSONRejects exercises the validator's failure modes.
func TestValidateBenchJSONRejects(t *testing.T) {
	good := BenchRecord{
		Schema: BenchSchema, Bench: "x", Sinks: 4, Repeats: 1,
		Engines: []EngineRecord{{Engine: "revised", Rounds: 1, WallNS: 5, Cost: 1}},
	}
	encode := func(r BenchRecord) []byte {
		b, _ := json.Marshal(r)
		return b
	}
	if err := ValidateBenchJSON(encode(good)); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string]BenchRecord{}
	r := good
	r.Schema = "lubt-bench/0"
	cases["wrong schema"] = r
	r = good
	r.Bench = ""
	cases["empty bench"] = r
	r = good
	r.Engines = nil
	cases["no engines"] = r
	r = good
	r.Engines = []EngineRecord{{Engine: "revised", Rounds: 0, WallNS: 5, Cost: 1}}
	cases["zero rounds"] = r
	r = good
	r.Engines = []EngineRecord{{Engine: "revised", Rounds: 1, WallNS: 5, Cost: 1, WallP50MS: 2, WallP99MS: 1}}
	cases["wall p99 below p50"] = r
	r = good
	r.Engines = []EngineRecord{{Engine: "revised", Rounds: 1, WallNS: 5, Cost: 1, PivotsP50: 9, PivotsP99: 3}}
	cases["pivot p99 below p50"] = r
	for name, rec := range cases {
		if err := ValidateBenchJSON(encode(rec)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := ValidateBenchJSON([]byte(`{"schema":"lubt-bench/1","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestBenchJSONFile validates an externally produced BENCH_*.json file
// named by LUBT_BENCH_JSON (skipped when unset). ci.sh uses this as the
// bench-smoke gate: it runs `lubtbench -json` and points this test at
// the output, so the CLI and the schema cannot drift apart.
func TestBenchJSONFile(t *testing.T) {
	path := os.Getenv("LUBT_BENCH_JSON")
	if path == "" {
		t.Skip("LUBT_BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatal(err)
	}
}

// TestBenchJSONPivotGate applies the Devex-vs-most-violated pivot gate
// to an externally produced BENCH_*.json named by LUBT_BENCH_JSON
// (skipped when unset). ci.sh runs it on the reference instances after
// `lubtbench -json`, failing the smoke when Devex pricing pivots more
// than the most-violated baseline.
func TestBenchJSONPivotGate(t *testing.T) {
	path := os.Getenv("LUBT_BENCH_JSON")
	if path == "" {
		t.Skip("LUBT_BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var rec BenchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if err := CheckPivotGate(rec); err != nil {
		t.Fatal(err)
	}
}

// TestBenchJSONEcoGate applies the warm-ECO pivot gate to an externally
// produced BENCH_*.json named by LUBT_BENCH_JSON (skipped when unset).
// ci.sh runs it after `lubtbench -json` on r4-s: the warm re-solve after
// a single-sink retighten must take fewer than 25% of the cold solve's
// pivots.
func TestBenchJSONEcoGate(t *testing.T) {
	path := os.Getenv("LUBT_BENCH_JSON")
	if path == "" {
		t.Skip("LUBT_BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var rec BenchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if err := CheckEcoGate(rec); err != nil {
		t.Fatal(err)
	}
}

// TestBenchJSONPresolveGate applies the presolve/decomposition ablation
// gate to an externally produced BENCH_*.json named by LUBT_BENCH_JSON
// (skipped when unset). ci.sh runs it on the scale-class smoke instance
// after `lubtbench -json`: presolve must prune rows, the decomposed peak
// row count must not exceed the monolithic one, and the two optima must
// agree to 1e-6·radius.
func TestBenchJSONPresolveGate(t *testing.T) {
	path := os.Getenv("LUBT_BENCH_JSON")
	if path == "" {
		t.Skip("LUBT_BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	var rec BenchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if err := CheckPresolveGate(rec); err != nil {
		t.Fatal(err)
	}
}

// TestCheckPresolveGate exercises the presolve gate's decision table on
// hand-built records.
func TestCheckPresolveGate(t *testing.T) {
	mk := func(mut func(*BenchRecord)) BenchRecord {
		rec := BenchRecord{
			Bench:  "x",
			Radius: 1000,
			Engines: []EngineRecord{
				{Engine: "revised", Cost: 500, PresolvePrunedRows: 42, Subtrees: 8, PeakRows: 100},
				{Engine: "revised-nopresolve", Cost: 500, PeakRows: 900},
			},
		}
		if mut != nil {
			mut(&rec)
		}
		return rec
	}
	if err := CheckPresolveGate(mk(nil)); err != nil {
		t.Errorf("healthy record: %v", err)
	}
	// Costs differing within 1e-6·radius pass; beyond it fail.
	if err := CheckPresolveGate(mk(func(r *BenchRecord) { r.Engines[0].Cost = 500 + 9e-4 })); err != nil {
		t.Errorf("in-tolerance cost drift: %v", err)
	}
	if err := CheckPresolveGate(mk(func(r *BenchRecord) { r.Engines[0].Cost = 500 + 2e-3 })); err == nil {
		t.Error("out-of-tolerance cost drift accepted")
	}
	if err := CheckPresolveGate(mk(func(r *BenchRecord) { r.Engines[0].PresolvePrunedRows = 0 })); err == nil {
		t.Error("zero pruned rows accepted")
	}
	if err := CheckPresolveGate(mk(func(r *BenchRecord) { r.Engines[1].Subtrees = 3 })); err == nil {
		t.Error("leaking off switch accepted")
	}
	if err := CheckPresolveGate(mk(func(r *BenchRecord) { r.Engines[0].PeakRows = 1000 })); err == nil {
		t.Error("pruned peak above monolithic peak accepted")
	}
	// Missing ablation pair → vacuous pass.
	if err := CheckPresolveGate(BenchRecord{Engines: []EngineRecord{{Engine: "revised"}}}); err != nil {
		t.Errorf("no pair: %v", err)
	}
	// Tiny radius: the tolerance floors at 1e-6 absolute.
	small := mk(func(r *BenchRecord) { r.Radius = 0; r.Engines[0].Cost = 500 + 1e-5 })
	if err := CheckPresolveGate(small); err == nil {
		t.Error("absolute-floor violation accepted at radius 0")
	}
}

// TestCheckEcoGate exercises the ECO gate's decision table on hand-built
// records.
func TestCheckEcoGate(t *testing.T) {
	mk := func(cold, warm int, ms float64) BenchRecord {
		return BenchRecord{
			Bench: "x",
			Engines: []EngineRecord{
				{Engine: "revised", Pivots: cold, EcoPivots: warm, EcoResolveMS: ms},
				{Engine: "dense"},
			},
		}
	}
	if err := CheckEcoGate(mk(100, 24, 1)); err != nil {
		t.Errorf("24%% warm: %v", err)
	}
	if err := CheckEcoGate(mk(100, 25, 1)); err == nil {
		t.Error("25%% warm accepted")
	}
	if err := CheckEcoGate(mk(100, 100, 1)); err == nil {
		t.Error("warm == cold accepted")
	}
	// No probe recorded (eco_resolve_ms 0) → vacuous pass.
	if err := CheckEcoGate(mk(100, 99, 0)); err != nil {
		t.Errorf("no probe: %v", err)
	}
	// No revised row → vacuous pass.
	if err := CheckEcoGate(BenchRecord{Engines: []EngineRecord{{Engine: "dense"}}}); err != nil {
		t.Errorf("no revised row: %v", err)
	}
}

// TestCheckWarmPivots pins the shared warm-restart budget's decision
// table — the threshold both the lubtbench ECO gate and the lubtd
// service tests enforce.
func TestCheckWarmPivots(t *testing.T) {
	cases := []struct {
		name       string
		warm, cold int
		wantErr    bool
	}{
		{"well under budget", 11, 1665, false},
		{"just under 25%", 24, 100, false},
		{"exactly 25%", 25, 100, true},
		{"over budget", 99, 100, true},
		{"warm equals cold", 100, 100, true},
		{"zero warm", 0, 1, false},
		{"boundary 1 of 4", 1, 4, true},
		{"1 of 5", 1, 5, false},
		{"nothing measured", 7, 0, false},
		{"negative cold", 7, -3, false},
	}
	for _, c := range cases {
		err := CheckWarmPivots(c.name, c.warm, c.cold)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: warm=%d cold=%d: err=%v, wantErr=%v", c.name, c.warm, c.cold, err, c.wantErr)
		}
	}
}

// TestCheckPivotGate exercises the gate's decision table on hand-built
// records.
func TestCheckPivotGate(t *testing.T) {
	mk := func(devexPivots, mvPivots int) BenchRecord {
		return BenchRecord{
			Bench: "x",
			Engines: []EngineRecord{
				{Engine: "revised", PricingScheme: "devex", Pivots: devexPivots},
				{Engine: "revised-mv", PricingScheme: "most-violated", Pivots: mvPivots},
				{Engine: "dense"},
			},
		}
	}
	if err := CheckPivotGate(mk(10, 20)); err != nil {
		t.Errorf("devex better: %v", err)
	}
	if err := CheckPivotGate(mk(20, 20)); err != nil {
		t.Errorf("tie must pass: %v", err)
	}
	if err := CheckPivotGate(mk(21, 20)); err == nil {
		t.Error("devex regression accepted")
	}
	// Missing ablation pair → vacuous pass.
	if err := CheckPivotGate(BenchRecord{Engines: []EngineRecord{{Engine: "dense"}}}); err != nil {
		t.Errorf("no pair: %v", err)
	}
	// A mislabeled pricing scheme must be caught, not silently compared.
	bad := mk(10, 20)
	bad.Engines[0].PricingScheme = "most-violated"
	if err := CheckPivotGate(bad); err == nil {
		t.Error("mislabeled devex row accepted")
	}
}

// TestQuantileHelpers pins the nearest-rank quantile contract shared by
// the *_p50/_p99 bench keys: always an observed sample, q=0.5 agreeing
// with medianDuration, clamped at the extremes, inputs not mutated.
func TestQuantileHelpers(t *testing.T) {
	d := []time.Duration{40, 10, 30, 20}
	orig := append([]time.Duration(nil), d...)
	if got := quantileDuration(d, 0.5); got != medianDuration(d) {
		t.Errorf("quantileDuration(q=0.5) = %v, median = %v", got, medianDuration(d))
	}
	if got := quantileDuration(d, 0.99); got != 40 {
		t.Errorf("quantileDuration(q=0.99) = %v, want 40 (worst observed run)", got)
	}
	if got := quantileDuration(d, -1); got != 10 {
		t.Errorf("quantileDuration(q=-1) = %v, want min 10", got)
	}
	if got := quantileDuration(d, 2); got != 40 {
		t.Errorf("quantileDuration(q=2) = %v, want max 40", got)
	}
	if got := quantileDuration(nil, 0.5); got != 0 {
		t.Errorf("quantileDuration(empty) = %v, want 0", got)
	}
	for i := range orig {
		if d[i] != orig[i] {
			t.Fatalf("input mutated: %v, was %v", d, orig)
		}
	}
	// 100 samples 1..100: p50 is the 50th, p99 the 99th order statistic.
	var big []int
	for i := 100; i >= 1; i-- {
		big = append(big, i)
	}
	if got := quantileInt(big, 0.5); got != 50 {
		t.Errorf("quantileInt(1..100, 0.5) = %d, want 50", got)
	}
	if got := quantileInt(big, 0.99); got != 99 {
		t.Errorf("quantileInt(1..100, 0.99) = %d, want 99", got)
	}
	if got := quantileInt(nil, 0.9); got != 0 {
		t.Errorf("quantileInt(empty) = %d, want 0", got)
	}
}

// TestMedianDuration pins medianDuration's contract: empty → 0, one
// sample → itself, odd → middle, even → lower middle; input order is
// irrelevant and the input slice is not mutated.
func TestMedianDuration(t *testing.T) {
	cases := []struct {
		name string
		in   []time.Duration
		want time.Duration
	}{
		{"empty", nil, 0},
		{"empty non-nil", []time.Duration{}, 0},
		{"one", []time.Duration{7}, 7},
		{"two takes lower", []time.Duration{10, 20}, 10},
		{"two unsorted", []time.Duration{20, 10}, 10},
		{"three", []time.Duration{30, 10, 20}, 20},
		{"four takes lower middle", []time.Duration{40, 10, 30, 20}, 20},
		{"six bimodal reports a sample", []time.Duration{1, 1, 2, 100, 100, 100}, 2},
		{"duplicates", []time.Duration{5, 5, 5, 5}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := append([]time.Duration(nil), tc.in...)
			if got := medianDuration(tc.in); got != tc.want {
				t.Errorf("medianDuration(%v) = %v, want %v", tc.in, got, tc.want)
			}
			for i := range orig {
				if tc.in[i] != orig[i] {
					t.Fatalf("input mutated: %v, was %v", tc.in, orig)
				}
			}
		})
	}
}
