package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestBenchRecordsRoundTrip runs the smallest benchmark once and checks
// the record validates and carries sane engine data.
func TestBenchRecordsRoundTrip(t *testing.T) {
	recs, err := BenchRecords([]string{"prim1-s"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("%d records for one benchmark", len(recs))
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	rec := recs[0]
	if len(rec.Engines) != 2 {
		t.Fatalf("engines: %d, want revised+dense", len(rec.Engines))
	}
	// Both engines must agree on the optimum.
	if a, b := rec.Engines[0].Cost, rec.Engines[1].Cost; a <= 0 || b <= 0 ||
		a/b > 1.001 || b/a > 1.001 {
		t.Errorf("engine costs disagree: %g vs %g", a, b)
	}
	for _, e := range rec.Engines {
		if e.Pivots <= 0 || e.Rounds <= 0 || e.SteinerRows <= 0 {
			t.Errorf("%s: empty counters: %+v", e.Engine, e)
		}
	}
}

// TestBenchJSONSchema locks the lubt-bench/1 key set: any new, removed or
// renamed field must bump the schema version.
func TestBenchJSONSchema(t *testing.T) {
	var buf bytes.Buffer
	err := WriteBenchJSON(&buf, BenchRecord{
		Schema: BenchSchema, Bench: "x", Sinks: 1, Repeats: 1,
		Engines: []EngineRecord{{Engine: "revised"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	wantTop := []string{"schema", "bench", "sinks", "repeats", "engines"}
	if len(top) != len(wantTop) {
		t.Errorf("top-level has %d keys, want %d", len(top), len(wantTop))
	}
	for _, k := range wantTop {
		if _, ok := top[k]; !ok {
			t.Errorf("missing top-level key %q", k)
		}
	}
	var engines []map[string]json.RawMessage
	if err := json.Unmarshal(top["engines"], &engines); err != nil {
		t.Fatal(err)
	}
	wantEng := []string{
		"engine", "cost", "rounds", "steiner_rows", "pivots", "bound_flips",
		"refactorizations", "resets", "basis_size", "fill_in", "eta_len",
		"tableau_rows", "lowered_tableau_rows", "ranged_rows", "row_nonzeros",
		"numerical_residual", "pivot_min", "pivot_max",
		"sep_scan_ns", "lp_solve_ns", "wall_ns",
	}
	if len(engines[0]) != len(wantEng) {
		t.Errorf("engine record has %d keys, want %d (schema drift — bump lubt-bench version)",
			len(engines[0]), len(wantEng))
	}
	for _, k := range wantEng {
		if _, ok := engines[0][k]; !ok {
			t.Errorf("missing engine key %q", k)
		}
	}
}

// TestValidateBenchJSONRejects exercises the validator's failure modes.
func TestValidateBenchJSONRejects(t *testing.T) {
	good := BenchRecord{
		Schema: BenchSchema, Bench: "x", Sinks: 4, Repeats: 1,
		Engines: []EngineRecord{{Engine: "revised", Rounds: 1, WallNS: 5, Cost: 1}},
	}
	encode := func(r BenchRecord) []byte {
		b, _ := json.Marshal(r)
		return b
	}
	if err := ValidateBenchJSON(encode(good)); err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	cases := map[string]BenchRecord{}
	r := good
	r.Schema = "lubt-bench/0"
	cases["wrong schema"] = r
	r = good
	r.Bench = ""
	cases["empty bench"] = r
	r = good
	r.Engines = nil
	cases["no engines"] = r
	r = good
	r.Engines = []EngineRecord{{Engine: "revised", Rounds: 0, WallNS: 5, Cost: 1}}
	cases["zero rounds"] = r
	for name, rec := range cases {
		if err := ValidateBenchJSON(encode(rec)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := ValidateBenchJSON([]byte(`{"schema":"lubt-bench/1","surprise":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestBenchJSONFile validates an externally produced BENCH_*.json file
// named by LUBT_BENCH_JSON (skipped when unset). ci.sh uses this as the
// bench-smoke gate: it runs `lubtbench -json` and points this test at
// the output, so the CLI and the schema cannot drift apart.
func TestBenchJSONFile(t *testing.T) {
	path := os.Getenv("LUBT_BENCH_JSON")
	if path == "" {
		t.Skip("LUBT_BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchJSON(data); err != nil {
		t.Fatal(err)
	}
}
