package experiments

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"time"

	"lubt/internal/bst"
	"lubt/internal/core"
	"lubt/internal/geom"
	"lubt/internal/table"
	"lubt/internal/wkld"
)

// TableBenches returns the four benchmark names of the paper's tables,
// scaled (-s) or full-size.
func TableBenches(full bool) []string {
	names := []string{"prim1", "prim2", "r1", "r3"}
	if full {
		return names
	}
	for i, n := range names {
		names[i] = n + "-s"
	}
	return names
}

// Skews1 are Table 1's skew bounds as fractions of the radius;
// math.Inf(1) is the ∞ row.
var Skews1 = []float64{0, 0.01, 0.05, 0.1, 0.5, 1, 2, math.Inf(1)}

// instance bundles a loaded benchmark with its radius.
type instance struct {
	bench  *wkld.Benchmark
	source geom.Point
	radius float64
}

func load(name string) (*instance, error) {
	b, err := wkld.Generate(name)
	if err != nil {
		return nil, err
	}
	inst := &instance{bench: b, source: b.Source}
	for _, s := range b.Sinks {
		inst.radius = math.Max(inst.radius, geom.Dist(inst.source, s))
	}
	return inst, nil
}

// scaleSectors is how many angular sectors the scale-class baseline
// router partitions the sinks into (see bst.RoutePartitioned): the
// sectored topology keeps the O(m²) cluster merge tractable at 10k+
// sinks and gives the root the independent branches the core's subtree
// decomposition solves in parallel.
const scaleSectors = 8

// scale reports whether the instance is in the scale regime where the
// harness switches to the sectored baseline and the reduced engine
// lineup (the same threshold at which core.Solve's auto settings turn
// presolve and decomposition on).
func (in *instance) scale() bool {
	return len(in.bench.Sinks) >= core.ScaleAutoSinks
}

// runBaseline routes the benchmark with the [9]-style router at skew
// bound skewFrac·radius. Scale-class instances route through the
// sector-partitioned variant instead: per-sector skew stays within
// bound, and the cross-sector spread is left to the LP window.
func (in *instance) runBaseline(skewFrac float64) (*bst.Result, error) {
	bound := skewFrac * in.radius
	if math.IsInf(skewFrac, 1) {
		bound = math.Inf(1)
	}
	if in.scale() {
		return bst.RoutePartitioned(in.bench.Sinks, bound, in.source, scaleSectors)
	}
	return bst.Route(in.bench.Sinks, bound, &in.source)
}

// runLUBT solves the EBF on the given topology with the absolute window
// [l, u] for every sink.
func (in *instance) runLUBT(base *bst.Result, l, u float64) (*core.Result, error) {
	return in.runLUBTOpts(base, l, u, nil)
}

// runLUBTOpts is runLUBT with explicit core options (engine selection).
func (in *instance) runLUBTOpts(base *bst.Result, l, u float64, opt *core.Options) (*core.Result, error) {
	ci := &core.Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(in.bench.Sinks)+1),
		Source:  &in.source,
	}
	copy(ci.SinkLoc[1:], in.bench.Sinks)
	m := base.Tree.NumSinks
	cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	return core.Solve(ci, cb, opt)
}

// engineSpec is one (engine, pricing) combination the stats/bench
// harness exercises; Label is the row key that reaches the tables and
// the lubt-bench/1 JSON. Presolve/Decompose override core.Solve's
// presolve and subtree-decomposition settings ("" = auto).
type engineSpec struct {
	Label     string
	Engine    string
	Pricing   string
	Presolve  string
	Decompose string
}

// statEngines are the engine rows of `lubtbench -stats` / `-json`:
// the revised dual simplex under its default Devex pricing, the same
// engine under the classic most-violated rule (the pricing ablation
// pair the ci.sh pivot gate compares), and the dense-tableau engine.
var statEngines = []engineSpec{
	{Label: "revised", Engine: "revised", Pricing: "devex"},
	{Label: "revised-mv", Engine: "revised", Pricing: "mostviolated"},
	{Label: "dense", Engine: "dense"},
}

// scaleEngines is the lineup for scale-class benchmarks (at least
// core.ScaleAutoSinks sinks): the revised engine under the auto
// settings — presolve dominance pruning plus subtree decomposition —
// against the same engine with both passes forced off. That is the
// before/after ablation pair CheckPresolveGate compares. The dense and
// most-violated rows are dropped at this size: a dense tableau on a
// 10k-sink instance would dominate the whole smoke by itself.
var scaleEngines = []engineSpec{
	{Label: "revised", Engine: "revised", Pricing: "devex"},
	{Label: "revised-nopresolve", Engine: "revised", Pricing: "devex", Presolve: "off", Decompose: "off"},
}

// engines picks the engine lineup by instance size.
func (in *instance) engines() []engineSpec {
	if in.scale() {
		return scaleEngines
	}
	return statEngines
}

// EngineStats solves every benchmark with the warm LP engine lineup —
// the sparse revised dual simplex under Devex and most-violated pricing,
// plus the dense-tableau ablation engine — at a representative
// 0.1·radius skew window, and tabulates the lp.Stats spine side by side.
// It backs `lubtbench -stats` and runs each solve DefaultRepeats times,
// reporting median timings.
func EngineStats(names []string) (*table.Table, error) {
	return EngineStatsN(names, DefaultRepeats)
}

// EngineStatsN is EngineStats with an explicit repeat count: each
// (bench, engine) solve runs `repeats` times and the reported sep-scan,
// lp-solve and wall timings are the medians across runs. The counters
// (pivots, rounds, rows, …) are deterministic and come from the first
// run. repeats < 1 means 1.
func EngineStatsN(names []string, repeats int) (*table.Table, error) {
	t := table.New("LP engine statistics (skew window 0.1·radius, median timings)",
		"bench", "engine", "pricing", "rounds", "steiner", "pivots", "flips", "refactor",
		"basis", "fill-in", "rows", "lowered", "nnz", "sep-scan", "lp-solve", "wall")
	for _, name := range names {
		in, err := load(name)
		if err != nil {
			return nil, err
		}
		base, err := in.runBaseline(0.1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		l, u := windowFor(base, in.radius, 0.1)
		for _, eng := range in.engines() {
			run, err := in.runRepeated(base, l, u, eng, repeats)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, eng.Label, err)
			}
			res, st := run.res, run.res.Stats
			pricing := st.PricingScheme
			if pricing == "" {
				pricing = "-"
			}
			t.Addf(name, eng.Label, pricing, res.Rounds, res.RowsUsed, st.Pivots,
				st.BoundFlips, st.Refactorizations, st.BasisSize, st.FillIn,
				st.TableauRows, st.LoweredTableauRows, st.RowNonzeros,
				medianDuration(run.sep).Round(time.Microsecond).String(),
				medianDuration(run.lp).Round(time.Microsecond).String(),
				medianDuration(run.wall).Round(time.Microsecond).String())
		}
	}
	return t, nil
}

// DefaultRepeats is how many times EngineStats and BenchRecords repeat
// each solve before taking median timings.
const DefaultRepeats = 3

// repeatedRun is the outcome of solving one (bench, engine) pair several
// times: the (deterministic) first result plus per-run timing and pivot
// samples.
type repeatedRun struct {
	res           *core.Result
	wall, sep, lp []time.Duration
	pivots        []int
}

// runRepeated solves the instance `repeats` times with the given warm
// engine/pricing combination and collects wall/separation/solve timings
// per run.
func (in *instance) runRepeated(base *bst.Result, l, u float64, eng engineSpec, repeats int) (*repeatedRun, error) {
	if repeats < 1 {
		repeats = 1
	}
	run := &repeatedRun{}
	for r := 0; r < repeats; r++ {
		t0 := time.Now()
		res, err := in.runLUBTOpts(base, l, u, &core.Options{
			Engine: eng.Engine, Pricing: eng.Pricing,
			Presolve: eng.Presolve, Decompose: eng.Decompose,
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if run.res == nil {
			run.res = res
		}
		run.wall = append(run.wall, wall)
		run.sep = append(run.sep, res.Stats.SeparationTime)
		run.lp = append(run.lp, res.Stats.SolveTime)
		run.pivots = append(run.pivots, res.Stats.Pivots)
	}
	return run, nil
}

// runECO measures the single-sink retighten ECO probe on the restageable
// revised engine: hold the solve open as a core.Session, retighten sink
// 1's lower bound past its routed delay (always satisfiable — the sink's
// leaf edge can elongate), and re-solve warm from the kept basis. The
// pivot count comes from the first (deterministic) run; the resolve time
// is the median over `repeats` sessions, in milliseconds.
func (in *instance) runECO(base *bst.Result, l, u float64, eng engineSpec, repeats int) (pivots int, resolveMS float64, err error) {
	if repeats < 1 {
		repeats = 1
	}
	ci := &core.Instance{
		Tree:    base.Tree,
		SinkLoc: make([]geom.Point, len(in.bench.Sinks)+1),
		Source:  &in.source,
	}
	copy(ci.SinkLoc[1:], in.bench.Sinks)
	m := base.Tree.NumSinks
	cb := core.Bounds{L: make([]float64, m+1), U: make([]float64, m+1)}
	for i := 1; i <= m; i++ {
		cb.L[i] = l
		cb.U[i] = u
	}
	var times []time.Duration
	for r := 0; r < repeats; r++ {
		sess, err := core.NewSession(ci, cb, &core.Options{Engine: eng.Engine, Pricing: eng.Pricing})
		if err != nil {
			return 0, 0, err
		}
		newL := sess.Result().Delays[1] + 0.05*in.radius
		newU := math.Max(u, newL)
		if err := sess.Retighten(1, newL, newU); err != nil {
			return 0, 0, err
		}
		t0 := time.Now()
		if _, err := sess.Resolve(); err != nil {
			return 0, 0, err
		}
		times = append(times, time.Since(t0))
		if r == 0 {
			pivots = sess.ResolvePivots()
		}
	}
	return pivots, float64(medianDuration(times).Nanoseconds()) / 1e6, nil
}

// medianDuration returns the median timing sample without mutating d.
// The contract, pinned by TestMedianDuration:
//
//   - empty input → 0 (a "no samples" sentinel, not a timing),
//   - one sample → that sample,
//   - odd count → the middle element of the sorted samples,
//   - even count → the LOWER of the two middle elements. The median is
//     always an observed run, never an interpolated mean — a bimodal
//     timing distribution reports a real sample from the faster mode
//     rather than a synthetic value between the modes.
func medianDuration(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	slices.Sort(s)
	return s[(len(s)-1)/2]
}

// quantileRank maps quantile q over n samples to a 0-based nearest-rank
// index: ceil(q·n) − 1, clamped to [0, n−1]. Like medianDuration, the
// result always names an observed sample (never an interpolated value),
// and quantileRank(0.5, n) picks the same lower-middle element as the
// median for every n.
func quantileRank(q float64, n int) int {
	r := int(math.Ceil(q * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}

// quantileDuration returns the nearest-rank q-quantile of the timing
// samples without mutating d; empty input → 0, q ≤ 0 → the minimum,
// q ≥ 1 → the maximum.
func quantileDuration(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	slices.Sort(s)
	return s[quantileRank(q, len(s))]
}

// quantileInt is quantileDuration for integer samples (pivot counts).
func quantileInt(v []int, q float64) int {
	if len(v) == 0 {
		return 0
	}
	s := append([]int(nil), v...)
	slices.Sort(s)
	return s[quantileRank(q, len(s))]
}

// Row1 is one line of Table 1.
type Row1 struct {
	Bench     string
	SkewBound float64 // fraction of radius; +Inf for the ∞ row
	// Shortest and Longest are the LUBT tree's sink-delay extremes,
	// normalized to the radius (the paper's "shortest/longest delay").
	Shortest, Longest  float64
	BaseCost, LubtCost float64
}

// Table1 reproduces Table 1 on the given benchmarks.
func Table1(names []string, skews []float64) ([]Row1, error) {
	var rows []Row1
	for _, name := range names {
		in, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, s := range skews {
			base, err := in.runBaseline(s)
			if err != nil {
				return nil, fmt.Errorf("%s skew %g: %w", name, s, err)
			}
			l, u := windowFor(base, in.radius, s)
			res, err := in.runLUBT(base, l, u)
			if err != nil {
				return nil, fmt.Errorf("%s skew %g: %w", name, s, err)
			}
			lo, hi := sinkExtremes(base, res)
			rows = append(rows, Row1{
				Bench:     name,
				SkewBound: s,
				Shortest:  lo / in.radius,
				Longest:   hi / in.radius,
				BaseCost:  base.Cost,
				LubtCost:  res.Cost,
			})
		}
	}
	return rows, nil
}

// windowFor derives the absolute LUBT window from a baseline run at skew
// fraction s (see the methodology note in the package comment).
func windowFor(base *bst.Result, radius, s float64) (l, u float64) {
	if math.IsInf(s, 1) {
		return 0, math.Inf(1)
	}
	u = base.Stats.Max
	l = math.Max(0, u-s*radius)
	return l, u
}

func sinkExtremes(base *bst.Result, res *core.Result) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 1; i <= base.Tree.NumSinks; i++ {
		lo = math.Min(lo, res.Delays[i])
		hi = math.Max(hi, res.Delays[i])
	}
	return lo, hi
}

// RenderTable1 formats Table 1 like the paper's layout.
func RenderTable1(rows []Row1) *table.Table {
	t := table.New("Table 1: routing cost, baseline [9]-style vs LUBT (bounds normalized to radius)",
		"bench", "skew bound", "shortest", "longest", "base cost", "LUBT cost", "saving")
	for _, r := range rows {
		skew := fmt.Sprintf("%.3f", r.SkewBound)
		long := fmt.Sprintf("%.3f", r.Longest)
		if math.IsInf(r.SkewBound, 1) {
			skew, long = "inf", "inf"
		}
		saving := 1 - r.LubtCost/r.BaseCost
		t.Add(r.Bench, skew, fmt.Sprintf("%.3f", r.Shortest), long,
			fmt.Sprintf("%.1f", r.BaseCost), fmt.Sprintf("%.1f", r.LubtCost),
			fmt.Sprintf("%.1f%%", 100*saving))
	}
	return t
}

// Row2 is one line of Table 2: same skew bound, different delay windows.
type Row2 struct {
	Bench        string
	SkewBound    float64
	Lower, Upper float64 // normalized to radius
	Cost         float64
	Starred      bool // the window anchored at the baseline's own delays
}

// Skews2 are Table 2's skew bounds.
var Skews2 = []float64{0.3, 0.5}

// table2Shifts slides the window by these fractions of the radius
// relative to the baseline-anchored window (0 = the starred row).
// Downward slides clamp at the Eq. (3) floor (u ≥ radius); windows that
// clamp onto an already-emitted one are dropped.
// The starred shift runs first so that a downward slide clamping onto the
// anchored window is dropped rather than shadowing the star; rows are
// sorted by window position afterwards.
var table2Shifts = []float64{0, -0.1, -0.05, 0.1, 0.2}

// Table2 reproduces Table 2 on the given benchmarks (the paper uses prim1
// and prim2).
func Table2(names []string, skews []float64) ([]Row2, error) {
	var rows []Row2
	for _, name := range names {
		in, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, s := range skews {
			base, err := in.runBaseline(s)
			if err != nil {
				return nil, err
			}
			_, uStar := windowFor(base, in.radius, s)
			seen := map[int64]bool{}
			for _, shift := range table2Shifts {
				u := uStar + shift*in.radius
				if u < in.radius {
					// Eq. (3) requires u ≥ max source-sink distance.
					u = in.radius
				}
				key := int64(math.Round(u / in.radius * 1e6))
				if seen[key] {
					continue
				}
				seen[key] = true
				l := math.Max(0, u-s*in.radius)
				res, err := in.runLUBT(base, l, u)
				if err != nil {
					return nil, fmt.Errorf("%s skew %g shift %g: %w", name, s, shift, err)
				}
				rows = append(rows, Row2{
					Bench:     name,
					SkewBound: s,
					Lower:     l / in.radius,
					Upper:     u / in.radius,
					Cost:      res.Cost,
					Starred:   shift == 0,
				})
			}
			// Order the block by window position for readability.
			block := rows[len(rows)-len(seen):]
			sort.Slice(block, func(a, b int) bool { return block[a].Upper < block[b].Upper })
		}
	}
	return rows, nil
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Row2) *table.Table {
	t := table.New("Table 2: LUBT cost for the same skew bound but shifted delay windows (* = baseline-anchored)",
		"bench", "skew bound", "lower", "upper", "LUBT cost")
	for _, r := range rows {
		mark := ""
		if r.Starred {
			mark = "*"
		}
		t.Add(r.Bench, fmt.Sprintf("%.1f", r.SkewBound),
			fmt.Sprintf("%s%.2f", mark, r.Lower), fmt.Sprintf("%s%.2f", mark, r.Upper),
			fmt.Sprintf("%.1f", r.Cost))
	}
	return t
}

// Row3 is one line of Table 3.
type Row3 struct {
	Bench        string
	Lower, Upper float64 // normalized to radius
	Cost         float64
}

// windows3 are the paper's Table 3 bound combinations (×radius).
var windows3 = [][2]float64{
	{0.99, 1}, {0.98, 1}, {0.95, 1}, {0.9, 1},
	{0.5, 1}, {0, 1}, {0, 1.5}, {0, 2},
}

// Table3 reproduces Table 3 on the given benchmarks: assorted [l, u]
// windows useful for global routing (l = 0) and bounded-skew
// bounded-longest-delay routing.
func Table3(names []string) ([]Row3, error) {
	var rows []Row3
	for _, name := range names {
		in, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, w := range windows3 {
			l, u := w[0], w[1]
			// Topology from the generator at the corresponding skew bound,
			// matching the paper's use of [9] as topology generator.
			base, err := in.runBaseline(u - l)
			if err != nil {
				return nil, err
			}
			res, err := in.runLUBT(base, l*in.radius, u*in.radius)
			if err != nil {
				return nil, fmt.Errorf("%s [%g,%g]: %w", name, l, u, err)
			}
			rows = append(rows, Row3{Bench: name, Lower: l, Upper: u, Cost: res.Cost})
		}
	}
	return rows, nil
}

// RenderTable3 formats Table 3.
func RenderTable3(rows []Row3) *table.Table {
	t := table.New("Table 3: LUBT cost for various bound combinations (bounds normalized to radius)",
		"bench", "lower", "upper", "LUBT cost")
	for _, r := range rows {
		t.Add(r.Bench, fmt.Sprintf("%.2f", r.Lower), fmt.Sprintf("%.2f", r.Upper),
			fmt.Sprintf("%.1f", r.Cost))
	}
	return t
}

// FigRow is one point of the Figure 8 trade-off curve.
type FigRow struct {
	Lower, Upper float64 // normalized to radius
	Cost         float64
}

// Figure8 reproduces the prim2 cost-vs-bounds trade-off: for each upper
// bound the lower bound sweeps down from u, tracing cost against window
// position and width.
func Figure8(name string) ([]FigRow, error) {
	in, err := load(name)
	if err != nil {
		return nil, err
	}
	var rows []FigRow
	for _, u := range []float64{1.0, 1.25, 1.5, 2.0} {
		seen := map[int64]bool{}
		for _, width := range []float64{0, 0.25, 0.5, 1.0, u} {
			l := math.Max(0, u-width)
			key := int64(math.Round(l * 1e6))
			if seen[key] {
				continue
			}
			seen[key] = true
			base, err := in.runBaseline(u - l)
			if err != nil {
				return nil, err
			}
			res, err := in.runLUBT(base, l*in.radius, u*in.radius)
			if err != nil {
				return nil, fmt.Errorf("%s [%g,%g]: %w", name, l, u, err)
			}
			rows = append(rows, FigRow{Lower: l, Upper: u, Cost: res.Cost})
		}
	}
	return rows, nil
}

// RenderFigure8 formats the trade-off curve data.
func RenderFigure8(rows []FigRow, name string) *table.Table {
	t := table.New(fmt.Sprintf("Figure 8: cost vs [lower, upper] bounds trade-off (%s)", name),
		"lower", "upper", "LUBT cost")
	for _, r := range rows {
		t.Add(fmt.Sprintf("%.2f", r.Lower), fmt.Sprintf("%.2f", r.Upper),
			fmt.Sprintf("%.1f", r.Cost))
	}
	return t
}
