package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BenchSchema identifies the machine-readable per-benchmark record
// emitted by `lubtbench -json`. Bump the suffix on any breaking change
// to the BenchRecord shape; TestBenchJSONSchema pins the current one.
const BenchSchema = "lubt-bench/1"

// BenchRecord is one BENCH_<name>.json document: the instance identity
// plus one EngineRecord per LP engine, each carrying the full lp.Stats
// spine and median-of-repeats timings. The schema is append-only within
// a major version: consumers must ignore unknown keys, producers must
// not remove or retype the ones below.
type BenchRecord struct {
	Schema  string `json:"schema"`
	Bench   string `json:"bench"`
	Sinks   int    `json:"sinks"`
	Repeats int    `json:"repeats"`
	// Radius is the instance's source-to-farthest-sink Manhattan
	// distance, the length scale every agreement tolerance in the
	// harness is expressed against (CheckPresolveGate accepts cost
	// disagreement up to 1e-6·radius) — appended in lubt-bench/1
	// (append-only within the major version).
	Radius  float64        `json:"radius"`
	Engines []EngineRecord `json:"engines"`
}

// EngineRecord is one engine's outcome on one benchmark. Counters are
// from the first (deterministic) run; the *_ns timings are medians over
// the record's Repeats runs.
type EngineRecord struct {
	Engine             string  `json:"engine"`
	Cost               float64 `json:"cost"`
	Rounds             int     `json:"rounds"`
	SteinerRows        int     `json:"steiner_rows"`
	Pivots             int     `json:"pivots"`
	BoundFlips         int     `json:"bound_flips"`
	Refactorizations   int     `json:"refactorizations"`
	Resets             int     `json:"resets"`
	BasisSize          int     `json:"basis_size"`
	FillIn             int     `json:"fill_in"`
	EtaLen             int     `json:"eta_len"`
	TableauRows        int     `json:"tableau_rows"`
	LoweredTableauRows int     `json:"lowered_tableau_rows"`
	RangedRows         int     `json:"ranged_rows"`
	RowNonzeros        int     `json:"row_nonzeros"`
	NumericalResidual  float64 `json:"numerical_residual"`
	PivotMin           float64 `json:"pivot_min"`
	PivotMax           float64 `json:"pivot_max"`
	// PricingScheme is the revised engine's leaving-row rule ("devex",
	// "most-violated", "steepest-exact"; "" on the dense engine), and
	// DevexResets / WeightMin / WeightMax its reference-weight health
	// gauges — appended in lubt-bench/1 (append-only within the major
	// version, so consumers of the original key set stay valid).
	PricingScheme string  `json:"pricing_scheme"`
	DevexResets   int     `json:"devex_resets"`
	WeightMin     float64 `json:"weight_min"`
	WeightMax     float64 `json:"weight_max"`
	// Restages / RowReplacements count post-solve engine edits absorbed
	// without and with a structural row rewrite, and EcoPivots /
	// EcoResolveMS record the single-sink ECO probe: retighten sink 1's
	// window past its routed delay on a held-open session and re-solve
	// warm from the kept basis (pivot count from the first run, resolve
	// time the median of repeats, in milliseconds). Zero on the engines
	// that cannot restage — appended in lubt-bench/1 (append-only within
	// the major version).
	Restages        int     `json:"restages"`
	RowReplacements int     `json:"row_replacements"`
	EcoPivots       int     `json:"eco_pivots"`
	EcoResolveMS    float64 `json:"eco_resolve_ms"`
	SepScanNS       int64   `json:"sep_scan_ns"`
	LPSolveNS       int64   `json:"lp_solve_ns"`
	WallNS          int64   `json:"wall_ns"`
	// WallP50MS/WallP99MS and LPSolveP50MS/LPSolveP99MS are nearest-rank
	// quantiles of the per-repeat wall and LP-solve times in milliseconds,
	// and PivotsP50/PivotsP99 the matching per-repeat pivot-count
	// quantiles (the solver is deterministic, so these collapse onto
	// Pivots unless the lineup changes) — appended in lubt-bench/1
	// (append-only within the major version). With few repeats the p99 is
	// simply the worst observed run.
	WallP50MS    float64 `json:"wall_p50_ms"`
	WallP99MS    float64 `json:"wall_p99_ms"`
	LPSolveP50MS float64 `json:"lp_solve_p50_ms"`
	LPSolveP99MS float64 `json:"lp_solve_p99_ms"`
	PivotsP50    int     `json:"pivots_p50"`
	PivotsP99    int     `json:"pivots_p99"`
	// PresolvePrunedRows counts Steiner rows the dominance presolve
	// proved redundant (never generated or priced), Subtrees how many
	// root branches the subtree decomposition solved as independent
	// subproblems (0 = monolithic solve), and PeakRows the largest
	// active row count any single engine reached — the memory headline
	// the decomposition exists to cut. All zero when the passes are off
	// or the engine cannot run them — appended in lubt-bench/1
	// (append-only within the major version).
	PresolvePrunedRows int `json:"presolve_pruned_rows"`
	Subtrees           int `json:"subtrees"`
	PeakRows           int `json:"peak_rows"`
}

// durMS converts a duration to milliseconds for the *_ms JSON keys.
func durMS(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// BenchRecords runs the EngineStats workload (0.1·radius skew window,
// the statEngines lineup: revised/devex, revised/most-violated, dense)
// on every named benchmark and returns one BenchRecord per name, timings
// taken as the median of `repeats` runs (< 1 means 1).
func BenchRecords(names []string, repeats int) ([]BenchRecord, error) {
	if repeats < 1 {
		repeats = 1
	}
	var out []BenchRecord
	for _, name := range names {
		in, err := load(name)
		if err != nil {
			return nil, err
		}
		base, err := in.runBaseline(0.1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		l, u := windowFor(base, in.radius, 0.1)
		rec := BenchRecord{
			Schema:  BenchSchema,
			Bench:   name,
			Sinks:   len(in.bench.Sinks),
			Repeats: repeats,
			Radius:  in.radius,
		}
		for _, eng := range in.engines() {
			run, err := in.runRepeated(base, l, u, eng, repeats)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, eng.Label, err)
			}
			res, st := run.res, run.res.Stats
			var ecoPivots int
			var ecoMS float64
			// The ECO probe holds a core.Session open, and sessions
			// always solve monolithically without presolve (restaging
			// needs the full row universe live) — at scale-class sizes
			// that cold session solve would dwarf the whole record, so
			// the probe only runs below the scale threshold.
			if eng.Label == "revised" && !in.scale() {
				ecoPivots, ecoMS, err = in.runECO(base, l, u, eng, repeats)
				if err != nil {
					return nil, fmt.Errorf("%s/%s eco: %w", name, eng.Label, err)
				}
			}
			rec.Engines = append(rec.Engines, EngineRecord{
				Engine:             eng.Label,
				Cost:               res.Cost,
				Rounds:             res.Rounds,
				SteinerRows:        res.RowsUsed,
				Pivots:             st.Pivots,
				BoundFlips:         st.BoundFlips,
				Refactorizations:   st.Refactorizations,
				Resets:             st.Resets,
				BasisSize:          st.BasisSize,
				FillIn:             st.FillIn,
				EtaLen:             st.EtaLen,
				TableauRows:        st.TableauRows,
				LoweredTableauRows: st.LoweredTableauRows,
				RangedRows:         st.RangedRows,
				RowNonzeros:        st.RowNonzeros,
				NumericalResidual:  st.NumericalResidual,
				PivotMin:           st.PivotMin,
				PivotMax:           st.PivotMax,
				PricingScheme:      st.PricingScheme,
				DevexResets:        st.DevexResets,
				WeightMin:          st.WeightMin,
				WeightMax:          st.WeightMax,
				Restages:           st.Restages,
				RowReplacements:    st.RowReplacements,
				EcoPivots:          ecoPivots,
				EcoResolveMS:       ecoMS,
				SepScanNS:          medianDuration(run.sep).Nanoseconds(),
				LPSolveNS:          medianDuration(run.lp).Nanoseconds(),
				WallNS:             medianDuration(run.wall).Nanoseconds(),
				WallP50MS:          durMS(quantileDuration(run.wall, 0.5)),
				WallP99MS:          durMS(quantileDuration(run.wall, 0.99)),
				LPSolveP50MS:       durMS(quantileDuration(run.lp, 0.5)),
				LPSolveP99MS:       durMS(quantileDuration(run.lp, 0.99)),
				PivotsP50:          quantileInt(run.pivots, 0.5),
				PivotsP99:          quantileInt(run.pivots, 0.99),
				PresolvePrunedRows: st.PresolvePrunedRows,
				Subtrees:           st.Subtrees,
				PeakRows:           st.PeakRows,
			})
		}
		out = append(out, rec)
	}
	return out, nil
}

// WriteBenchJSON marshals one record as indented JSON (the BENCH_*.json
// file format).
func WriteBenchJSON(w io.Writer, rec BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// ValidateBenchJSON checks that data is a well-formed lubt-bench/1
// document: strict field set (unknown keys reject — catching producer
// drift), correct schema string, and the structural invariants a consumer
// relies on. It backs the ci.sh bench-smoke gate.
func ValidateBenchJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec BenchRecord
	if err := dec.Decode(&rec); err != nil {
		return fmt.Errorf("bench json: %w", err)
	}
	if rec.Schema != BenchSchema {
		return fmt.Errorf("bench json: schema %q, want %q", rec.Schema, BenchSchema)
	}
	if rec.Bench == "" {
		return fmt.Errorf("bench json: empty bench name")
	}
	if rec.Sinks <= 0 {
		return fmt.Errorf("bench json: sinks = %d", rec.Sinks)
	}
	if rec.Repeats < 1 {
		return fmt.Errorf("bench json: repeats = %d", rec.Repeats)
	}
	if len(rec.Engines) == 0 {
		return fmt.Errorf("bench json: no engine records")
	}
	for i, e := range rec.Engines {
		if e.Engine == "" {
			return fmt.Errorf("bench json: engines[%d]: empty engine name", i)
		}
		if e.Rounds < 1 {
			return fmt.Errorf("bench json: engines[%d]: rounds = %d", i, e.Rounds)
		}
		if e.WallNS <= 0 {
			return fmt.Errorf("bench json: engines[%d]: wall_ns = %d", i, e.WallNS)
		}
		if e.Cost <= 0 {
			return fmt.Errorf("bench json: engines[%d]: cost = %g", i, e.Cost)
		}
		if e.WallP50MS < 0 || e.WallP99MS < e.WallP50MS {
			return fmt.Errorf("bench json: engines[%d]: wall quantiles p50=%g p99=%g", i, e.WallP50MS, e.WallP99MS)
		}
		if e.LPSolveP50MS < 0 || e.LPSolveP99MS < e.LPSolveP50MS {
			return fmt.Errorf("bench json: engines[%d]: lp-solve quantiles p50=%g p99=%g", i, e.LPSolveP50MS, e.LPSolveP99MS)
		}
		if e.PivotsP50 < 0 || e.PivotsP99 < e.PivotsP50 {
			return fmt.Errorf("bench json: engines[%d]: pivot quantiles p50=%d p99=%d", i, e.PivotsP50, e.PivotsP99)
		}
		if e.PresolvePrunedRows < 0 {
			return fmt.Errorf("bench json: engines[%d]: presolve_pruned_rows = %d", i, e.PresolvePrunedRows)
		}
		if e.Subtrees < 0 {
			return fmt.Errorf("bench json: engines[%d]: subtrees = %d", i, e.Subtrees)
		}
		if e.PeakRows < 0 {
			return fmt.Errorf("bench json: engines[%d]: peak_rows = %d", i, e.PeakRows)
		}
	}
	if rec.Radius < 0 {
		return fmt.Errorf("bench json: radius = %g", rec.Radius)
	}
	return nil
}

// CheckPivotGate enforces the pricing regression gate behind ci.sh's
// bench smoke: on a record that carries both the "revised" (Devex) and
// "revised-mv" (most-violated) engine rows, the Devex pivot count must
// not exceed the most-violated baseline — reference-norm pricing exists
// to cut pivots on the degenerate-tie-heavy instances, so a regression
// here means the weight update or reset contract broke. Records without
// the ablation pair (e.g. hand-built ones) pass vacuously.
func CheckPivotGate(rec BenchRecord) error {
	var devex, mv *EngineRecord
	for i := range rec.Engines {
		switch rec.Engines[i].Engine {
		case "revised":
			devex = &rec.Engines[i]
		case "revised-mv":
			mv = &rec.Engines[i]
		}
	}
	if devex == nil || mv == nil {
		return nil
	}
	if devex.PricingScheme != "devex" {
		return fmt.Errorf("pivot gate: %s: engine \"revised\" ran pricing %q, want devex", rec.Bench, devex.PricingScheme)
	}
	if mv.PricingScheme != "most-violated" {
		return fmt.Errorf("pivot gate: %s: engine \"revised-mv\" ran pricing %q, want most-violated", rec.Bench, mv.PricingScheme)
	}
	if devex.Pivots > mv.Pivots {
		return fmt.Errorf("pivot gate: %s: devex took %d pivots, most-violated baseline %d — Devex pricing regressed",
			rec.Bench, devex.Pivots, mv.Pivots)
	}
	return nil
}

// CheckPresolveGate enforces the presolve regression gate behind ci.sh's
// scale bench smoke: on a record that carries both the "revised" (auto
// presolve + decomposition) and "revised-nopresolve" (both forced off)
// engine rows, the presolve must have pruned a nonzero number of
// candidate Steiner rows, the decomposed solve's peak active-row count
// must not exceed the monolithic one, and the two optima must agree to
// 1e-6·radius — the passes exist to cut memory and time, never to move
// the answer. Records without the ablation pair (the sub-scale lineup,
// hand-built ones) pass vacuously.
func CheckPresolveGate(rec BenchRecord) error {
	var auto, off *EngineRecord
	for i := range rec.Engines {
		switch rec.Engines[i].Engine {
		case "revised":
			auto = &rec.Engines[i]
		case "revised-nopresolve":
			off = &rec.Engines[i]
		}
	}
	if auto == nil || off == nil {
		return nil
	}
	if auto.PresolvePrunedRows <= 0 {
		return fmt.Errorf("presolve gate: %s: auto row pruned %d rows — presolve is not biting at scale",
			rec.Bench, auto.PresolvePrunedRows)
	}
	if off.PresolvePrunedRows != 0 || off.Subtrees != 0 {
		return fmt.Errorf("presolve gate: %s: nopresolve row reports pruned=%d subtrees=%d — the off switch is leaking",
			rec.Bench, off.PresolvePrunedRows, off.Subtrees)
	}
	if auto.PeakRows > 0 && off.PeakRows > 0 && auto.PeakRows > off.PeakRows {
		return fmt.Errorf("presolve gate: %s: peak rows %d with presolve vs %d without — pruning grew the tableau",
			rec.Bench, auto.PeakRows, off.PeakRows)
	}
	tol := 1e-6 * rec.Radius
	if tol < 1e-6 {
		tol = 1e-6
	}
	if d := auto.Cost - off.Cost; d > tol || d < -tol {
		return fmt.Errorf("presolve gate: %s: cost %.10g with presolve vs %.10g without (|Δ| = %g > %g) — pruning moved the optimum",
			rec.Bench, auto.Cost, off.Cost, d, tol)
	}
	return nil
}

// WarmPivotDivisor is the warm-restart budget shared by every warm-vs-
// cold gate in the harness: a warm re-solve from a kept basis must take
// fewer than 1/WarmPivotDivisor (25%) of the cold solve's dual pivots.
// CheckEcoGate applies it to the lubtbench ECO probe; the lubtd service
// tests (internal/serve) apply it to cache-hit re-solves through
// CheckWarmPivots, so the CLI probe and the daemon share one threshold.
const WarmPivotDivisor = 4

// CheckWarmPivots enforces the WarmPivotDivisor budget on one measured
// warm/cold pivot pair; label names the probe in the error. A
// non-positive cold count passes vacuously (nothing was measured).
func CheckWarmPivots(label string, warm, cold int) error {
	if cold <= 0 {
		return nil
	}
	if warm*WarmPivotDivisor >= cold {
		return fmt.Errorf("%s: warm re-solve took %d pivots vs %d cold (≥%d%%) — restaging is not keeping the basis warm",
			label, warm, cold, 100/WarmPivotDivisor)
	}
	return nil
}

// CheckEcoGate enforces the warm-restart regression gate behind ci.sh's
// ECO smoke: on a record whose "revised" row carries a measured ECO probe
// (EcoResolveMS > 0), the warm re-solve after the single-sink retighten
// must pass CheckWarmPivots against the cold solve — restaging exists to
// make local edits cheap, so a warm count near the cold one means the
// basis or factorization is being thrown away on edit. Records without a
// probe (hand-built ones, non-revised-only lineups) pass vacuously.
func CheckEcoGate(rec BenchRecord) error {
	for i := range rec.Engines {
		e := &rec.Engines[i]
		if e.Engine != "revised" || e.EcoResolveMS <= 0 {
			continue
		}
		if err := CheckWarmPivots("eco gate: "+rec.Bench, e.EcoPivots, e.Pivots); err != nil {
			return err
		}
	}
	return nil
}
