package embed

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lubt/internal/core"
	"lubt/internal/geom"
	"lubt/internal/topology"
)

// randomRealizableLengths places Steiner nodes at random locations and
// derives edge lengths as distance-plus-random-elongation. Such lengths
// satisfy every Steiner constraint by the triangle inequality, so
// Theorem 4.1 promises Place succeeds on them.
func randomRealizableLengths(rng *rand.Rand, t *topology.Tree, sinkLoc []geom.Point, source *geom.Point) []float64 {
	n := t.N()
	loc := make([]geom.Point, n)
	for i := 1; i <= t.NumSinks; i++ {
		loc[i] = sinkLoc[i]
	}
	if source != nil {
		loc[0] = *source
	} else {
		loc[0] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	for k := t.NumSinks + 1; k < n; k++ {
		loc[k] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	e := make([]float64, n)
	for k := 1; k < n; k++ {
		e[k] = geom.Dist(loc[k], loc[t.Parent[k]])
		if rng.Intn(3) == 0 {
			e[k] += rng.Float64() * 20 // elongation
		}
	}
	return e
}

func randomSinks(rng *rand.Rand, m int) []geom.Point {
	locs := make([]geom.Point, m+1)
	for i := 1; i <= m; i++ {
		locs[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return locs
}

func TestTheorem41RandomRealizable(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(15)
		withSource := rng.Intn(2) == 0
		tree, err := topology.RandomBinary(rng, m, withSource)
		if err != nil {
			t.Fatal(err)
		}
		sinkLoc := randomSinks(rng, m)
		var source *geom.Point
		if withSource {
			s := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			source = &s
		}
		e := randomRealizableLengths(rng, tree, sinkLoc, source)
		pl, err := Place(tree, sinkLoc, source, e, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyPlacement(tree, sinkLoc, source, e, pl, 1e-6); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// The full pipeline property: LP-optimal edge lengths from the EBF always
// embed — the paper's central claim (LP solution ⇒ Theorem 4.1 ⇒ DME
// placement).
func TestTheorem41WithLPSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(12)
		withSource := rng.Intn(2) == 0
		tree, err := topology.RandomBinary(rng, m, withSource)
		if err != nil {
			t.Fatal(err)
		}
		in := &core.Instance{Tree: tree, SinkLoc: randomSinks(rng, m)}
		if withSource {
			s := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			in.Source = &s
		}
		r := in.Radius()
		u := r * (1 + rng.Float64())
		l := u * rng.Float64()
		res, err := core.Solve(in, core.UniformBounds(m, l, u), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pl, err := Place(tree, in.SinkLoc, in.Source, res.E, nil)
		if err != nil {
			t.Fatalf("trial %d: LP solution failed to embed: %v", trial, err)
		}
		// The realized tree's delays must equal the LP delays: every edge
		// contributes its full e_k (elongation included).
		for k := 1; k < tree.N(); k++ {
			if pl.Elongation[k] < -1e-6 {
				t.Fatalf("trial %d: edge %d over-stretched by %g", trial, k, -pl.Elongation[k])
			}
		}
	}
}

func TestPlaceCenterPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := 6
	tree, err := topology.RandomBinary(rng, m, false)
	if err != nil {
		t.Fatal(err)
	}
	sinkLoc := randomSinks(rng, m)
	e := randomRealizableLengths(rng, tree, sinkLoc, nil)
	for _, pol := range []Policy{Nearest, Center} {
		pl, err := Place(tree, sinkLoc, nil, e, &Options{Policy: pol})
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if err := VerifyPlacement(tree, sinkLoc, nil, e, pl, 1e-6); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

func TestPlaceDetectsInfeasibleLengths(t *testing.T) {
	// Two sinks 10 apart under a root, with e1+e2 = 4 < 10: the feasible
	// region of the root must be empty.
	tree := topology.MustNew([]int{-1, 0, 0}, 2)
	sinkLoc := []geom.Point{{}, geom.Pt(0, 0), geom.Pt(10, 0)}
	e := []float64{0, 2, 2}
	_, err := Place(tree, sinkLoc, nil, e, nil)
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestPlaceDetectsUnreachableSource(t *testing.T) {
	tree := topology.MustNew([]int{-1, 2, 0}, 1) // source → steiner → sink
	src := geom.Pt(0, 0)
	sinkLoc := []geom.Point{{}, geom.Pt(10, 0)}
	// e sums to 4 < dist(source, sink) = 10.
	_, err := Place(tree, sinkLoc, &src, []float64{0, 2, 2}, nil)
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestPlaceDegenerateEdges(t *testing.T) {
	// Zero-length edges collapse nodes onto the same location (§2
	// "degenerate").
	tree := topology.MustNew([]int{-1, 2, 0}, 1)
	src := geom.Pt(5, 5)
	sinkLoc := []geom.Point{{}, geom.Pt(5, 5)}
	pl, err := Place(tree, sinkLoc, &src, []float64{0, 0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pl.Loc[2].Eq(src) || !pl.Loc[1].Eq(src) {
		t.Fatalf("degenerate tree not collapsed: %v", pl.Loc)
	}
}

func TestPlaceValidatesInput(t *testing.T) {
	tree := topology.MustNew([]int{-1, 0, 0}, 2)
	sinkLoc := []geom.Point{{}, geom.Pt(0, 0), geom.Pt(1, 0)}
	if _, err := Place(tree, sinkLoc[:2], nil, []float64{0, 1, 1}, nil); err == nil {
		t.Error("short sink slice accepted")
	}
	if _, err := Place(tree, sinkLoc, nil, []float64{0}, nil); err == nil {
		t.Error("short edge slice accepted")
	}
	if _, err := Place(tree, sinkLoc, nil, []float64{0, -5, 1}, nil); err == nil {
		t.Error("negative edge accepted")
	}
	// Tiny LP-noise negatives are clamped, not rejected.
	if _, err := Place(tree, sinkLoc, nil, []float64{0, -1e-12, 1}, nil); err != nil {
		t.Errorf("LP-noise negative rejected: %v", err)
	}
}

func TestPlaceRejectsHighDegree(t *testing.T) {
	star, err := topology.Star(4, false)
	if err != nil {
		t.Fatal(err)
	}
	sinkLoc := []geom.Point{{}, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1)}
	if _, err := Place(star, sinkLoc, nil, []float64{0, 1, 1, 1, 1}, nil); err == nil {
		t.Error("degree-4 node accepted; SplitHighDegree should be required")
	}
	split, err := star.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	e := make([]float64, split.N())
	for i := 1; i <= 4; i++ {
		e[i] = 2
	}
	if _, err := Place(split, sinkLoc, nil, e, nil); err != nil {
		t.Errorf("split star failed to embed: %v", err)
	}
}

func TestElongationAccounting(t *testing.T) {
	// Sink at distance 3 from the fixed source, edge length 7: elongation 4.
	tree := topology.MustNew([]int{-1, 0}, 1)
	src := geom.Pt(0, 0)
	sinkLoc := []geom.Point{{}, geom.Pt(3, 0)}
	pl, err := Place(tree, sinkLoc, &src, []float64{0, 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.Elongation[1]-4) > 1e-6 {
		t.Fatalf("elongation = %g, want 4", pl.Elongation[1])
	}
}

func TestRoutesRealizeExactLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(10)
		tree, err := topology.RandomBinary(rng, m, false)
		if err != nil {
			t.Fatal(err)
		}
		sinkLoc := randomSinks(rng, m)
		e := randomRealizableLengths(rng, tree, sinkLoc, nil)
		pl, err := Place(tree, sinkLoc, nil, e, nil)
		if err != nil {
			t.Fatal(err)
		}
		routes := Routes(tree, pl, e)
		for k := 1; k < tree.N(); k++ {
			got := PolylineLength(routes[k])
			if math.Abs(got-e[k]) > 1e-5*(1+e[k]) {
				t.Fatalf("trial %d edge %d: route length %g, want %g", trial, k, got, e[k])
			}
			if !routes[k][0].Eq(pl.Loc[k]) || !routes[k][len(routes[k])-1].Eq(pl.Loc[tree.Parent[k]]) {
				t.Fatalf("trial %d edge %d: route endpoints wrong", trial, k)
			}
		}
	}
}

// §4.7: the EBF guarantees break down in the Euclidean metric. For the
// unit equilateral triangle, e1=e2=e3=1/2 satisfies every pairwise-sum
// constraint, yet no point of the plane is within Euclidean distance 1/2
// of all three corners (the circumradius is 1/√3 ≈ 0.577). In Manhattan
// metric the analogous configuration embeds fine.
func TestEuclideanCounterexample(t *testing.T) {
	tri := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, math.Sqrt(3)/2)}
	// Pairwise Euclidean distances are all 1, so e=1/2 satisfies e_i+e_j ≥ 1.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if math.Abs(geom.EuclidDist(tri[i], tri[j])-1) > 1e-9 {
				t.Fatal("test bug: triangle not unit equilateral")
			}
		}
	}
	// Dense grid search: no Euclidean embedding point exists.
	found := false
	for x := -0.5; x <= 1.5; x += 0.01 {
		for y := -0.5; y <= 1.5; y += 0.01 {
			p := geom.Pt(x, y)
			ok := true
			for _, c := range tri {
				if geom.EuclidDist(p, c) > 0.5+1e-9 {
					ok = false
					break
				}
			}
			if ok {
				found = true
			}
		}
	}
	if found {
		t.Fatal("Euclidean embedding exists; counterexample broken")
	}
	// Manhattan analog: three sinks pairwise Manhattan distance 1; the
	// same edge lengths 1/2 DO embed (Helly property of diamonds).
	sinks := []geom.Point{{}, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0.5, 0.5)}
	star, err := topology.Star(3, false)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := star.SplitHighDegree()
	if err != nil {
		t.Fatal(err)
	}
	e := make([]float64, tree.N())
	e[1], e[2], e[3] = 0.5, 0.5, 0.5
	if _, err := Place(tree, sinks, nil, e, nil); err != nil {
		t.Fatalf("Manhattan analog failed to embed: %v", err)
	}
}

func TestVerifyPlacementDetectsCorruption(t *testing.T) {
	tree := topology.MustNew([]int{-1, 2, 0}, 1)
	src := geom.Pt(0, 0)
	sinkLoc := []geom.Point{{}, geom.Pt(4, 0)}
	e := []float64{0, 2, 2}
	pl, err := Place(tree, sinkLoc, &src, e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt each invariant in turn.
	bad := *pl
	bad.Loc = append([]geom.Point(nil), pl.Loc...)
	bad.Loc[1] = geom.Pt(9, 9) // sink moved
	if VerifyPlacement(tree, sinkLoc, &src, e, &bad, 1e-6) == nil {
		t.Error("moved sink accepted")
	}
	bad.Loc = append([]geom.Point(nil), pl.Loc...)
	bad.Loc[0] = geom.Pt(1, 1) // source moved
	if VerifyPlacement(tree, sinkLoc, &src, e, &bad, 1e-6) == nil {
		t.Error("moved source accepted")
	}
	bad.Loc = append([]geom.Point(nil), pl.Loc...)
	bad.Loc[2] = geom.Pt(50, 0) // edge over-stretched
	if VerifyPlacement(tree, sinkLoc, &src, e, &bad, 1e-6) == nil {
		t.Error("over-stretched edge accepted")
	}
	if VerifyPlacement(tree, sinkLoc, &src, e, pl, 1e-6) != nil {
		t.Error("valid placement rejected")
	}
}
