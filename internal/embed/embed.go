package embed

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/geom"
	"lubt/internal/obs"
	"lubt/internal/topology"
)

// Policy selects where inside a feasible intersection each node is placed.
type Policy int

// Placement policies.
const (
	// Nearest places each node at the feasible point closest to its
	// already-placed parent, minimizing physical detour (the default).
	Nearest Policy = iota
	// Center places each node at the center of its feasible intersection.
	Center
)

// Options tune Place.
type Options struct {
	Policy Policy
	// Tol absorbs LP rounding: every region is inflated by Tol before
	// intersection tests. 0 means 1e-6·(1+scale of the instance).
	Tol float64
	// Tracer records the embedding as an "embed" span with "bottom-up"
	// (feasible-region merge) and "top-down" (placement) children. Nil
	// disables tracing at zero cost.
	Tracer *obs.Tracer
}

// Placement is an embedded tree.
type Placement struct {
	// Loc is the location of every node.
	Loc []geom.Point
	// FR is the bottom-up feasible region of every node (diagnostics; the
	// regions of sinks are their locations).
	FR []geom.TRR
	// Elongation[k] = e_k − dist(s_k, parent) ≥ 0 is the wire snaking on
	// edge k (§2: an edge with positive elongation is "elongated").
	Elongation []float64
}

// ErrNoEmbedding reports that the bottom-up regions became empty — the
// edge lengths violate a Steiner constraint (Theorem 4.1 in
// contrapositive).
var ErrNoEmbedding = errors.New("embed: edge lengths admit no placement")

// Place embeds the tree. sinkLoc is indexed by sink id (entry 0 unused);
// source is the fixed root location or nil; e is indexed by edge (child
// node).
func Place(t *topology.Tree, sinkLoc []geom.Point, source *geom.Point, e []float64, opt *Options) (*Placement, error) {
	if len(sinkLoc) != t.NumSinks+1 {
		return nil, fmt.Errorf("embed: %d sink locations for %d sinks", len(sinkLoc)-1, t.NumSinks)
	}
	if len(e) < t.N() {
		return nil, fmt.Errorf("embed: %d edge lengths for %d nodes", len(e), t.N())
	}
	scale := 1.0
	for i := 1; i <= t.NumSinks; i++ {
		scale = math.Max(scale, math.Abs(sinkLoc[i].X)+math.Abs(sinkLoc[i].Y))
	}
	for k := 1; k < t.N(); k++ {
		if e[k] < 0 {
			if e[k] < -1e-6*scale {
				return nil, fmt.Errorf("embed: edge %d has negative length %g", k, e[k])
			}
			e = clampNonNegative(e, t.N())
			break
		}
	}
	tol := 1e-6 * scale
	if opt != nil && opt.Tol > 0 {
		tol = opt.Tol
	}
	policy := Nearest
	var tr *obs.Tracer
	if opt != nil {
		policy = opt.Policy
		tr = opt.Tracer
	}
	esp := tr.Start("embed")
	defer esp.End()

	n := t.N()
	fr := make([]geom.TRR, n)
	trr := make([]geom.TRR, n) // TRR_k = Expand(FR_k, e_k)
	bu := tr.Start("bottom-up")
	for _, k := range t.Postorder() {
		if t.IsSink(k) {
			fr[k] = geom.PointTRR(sinkLoc[k])
		} else {
			ch := t.Children(k)
			switch len(ch) {
			case 0:
				return nil, fmt.Errorf("embed: Steiner node %d is a leaf", k)
			case 1:
				fr[k] = trr[ch[0]]
			case 2:
				fr[k] = trr[ch[0]].Intersect(trr[ch[1]])
				if fr[k].Empty() {
					// Absorb LP rounding: retry with inflated children.
					fr[k] = trr[ch[0]].Expand(tol).Intersect(trr[ch[1]].Expand(tol))
				}
			default:
				return nil, fmt.Errorf("embed: node %d has %d children; run SplitHighDegree first", k, len(ch))
			}
			if fr[k].Empty() {
				return nil, fmt.Errorf("%w: feasible region of node %d is empty", ErrNoEmbedding, k)
			}
		}
		if k != 0 {
			trr[k] = fr[k].Expand(e[k])
		}
	}
	bu.SetInt("nodes", n)
	bu.End()

	td := tr.Start("top-down")
	loc := make([]geom.Point, n)
	if source != nil {
		if fr[0].DistPoint(*source) > tol {
			return nil, fmt.Errorf("%w: source %v lies %g outside the root feasible region %v",
				ErrNoEmbedding, *source, fr[0].DistPoint(*source), fr[0])
		}
		loc[0] = *source
	} else {
		loc[0] = fr[0].Center()
	}
	for _, k := range t.Preorder() {
		if k == 0 {
			continue
		}
		p := loc[t.Parent[k]]
		region := fr[k].Intersect(geom.Diamond(p, e[k]))
		if region.Empty() {
			// Absorb LP rounding before giving up.
			region = fr[k].Expand(tol).Intersect(geom.Diamond(p, e[k]+tol))
		}
		if region.Empty() {
			return nil, fmt.Errorf("%w: node %d has no feasible point within %g of its parent",
				ErrNoEmbedding, k, e[k])
		}
		switch policy {
		case Center:
			loc[k] = region.Center()
		default:
			loc[k] = region.ClosestPointTo(p)
		}
	}
	td.End()

	elong := make([]float64, n)
	for k := 1; k < n; k++ {
		elong[k] = e[k] - geom.Dist(loc[k], loc[t.Parent[k]])
		if elong[k] < 0 && elong[k] > -2*tol {
			elong[k] = 0
		}
	}
	pl := &Placement{Loc: loc, FR: fr, Elongation: elong}
	if err := VerifyPlacement(t, sinkLoc, source, e, pl, 4*tol); err != nil {
		return nil, err
	}
	return pl, nil
}

func clampNonNegative(e []float64, n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n && k < len(e); k++ {
		out[k] = math.Max(0, e[k])
	}
	return out
}

// VerifyPlacement checks that a placement realizes the edge lengths: every
// edge's endpoints are within e_k of each other (Eq. 7), sinks sit at
// their given locations, and the source (when fixed) at its.
func VerifyPlacement(t *topology.Tree, sinkLoc []geom.Point, source *geom.Point, e []float64, p *Placement, tol float64) error {
	for i := 1; i <= t.NumSinks; i++ {
		if geom.Dist(p.Loc[i], sinkLoc[i]) > tol {
			return fmt.Errorf("embed: sink %d placed at %v, given %v", i, p.Loc[i], sinkLoc[i])
		}
	}
	if source != nil && geom.Dist(p.Loc[0], *source) > tol {
		return fmt.Errorf("embed: source placed at %v, given %v", p.Loc[0], *source)
	}
	for k := 1; k < t.N(); k++ {
		d := geom.Dist(p.Loc[k], p.Loc[t.Parent[k]])
		if d > e[k]+tol {
			return fmt.Errorf("embed: edge %d spans %g > length %g", k, d, e[k])
		}
	}
	return nil
}

// Routes returns one rectilinear polyline per edge (indexed by edge)
// whose total length is exactly e_k. A tight edge becomes an L-shaped
// route; an elongated edge prefixes an out-and-back snaking spur of half
// the elongation (the standard wire-snaking abstraction — the detailed
// serpentine pattern is a layout concern below this library's level).
// Entry 0 is nil.
func Routes(t *topology.Tree, p *Placement, e []float64) [][]geom.Point {
	routes := make([][]geom.Point, t.N())
	for k := 1; k < t.N(); k++ {
		c := p.Loc[k]
		par := p.Loc[t.Parent[k]]
		var pts []geom.Point
		extra := e[k] - geom.Dist(c, par)
		if extra < 0 {
			extra = 0
		}
		pts = append(pts, c)
		if extra > 0 {
			spur := c.Add(0, extra/2)
			pts = append(pts, spur, c)
		}
		if c.X != par.X {
			pts = append(pts, geom.Pt(par.X, c.Y))
		}
		if c.Y != par.Y || len(pts) == 1 {
			pts = append(pts, par)
		}
		if last := pts[len(pts)-1]; !last.Eq(par) {
			pts = append(pts, par)
		}
		routes[k] = pts
	}
	return routes
}

// PolylineLength measures a rectilinear polyline in Manhattan length.
func PolylineLength(pts []geom.Point) float64 {
	var s float64
	for i := 1; i < len(pts); i++ {
		s += geom.Dist(pts[i-1], pts[i])
	}
	return s
}
