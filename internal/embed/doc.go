// Package embed places the Steiner points of a LUBT once the edge lengths
// are known — the revised DME procedure of §5 of the paper: a bottom-up
// pass builds the feasible region (a TRR) of every node from its
// children's expanded regions, then a top-down pass picks concrete
// locations. Theorem 4.1 guarantees the regions are non-empty whenever the
// edge lengths satisfy the Steiner constraints (see the Helly-theorem
// note in internal/geom's package documentation for why the pairwise
// constraints suffice); this package is the constructive half of that
// proof, and its property tests exercise it.
package embed
