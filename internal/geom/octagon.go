package geom

import (
	"fmt"
	"math"
)

// Octagon is an octilinear convex region: the intersection of half-planes
// whose boundaries have slope 0, ∞, +1 or −1. These are the feasible
// merging regions of bounded-skew clock routing (references [8] and [9] of
// the paper):
//
//	XLo ≤ x ≤ XHi,  YLo ≤ y ≤ YHi,  ULo ≤ x+y ≤ UHi,  VLo ≤ x−y ≤ VHi.
//
// Rectangles (infinite u/v bounds tightened away) and TRRs (infinite x/y
// bounds tightened away) are both special cases. The zero value is not
// meaningful; construct octagons with the provided constructors and keep
// them normalized via Normalize.
type Octagon struct {
	XLo, XHi, YLo, YHi float64
	ULo, UHi, VLo, VHi float64
}

// OctFromTRR converts a TRR into an equivalent (normalized) octagon.
func OctFromTRR(t TRR) Octagon {
	if t.Empty() {
		return EmptyOctagon()
	}
	o := Octagon{
		XLo: math.Inf(-1), XHi: math.Inf(1),
		YLo: math.Inf(-1), YHi: math.Inf(1),
		ULo: t.ULo, UHi: t.UHi, VLo: t.VLo, VHi: t.VHi,
	}
	return o.Normalize()
}

// OctFromPoint returns the singleton octagon {p}.
func OctFromPoint(p Point) Octagon {
	u, v := p.UV()
	return Octagon{p.X, p.X, p.Y, p.Y, u, u, v, v}
}

// OctFromRect returns the axis-aligned rectangle [xlo,xhi]×[ylo,yhi].
func OctFromRect(xlo, ylo, xhi, yhi float64) Octagon {
	o := Octagon{
		XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi,
		ULo: math.Inf(-1), UHi: math.Inf(1),
		VLo: math.Inf(-1), VHi: math.Inf(1),
	}
	return o.Normalize()
}

// EmptyOctagon returns a canonical empty octagon.
func EmptyOctagon() Octagon {
	return Octagon{XLo: 1, XHi: -1, YLo: 1, YHi: -1, ULo: 1, UHi: -1, VLo: 1, VHi: -1}
}

// Empty reports whether the region contains no points (beyond tolerance).
func (o Octagon) Empty() bool {
	return o.XLo > o.XHi+Eps || o.YLo > o.YHi+Eps ||
		o.ULo > o.UHi+Eps || o.VLo > o.VHi+Eps
}

// Normalize tightens every bound against the others so that each of the
// eight support values is attained by the region. Two passes reach the
// fixpoint for this constraint system; a third is run defensively. An
// empty region is returned as-is.
func (o Octagon) Normalize() Octagon {
	if o.Empty() {
		return o
	}
	for i := 0; i < 3; i++ {
		o.ULo = math.Max(o.ULo, o.XLo+o.YLo)
		o.UHi = math.Min(o.UHi, o.XHi+o.YHi)
		o.VLo = math.Max(o.VLo, o.XLo-o.YHi)
		o.VHi = math.Min(o.VHi, o.XHi-o.YLo)
		o.XLo = math.Max(o.XLo, (o.ULo+o.VLo)/2)
		o.XHi = math.Min(o.XHi, (o.UHi+o.VHi)/2)
		o.YLo = math.Max(o.YLo, (o.ULo-o.VHi)/2)
		o.YHi = math.Min(o.YHi, (o.UHi-o.VLo)/2)
		if o.Empty() {
			return o
		}
	}
	return o
}

// Contains reports whether p lies in the region within tolerance.
func (o Octagon) Contains(p Point) bool {
	u, v := p.UV()
	return p.X >= o.XLo-Eps && p.X <= o.XHi+Eps &&
		p.Y >= o.YLo-Eps && p.Y <= o.YHi+Eps &&
		u >= o.ULo-Eps && u <= o.UHi+Eps &&
		v >= o.VLo-Eps && v <= o.VHi+Eps
}

// Intersect returns the (normalized) intersection of two octagons.
func (o Octagon) Intersect(p Octagon) Octagon {
	r := Octagon{
		XLo: math.Max(o.XLo, p.XLo), XHi: math.Min(o.XHi, p.XHi),
		YLo: math.Max(o.YLo, p.YLo), YHi: math.Min(o.YHi, p.YHi),
		ULo: math.Max(o.ULo, p.ULo), UHi: math.Min(o.UHi, p.UHi),
		VLo: math.Max(o.VLo, p.VLo), VHi: math.Min(o.VHi, p.VHi),
	}
	// Snap pairs that cross within tolerance, as TRR.Intersect does.
	snap := func(lo, hi *float64) {
		if *lo > *hi && *lo <= *hi+Eps {
			m := (*lo + *hi) / 2
			*lo, *hi = m, m
		}
	}
	snap(&r.XLo, &r.XHi)
	snap(&r.YLo, &r.YHi)
	snap(&r.ULo, &r.UHi)
	snap(&r.VLo, &r.VHi)
	if r.Empty() {
		return r
	}
	return r.Normalize()
}

// IntersectTRR intersects the octagon with a TRR.
func (o Octagon) IntersectTRR(t TRR) Octagon {
	return o.Intersect(OctFromTRR(t))
}

// Expand returns the Minkowski sum of the region with a diamond of radius
// r ≥ 0: the set of points within Manhattan distance r of the region. The
// support values of a Minkowski sum add, and the diamond's support is r in
// all eight octilinear directions, so every bound moves outward by r.
func (o Octagon) Expand(r float64) Octagon {
	if r < 0 {
		panic(fmt.Sprintf("geom: Octagon.Expand with negative radius %g", r))
	}
	if o.Empty() {
		return o
	}
	return Octagon{
		XLo: o.XLo - r, XHi: o.XHi + r,
		YLo: o.YLo - r, YHi: o.YHi + r,
		ULo: o.ULo - r, UHi: o.UHi + r,
		VLo: o.VLo - r, VHi: o.VHi + r,
	}
}

// Dist returns the Manhattan distance between two octagons (zero when they
// intersect). For octilinear convex regions the distance is
//
//	max( gap_x + gap_y, gap_u, gap_v )
//
// — the rectangle gaps add (an L1 path must close both), while the diagonal
// gaps act like L∞ in rotated coordinates. The property test in this
// package validates the formula against brute-force sampling.
func (o Octagon) Dist(p Octagon) float64 {
	if o.Empty() || p.Empty() {
		panic("geom: Dist on empty octagon")
	}
	gx := gap(o.XLo, o.XHi, p.XLo, p.XHi)
	gy := gap(o.YLo, o.YHi, p.YLo, p.YHi)
	gu := gap(o.ULo, o.UHi, p.ULo, p.UHi)
	gv := gap(o.VLo, o.VHi, p.VLo, p.VHi)
	return math.Max(gx+gy, math.Max(gu, gv))
}

// DistPoint returns the Manhattan distance from p to the region.
func (o Octagon) DistPoint(p Point) float64 {
	return o.Dist(OctFromPoint(p))
}

// Vertices returns the vertices of the (normalized, non-empty) octagon in
// counterclockwise order. Each vertex is the intersection of two
// supporting lines that are adjacent in the angular order of their outward
// normals; degenerate regions yield fewer distinct points. The region must
// be bounded (all eight normalized bounds finite).
func (o Octagon) Vertices() []Point {
	if o.Empty() {
		return nil
	}
	o = o.Normalize()
	cand := [8]Point{
		{o.XHi, o.UHi - o.XHi}, // x=XHi ∧ u=UHi
		{o.UHi - o.YHi, o.YHi}, // u=UHi ∧ y=YHi
		{o.VLo + o.YHi, o.YHi}, // y=YHi ∧ v=VLo
		{o.XLo, o.XLo - o.VLo}, // v=VLo ∧ x=XLo
		{o.XLo, o.ULo - o.XLo}, // x=XLo ∧ u=ULo
		{o.ULo - o.YLo, o.YLo}, // u=ULo ∧ y=YLo
		{o.VHi + o.YLo, o.YLo}, // y=YLo ∧ v=VHi
		{o.XHi, o.XHi - o.VHi}, // v=VHi ∧ x=XHi
	}
	var vs []Point
	for _, p := range cand {
		if math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			panic("geom: Vertices on unbounded octagon")
		}
		dup := false
		for _, q := range vs {
			if q.Eq(p) {
				dup = true
				break
			}
		}
		if !dup {
			vs = append(vs, p)
		}
	}
	sortCCW(vs)
	return vs
}

// AnyPoint returns an arbitrary point inside the region (the centroid of
// its vertices, which is interior by convexity).
func (o Octagon) AnyPoint() Point {
	vs := o.Vertices()
	var cx, cy float64
	for _, p := range vs {
		cx += p.X
		cy += p.Y
	}
	n := float64(len(vs))
	return Point{cx / n, cy / n}
}

// ClosestPointTo returns a point of the region minimizing the Manhattan
// distance to p. The optimum of a linear-like objective over a convex
// octilinear region is attained either at p itself (containment), at a
// vertex, or at the Manhattan projection of p onto one of the boundary
// segments; all candidates are enumerated.
func (o Octagon) ClosestPointTo(p Point) Point {
	if o.Contains(p) {
		return p
	}
	vs := o.Vertices()
	best := vs[0]
	bd := Dist(p, best)
	consider := func(q Point) {
		if o.Contains(q) {
			if d := Dist(p, q); d < bd {
				best, bd = q, d
			}
		}
	}
	for _, v := range vs {
		consider(v)
	}
	// Projections onto the supporting lines: clamp p against each pair of
	// bounds, one family at a time, composing with containment checks.
	consider(Point{clamp(p.X, o.XLo, o.XHi), clamp(p.Y, o.YLo, o.YHi)})
	u, v := p.UV()
	consider(FromUV(clamp(u, o.ULo, o.UHi), clamp(v, o.VLo, o.VHi)))
	// Mixed clamps: fix x then resolve u/v, and vice versa.
	px := clamp(p.X, o.XLo, o.XHi)
	consider(Point{px, clamp(p.Y, math.Max(o.YLo, math.Max(o.ULo-px, px-o.VHi)),
		math.Min(o.YHi, math.Min(o.UHi-px, px-o.VLo)))})
	py := clamp(p.Y, o.YLo, o.YHi)
	consider(Point{clamp(p.X, math.Max(o.XLo, math.Max(o.ULo-py, o.VLo+py)),
		math.Min(o.XHi, math.Min(o.UHi-py, o.VHi+py))), py})
	return best
}

// String renders the octagon for diagnostics.
func (o Octagon) String() string {
	if o.Empty() {
		return "Oct(empty)"
	}
	return fmt.Sprintf("Oct(x:[%g,%g] y:[%g,%g] u:[%g,%g] v:[%g,%g])",
		o.XLo, o.XHi, o.YLo, o.YHi, o.ULo, o.UHi, o.VLo, o.VHi)
}

// sortCCW orders points counterclockwise around their centroid.
func sortCCW(ps []Point) {
	if len(ps) < 3 {
		return
	}
	var cx, cy float64
	for _, p := range ps {
		cx += p.X
		cy += p.Y
	}
	cx /= float64(len(ps))
	cy /= float64(len(ps))
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0; j-- {
			ai := math.Atan2(ps[j].Y-cy, ps[j].X-cx)
			aj := math.Atan2(ps[j-1].Y-cy, ps[j-1].X-cx)
			if ai < aj {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			} else {
				break
			}
		}
	}
}
