// Package geom implements the Manhattan-plane geometry the LUBT paper
// builds on: points, Manhattan distance, tilted rectangular regions (TRRs,
// §5 and §10 of the paper) and octilinear convex regions (the merge
// regions of bounded-skew routing, used by the baseline of reference [9],
// Huang–Kahng–Tsao DAC'95).
//
// # The rotated coordinate system
//
// The central trick is the 45° rotation
//
//	u = x + y,  v = x − y
//
// under which Manhattan (L1) distance in the plane becomes Chebyshev (L∞)
// distance, a diamond of radius r becomes an axis-aligned square of
// half-side r, and every TRR becomes an axis-aligned box
// [ULo, UHi] × [VLo, VHi]. All TRR operations the paper needs —
// intersection, Minkowski expansion by a radius, distance, containment —
// reduce to constant-time interval arithmetic on those four numbers.
// Degenerate TRRs are first-class: a width-zero TRR is a ±45° segment
// (a zero-skew merging segment), a fully degenerate one a single point.
//
// # Why pairwise checks suffice (Helly's theorem)
//
// The embedding pass of internal/embed intersects many expanded TRRs and
// relies on the intersection being non-empty whenever the LP's pairwise
// Steiner constraints hold. That step is sound because TRRs are boxes in
// (u, v) coordinates, and axis-aligned boxes have Helly number 2 per
// axis: a family of intervals has a common point iff every PAIR
// intersects (Helly's theorem in dimension 1, applied to the u and v
// extents independently). This is the geometric heart of the paper's
// Theorem 4.1 — pairwise constraints Σ_{path(i,j)} e ≥ dist(s_i, s_j)
// certify that ALL the sink diamonds meet at once, so a feasible LP
// solution always embeds. The same argument is why the separation oracle
// of §4.6 only ever needs to scan pairs.
//
// # Octagons
//
// Octagon is the octilinear convex region of bounded-skew routing:
// the intersection of an axis-aligned box with a TRR (eight bounding
// directions). The bst baseline maintains one per cluster as its merge
// region; the same interval arithmetic applies, two intervals per
// direction pair.
package geom
