package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randOctagon(rng *rand.Rand, span float64) Octagon {
	// Random rectangle intersected with a random diamond that overlaps it,
	// retried until non-empty.
	for {
		x := rng.Float64()*span - span/2
		y := rng.Float64()*span - span/2
		w := rng.Float64() * span / 3
		h := rng.Float64() * span / 3
		rect := OctFromRect(x, y, x+w, y+h)
		c := Pt(x+rng.Float64()*w, y+rng.Float64()*h)
		d := OctFromTRR(Diamond(c, rng.Float64()*span/3))
		o := rect.Intersect(d)
		if !o.Empty() {
			return o
		}
	}
}

// randPointInOct rejection-samples a point from a bounded octagon.
func randPointInOct(rng *rand.Rand, o Octagon) Point {
	for i := 0; i < 10000; i++ {
		p := Pt(o.XLo+rng.Float64()*(o.XHi-o.XLo), o.YLo+rng.Float64()*(o.YHi-o.YLo))
		if o.Contains(p) {
			return p
		}
	}
	return o.AnyPoint()
}

func TestOctFromPoint(t *testing.T) {
	p := Pt(2, -3)
	o := OctFromPoint(p)
	if !o.Contains(p) || o.Empty() {
		t.Fatalf("OctFromPoint broken: %v", o)
	}
	if o.Contains(Pt(2.1, -3)) {
		t.Error("point octagon contains another point")
	}
}

func TestOctFromRect(t *testing.T) {
	o := OctFromRect(0, 0, 4, 2)
	for _, p := range []Point{Pt(0, 0), Pt(4, 2), Pt(2, 1)} {
		if !o.Contains(p) {
			t.Errorf("rect octagon missing %v", p)
		}
	}
	if o.Contains(Pt(5, 1)) || o.Contains(Pt(2, 3)) {
		t.Error("rect octagon contains outside point")
	}
	if math.IsInf(o.ULo, 0) || math.IsInf(o.UHi, 0) {
		t.Error("Normalize did not tighten diagonal bounds")
	}
}

func TestOctFromTRRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		tr := randTRR(rng, 20)
		o := OctFromTRR(tr)
		for j := 0; j < 20; j++ {
			p := randPointIn(rng, tr)
			if !o.Contains(p) {
				t.Fatalf("octagon from TRR missing point %v of %v", p, tr)
			}
		}
	}
}

func TestOctNormalizeTightensSupports(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		o := randOctagon(rng, 20)
		// Every support value of a normalized octagon must be attained by
		// some vertex.
		vs := o.Vertices()
		maxX, minX := math.Inf(-1), math.Inf(1)
		maxU, minU := math.Inf(-1), math.Inf(1)
		for _, p := range vs {
			u, _ := p.UV()
			maxX = math.Max(maxX, p.X)
			minX = math.Min(minX, p.X)
			maxU = math.Max(maxU, u)
			minU = math.Min(minU, u)
		}
		if math.Abs(maxX-o.XHi) > 1e-6 || math.Abs(minX-o.XLo) > 1e-6 {
			t.Fatalf("x supports not attained: [%g,%g] vs vertices [%g,%g] (%v)",
				o.XLo, o.XHi, minX, maxX, o)
		}
		if math.Abs(maxU-o.UHi) > 1e-6 || math.Abs(minU-o.ULo) > 1e-6 {
			t.Fatalf("u supports not attained: [%g,%g] vs [%g,%g]", o.ULo, o.UHi, minU, maxU)
		}
	}
}

func TestOctVerticesContained(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		o := randOctagon(rng, 25)
		for _, v := range o.Vertices() {
			if !o.Contains(v) {
				t.Fatalf("vertex %v outside %v", v, o)
			}
		}
	}
}

func TestOctIntersect(t *testing.T) {
	a := OctFromRect(0, 0, 4, 4)
	b := OctFromTRR(Diamond(Pt(4, 4), 2))
	i := a.Intersect(b)
	if i.Empty() {
		t.Fatal("expected non-empty intersection")
	}
	if !i.Contains(Pt(3.5, 3.5)) {
		t.Error("intersection missing (3.5,3.5)")
	}
	if i.Contains(Pt(1, 1)) {
		t.Error("intersection contains point only in a")
	}
	far := OctFromPoint(Pt(100, 100))
	if !a.Intersect(far).Empty() {
		t.Error("disjoint intersection non-empty")
	}
}

func TestOctExpandContains(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 200; i++ {
		o := randOctagon(rng, 20)
		r := rng.Float64() * 5
		e := o.Expand(r)
		p := randPointInOct(rng, o)
		// Walk Manhattan distance r from p in a random axis direction.
		q := p
		if rng.Intn(2) == 0 {
			q.X += r * (rng.Float64()*2 - 1)
			q.Y += math.Copysign(r-math.Abs(q.X-p.X), rng.Float64()-0.5)
		} else {
			q.Y += r * (rng.Float64()*2 - 1)
			q.X += math.Copysign(r-math.Abs(q.Y-p.Y), rng.Float64()-0.5)
		}
		if Dist(p, q) > r+Eps {
			t.Fatalf("test bug: walked %g > r=%g", Dist(p, q), r)
		}
		if !e.Contains(q) {
			t.Fatalf("Expand(%g) missing %v at dist %g from %v", r, q, Dist(p, q), p)
		}
	}
}

func TestOctExpandPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	OctFromPoint(Pt(0, 0)).Expand(-1)
}

// The octagon distance formula max(gap_x+gap_y, gap_u, gap_v) must match a
// brute-force minimum over sampled point pairs (sampling can only
// overestimate) and must be achieved by ClosestPointTo projections.
func TestOctDistFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 300; trial++ {
		a := randOctagon(rng, 20)
		b := randOctagon(rng, 20)
		// Shift b by a random offset to vary separation.
		dx, dy := rng.Float64()*30-15, rng.Float64()*30-15
		b = Octagon{
			XLo: b.XLo + dx, XHi: b.XHi + dx, YLo: b.YLo + dy, YHi: b.YHi + dy,
			ULo: b.ULo + dx + dy, UHi: b.UHi + dx + dy,
			VLo: b.VLo + dx - dy, VHi: b.VHi + dx - dy,
		}
		d := a.Dist(b)
		best := math.Inf(1)
		for i := 0; i < 300; i++ {
			p := randPointInOct(rng, a)
			q := b.ClosestPointTo(p)
			best = math.Min(best, Dist(p, q))
			p2 := a.ClosestPointTo(q)
			best = math.Min(best, Dist(p2, q))
		}
		if best < d-1e-6 {
			t.Fatalf("found pair at distance %g < formula %g\na=%v\nb=%v", best, d, a, b)
		}
		if best > d+0.35*(d+1) && d > 0 {
			// The projection search should come close to the formula; a
			// large gap indicates the formula underestimates.
			t.Logf("warning: projection search %g vs formula %g", best, d)
		}
	}
}

func TestOctDistKnown(t *testing.T) {
	a := OctFromRect(0, 0, 1, 1)
	b := OctFromRect(3, 4, 5, 6)
	if d := a.Dist(b); math.Abs(d-5) > Eps { // gap_x=2, gap_y=3
		t.Errorf("rect-rect dist = %g, want 5", d)
	}
	da := OctFromTRR(Diamond(Pt(0, 0), 1))
	db := OctFromTRR(Diamond(Pt(10, 0), 1))
	if d := da.Dist(db); math.Abs(d-8) > Eps {
		t.Errorf("diamond-diamond dist = %g, want 8", d)
	}
}

// Expansion/distance identity, the merge-region law the BST baseline uses:
// Expand(A, ea) ∩ Expand(B, eb) ≠ ∅  ⇔  dist(A,B) ≤ ea + eb.
func TestOctMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 300; trial++ {
		a := randOctagon(rng, 20)
		b := randOctagon(rng, 20)
		d := a.Dist(b)
		ea := rng.Float64() * 15
		eb := rng.Float64() * 15
		inter := a.Expand(ea).Intersect(b.Expand(eb))
		want := d <= ea+eb+Eps
		if want != !inter.Empty() {
			t.Fatalf("dist=%g ea=%g eb=%g but empty=%v", d, ea, eb, inter.Empty())
		}
	}
}

func TestOctClosestPointTo(t *testing.T) {
	o := OctFromRect(0, 0, 2, 2)
	p := Pt(5, 1)
	c := o.ClosestPointTo(p)
	if !o.Contains(c) || math.Abs(Dist(p, c)-3) > Eps {
		t.Errorf("closest = %v (dist %g), want dist 3", c, Dist(p, c))
	}
	in := Pt(1, 1)
	if got := o.ClosestPointTo(in); !got.Eq(in) {
		t.Error("interior point moved")
	}
}

func TestOctClosestPointAchievesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		o := randOctagon(rng, 20)
		p := Pt(rng.Float64()*60-30, rng.Float64()*60-30)
		c := o.ClosestPointTo(p)
		if !o.Contains(c) {
			t.Fatalf("closest point %v outside octagon", c)
		}
		want := o.DistPoint(p)
		if math.Abs(Dist(p, c)-want) > 1e-6 {
			t.Fatalf("closest achieves %g, formula %g (o=%v p=%v)",
				Dist(p, c), want, o, p)
		}
	}
}

func TestOctAnyPointInside(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 200; trial++ {
		o := randOctagon(rng, 20)
		if p := o.AnyPoint(); !o.Contains(p) {
			t.Fatalf("AnyPoint %v outside %v", p, o)
		}
	}
}

func TestOctString(t *testing.T) {
	if EmptyOctagon().String() != "Oct(empty)" {
		t.Error("empty octagon string")
	}
	if OctFromPoint(Pt(0, 0)).String() == "" {
		t.Error("empty string")
	}
}

func TestOctDistPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	EmptyOctagon().Dist(OctFromPoint(Pt(0, 0)))
}

func TestOctIntersectTRR(t *testing.T) {
	o := OctFromRect(0, 0, 10, 10)
	tr := Diamond(Pt(0, 0), 4)
	i := o.IntersectTRR(tr)
	if i.Empty() {
		t.Fatal("expected non-empty intersection")
	}
	if !i.Contains(Pt(1, 1)) {
		t.Error("missing (1,1)")
	}
	if i.Contains(Pt(5, 5)) {
		t.Error("contains point outside the diamond")
	}
	if !o.IntersectTRR(Diamond(Pt(100, 100), 1)).Empty() {
		t.Error("disjoint TRR intersection non-empty")
	}
}

func TestOctFromEmptyTRR(t *testing.T) {
	if !OctFromTRR(EmptyTRR()).Empty() {
		t.Error("octagon from empty TRR not empty")
	}
}
