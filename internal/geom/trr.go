package geom

import (
	"fmt"
	"math"
)

// TRR is a tilted rectangular region (§5 of the paper): the set of points
// on the boundary and interior of a rectangle rotated 45° in the Manhattan
// plane. In rotated coordinates it is the axis-aligned box
//
//	ULo ≤ x+y ≤ UHi,  VLo ≤ x−y ≤ VHi.
//
// Degenerate TRRs are first-class citizens exactly as in the paper: a
// width-zero TRR is a ±45° line segment (a zero-skew merging segment) and a
// fully degenerate TRR is a single point. A TRR with ULo > UHi or
// VLo > VHi is empty.
type TRR struct {
	ULo, UHi, VLo, VHi float64
}

// PointTRR returns the singleton TRR {p}.
func PointTRR(p Point) TRR {
	u, v := p.UV()
	return TRR{u, u, v, v}
}

// Diamond returns the square TRR of the paper: all points within Manhattan
// distance r of center c. It panics if r is negative.
func Diamond(c Point, r float64) TRR {
	if r < 0 {
		panic(fmt.Sprintf("geom: Diamond with negative radius %g", r))
	}
	return PointTRR(c).Expand(r)
}

// EmptyTRR returns a canonical empty TRR.
func EmptyTRR() TRR { return TRR{ULo: 1, UHi: -1, VLo: 1, VHi: -1} }

// Empty reports whether the region contains no points (beyond tolerance).
func (t TRR) Empty() bool {
	return t.ULo > t.UHi+Eps || t.VLo > t.VHi+Eps
}

// IsPoint reports whether the region is a single point within tolerance.
func (t TRR) IsPoint() bool {
	return !t.Empty() && t.UHi-t.ULo <= Eps && t.VHi-t.VLo <= Eps
}

// IsSegment reports whether the region has zero width: a ±45° line segment
// (possibly a point).
func (t TRR) IsSegment() bool {
	return !t.Empty() && (t.UHi-t.ULo <= Eps || t.VHi-t.VLo <= Eps)
}

// Width returns the smaller side extent of the TRR measured in Manhattan
// units (the paper's "width"; zero for merging segments).
func (t TRR) Width() float64 {
	if t.Empty() {
		return 0
	}
	return math.Min(t.UHi-t.ULo, t.VHi-t.VLo)
}

// Contains reports whether p lies in the region within tolerance.
func (t TRR) Contains(p Point) bool {
	u, v := p.UV()
	return u >= t.ULo-Eps && u <= t.UHi+Eps && v >= t.VLo-Eps && v <= t.VHi+Eps
}

// ContainsTRR reports whether every point of s lies in t within tolerance.
func (t TRR) ContainsTRR(s TRR) bool {
	if s.Empty() {
		return true
	}
	return s.ULo >= t.ULo-Eps && s.UHi <= t.UHi+Eps &&
		s.VLo >= t.VLo-Eps && s.VHi <= t.VHi+Eps
}

// Intersect returns t ∩ s, which is again a TRR (Fig. 5(c) of the paper).
func (t TRR) Intersect(s TRR) TRR {
	r := TRR{
		ULo: math.Max(t.ULo, s.ULo),
		UHi: math.Min(t.UHi, s.UHi),
		VLo: math.Max(t.VLo, s.VLo),
		VHi: math.Min(t.VHi, s.VHi),
	}
	// Snap near-degenerate intersections so that regions that touch within
	// tolerance produce a usable (non-empty) segment or point.
	if r.ULo > r.UHi && r.ULo <= r.UHi+Eps {
		m := (r.ULo + r.UHi) / 2
		r.ULo, r.UHi = m, m
	}
	if r.VLo > r.VHi && r.VLo <= r.VHi+Eps {
		m := (r.VLo + r.VHi) / 2
		r.VLo, r.VHi = m, m
	}
	return r
}

// Expand returns TRR(t, r) in the paper's notation: the set of points
// within Manhattan distance r of t (Fig. 5(b)). Expansion by a negative
// radius shrinks the region (useful for tests); the result may be empty.
func (t TRR) Expand(r float64) TRR {
	if t.Empty() {
		return t
	}
	return TRR{t.ULo - r, t.UHi + r, t.VLo - r, t.VHi + r}
}

// Dist returns the Manhattan distance between two TRRs: the minimum
// distance between any pair of their points, zero when they intersect
// (§10 of the paper). In rotated coordinates this is the L∞ distance
// between two boxes.
func (t TRR) Dist(s TRR) float64 {
	if t.Empty() || s.Empty() {
		panic("geom: Dist on empty TRR")
	}
	du := gap(t.ULo, t.UHi, s.ULo, s.UHi)
	dv := gap(t.VLo, t.VHi, s.VLo, s.VHi)
	return math.Max(du, dv)
}

// DistPoint returns the Manhattan distance from p to the region (zero when
// contained).
func (t TRR) DistPoint(p Point) float64 {
	return t.Dist(PointTRR(p))
}

// Center returns the center point of the region.
func (t TRR) Center() Point {
	return FromUV((t.ULo+t.UHi)/2, (t.VLo+t.VHi)/2)
}

// ClosestPointTo returns the point of the region nearest to p in Manhattan
// distance. Clamping u and v independently minimizes |Δu| and |Δv|
// simultaneously, hence also max(|Δu|,|Δv|) = L1 distance.
func (t TRR) ClosestPointTo(p Point) Point {
	if t.Empty() {
		panic("geom: ClosestPointTo on empty TRR")
	}
	u, v := p.UV()
	return FromUV(clamp(u, t.ULo, t.UHi), clamp(v, t.VLo, t.VHi))
}

// Corners returns the four corner points of the region (duplicated for
// degenerate regions), in counterclockwise order starting from the corner
// with minimal u on the minimal-v side.
func (t TRR) Corners() [4]Point {
	return [4]Point{
		FromUV(t.ULo, t.VLo),
		FromUV(t.UHi, t.VLo),
		FromUV(t.UHi, t.VHi),
		FromUV(t.ULo, t.VHi),
	}
}

// IntersectAll intersects all given TRRs; with no arguments it returns an
// empty region.
func IntersectAll(ts ...TRR) TRR {
	if len(ts) == 0 {
		return EmptyTRR()
	}
	r := ts[0]
	for _, t := range ts[1:] {
		r = r.Intersect(t)
	}
	return r
}

// PairwiseIntersect reports whether every pair of the given TRRs
// intersects. By the Helly property of TRRs (Lemma 10.1 of the paper) this
// holds iff IntersectAll of the same regions is non-empty; the property
// test in this package checks exactly that equivalence.
func PairwiseIntersect(ts []TRR) bool {
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if ts[i].Intersect(ts[j]).Empty() {
				return false
			}
		}
	}
	return true
}

// String renders the region for diagnostics.
func (t TRR) String() string {
	if t.Empty() {
		return "TRR(empty)"
	}
	return fmt.Sprintf("TRR(u:[%g,%g] v:[%g,%g])", t.ULo, t.UHi, t.VLo, t.VHi)
}
