package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randTRR(rng *rand.Rand, span float64) TRR {
	u := rng.Float64()*span - span/2
	v := rng.Float64()*span - span/2
	return TRR{u, u + rng.Float64()*span/4, v, v + rng.Float64()*span/4}
}

// randPointIn samples a uniform point from a non-empty TRR.
func randPointIn(rng *rand.Rand, t TRR) Point {
	u := t.ULo + rng.Float64()*(t.UHi-t.ULo)
	v := t.VLo + rng.Float64()*(t.VHi-t.VLo)
	return FromUV(u, v)
}

func TestPointTRR(t *testing.T) {
	p := Pt(3, 4)
	tr := PointTRR(p)
	if !tr.IsPoint() || !tr.Contains(p) {
		t.Errorf("PointTRR(%v) = %v", p, tr)
	}
	if tr.Contains(Pt(3.1, 4)) {
		t.Error("point TRR contains a different point")
	}
}

func TestDiamondContainment(t *testing.T) {
	c := Pt(1, 2)
	d := Diamond(c, 5)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		p := Pt(c.X+rng.Float64()*12-6, c.Y+rng.Float64()*12-6)
		in := Dist(c, p) <= 5
		if got := d.Contains(p); got != in && math.Abs(Dist(c, p)-5) > 1e-6 {
			t.Fatalf("Diamond contains %v = %v, dist %g", p, got, Dist(c, p))
		}
	}
}

func TestDiamondPanicsOnNegativeRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Diamond(Pt(0, 0), -1)
}

func TestTRREmpty(t *testing.T) {
	if !EmptyTRR().Empty() {
		t.Error("EmptyTRR not empty")
	}
	if PointTRR(Pt(0, 0)).Empty() {
		t.Error("point TRR is empty")
	}
	if (TRR{0, 1, 0, 1}).Empty() {
		t.Error("unit TRR is empty")
	}
}

func TestTRRIsSegment(t *testing.T) {
	seg := TRR{0, 5, 2, 2} // 45° segment
	if !seg.IsSegment() || seg.IsPoint() || seg.Empty() {
		t.Errorf("segment misclassified: %v", seg)
	}
	if seg.Width() != 0 {
		t.Errorf("segment width = %g", seg.Width())
	}
}

func TestTRRIntersectBasic(t *testing.T) {
	a := TRR{0, 4, 0, 4}
	b := TRR{2, 6, 2, 6}
	got := a.Intersect(b)
	want := TRR{2, 4, 2, 4}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(a).Contains(a.Center()) {
		t.Error("self-intersection lost the center")
	}
	far := TRR{10, 11, 10, 11}
	if !a.Intersect(far).Empty() {
		t.Error("disjoint intersection non-empty")
	}
}

func TestTRRIntersectCommutes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		a, b := randTRR(rng, 20), randTRR(rng, 20)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			t.Fatalf("intersection not commutative: %v vs %v", ab, ba)
		}
		if !ab.Empty() {
			c := ab.Center()
			if !a.Contains(c) || !b.Contains(c) {
				t.Fatalf("center of %v ∩ %v outside an operand", a, b)
			}
		}
	}
}

func TestTRRExpandDistIdentity(t *testing.T) {
	// dist(A, B) ≤ r  ⇔  A ∩ Expand(B, r) non-empty: the identity the
	// bottom-up feasible-region construction of §5 relies on.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		a, b := randTRR(rng, 30), randTRR(rng, 30)
		d := a.Dist(b)
		r := rng.Float64() * 20
		inter := a.Intersect(b.Expand(r))
		if (d <= r+Eps) != !inter.Empty() {
			t.Fatalf("dist=%g r=%g but intersection empty=%v (a=%v b=%v)",
				d, r, inter.Empty(), a, b)
		}
	}
}

func TestTRRDistMatchesSampledPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		a, b := randTRR(rng, 30), randTRR(rng, 30)
		d := a.Dist(b)
		best := math.Inf(1)
		for i := 0; i < 200; i++ {
			p, q := randPointIn(rng, a), randPointIn(rng, b)
			best = math.Min(best, Dist(p, q))
		}
		// Sampling can only overestimate the true minimum distance.
		if best < d-1e-6 {
			t.Fatalf("sampled distance %g below computed %g", best, d)
		}
		// And the closest-point construction must achieve it exactly.
		p := a.ClosestPointTo(b.Center())
		q := b.ClosestPointTo(p)
		p2 := a.ClosestPointTo(q)
		if got := Dist(p2, q); got < d-1e-6 {
			t.Fatalf("alternating projection found %g < dist %g", got, d)
		}
	}
}

func TestTRRDistZeroWhenIntersecting(t *testing.T) {
	a := TRR{0, 4, 0, 4}
	b := TRR{2, 6, -1, 1}
	if d := a.Dist(b); d != 0 {
		t.Errorf("Dist of intersecting TRRs = %g", d)
	}
}

func TestTRRDistKnown(t *testing.T) {
	// Two points: distance must be Manhattan distance.
	a := PointTRR(Pt(0, 0))
	b := PointTRR(Pt(3, 4))
	if d := a.Dist(b); math.Abs(d-7) > Eps {
		t.Errorf("point-point TRR dist = %g, want 7", d)
	}
	// Two diamonds radius 1 centered 7 apart: distance 5.
	da := Diamond(Pt(0, 0), 1)
	db := Diamond(Pt(3, 4), 1)
	if d := da.Dist(db); math.Abs(d-5) > Eps {
		t.Errorf("diamond dist = %g, want 5", d)
	}
}

func TestTRRClosestPointTo(t *testing.T) {
	tr := Diamond(Pt(0, 0), 2)
	p := Pt(10, 0)
	c := tr.ClosestPointTo(p)
	if !tr.Contains(c) {
		t.Fatalf("closest point %v outside region", c)
	}
	if d := Dist(p, c); math.Abs(d-8) > Eps {
		t.Errorf("closest distance = %g, want 8", d)
	}
	inside := Pt(0.5, 0.5)
	if got := tr.ClosestPointTo(inside); !got.Eq(inside) {
		t.Errorf("closest point to interior point moved: %v", got)
	}
}

func TestTRRClosestPointIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		tr := randTRR(rng, 20)
		p := Pt(rng.Float64()*40-20, rng.Float64()*40-20)
		c := tr.ClosestPointTo(p)
		if !tr.Contains(c) {
			t.Fatalf("closest point outside TRR")
		}
		want := tr.DistPoint(p)
		if math.Abs(Dist(p, c)-want) > 1e-6 {
			t.Fatalf("closest point at %g, DistPoint %g", Dist(p, c), want)
		}
	}
}

func TestTRRCorners(t *testing.T) {
	tr := TRR{0, 2, 0, 2}
	for _, c := range tr.Corners() {
		if !tr.Contains(c) {
			t.Errorf("corner %v outside TRR", c)
		}
	}
}

func TestTRRExpandGrowsContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		a := randTRR(rng, 20)
		r := rng.Float64() * 5
		e := a.Expand(r)
		if !e.ContainsTRR(a) {
			t.Fatalf("Expand(%g) lost containment", r)
		}
		p := randPointIn(rng, a)
		q := Pt(p.X+r/2, p.Y)
		if !e.Contains(q) {
			t.Fatalf("point within r of region not in expansion")
		}
	}
}

// Lemma 10.1 (Helly property of TRRs): pairwise intersecting TRRs have a
// common point. This is the keystone of the Theorem 4.1 embedding proof.
func TestHellyPropertyLemma101(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(8)
		ts := make([]TRR, n)
		for i := range ts {
			ts[i] = randTRR(rng, 25)
		}
		pair := PairwiseIntersect(ts)
		all := !IntersectAll(ts...).Empty()
		if pair != all {
			t.Fatalf("Helly violated: pairwise=%v common=%v for %v", pair, all, ts)
		}
	}
}

// The Helly property fails for Euclidean disks — the reason EBF is
// restricted to the Manhattan metric (§4.7, footnote 3). Three unit disks
// centered on an equilateral triangle of side ~1.99 intersect pairwise but
// share no common point; verify our TRR machinery does NOT model that
// (diamonds with the same centers and radii do share a point or do not
// pairwise intersect — i.e. the property test above still holds for them).
func TestHellyHoldsForDiamondsOnTriangle(t *testing.T) {
	centers := []Point{Pt(0, 0), Pt(1.99, 0), Pt(1, 1.7)}
	for r := 0.5; r < 3; r += 0.125 {
		ts := []TRR{Diamond(centers[0], r), Diamond(centers[1], r), Diamond(centers[2], r)}
		if PairwiseIntersect(ts) != !IntersectAll(ts...).Empty() {
			t.Fatalf("Helly violated for diamonds at r=%g", r)
		}
	}
}

func TestIntersectAllEmptyInput(t *testing.T) {
	if !IntersectAll().Empty() {
		t.Error("IntersectAll() should be empty")
	}
}

func TestTRRString(t *testing.T) {
	if EmptyTRR().String() != "TRR(empty)" {
		t.Error("empty TRR string")
	}
	if s := (TRR{0, 1, 0, 1}).String(); s == "" {
		t.Error("empty string for valid TRR")
	}
}

func TestTRRDistPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	EmptyTRR().Dist(PointTRR(Pt(0, 0)))
}

func TestTRRWidthAndExpandDegenerate(t *testing.T) {
	if EmptyTRR().Width() != 0 {
		t.Error("empty width")
	}
	if !EmptyTRR().Expand(3).Empty() {
		t.Error("expanding an empty TRR must stay empty")
	}
	sq := Diamond(Pt(0, 0), 2)
	if w := sq.Width(); math.Abs(w-4) > Eps {
		t.Errorf("square TRR width = %g, want 4 (u/v extent)", w)
	}
	// Negative expansion shrinks to empty.
	if !sq.Expand(-3).Empty() {
		t.Error("over-shrunk TRR not empty")
	}
}

func TestContainsTRRCases(t *testing.T) {
	big := Diamond(Pt(0, 0), 5)
	small := Diamond(Pt(1, 0), 1)
	if !big.ContainsTRR(small) {
		t.Error("containment missed")
	}
	if small.ContainsTRR(big) {
		t.Error("reverse containment accepted")
	}
	if !small.ContainsTRR(EmptyTRR()) {
		t.Error("empty TRR must be contained everywhere")
	}
}

func TestIntersectSnapsTolerantTouch(t *testing.T) {
	// Two diamonds whose gap is below Eps must yield a snapped point-ish
	// intersection rather than empty.
	a := Diamond(Pt(0, 0), 1)
	b := Diamond(Pt(2+Eps/4, 0), 1)
	if a.Intersect(b).Empty() {
		t.Error("touch within tolerance reported empty")
	}
	c := Diamond(Pt(2.1, 0), 1)
	if !a.Intersect(c).Empty() {
		t.Error("clear gap reported non-empty")
	}
}

func TestClosestPointToPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	EmptyTRR().ClosestPointTo(Pt(0, 0))
}

func TestPointAdd(t *testing.T) {
	if got := Pt(1, 2).Add(3, -1); !got.Eq(Pt(4, 1)) {
		t.Errorf("Add = %v", got)
	}
}
