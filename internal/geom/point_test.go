package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Pt(0, 0), Pt(0, 0), 0},
		{Pt(0, 0), Pt(3, 4), 7},
		{Pt(-1, -1), Pt(1, 1), 4},
		{Pt(2, 5), Pt(2, 5), 0},
		{Pt(1.5, 0), Pt(0, 2.5), 4},
	}
	for _, c := range cases {
		if got := Dist(c.a, c.b); math.Abs(got-c.want) > Eps {
			t.Errorf("Dist(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := Dist(c.b, c.a); math.Abs(got-c.want) > Eps {
			t.Errorf("Dist(%v,%v) = %g, want %g (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestEuclidDist(t *testing.T) {
	if got := EuclidDist(Pt(0, 0), Pt(3, 4)); math.Abs(got-5) > Eps {
		t.Errorf("EuclidDist = %g, want 5", got)
	}
}

func TestUVRoundTrip(t *testing.T) {
	f := func(x, y float64) bool {
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		p := Pt(x, y)
		u, v := p.UV()
		return FromUV(u, v).Eq(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Manhattan distance in the plane must equal Chebyshev distance in rotated
// coordinates — the identity every TRR operation relies on.
func TestManhattanIsChebyshevInUV(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Pt(math.Mod(ax, 1e6), math.Mod(ay, 1e6))
		b := Pt(math.Mod(bx, 1e6), math.Mod(by, 1e6))
		au, av := a.UV()
		bu, bv := b.UV()
		cheb := math.Max(math.Abs(au-bu), math.Abs(av-bv))
		return math.Abs(Dist(a, b)-cheb) <= 1e-6*(1+cheb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := Pt(rng.Float64()*100, rng.Float64()*100)
		b := Pt(rng.Float64()*100, rng.Float64()*100)
		c := Pt(rng.Float64()*100, rng.Float64()*100)
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+Eps {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestBBox(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	xlo, ylo, xhi, yhi := BBox(pts)
	if xlo != -2 || ylo != -1 || xhi != 4 || yhi != 5 {
		t.Errorf("BBox = (%g,%g,%g,%g)", xlo, ylo, xhi, yhi)
	}
}

func TestBBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BBox(nil) did not panic")
		}
	}()
	BBox(nil)
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		pts  []Point
		want float64
	}{
		{nil, 0},
		{[]Point{Pt(0, 0)}, 0},
		{[]Point{Pt(0, 0), Pt(3, 4)}, 7},
		{[]Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)}, 2},
		{[]Point{Pt(0, 0), Pt(10, 0), Pt(5, 5)}, 10},
	}
	for i, c := range cases {
		if got := Diameter(c.pts); math.Abs(got-c.want) > Eps {
			t.Errorf("case %d: Diameter = %g, want %g", i, got, c.want)
		}
	}
}

// Diameter computed via rotated-coordinate extents must match the O(n²)
// brute force.
func TestDiameterBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000-500, rng.Float64()*1000-500)
		}
		var brute float64
		for i := range pts {
			for j := i + 1; j < n; j++ {
				brute = math.Max(brute, Dist(pts[i], pts[j]))
			}
		}
		if got := Diameter(pts); math.Abs(got-brute) > 1e-9 {
			t.Fatalf("Diameter = %g, brute force = %g", got, brute)
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(5, 0, 3) != 3 || clamp(-1, 0, 3) != 0 || clamp(2, 0, 3) != 2 {
		t.Error("clamp misbehaves")
	}
}

func TestGap(t *testing.T) {
	if gap(0, 1, 2, 3) != 1 || gap(2, 3, 0, 1) != 1 || gap(0, 2, 1, 3) != 0 {
		t.Error("gap misbehaves")
	}
}
