package geom

import "math"

// Eps is the tolerance used for geometric comparisons throughout the
// package. Instances are expected to have coordinates of magnitude well
// below 1e12, so an absolute tolerance suffices.
const Eps = 1e-7

// Point is a location in the Manhattan plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Dist returns the Manhattan (L1) distance between a and b.
func Dist(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// EuclidDist returns the Euclidean (L2) distance between a and b. It is
// used only by the Euclidean counterexample of §4.7.
func EuclidDist(a, b Point) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// UV returns the rotated coordinates (u, v) = (x+y, x−y) of p.
func (p Point) UV() (u, v float64) { return p.X + p.Y, p.X - p.Y }

// FromUV converts rotated coordinates back to a plane point.
func FromUV(u, v float64) Point { return Point{(u + v) / 2, (u - v) / 2} }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// Eq reports whether p and q coincide within Eps in each coordinate.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// BBox returns the axis-aligned bounding box of the given points as
// (xlo, ylo, xhi, yhi). It panics on an empty slice.
func BBox(pts []Point) (xlo, ylo, xhi, yhi float64) {
	if len(pts) == 0 {
		panic("geom: BBox of empty point set")
	}
	xlo, ylo = pts[0].X, pts[0].Y
	xhi, yhi = xlo, ylo
	for _, p := range pts[1:] {
		xlo = math.Min(xlo, p.X)
		ylo = math.Min(ylo, p.Y)
		xhi = math.Max(xhi, p.X)
		yhi = math.Max(yhi, p.Y)
	}
	return xlo, ylo, xhi, yhi
}

// Diameter returns the Manhattan diameter of the point set: the distance
// between the farthest pair. Because L1 becomes L∞ in rotated coordinates,
// the diameter is max(u-extent, v-extent), computed in O(n).
func Diameter(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	u0, v0 := pts[0].UV()
	ulo, uhi, vlo, vhi := u0, u0, v0, v0
	for _, p := range pts[1:] {
		u, v := p.UV()
		ulo = math.Min(ulo, u)
		uhi = math.Max(uhi, u)
		vlo = math.Min(vlo, v)
		vhi = math.Max(vhi, v)
	}
	return math.Max(uhi-ulo, vhi-vlo)
}

// gap returns the separation between intervals [lo1,hi1] and [lo2,hi2];
// zero when they overlap.
func gap(lo1, hi1, lo2, hi2 float64) float64 {
	if g := lo2 - hi1; g > 0 {
		return g
	}
	if g := lo1 - hi2; g > 0 {
		return g
	}
	return 0
}

// clamp restricts x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
