package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices (which must all have equal
// length).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Reshape resizes the matrix in place to rows×cols and zeroes every
// entry, reusing the backing slice when its capacity allows. The revised
// dual-simplex engine uses this to resize its basis-core scratch matrix
// as the structural core grows across refactorizations without
// reallocating each time.
func (m *Matrix) Reshape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MulVec computes y = M x. The receiver must have Cols == len(x).
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecT computes y = Mᵀ x without materializing the transpose.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("linalg: MulVecT shape mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul returns the matrix product M·N.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic("linalg: Mul shape mismatch")
	}
	p := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		pi := p.Row(i)
		for k, mv := range mi {
			if mv == 0 {
				continue
			}
			nk := n.Row(k)
			for j, nv := range nk {
				pi[j] += mv * nv
			}
		}
	}
	return p
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-absolute-value norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AddScaled computes dst += s·src in place.
func AddScaled(dst []float64, s float64, src []float64) {
	if len(dst) != len(src) {
		panic("linalg: AddScaled length mismatch")
	}
	for i, v := range src {
		dst[i] += s * v
	}
}

// Scale multiplies v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}
