// Package linalg provides the dense linear algebra needed by the LP
// solvers: row-major matrices, LU factorization with partial pivoting,
// Cholesky factorization, triangular solves, and small vector helpers. It
// is deliberately small — just enough for the simplex and interior-point
// methods in internal/lp — and uses no dependencies beyond the standard
// library.
//
// # Contracts
//
//   - Matrix is row-major: Row(i) returns a contiguous slice aliasing the
//     backing array. Reshape(r, c) reuses the backing capacity and zeroes
//     the content — the revised simplex resizes its basis-core scratch
//     matrix in place on every refactorization, so the structural-core
//     dimension t can grow and shrink without churning the allocator.
//   - FactorLU computes P·A = L·U with partial pivoting, packing both
//     triangles into one matrix (unit diagonal of L implicit); the input
//     matrix is not modified. Numerically singular pivots surface as
//     ErrSingular, never as NaN results.
//   - LU.SolveInto / SolveTransposeInto are the allocation-free FTRAN /
//     BTRAN hot paths of the revised dual simplex: both run in
//     outer-product (saxpy) form so every inner loop walks one contiguous
//     row, and a pass skips rows whose multiplier is exactly zero — which
//     the eta-file BTRAN (a unit right-hand side) hits constantly.
//     Destination slices must not alias the right-hand side.
//   - LU.NNZ counts stored nonzeros of the packed factor; comparing it
//     with the nonzero count of the factored matrix measures fill-in
//     (surfaced as lp.Stats.FillIn).
//   - Cholesky requires numeric symmetric positive definiteness and
//     reports ErrNotSPD otherwise; the interior-point normal equations
//     are its only caller.
package linalg
