package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not (numerically)
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// LU holds an LU factorization with partial pivoting: P·A = L·U, with L
// unit lower triangular and U upper triangular, packed into one matrix.
type LU struct {
	lu      *Matrix
	luT     *Matrix // transposed copy of lu, for column-order substitution
	perm    []int
	scratch []float64 // transpose-solve intermediate, reused across calls
}

// FactorLU computes the LU factorization of the square matrix a. The input
// is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorLU of non-square matrix")
	}
	return FactorLUInto(a, nil)
}

// Solve computes x such that A x = b for the factored A.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.lu.Rows)
	f.SolveInto(b, x)
	return x
}

// SolveInto is Solve writing the result into x (len n, may not alias b):
// the allocation-free hot path of the revised simplex FTRAN.
func (f *LU) SolveInto(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU.SolveInto length mismatch")
	}
	for i, p := range f.perm {
		x[i] = b[p]
	}
	// Both substitution passes run in outer-product (saxpy) form over the
	// transposed factor copy: column i of L (or U) is row i of luT, so the
	// inner loops stay contiguous and a pass skips row i outright when its
	// multiplier is zero — the usual case when the simplex FTRAN pushes a
	// sparse entering column through.
	for i := 0; i < n-1; i++ {
		v := x[i]
		if v != 0 {
			ti := f.luT.Row(i)
			for j := i + 1; j < n; j++ {
				x[j] -= ti[j] * v
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		ti := f.luT.Row(i)
		v := x[i] / ti[i]
		x[i] = v
		if v != 0 {
			for j, uji := range ti[:i] {
				x[j] -= uji * v
			}
		}
	}
}

// SolveTranspose computes x such that Aᵀ x = b for the factored A. With
// P·A = L·U this is Uᵀ(Lᵀ(P x)) = b: a forward solve with Uᵀ, a backward
// solve with the unit triangle Lᵀ, and an inverse row permutation. The
// revised simplex BTRAN pass is built on this.
func (f *LU) SolveTranspose(b []float64) []float64 {
	x := make([]float64, f.lu.Rows)
	f.SolveTransposeInto(b, x)
	return x
}

// SolveTransposeInto is SolveTranspose writing the result into x (len n,
// may not alias b). Both substitution passes run in outer-product (saxpy)
// form, so every inner loop walks one contiguous row of the row-major LU
// packing instead of striding down a column — and a pass skips row i
// entirely when its multiplier is zero, which the simplex BTRAN (a unit
// right-hand side pushed through the eta file) hits constantly.
func (f *LU) SolveTransposeInto(b, x []float64) {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU.SolveTransposeInto length mismatch")
	}
	y := f.scratch
	if len(y) != n {
		y = make([]float64, n)
		f.scratch = y
	}
	copy(y, b)
	// Forward substitution with Uᵀ (lower triangular, diagonal from U):
	// once y[i] is final, scatter its contribution via row i of U.
	for i := 0; i < n; i++ {
		ri := f.lu.Row(i)
		v := y[i] / ri[i]
		y[i] = v
		if v != 0 {
			for j := i + 1; j < n; j++ {
				y[j] -= ri[j] * v
			}
		}
	}
	// Back substitution with Lᵀ (unit upper triangular): scatter via the
	// strict lower part of row i.
	for i := n - 1; i > 0; i-- {
		v := y[i]
		if v != 0 {
			for j, lij := range f.lu.Row(i)[:i] {
				y[j] -= lij * v
			}
		}
	}
	// Undo the pivoting: (P x)_i = x_{perm[i]} = y_i.
	for i, p := range f.perm {
		x[p] = y[i]
	}
}

// NNZ returns the number of nonzeros stored in the packed LU factor (both
// triangles, excluding the implicit unit diagonal of L). Comparing it with
// the nonzero count of the factored matrix measures fill-in.
func (f *LU) NNZ() int {
	nnz := 0
	for _, v := range f.lu.Data {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

// Dim returns the dimension of the factored matrix.
func (f *LU) Dim() int { return f.lu.Rows }

// FactorLUInto is FactorLU reusing the storage of a previous factorization
// of the same dimension (prev may be nil or differently sized, in which
// case fresh storage is allocated). The incremental LP engines refactor
// their basis periodically; this hook keeps those refactorizations
// allocation-free in steady state.
func FactorLUInto(a *Matrix, prev *LU) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorLUInto of non-square matrix")
	}
	n := a.Rows
	f := prev
	if f == nil || f.lu == nil || f.lu.Rows != n || f.lu.Cols != n {
		f = &LU{lu: NewMatrix(n, n), luT: NewMatrix(n, n), perm: make([]int, n)}
	}
	copy(f.lu.Data, a.Data)
	for i := range f.perm {
		f.perm[i] = i
	}
	if err := f.factorInPlace(); err != nil {
		return nil, err
	}
	// Keep a transposed copy of the packed factors: O(n²) against the
	// O(n³) elimination, and it buys contiguous column-order substitution
	// in SolveInto.
	for i := 0; i < n; i++ {
		ri := f.lu.Row(i)
		for j, v := range ri {
			f.luT.Set(j, i, v)
		}
	}
	return f, nil
}

// factorInPlace runs the pivoted elimination over f.lu/f.perm.
func (f *LU) factorInPlace() error {
	lu, perm := f.lu, f.perm
	n := lu.Rows
	for k := 0; k < n; k++ {
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best < 1e-13 {
			return ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// SolveLU is a convenience wrapper: factor a and solve a single system.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky holds the lower-triangular Cholesky factor L of an SPD matrix:
// A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a (only the lower triangle of a is read). A
// small diagonal regularization reg (≥ 0) is added, which interior-point
// methods use to keep nearly-degenerate normal equations factorable.
func FactorCholesky(a *Matrix, reg float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorCholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + reg
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve computes x such that A x = b for the factored SPD matrix A.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve length mismatch")
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ri := c.l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	// Back: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}
