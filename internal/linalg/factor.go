package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorization meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not (numerically)
// symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// LU holds an LU factorization with partial pivoting: P·A = L·U, with L
// unit lower triangular and U upper triangular, packed into one matrix.
type LU struct {
	lu   *Matrix
	perm []int
}

// FactorLU computes the LU factorization of the square matrix a. The input
// is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorLU of non-square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p, best := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best < 1e-13 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, perm: perm}, nil
}

// Solve computes x such that A x = b for the factored A.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU.Solve length mismatch")
	}
	x := make([]float64, n)
	for i, p := range f.perm {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// SolveLU is a convenience wrapper: factor a and solve a single system.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky holds the lower-triangular Cholesky factor L of an SPD matrix:
// A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of the symmetric
// positive definite matrix a (only the lower triangle of a is read). A
// small diagonal regularization reg (≥ 0) is added, which interior-point
// methods use to keep nearly-degenerate normal equations factorable.
func FactorCholesky(a *Matrix, reg float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: FactorCholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j) + reg
		lj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lj[k] * lj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			li := l.Row(i)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve computes x such that A x = b for the factored SPD matrix A.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve length mismatch")
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ri := c.l.Row(i)
		s := b[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s / ri[i]
	}
	// Back: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}
