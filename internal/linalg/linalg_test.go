package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At wrong")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Error("Set wrong")
	}
	tr := m.T()
	if tr.Rows != 2 || tr.Cols != 3 || tr.At(1, 2) != 6 {
		t.Error("T wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) == 42 {
		t.Error("Clone shares storage")
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v", y)
	}
	yt := m.MulVecT([]float64{1, 1})
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Errorf("MulVecT = %v", yt)
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul = %v", c.Data)
			}
		}
	}
}

func TestDotNormScale(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 wrong")
	}
	if NormInf([]float64{-7, 3}) != 7 {
		t.Error("NormInf wrong")
	}
	v := []float64{1, 2}
	AddScaled(v, 2, []float64{1, 1})
	if v[0] != 3 || v[1] != 4 {
		t.Error("AddScaled wrong")
	}
	Scale(v, 0.5)
	if v[0] != 1.5 || v[1] != 2 {
		t.Error("Scale wrong")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, 1},
		{4, -6, 0},
		{-2, 7, 2},
	})
	b := []float64{5, -2, 9}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestLURandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps the matrix well conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("n=%d x=%v want=%v", n, x, xTrue)
			}
		}
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero pivot in the (0,0) position forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v", x)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 0},
		{2, 5, 3},
		{0, 3, 6},
	})
	ch, err := FactorCholesky(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{2, 7, 9}
	x := ch.Solve(b)
	got := a.MulVec(x)
	for i := range b {
		if !almostEq(got[i], b[i], 1e-9) {
			t.Fatalf("A·x = %v, want %v", got, b)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := FactorCholesky(a, 0); err != ErrNotSPD {
		t.Errorf("err = %v, want ErrNotSPD", err)
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		g := NewMatrix(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g) // Gram matrix: SPD up to rank deficiency
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.5) // ensure strict positive definiteness
		}
		ch, err := FactorCholesky(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b := a.MulVec(xTrue)
		x := ch.Solve(b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7) {
				t.Fatalf("n=%d x=%v want=%v", n, x, xTrue)
			}
		}
	}
}

func TestCholeskyRegularization(t *testing.T) {
	// Singular Gram matrix becomes factorable with regularization.
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := FactorCholesky(a, 0); err == nil {
		t.Fatal("expected failure without regularization")
	}
	if _, err := FactorCholesky(a, 1e-8); err != nil {
		t.Fatalf("regularized factorization failed: %v", err)
	}
}

func TestShapePanics(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, f := range []func(){
		func() { m.MulVec([]float64{1}) },
		func() { m.MulVecT([]float64{1}) },
		func() { m.Mul(NewMatrix(2, 2)) },
		func() { Dot([]float64{1}, []float64{1, 2}) },
		func() { FactorLU(m) },
		func() { FactorCholesky(m, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLUSolveTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+4) // keep well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		f, err := FactorLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x := f.SolveTranspose(b)
		// Check Aᵀ x = b, i.e. xᵀ A = bᵀ.
		got := a.T().MulVec(x)
		for i := range b {
			if !almostEq(got[i], b[i], 1e-9*(1+math.Abs(b[i]))) {
				t.Fatalf("trial %d: (Aᵀx)[%d] = %g, want %g", trial, i, got[i], b[i])
			}
		}
	}
}

func TestFactorLUIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n := 8
	mk := func() *Matrix {
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+4)
		}
		return a
	}
	a1, a2 := mk(), mk()
	f, err := FactorLUInto(a1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Dim() != n || f.NNZ() == 0 {
		t.Fatalf("dim %d nnz %d", f.Dim(), f.NNZ())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Refactor in place over a different matrix; solutions must match a
	// fresh factorization.
	f2, err := FactorLUInto(a2, f)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Error("FactorLUInto did not reuse storage")
	}
	fresh, err := FactorLU(a2)
	if err != nil {
		t.Fatal(err)
	}
	x1, x2 := f2.Solve(append([]float64(nil), b...)), fresh.Solve(append([]float64(nil), b...))
	for i := range x1 {
		if !almostEq(x1[i], x2[i], 1e-12*(1+math.Abs(x2[i]))) {
			t.Fatalf("reused factor diverges at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
	// Mismatched size must allocate fresh storage, not panic.
	small := FromRows([][]float64{{2}})
	fs, err := FactorLUInto(small, f)
	if err != nil || fs.Dim() != 1 {
		t.Fatalf("size change: %v dim %d", err, fs.Dim())
	}
}

func TestFactorLUIntoSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLUInto(a, nil); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestLUZeroDim(t *testing.T) {
	f, err := FactorLU(NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if x := f.Solve(nil); len(x) != 0 {
		t.Fatal("0-dim solve returned values")
	}
	if x := f.SolveTranspose(nil); len(x) != 0 {
		t.Fatal("0-dim transpose solve returned values")
	}
}
