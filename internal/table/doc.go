// Package table renders plain-text aligned tables for the benchmark
// harness, mirroring the layout of the paper's Tables 1–3.
package table
