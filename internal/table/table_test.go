package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Title", "bench", "cost")
	tb.Add("prim1", "132539.75")
	tb.Add("r3", "42")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Title", "bench", "cost", "prim1", "132539.75", "r3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestAddf(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Addf("x", 3.14159, 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "3.14") || strings.Contains(buf.String(), "3.14159") {
		t.Errorf("float formatting wrong:\n%s", buf.String())
	}
	if tb.NumRows() != 1 {
		t.Error("NumRows wrong")
	}
}

func TestShortRowsPadded(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add("only")
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "only") {
		t.Error("row lost")
	}
}
