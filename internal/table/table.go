package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; short rows are padded with empty cells.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Addf appends a row of formatted cells; each argument is rendered with
// %v except float64, which uses %.2f.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.Add(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
