package zst

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/delay"
	"lubt/internal/embed"
	"lubt/internal/geom"
	"lubt/internal/topology"
)

// Result is a routed exact zero-skew tree.
type Result struct {
	Tree *topology.Tree
	// E holds the constructed edge lengths.
	E []float64
	// Cost is the total wirelength.
	Cost float64
	// Delay is the common Elmore source-sink delay.
	Delay float64
	// Delays holds the per-node Elmore delays (sinks all equal Delay).
	Delays []float64
	// Placement is the DME embedding.
	Placement *embed.Placement
}

// Route builds an exact zero-skew tree over the sinks under the Elmore
// model. sinks[i] is the location of sink i+1; source, when non-nil, is
// the fixed root location (connected by a final balanced... the source
// edge adds equal delay to every sink, so zero skew is preserved).
func Route(sinks []geom.Point, mdl delay.Elmore, source *geom.Point) (*Result, error) {
	m := len(sinks)
	if m == 0 {
		return nil, errors.New("zst: no sinks")
	}
	if mdl.Rw <= 0 || mdl.Cw <= 0 {
		return nil, fmt.Errorf("zst: Elmore model needs positive r_w and c_w (got %g, %g)", mdl.Rw, mdl.Cw)
	}
	if m == 1 && source == nil {
		return nil, errors.New("zst: a single sink needs a source location")
	}

	type cluster struct {
		node  int // temp node id
		ms    geom.TRR
		t     float64 // common Elmore delay from the merging segment
		c     float64 // subtree capacitance (sinks + wires below)
		alive bool
	}
	clusters := make([]cluster, 1, 2*m)
	for i, p := range sinks {
		clusters = append(clusters, cluster{
			node: i + 1, ms: geom.PointTRR(p), c: capOf(mdl, i+1), alive: true,
		})
	}
	parent := make([]int, 2*m)
	eTmp := make([]float64, 2*m)
	for i := range parent {
		parent[i] = -1
	}

	// balance returns the wire split (l1, l2) that equalizes delay when
	// joining clusters a, b across segment distance d, plus the merged
	// delay and the total wire spent.
	balance := func(a, b *cluster, d float64) (l1, l2, t float64) {
		if d > 0 {
			// Tapping point x ∈ [0,1] on the direct wire (Tsay's formula):
			// t1 + r x d (c x d/2 + C1) = t2 + r (1−x) d (c (1−x) d /2 + C2).
			x := (b.t - a.t + mdl.Rw*d*(b.c+mdl.Cw*d/2)) /
				(mdl.Rw * d * (a.c + b.c + mdl.Cw*d))
			if x >= 0 && x <= 1 {
				l1, l2 = x*d, (1-x)*d
				t = a.t + mdl.Rw*l1*(mdl.Cw*l1/2+a.c)
				return l1, l2, t
			}
			if x < 0 {
				// Side a is too slow even with the whole wire on b's side:
				// elongate b's wire beyond d.
				l1 = 0
				l2 = elongation(mdl, a.t-b.t, b.c)
				return l1, l2, a.t
			}
			// x > 1: side b too slow; elongate a's wire.
			l2 = 0
			l1 = elongation(mdl, b.t-a.t, a.c)
			return l1, l2, b.t
		}
		// Segments touch: pure elongation (or zero wire when balanced).
		switch {
		case a.t > b.t:
			return 0, elongation(mdl, a.t-b.t, b.c), a.t
		case b.t > a.t:
			return elongation(mdl, b.t-a.t, a.c), 0, b.t
		default:
			return 0, 0, a.t
		}
	}
	mergeCost := func(a, b *cluster) float64 {
		l1, l2, _ := balance(a, b, a.ms.Dist(b.ms))
		return l1 + l2
	}

	alive := make([]int, 0, m)
	for i := 1; i <= m; i++ {
		alive = append(alive, i)
	}
	nn := make([]int, 2*m)
	nnCost := make([]float64, 2*m)
	for i := range nn {
		nn[i] = -1
	}
	refresh := func(ci int) {
		nn[ci] = -1
		nnCost[ci] = math.Inf(1)
		for _, cj := range alive {
			if cj == ci {
				continue
			}
			if s := mergeCost(&clusters[ci], &clusters[cj]); s < nnCost[ci] {
				nn[ci], nnCost[ci] = cj, s
			}
		}
	}

	nextNode := m + 1
	for len(alive) > 1 {
		bi := -1
		for _, ci := range alive {
			if nn[ci] < 0 || !clusters[nn[ci]].alive {
				refresh(ci)
			}
			if bi < 0 || nnCost[ci] < nnCost[bi] {
				bi = ci
			}
		}
		bj := nn[bi]
		a, b := &clusters[bi], &clusters[bj]
		d := a.ms.Dist(b.ms)
		l1, l2, t := balance(a, b, d)
		ms := a.ms.Expand(l1).Intersect(b.ms.Expand(l2))
		if ms.Empty() {
			return nil, fmt.Errorf("zst: internal error: empty merging segment joining %d and %d", a.node, b.node)
		}
		merged := cluster{
			node:  nextNode,
			ms:    ms,
			t:     t,
			c:     a.c + b.c + mdl.Cw*(l1+l2),
			alive: true,
		}
		parent[a.node] = nextNode
		parent[b.node] = nextNode
		eTmp[a.node] = l1
		eTmp[b.node] = l2
		nextNode++
		a.alive = false
		b.alive = false
		out := alive[:0]
		for _, ci := range alive {
			if ci != bi && ci != bj {
				out = append(out, ci)
			}
		}
		clusters = append(clusters, merged)
		alive = append(out, len(clusters)-1)
		nn[len(clusters)-1] = -1
	}

	top := clusters[alive[0]]
	var tree *topology.Tree
	var e []float64
	var err error
	if source != nil {
		parent[0] = -1
		parent[top.node] = 0
		eTmp[top.node] = top.ms.DistPoint(*source)
		tree, err = topology.New(parent[:nextNode], m)
		if err != nil {
			return nil, fmt.Errorf("zst: %w", err)
		}
		e = eTmp[:nextNode]
	} else {
		n := nextNode - 1
		pArr := make([]int, n)
		e = make([]float64, n)
		newID := func(i int) int {
			if i == top.node {
				return 0
			}
			return i
		}
		pArr[0] = -1
		for i := 1; i < nextNode; i++ {
			if i == top.node {
				continue
			}
			pArr[newID(i)] = newID(parent[i])
			e[newID(i)] = eTmp[i]
		}
		tree, err = topology.New(pArr, m)
		if err != nil {
			return nil, fmt.Errorf("zst: %w", err)
		}
	}

	sinkLoc := make([]geom.Point, m+1)
	copy(sinkLoc[1:], sinks)
	pl, err := embed.Place(tree, sinkLoc, source, e, nil)
	if err != nil {
		return nil, fmt.Errorf("zst: constructed lengths failed to embed: %w", err)
	}
	delays := mdl.Delays(tree, e)
	res := &Result{
		Tree:      tree,
		E:         e,
		Delays:    delays,
		Placement: pl,
		Delay:     delays[1],
	}
	for k := 1; k < tree.N(); k++ {
		res.Cost += e[k]
	}
	return res, nil
}

// elongation returns the wire length l solving
//
//	r l (c l / 2 + C) = Δt,  l ≥ 0,
//
// the snaking length that slows a subtree with load C by exactly Δt.
func elongation(mdl delay.Elmore, dt, c float64) float64 {
	if dt <= 0 {
		return 0
	}
	return (-c + math.Sqrt(c*c+2*mdl.Cw*dt/mdl.Rw)) / mdl.Cw
}

func capOf(mdl delay.Elmore, sink int) float64 {
	if mdl.SinkCap == nil || sink >= len(mdl.SinkCap) {
		return 0
	}
	return mdl.SinkCap[sink]
}
