package zst

import (
	"math"
	"math/rand"
	"testing"

	"lubt/internal/delay"
	"lubt/internal/embed"
	"lubt/internal/geom"
)

func randSinks(rng *rand.Rand, m int) []geom.Point {
	s := make([]geom.Point, m)
	for i := range s {
		s[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return s
}

func sinkSkew(res *Result) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 1; i <= res.Tree.NumSinks; i++ {
		lo = math.Min(lo, res.Delays[i])
		hi = math.Max(hi, res.Delays[i])
	}
	return hi - lo
}

func TestRouteExactZeroSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(20)
		sinks := randSinks(rng, m)
		caps := make([]float64, m+1)
		for i := 1; i <= m; i++ {
			caps[i] = rng.Float64() * 4
		}
		mdl := delay.Elmore{Rw: 0.05 + rng.Float64()*0.1, Cw: 0.05 + rng.Float64()*0.1, SinkCap: caps}
		var source *geom.Point
		if rng.Intn(2) == 0 {
			s := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			source = &s
		}
		res, err := Route(sinks, mdl, source)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if skew := sinkSkew(res); skew > 1e-7*(1+res.Delay) {
			t.Fatalf("trial %d: Elmore skew %g (delay %g)", trial, skew, res.Delay)
		}
		sinkLoc := make([]geom.Point, m+1)
		copy(sinkLoc[1:], sinks)
		if err := embed.VerifyPlacement(res.Tree, sinkLoc, source, res.E, res.Placement, 1e-5); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRouteTwoSinksTapping(t *testing.T) {
	// Symmetric pair with equal loads: the tapping point splits the wire
	// in half and both edges are d/2.
	mdl := delay.Elmore{Rw: 1, Cw: 1, SinkCap: []float64{0, 2, 2}}
	res, err := Route([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.E[1]-5) > 1e-9 || math.Abs(res.E[2]-5) > 1e-9 {
		t.Fatalf("edges = %g, %g, want 5, 5", res.E[1], res.E[2])
	}
	if math.Abs(res.Cost-10) > 1e-9 {
		t.Fatalf("cost = %g", res.Cost)
	}
}

func TestRouteAsymmetricLoads(t *testing.T) {
	// The heavier sink pulls the tapping point toward itself (shorter
	// wire to the heavy load).
	mdl := delay.Elmore{Rw: 1, Cw: 1, SinkCap: []float64{0, 10, 1}}
	res, err := Route([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.E[1] >= res.E[2] {
		t.Fatalf("heavy sink's wire %g should be shorter than light sink's %g", res.E[1], res.E[2])
	}
	if skew := sinkSkew(res); skew > 1e-9*(1+res.Delay) {
		t.Fatalf("skew %g", skew)
	}
}

func TestRouteElongationCase(t *testing.T) {
	// Two heavily loaded sinks A, B merge into a slow subtree
	// (t ≈ r·10·(c·5 + 1000)); the light pair C, D merges into a fast one.
	// Even routing the entire 80-unit trunk on the fast side cannot match
	// the slow subtree's delay, so the balance point falls outside the
	// wire (x > 1) and the fast side must be snaked.
	mdl := delay.Elmore{Rw: 1, Cw: 1, SinkCap: []float64{0, 1000, 1000, 0.1, 0.1}}
	sinks := []geom.Point{
		geom.Pt(0, 0), geom.Pt(20, 0), // A, B (heavy)
		geom.Pt(100, 0), geom.Pt(100.2, 0), // C, D (light)
	}
	res, err := Route(sinks, mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if skew := sinkSkew(res); skew > 1e-9*(1+res.Delay) {
		t.Fatalf("skew %g", skew)
	}
	// Direct wiring would cost 0.2 + 20 + ~80; elongation must exceed it.
	if res.Cost <= 101 {
		t.Fatalf("expected elongation, cost %g", res.Cost)
	}
}

func TestRouteSingleSink(t *testing.T) {
	src := geom.Pt(0, 0)
	mdl := delay.Elmore{Rw: 1, Cw: 1}
	res, err := Route([]geom.Point{geom.Pt(3, 4)}, mdl, &src)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-7) > 1e-9 {
		t.Fatalf("cost = %g", res.Cost)
	}
	if _, err := Route([]geom.Point{geom.Pt(3, 4)}, mdl, nil); err == nil {
		t.Error("single sink without source accepted")
	}
}

func TestRouteErrors(t *testing.T) {
	mdl := delay.Elmore{Rw: 1, Cw: 1}
	if _, err := Route(nil, mdl, nil); err == nil {
		t.Error("no sinks accepted")
	}
	if _, err := Route(randSinks(rand.New(rand.NewSource(1)), 3), delay.Elmore{}, nil); err == nil {
		t.Error("zero model accepted")
	}
}

func TestRouteDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	sinks := randSinks(rng, 12)
	mdl := delay.Elmore{Rw: 0.1, Cw: 0.1}
	a, err := Route(sinks, mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(sinks, mdl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || a.Delay != b.Delay {
		t.Fatal("Route not deterministic")
	}
}

func TestElongationFormula(t *testing.T) {
	mdl := delay.Elmore{Rw: 2, Cw: 3}
	c := 5.0
	dt := 40.0
	l := elongation(mdl, dt, c)
	got := mdl.Rw * l * (mdl.Cw*l/2 + c)
	if math.Abs(got-dt) > 1e-9 {
		t.Fatalf("elongation(%g) gives delay %g", dt, got)
	}
	if elongation(mdl, -1, c) != 0 || elongation(mdl, 0, c) != 0 {
		t.Error("non-positive Δt must give zero elongation")
	}
}

// With zero loads and uniform parasitics a symmetric two-sink merge must
// tap at the exact midpoint whatever r_w, c_w are.
func TestRouteMidpointInvariance(t *testing.T) {
	for _, rc := range [][2]float64{{1, 1}, {0.03, 0.2}, {10, 0.001}} {
		mdl := delay.Elmore{Rw: rc[0], Cw: rc[1]}
		res, err := Route([]geom.Point{geom.Pt(0, 0), geom.Pt(8, 6)}, mdl, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.E[1]-7) > 1e-9 || math.Abs(res.E[2]-7) > 1e-9 {
			t.Fatalf("rw=%g cw=%g: edges %g, %g, want 7, 7", rc[0], rc[1], res.E[1], res.E[2])
		}
	}
}
