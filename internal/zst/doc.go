// Package zst implements exact zero-skew clock routing under the Elmore
// delay model in the style of Tsay's "Exact Zero Skew" (ICCAD'91) — the
// paper's reference [4] and the source of the r1–r5 benchmarks. It is the
// Elmore-domain sibling of the linear-delay baseline in internal/bst and
// the natural comparison point for the §7 Elmore extension of the EBF.
//
// Every subtree is summarized by a merging segment (a width-zero TRR on
// which every point yields identical Elmore delay to all sinks of the
// subtree), the common delay value, and the subtree capacitance. Two
// subtrees merge by placing the tapping point on the connecting wire so
// that both sides see equal delay; when one side is too slow for any
// split of the direct wire, the other side's wire is elongated (snaked)
// to the exact balancing length. Tapping-point and elongation lengths
// come from the closed-form solutions of the quadratic Elmore balance
// equation.
package zst
