package lp

import (
	"errors"
	"fmt"
	"math"

	"lubt/internal/obs"
)

// Op is a row comparison operator.
type Op int

// Row operators.
const (
	LE Op = iota // Σ a x ≤ b
	GE           // Σ a x ≥ b
	EQ           // Σ a x = b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Term is one coefficient of a sparse row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear row.
type Constraint struct {
	Terms []Term
	Op    Op
	RHS   float64
	Name  string
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	NumVars int
	// Objective holds the cost coefficient of each variable; shorter
	// slices are treated as zero-padded.
	Objective []float64
	Cons      []Constraint
}

// NewProblem returns an empty minimization problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// SetCost sets the objective coefficient of variable v.
func (p *Problem) SetCost(v int, c float64) {
	p.checkVar(v)
	p.Objective[v] = c
}

// AddConstraint appends a row. Terms referencing out-of-range variables
// panic immediately; silently accepting them would corrupt the tableau.
func (p *Problem) AddConstraint(terms []Term, op Op, rhs float64, name string) {
	for _, t := range terms {
		p.checkVar(t.Var)
	}
	p.Cons = append(p.Cons, Constraint{Terms: terms, Op: op, RHS: rhs, Name: name})
}

// AddSumGE adds the row Σ_{v∈vars} x_v ≥ rhs (the shape of every Steiner
// constraint).
func (p *Problem) AddSumGE(vars []int, rhs float64, name string) {
	p.AddConstraint(unitTerms(vars), GE, rhs, name)
}

// AddSumLE adds the row Σ_{v∈vars} x_v ≤ rhs.
func (p *Problem) AddSumLE(vars []int, rhs float64, name string) {
	p.AddConstraint(unitTerms(vars), LE, rhs, name)
}

// AddSumEQ adds the row Σ_{v∈vars} x_v = rhs.
func (p *Problem) AddSumEQ(vars []int, rhs float64, name string) {
	p.AddConstraint(unitTerms(vars), EQ, rhs, name)
}

func unitTerms(vars []int) []Term {
	ts := make([]Term, len(vars))
	for i, v := range vars {
		ts[i] = Term{Var: v, Coef: 1}
	}
	return ts
}

func (p *Problem) checkVar(v int) {
	if v < 0 || v >= p.NumVars {
		panic(fmt.Sprintf("lp: variable %d out of range [0,%d)", v, p.NumVars))
	}
}

// Eval returns the objective value of x under the problem's cost vector.
func (p *Problem) Eval(x []float64) float64 {
	var s float64
	for i, c := range p.Objective {
		if i < len(x) {
			s += c * x[i]
		}
	}
	return s
}

// RowActivity returns Σ aᵢⱼ xⱼ for row i.
func (p *Problem) RowActivity(i int, x []float64) float64 {
	var s float64
	for _, t := range p.Cons[i].Terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

// MaxViolation returns the largest constraint violation of x (0 when
// feasible) and the index of the most violated row (−1 when feasible).
func (p *Problem) MaxViolation(x []float64) (float64, int) {
	worst, at := 0.0, -1
	for i, c := range p.Cons {
		a := p.RowActivity(i, x)
		var v float64
		switch c.Op {
		case LE:
			v = a - c.RHS
		case GE:
			v = c.RHS - a
		case EQ:
			v = math.Abs(a - c.RHS)
		}
		if v > worst {
			worst, at = v, i
		}
	}
	for i, xi := range x {
		if -xi > worst {
			worst, at = -xi, -1
		}
		_ = i
	}
	return worst, at
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
	Numerical
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	case Numerical:
		return "numerical failure"
	}
	return "unknown"
}

// Solution is the result of a solve.
type Solution struct {
	Status     Status
	X          []float64 // primal values, len NumVars
	Objective  float64
	Iterations int
	// NumericalResidual is the solver's terminal numerical-health gauge:
	// the final scaled KKT residual for the IPM, the worst constraint
	// violation of the returned vertex for the cold simplex (0 when not
	// sampled). It flows into Stats.NumericalResidual for cold engines.
	NumericalResidual float64
}

// Solver is implemented by both the simplex and interior-point methods.
type Solver interface {
	// Solve returns a Solution; the error is non-nil only for malformed
	// problems or internal failures, not for infeasible/unbounded models
	// (which are reported via Status).
	Solve(p *Problem) (*Solution, error)
}

// RowEngine is the incremental (cutting-plane) engine interface: rows are
// appended over time and every Solve warm-starts from the previous basis.
// Both the sparse boxed revised dual simplex (Revised, the default) and
// the dense tableau engine (Incremental, kept for ablation) implement it,
// and the row-generation loop in internal/core is written against it.
type RowEngine interface {
	// AddRow introduces Σ terms {op} rhs. How EQ is realized is
	// engine-internal: the boxed revised engine stores one row with a
	// fixed slack, the dense engine splits it into a ≤/≥ pair.
	AddRow(terms []Term, op Op, rhs float64)
	// AddRangedRow introduces the two-sided constraint lo ≤ Σ terms ≤ hi
	// as ONE logical row (either side may be infinite; lo = hi states an
	// equality). Engines without native ranged rows lower it to the
	// equivalent one-sided rows; Stats().LoweredTableauRows reports that
	// lowered count for every engine, so (TableauRows, LoweredTableauRows)
	// measures what native ranged storage saves.
	AddRangedRow(terms []Term, lo, hi float64)
	// Solve re-optimizes and returns the current solution.
	Solve() (*Solution, error)
	// NumRows reports logical rows as stated by the caller (an EQ or
	// ranged row counts once); TableauRows reports engine-internal rows.
	NumRows() int
	TableauRows() int
	// Iterations returns the cumulative pivot count.
	Iterations() int
	// Stats returns a snapshot of the engine's observability counters.
	Stats() Stats
}

// Traceable is the optional extension for engines that can record
// internal spans (refactorizations, resets) on an obs.Tracer. The
// row-generation loop type-asserts and attaches its tracer; engines
// without internal phases simply don't implement it. A nil tracer must
// be accepted and disables recording.
type Traceable interface {
	SetTracer(tr *obs.Tracer)
}

// VarBounder is the optional RowEngine extension for engines that support
// variable boxes natively: SetVarBounds(j, lo, hi) replaces what would
// otherwise be a single-variable constraint row (lo = hi fixes the
// variable — the forced-zero edges of the EBF degree splitting). Boxes
// are restageable state: calling SetVarBounds again between Solves moves
// the box under the kept basis and the next Solve repairs the primal
// values from there (one FTRAN on the revised engine) instead of
// starting cold — see the package doc's "Restaging" section. Callers
// must type-assert and fall back to an explicit row when the engine does
// not implement it.
type VarBounder interface {
	SetVarBounds(j int, lo, hi float64)
}

// ErrBadProblem reports a structurally invalid problem.
var ErrBadProblem = errors.New("lp: malformed problem")
