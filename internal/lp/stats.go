package lp

import (
	"fmt"
	"strings"
	"time"
)

// Stats is the unified observability record of the LP layer. The engines
// fill the pivot/factorization counters; the row-generation loop in
// internal/core fills the separation-oracle and round fields; the public
// lubt API and both CLIs surface the combined record. All counters are
// cumulative over the lifetime of one engine / one solve.
type Stats struct {
	// Pivots counts simplex pivots (dual pivots for the incremental
	// engines, both phases for the cold simplex, iterations for the IPM).
	Pivots int
	// Refactorizations counts basis refactorizations of the revised
	// dual-simplex engine (the dense tableau never refactors).
	Refactorizations int
	// Resets counts full basis resets taken after numerical trouble.
	Resets int
	// BasisSize is the structural-core dimension t of the basis at the
	// last refactorization: the number of basic non-slack variables. For
	// EBF it is bounded by the edge count no matter how many Steiner rows
	// row generation adds.
	BasisSize int
	// FillIn is nnz(L+U) − nnz(core) at the last refactorization: extra
	// nonzeros the LU factorization introduced beyond the basis core.
	FillIn int
	// LogicalRows counts constraint rows as stated by the caller (an EQ or
	// ranged row counts once). TableauRows counts engine-internal rows:
	// the boxed revised engine stores EQ and ranged rows once (the slack
	// is fixed/boxed), while the dense engines lower them to a ≤/≥ pair.
	// LoweredTableauRows is the row count the two-row lowering would need
	// — the before/after pair (TableauRows, LoweredTableauRows) measures
	// the delay-window row halving. RowNonzeros is the nonzero count of
	// the stored constraint rows.
	LogicalRows        int
	TableauRows        int
	LoweredTableauRows int
	RowNonzeros        int
	// RangedRows counts logical rows stated with a two-sided (or exact)
	// window — the rows a boxed engine keeps single. BoundFlips counts
	// nonbasic bound-to-bound flips taken inside the two-sided dual ratio
	// test (flips are not pivots: they cost one shared FTRAN per batch).
	RangedRows int
	BoundFlips int

	// Rounds is the number of row-generation rounds (filled by
	// internal/core).
	Rounds int
	// ViolatedByRound records how many violated Steiner pairs the
	// separation oracle found in each round (the last entry is 0 on
	// convergence).
	ViolatedByRound []int
	// SeparationTime is the cumulative wall time of separation-oracle
	// scans; SolveTime is the cumulative wall time inside LP solves.
	SeparationTime time.Duration
	SolveTime      time.Duration
}

// Merge folds other into s: counters add, gauges (BasisSize, FillIn, row
// counts) take other's value when set, and per-round traces concatenate.
func (s *Stats) Merge(other Stats) {
	s.Pivots += other.Pivots
	s.Refactorizations += other.Refactorizations
	s.Resets += other.Resets
	s.BoundFlips += other.BoundFlips
	s.Rounds += other.Rounds
	s.SeparationTime += other.SeparationTime
	s.SolveTime += other.SolveTime
	s.ViolatedByRound = append(s.ViolatedByRound, other.ViolatedByRound...)
	if other.BasisSize > 0 {
		s.BasisSize = other.BasisSize
	}
	if other.FillIn > 0 {
		s.FillIn = other.FillIn
	}
	if other.LogicalRows > 0 {
		s.LogicalRows = other.LogicalRows
	}
	if other.TableauRows > 0 {
		s.TableauRows = other.TableauRows
	}
	if other.LoweredTableauRows > 0 {
		s.LoweredTableauRows = other.LoweredTableauRows
	}
	if other.RangedRows > 0 {
		s.RangedRows = other.RangedRows
	}
	if other.RowNonzeros > 0 {
		s.RowNonzeros = other.RowNonzeros
	}
}

// String renders a compact one-stop summary (used by cmd/lubt --stats).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pivots %d  bound-flips %d  refactorizations %d  basis %d  fill-in %d  resets %d\n",
		s.Pivots, s.BoundFlips, s.Refactorizations, s.BasisSize, s.FillIn, s.Resets)
	fmt.Fprintf(&b, "rows %d logical / %d tableau (%d lowered, %d ranged)  nnz %d  rounds %d\n",
		s.LogicalRows, s.TableauRows, s.LoweredTableauRows, s.RangedRows, s.RowNonzeros, s.Rounds)
	fmt.Fprintf(&b, "sep-scan %v  lp-solve %v", s.SeparationTime.Round(time.Microsecond), s.SolveTime.Round(time.Microsecond))
	if len(s.ViolatedByRound) > 0 {
		fmt.Fprintf(&b, "\nviolated/round %v", s.ViolatedByRound)
	}
	return b.String()
}
