package lp

import (
	"fmt"
	"strings"
	"time"
)

// Stats is the unified observability record of the LP layer. The engines
// fill the pivot/factorization counters; the row-generation loop in
// internal/core fills the separation-oracle and round fields; the public
// lubt API and both CLIs surface the combined record. All counters are
// cumulative over the lifetime of one engine / one solve.
type Stats struct {
	// Pivots counts simplex pivots (dual pivots for the incremental
	// engines, both phases for the cold simplex, iterations for the IPM).
	Pivots int
	// Refactorizations counts basis refactorizations of the revised
	// dual-simplex engine (the dense tableau never refactors).
	Refactorizations int
	// Resets counts full basis resets taken after numerical trouble.
	// ResetReasons holds one reason code per reset, in order; the revised
	// engine emits "basis-mismatch" (core row/column count disagreement),
	// "lu-singular" (the structural-core LU factorization failed),
	// "dual-drift" (recomputed reduced costs left the dual-feasible side
	// beyond tolerance) and "pivot-disagreement" (the FTRAN column and the
	// pricing row disagreed on the pivot element).
	Resets       int
	ResetReasons []string
	// BasisSize is the structural-core dimension t of the basis at the
	// last refactorization: the number of basic non-slack variables. For
	// EBF it is bounded by the edge count no matter how many Steiner rows
	// row generation adds.
	BasisSize int
	// FillIn is nnz(L+U) − nnz(core) at the last refactorization: extra
	// nonzeros the LU factorization introduced beyond the basis core.
	FillIn int
	// EtaLen is the eta-file length consumed by the last refactorization:
	// how many product-form updates had accumulated since the previous
	// factorization (0 when the basis was refactored with no pivots taken).
	EtaLen int
	// NumericalResidual is the engine's terminal numerical-health gauge.
	// For the revised engine it is max |xB(eta replay) − xB(fresh FTRAN)|
	// over basis positions at the last refactorization — the drift the eta
	// file accumulated. For the IPM it is the final scaled KKT residual;
	// for the cold simplex the worst constraint violation of the returned
	// vertex. Small (≈ feasibility tolerance) is healthy.
	NumericalResidual float64
	// PivotMin and PivotMax are the smallest and largest |pivot element|
	// accepted across all dual pivots (0 when no pivots ran). A PivotMin
	// many orders below PivotMax warns of ill-conditioned bases.
	PivotMin, PivotMax float64
	// LogicalRows counts constraint rows as stated by the caller (an EQ or
	// ranged row counts once). TableauRows counts engine-internal rows:
	// the boxed revised engine stores EQ and ranged rows once (the slack
	// is fixed/boxed), while the dense engines lower them to a ≤/≥ pair.
	// LoweredTableauRows is the row count the two-row lowering would need
	// — the before/after pair (TableauRows, LoweredTableauRows) measures
	// the delay-window row halving. RowNonzeros is the nonzero count of
	// the stored constraint rows.
	LogicalRows        int
	TableauRows        int
	LoweredTableauRows int
	RowNonzeros        int
	// RangedRows counts logical rows stated with a two-sided (or exact)
	// window — the rows a boxed engine keeps single. BoundFlips counts
	// nonbasic bound-to-bound flips taken inside the two-sided dual ratio
	// test (flips are not pivots: they cost one shared FTRAN per batch).
	RangedRows int
	BoundFlips int
	// Restages counts between-Solve edits the revised engine absorbed while
	// keeping its basis warm: SetVarBounds and SetCost calls after the first
	// Solve, plus the rhs-only fast path of ReplaceRangedRow.
	// RowReplacements counts ReplaceRangedRow/DeleteRow calls that rewrote a
	// stored row. Together they are the ECO health gauges: a re-solve after
	// R restages that still needs near-cold pivot counts signals the warm
	// basis is not being reused.
	Restages        int
	RowReplacements int
	// PricingScheme is the leaving-row rule the revised engine ran with
	// ("devex", "most-violated" or "steepest-exact"; empty on the other
	// engines). DevexResets counts Devex reference-framework restarts
	// forced by weight overflow past the cap — scheduled re-anchors at
	// refactorization are NOT counted here (they track Refactorizations).
	PricingScheme string
	DevexResets   int
	// WeightMin and WeightMax are the reference-weight extremes γ_min/γ_max
	// over the basis at the last Stats snapshot (both 0 under
	// PricingMostViolated). A very large WeightMax flags a basis whose B⁻ᵀ
	// rows have grown long — the same signal that triggers DevexResets.
	// They are gauges: Merge replaces them under GaugesValid.
	WeightMin, WeightMax float64
	// GaugesValid marks the gauge fields (BasisSize, FillIn, EtaLen,
	// NumericalResidual and the row counts) as explicitly sampled by an
	// engine. Merge then takes other's gauge values unconditionally — a
	// legitimately-zero gauge (e.g. FillIn 0 after a clean
	// refactorization) replaces a stale nonzero one. Records built by hand
	// without setting it fall back to the legacy take-when-positive rule.
	GaugesValid bool

	// PresolvePrunedRows counts sink-pair Steiner rows the presolve
	// dominance pass removed from the separation oracle's scan before they
	// were ever generated or priced (filled by internal/core; 0 with
	// presolve off). Subtrees is the number of root-branch subproblems the
	// decomposition layer solved on independent engines (0 or 1 for a
	// monolithic solve). PeakRows is the largest engine-internal tableau
	// row count any single engine reached during the solve — under
	// decomposition this is the per-branch peak, the memory-pressure
	// number the monolithic TableauRows overstates.
	PresolvePrunedRows int
	Subtrees           int
	PeakRows           int

	// Rounds is the number of row-generation rounds (filled by
	// internal/core).
	Rounds int
	// ViolatedByRound records how many violated Steiner pairs the
	// separation oracle found in each round (the last entry is 0 on
	// convergence).
	ViolatedByRound []int
	// SeparationTime is the cumulative wall time of separation-oracle
	// scans; SolveTime is the cumulative wall time inside LP solves.
	SeparationTime time.Duration
	SolveTime      time.Duration
}

// Merge folds other into s: counters add, per-round traces and reset
// reasons concatenate, pivot-element extremes widen, and gauges
// (BasisSize, FillIn, EtaLen, NumericalResidual, row counts) take
// other's value when other carries sampled gauges (GaugesValid), even
// when that value is 0 — the newer sample wins. Hand-built records
// without GaugesValid keep the legacy take-when-positive behaviour so
// partial updates still compose.
func (s *Stats) Merge(other Stats) {
	s.Pivots += other.Pivots
	s.Refactorizations += other.Refactorizations
	s.Resets += other.Resets
	s.BoundFlips += other.BoundFlips
	s.Restages += other.Restages
	s.RowReplacements += other.RowReplacements
	s.DevexResets += other.DevexResets
	if other.PricingScheme != "" {
		s.PricingScheme = other.PricingScheme
	}
	s.PresolvePrunedRows += other.PresolvePrunedRows
	s.Subtrees += other.Subtrees
	if other.PeakRows > s.PeakRows {
		s.PeakRows = other.PeakRows
	}
	s.Rounds += other.Rounds
	s.SeparationTime += other.SeparationTime
	s.SolveTime += other.SolveTime
	s.ViolatedByRound = append(s.ViolatedByRound, other.ViolatedByRound...)
	s.ResetReasons = append(s.ResetReasons, other.ResetReasons...)
	if other.PivotMax > s.PivotMax {
		s.PivotMax = other.PivotMax
	}
	if other.PivotMin > 0 && (s.PivotMin == 0 || other.PivotMin < s.PivotMin) {
		s.PivotMin = other.PivotMin
	}
	if other.GaugesValid {
		s.BasisSize = other.BasisSize
		s.FillIn = other.FillIn
		s.EtaLen = other.EtaLen
		s.NumericalResidual = other.NumericalResidual
		s.LogicalRows = other.LogicalRows
		s.TableauRows = other.TableauRows
		s.LoweredTableauRows = other.LoweredTableauRows
		s.RangedRows = other.RangedRows
		s.RowNonzeros = other.RowNonzeros
		s.WeightMin = other.WeightMin
		s.WeightMax = other.WeightMax
		s.GaugesValid = true
		return
	}
	if other.BasisSize > 0 {
		s.BasisSize = other.BasisSize
	}
	if other.FillIn > 0 {
		s.FillIn = other.FillIn
	}
	if other.EtaLen > 0 {
		s.EtaLen = other.EtaLen
	}
	if other.NumericalResidual > 0 {
		s.NumericalResidual = other.NumericalResidual
	}
	if other.LogicalRows > 0 {
		s.LogicalRows = other.LogicalRows
	}
	if other.TableauRows > 0 {
		s.TableauRows = other.TableauRows
	}
	if other.LoweredTableauRows > 0 {
		s.LoweredTableauRows = other.LoweredTableauRows
	}
	if other.RangedRows > 0 {
		s.RangedRows = other.RangedRows
	}
	if other.RowNonzeros > 0 {
		s.RowNonzeros = other.RowNonzeros
	}
	if other.WeightMax > 0 {
		s.WeightMin = other.WeightMin
		s.WeightMax = other.WeightMax
	}
}

// String renders a compact one-stop summary (used by cmd/lubt --stats).
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pivots %d  bound-flips %d  refactorizations %d  basis %d  fill-in %d  resets %d\n",
		s.Pivots, s.BoundFlips, s.Refactorizations, s.BasisSize, s.FillIn, s.Resets)
	fmt.Fprintf(&b, "rows %d logical / %d tableau (%d lowered, %d ranged)  nnz %d  rounds %d\n",
		s.LogicalRows, s.TableauRows, s.LoweredTableauRows, s.RangedRows, s.RowNonzeros, s.Rounds)
	fmt.Fprintf(&b, "eta-len %d  residual %.3g  pivot-el [%.3g, %.3g]\n",
		s.EtaLen, s.NumericalResidual, s.PivotMin, s.PivotMax)
	if s.Restages > 0 || s.RowReplacements > 0 {
		fmt.Fprintf(&b, "restages %d  row-replacements %d\n", s.Restages, s.RowReplacements)
	}
	if s.PricingScheme != "" {
		fmt.Fprintf(&b, "pricing %s  devex-resets %d  weights [%.3g, %.3g]\n",
			s.PricingScheme, s.DevexResets, s.WeightMin, s.WeightMax)
	}
	if s.PresolvePrunedRows > 0 || s.Subtrees > 0 || s.PeakRows > 0 {
		fmt.Fprintf(&b, "presolve-pruned %d  subtrees %d  peak-rows %d\n",
			s.PresolvePrunedRows, s.Subtrees, s.PeakRows)
	}
	fmt.Fprintf(&b, "sep-scan %v  lp-solve %v", s.SeparationTime.Round(time.Microsecond), s.SolveTime.Round(time.Microsecond))
	if len(s.ResetReasons) > 0 {
		fmt.Fprintf(&b, "\nreset-reasons %v", s.ResetReasons)
	}
	if len(s.ViolatedByRound) > 0 {
		fmt.Fprintf(&b, "\nviolated/round %v", s.ViolatedByRound)
	}
	return b.String()
}
