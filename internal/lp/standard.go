package lp

// standardForm is the canonical shape both solvers consume:
//
//	min cᵀx  s.t.  A x = b,  x ≥ 0,  b ≥ 0,
//
// where x is the original variables followed by one slack/surplus variable
// per inequality row. Rows with negative right-hand sides are negated (and
// their operators flipped) before slacks are added so that b ≥ 0, which
// the phase-1 simplex start requires.
type standardForm struct {
	m, n  int         // rows, columns (original + slack)
	nOrig int         // original variable count
	a     [][]float64 // dense rows, len m × n
	b     []float64   // len m, non-negative
	c     []float64   // len n (zero on slack columns)
	// slackOf[i] is the column of row i's slack variable, or −1 for an
	// equality row.
	slackOf []int
}

// toStandard converts a Problem into standard form.
func toStandard(p *Problem) *standardForm {
	m := len(p.Cons)
	// Count slacks.
	slacks := 0
	for _, c := range p.Cons {
		if c.Op != EQ {
			slacks++
		}
	}
	n := p.NumVars + slacks
	sf := &standardForm{
		m: m, n: n, nOrig: p.NumVars,
		b:       make([]float64, m),
		c:       make([]float64, n),
		slackOf: make([]int, m),
	}
	copy(sf.c, p.Objective)
	sf.a = make([][]float64, m)
	flat := make([]float64, m*n)
	next := p.NumVars
	for i, con := range p.Cons {
		row := flat[i*n : (i+1)*n]
		sf.a[i] = row
		for _, t := range con.Terms {
			row[t.Var] += t.Coef
		}
		rhs := con.RHS
		op := con.Op
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		sf.b[i] = rhs
		switch op {
		case LE:
			row[next] = 1
			sf.slackOf[i] = next
			next++
		case GE:
			row[next] = -1
			sf.slackOf[i] = next
			next++
		case EQ:
			sf.slackOf[i] = -1
		}
	}
	return sf
}
