package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIPMTwoVar(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, -3)
	p.SetCost(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4, "")
	p.AddConstraint([]Term{{1, 2}}, LE, 12, "")
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18, "")
	sol, err := (&IPM{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-5 {
		t.Fatalf("objective = %g, want −36", sol.Objective)
	}
}

func TestIPMEquality(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4, "")
	sol, err := (&IPM{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-5 {
		t.Fatalf("got %v obj %g, want 8", sol.Status, sol.Objective)
	}
}

func TestIPMNoConstraints(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 1)
	sol, err := (&IPM{}).Solve(p)
	if err != nil || sol.Status != Optimal {
		t.Fatalf("sol=%v err=%v", sol, err)
	}
}

// Cross-check: on random feasible bounded LPs the interior-point optimum
// must match the simplex optimum.
func TestIPMMatchesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	matched := 0
	for trial := 0; trial < 120; trial++ {
		p := randomFeasibleLP(rng)
		ss, err := (&Simplex{}).Solve(p)
		if err != nil || ss.Status != Optimal {
			t.Fatalf("simplex trial %d: %v %v", trial, ss.Status, err)
		}
		is, err := (&IPM{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if is.Status != Optimal {
			// The IPM may hit numerical trouble on nasty random rows; it
			// must not, however, claim optimality with a wrong value.
			continue
		}
		scale := 1 + math.Abs(ss.Objective)
		if math.Abs(is.Objective-ss.Objective)/scale > 1e-4 {
			t.Fatalf("trial %d: ipm %.8g vs simplex %.8g", trial, is.Objective, ss.Objective)
		}
		if v, i := p.MaxViolation(is.X); v > 1e-4 {
			t.Fatalf("trial %d: ipm violation %g at row %d", trial, v, i)
		}
		matched++
	}
	if matched < 100 {
		t.Errorf("IPM converged on only %d/120 random LPs", matched)
	}
}

func TestIPMOnEBFShape(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.AddSumGE([]int{0, 1}, 10, "steiner")
	p.AddSumGE([]int{0}, 6, "l1")
	p.AddSumLE([]int{0}, 8, "u1")
	p.AddSumGE([]int{1}, 6, "l2")
	p.AddSumLE([]int{1}, 8, "u2")
	sol, err := (&IPM{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-12) > 1e-5 {
		t.Fatalf("status %v obj %g", sol.Status, sol.Objective)
	}
}

func TestIPMDoesNotClaimOptimalOnInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetCost(0, 1)
	p.AddSumGE([]int{0}, 5, "")
	p.AddSumLE([]int{0}, 3, "")
	sol, err := (&IPM{MaxIter: 60}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		if v, _ := p.MaxViolation(sol.X); v > 1e-4 {
			t.Fatalf("IPM claimed optimal with violation %g", v)
		}
	}
}

func TestIPMBadProblem(t *testing.T) {
	if _, err := (&IPM{}).Solve(nil); err == nil {
		t.Error("nil problem accepted")
	}
}
