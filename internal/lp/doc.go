// Package lp implements linear programming from scratch for the EBF
// formulation of the LUBT paper (Oh, Pyo, Pedram, DAC 1996). Problems are
// stated over variables x ≥ 0 with sparse rows Σ aᵢⱼ xⱼ {≤,≥,=} bᵢ and a
// minimization objective — exactly the shape of the EBF LP: edge lengths
// are non-negative, Steiner rows are ≥, delay rows are two-sided windows.
//
// # Solvers
//
// Four solvers share the Problem/Solution vocabulary:
//
//   - Simplex: a two-phase dense primal simplex (Dantzig pricing with
//     Bland's anti-cycling fallback). The cold-start reference: exact
//     infeasibility certificates, vertex solutions.
//   - IPM: a Mehrotra predictor-corrector primal-dual interior-point
//     method, standing in for LOQO, the solver the paper used. No exact
//     infeasibility certificate (IterLimit/Numerical instead).
//   - Revised: a sparse revised dual simplex with bounded variables —
//     the default incremental engine (see below).
//   - Incremental: a dense-tableau dual simplex, kept as the ablation
//     baseline for the revised engine.
//
// # The RowEngine contract
//
// The §4.6 row-generation loop in internal/core is written against the
// RowEngine interface. Implementations guarantee:
//
//   - Through the RowEngine interface rows are append-only, so
//     infeasibility is monotone along any AddRow/AddRangedRow/Solve
//     sequence: after a Solve returns Infeasible, every later Solve
//     returns Infeasible ("sticky") — until a restaging edit (below)
//     relaxes or rewrites something, which clears the certificate.
//   - Costs must be non-negative. This is what makes the all-nonbasic
//     point dual-feasible, so the dual simplex needs no
//     phase-1/artificial machinery and a re-solve after adding k
//     violated rows typically takes O(k) pivots. Revised additionally
//     allows SetCost between Solves (a restage; same sign constraint).
//   - Solve is idempotent: calling it twice without interleaved AddRow /
//     AddRangedRow returns the same solution without extra pivots.
//   - Row counting: NumRows (and Stats().LogicalRows) counts rows as the
//     caller stated them — an EQ or ranged row counts ONCE on every
//     engine. TableauRows counts engine-internal rows: the boxed revised
//     engine stores EQ and ranged rows once (bounded slack), the dense
//     engines lower them to a ≤/≥ pair. Stats().LoweredTableauRows
//     reports what the two-row lowering would need on every engine, so
//     the pair (TableauRows, LoweredTableauRows) measures the saving.
//
// Engines that additionally implement VarBounder (only Revised) accept
// variable boxes lo ≤ xⱼ ≤ hi in place of single-variable rows. Boxes
// are restageable: SetVarBounds between Solves moves the box under the
// kept basis and the next Solve repairs the primal values instead of
// starting cold. Callers type-assert and fall back to an explicit row
// otherwise.
//
// # Restaging (post-solve edits, Revised only)
//
// Beyond the append-only RowEngine surface, Revised supports in-place
// edits between Solves, all preserving the basis membership:
//
//   - SetVarBounds / SetCost — bound boxes and objective coefficients
//     never enter the basis matrix, so the factorization, eta file and
//     pricing weights stay valid; the engine re-picks resting sides and
//     repairs the basic values with one FTRAN (plus one BTRAN and a
//     re-pricing pass when a BASIC variable's cost moves). Counted in
//     Stats().Restages.
//   - ReplaceRangedRow(k, terms, lo, hi) with the SAME stored pattern —
//     the ECO retighten case: only the rhs and the slack box move,
//     repaired like a bound edit. Also a Restage.
//   - ReplaceRangedRow with a CHANGED pattern, and DeleteRow — a row of
//     the basis matrix changes, so the factorization and eta file are
//     invalidated and the next Solve refactorizes once from the kept
//     basis (a row left empty with a nonbasic slack gets its slack
//     forced basic to keep the basis nonsingular). Counted in
//     Stats().RowReplacements. DeleteRow leaves a vacuous row behind so
//     tableau indices stay stable; ReplaceRangedRow revives it.
//
// Every restaging edit clears a sticky Infeasible certificate. Both
// counters stay 0 on cold solvers and on engines that were never
// edited. DESIGN.md's "Restaging" section gives the per-edit
// dual-feasibility arguments; internal/core builds the Elmore SLP's
// persistent engine and the ECO Session on this machinery.
//
// # The bounded-variable (boxed) dual simplex
//
// Revised stores every constraint as an equality a·x + s = b with a boxed
// slack s ∈ [0, slackHi]: slackHi = ∞ is a plain ≤ row, a finite slackHi
// realizes the ranged row b − slackHi ≤ a·x ≤ b in ONE tableau row, and
// slackHi = 0 pins an equality. Nonbasic variables rest at either box
// end; dual feasibility means a non-negative reduced cost at the lower
// bound, non-positive at the upper bound, and unrestricted for fixed
// (lo = hi) variables. The dual ratio test is two-sided with
// bound-flipping: candidates whose box is too narrow to absorb the
// remaining primal infeasibility flip bound-to-bound (one batched FTRAN
// per pivot, counted in Stats().BoundFlips) before the absorbing column
// enters. See DESIGN.md's "Bounded-variable formulation" section for the
// constraint-kind → row/box mapping table.
//
// # Dual pricing (leaving-row rules)
//
// Revised selects the leaving row with one of three pricing rules
// (Revised.SetPricing, parsed from CLI tokens by ParsePricing; the
// choice must be made before the first Solve):
//
//   - PricingDevex (default, "devex"): dual Devex — each basic position
//     carries a reference weight γ ≥ 1, the leaving row maximizes
//     violation²/γ, and weights are updated per pivot from the entering
//     column against the PRE-pivot basis. The reference framework
//     re-anchors to all-ones at every refactorization and basis reset,
//     and on overflow past 1e12 (counted in Stats().DevexResets — only
//     overflow restarts, scheduled re-anchors are Refactorizations).
//   - PricingMostViolated ("mostviolated"): the textbook rule — largest
//     primal violation wins. Cheapest per pivot; ablation baseline.
//   - PricingSteepestExact ("steepest"): exact dual steepest edge
//     (Forrest–Goldfarb), true norms ‖B⁻ᵀe_p‖² maintained with one extra
//     FTRAN per pivot. Weights survive refactorization (basis unchanged)
//     and reset only at the all-slack basis (B = I ⇒ norms exactly 1);
//     warm-bordered rows seed their position lazily with one BTRAN.
//
// All rules break ties by lowest row index and change only the pivot
// path, never the optimum: Stats().PricingScheme labels the rule, and
// WeightMin/WeightMax gauge the reference weights. Pivot budget per
// Solve is 20000 + 200·(rows + vars).
//
// # Sparse storage invariants (CSR/CSC)
//
// The incremental engines share the rowStore, an append-only CSR row
// store over the ≤-form rows with a CSC twin maintained per append:
//
//   - CSR: row k occupies ind/val[ptr[k]:ptr[k+1]]; within a row the
//     column indices are strictly increasing, coefficients are nonzero
//     (duplicate Terms are coalesced, exact zeros dropped).
//   - CSC: cols[j] lists the (row, coef) pairs of structural column j in
//     strictly increasing row order; it is exactly the transpose of the
//     CSR view at all times (both sides are updated in one append).
//   - Slack columns are implicit — only structural coefficients are
//     stored; Stats().RowNonzeros counts exactly these.
//
// # Tolerance conventions
//
// All engines use absolute tolerances anchored at 1e-9 on data of O(1)
// magnitude; the revised engine scales them by the largest stored
// coefficient/RHS magnitude (feasTol/dualTol). Primal feasibility of a
// returned Optimal solution is guaranteed to ~1e-7·scale; cross-solver
// agreement on EBF instances is asserted at 1e-6·radius in the tests,
// matching internal/core.Verify. The revised engine recovers from
// numerical drift with an escalation ladder — refactorize the basis,
// then reset to the all-slack basis, then report Numerical — counted in
// Stats().Refactorizations and Stats().Resets.
//
// # Observability: numerical-health gauges and tracing
//
// Stats carries two kinds of fields. Counters (Pivots, BoundFlips,
// Refactorizations, …) accumulate across Solve calls and Merge by
// addition. Gauges are point-in-time samples of the engine's numerical
// health — EtaLen, FillIn, BasisSize, NumericalResidual, PivotMin/Max —
// refreshed at each refactorization (Revised), at termination (IPM's
// scaled KKT residual, Simplex's max constraint violation), or per
// cutting-plane round. Stats.GaugesValid marks a gauge set as sampled;
// Merge then takes the newer sample wholesale, so a legitimate zero
// (e.g. FillIn 0 after a clean refactorization) replaces a stale value
// instead of being skipped. ResetReasons records why each escalation
// fired ("basis-mismatch", "lu-singular", "dual-drift",
// "pivot-disagreement").
//
// Three fields carry the internal/core scale-path story (DESIGN §8)
// and reach the lubt-bench/1 JSON under the same names:
// PresolvePrunedRows (presolve_pruned_rows) counts sink-pair Steiner
// rows the dominance presolve removed before pricing; Subtrees
// (subtrees) the root-branch subproblems the decomposition solved on
// independent engines (0 = monolithic); PeakRows (peak_rows) the
// largest tableau any single engine reached — Merge sums the first
// two across branches and takes the max of the third, so a decomposed
// solve reports the per-branch peak rather than the misleading total.
//
// Engines that implement Traceable (only Revised) accept an
// *obs.Tracer and emit spans for refactorizations and basis resets with
// the gauge values as attributes; a nil tracer is free. The
// row-generation loop in internal/core threads its tracer through this
// interface so LP-internal events nest under the per-round spans.
package lp
