package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Both incremental engines implement the RowEngine interface the
// row-generation loop is written against.
var (
	_ RowEngine = (*Revised)(nil)
	_ RowEngine = (*Incremental)(nil)
)

func TestRevisedBasic(t *testing.T) {
	// min x+y s.t. x+y ≥ 3, x ≥ 1.
	rv := NewRevised(2, []float64{1, 1})
	rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 3)
	rv.AddRow([]Term{{0, 1}}, GE, 1)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("status %v obj %g", sol.Status, sol.Objective)
	}
}

func TestRevisedRowByRow(t *testing.T) {
	rv := NewRevised(2, []float64{1, 2})
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	steps := []struct {
		terms []Term
		op    Op
		rhs   float64
	}{
		{[]Term{{0, 1}, {1, 1}}, GE, 4},
		{[]Term{{0, 1}}, LE, 3},
		{[]Term{{1, 1}}, GE, 0.5},
		{[]Term{{0, 1}, {1, -1}}, LE, 2},
	}
	for i, s := range steps {
		rv.AddRow(s.terms, s.op, s.rhs)
		p.AddConstraint(s.terms, s.op, s.rhs, "")
		warm, err := rv.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("step %d: warm %v vs cold %v", i, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-7 {
			t.Fatalf("step %d: warm %g vs cold %g", i, warm.Objective, cold.Objective)
		}
	}
}

func TestRevisedEquality(t *testing.T) {
	// min 2x+3y s.t. x+y = 4 → x=4, obj 8.
	rv := NewRevised(2, []float64{2, 3})
	rv.AddRow([]Term{{0, 1}, {1, 1}}, EQ, 4)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-8 {
		t.Fatalf("status %v obj %g x %v", sol.Status, sol.Objective, sol.X)
	}
}

func TestRevisedInfeasibleSticky(t *testing.T) {
	rv := NewRevised(1, []float64{1})
	rv.AddRow([]Term{{0, 1}}, GE, 5)
	rv.AddRow([]Term{{0, 1}}, LE, 3)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// Rows are only ever added, so infeasibility is monotone and sticky.
	rv.AddRow([]Term{{0, 1}}, GE, 0)
	if sol, _ := rv.Solve(); sol.Status != Infeasible {
		t.Fatal("infeasibility not sticky")
	}
}

func TestRevisedEmpty(t *testing.T) {
	rv := NewRevised(3, []float64{1, 1, 1})
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty solve: %v %g", sol.Status, sol.Objective)
	}
}

func TestRevisedPanicsOnNegativeCost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewRevised(1, []float64{-1})
}

func TestRevisedPanicsOnBadVar(t *testing.T) {
	rv := NewRevised(1, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rv.AddRow([]Term{{3, 1}}, GE, 1)
}

// TestRowCountsRegression pins the NumRows/TableauRows contract on both
// incremental engines: NumRows counts logical rows (EQ once) everywhere,
// while TableauRows is engine-internal — the boxed revised engine stores
// an EQ row once (fixed slack), the dense tableau splits it into a ≤/≥
// pair. Stats().LoweredTableauRows reports the split count for both, so
// the pair (TableauRows, LoweredTableauRows) exposes the saving.
func TestRowCountsRegression(t *testing.T) {
	cases := []struct {
		name        string
		eng         RowEngine
		wantTableau int
	}{
		{"revised", NewRevised(2, []float64{1, 1}), 3},
		{"dense", NewIncremental(2, []float64{1, 1}), 4},
	}
	for _, tc := range cases {
		eng := tc.eng
		eng.AddRow([]Term{{0, 1}}, GE, 1)
		eng.AddRow([]Term{{1, 1}}, LE, 5)
		eng.AddRow([]Term{{0, 1}, {1, 1}}, EQ, 3)
		if got := eng.NumRows(); got != 3 {
			t.Errorf("%s: NumRows = %d, want 3 logical", tc.name, got)
		}
		if got := eng.TableauRows(); got != tc.wantTableau {
			t.Errorf("%s: TableauRows = %d, want %d", tc.name, got, tc.wantTableau)
		}
		st := eng.Stats()
		if st.LogicalRows != 3 || st.TableauRows != tc.wantTableau {
			t.Errorf("%s: Stats rows %d/%d, want 3/%d", tc.name, st.LogicalRows, st.TableauRows, tc.wantTableau)
		}
		if st.LoweredTableauRows != 4 {
			t.Errorf("%s: LoweredTableauRows = %d, want 4 (EQ lowers to two rows)", tc.name, st.LoweredTableauRows)
		}
		if st.RangedRows != 1 {
			t.Errorf("%s: RangedRows = %d, want 1 (the EQ row)", tc.name, st.RangedRows)
		}
	}
}

// Randomized cross-check of the revised dual simplex against both the cold
// simplex and the dense tableau engine on EBF-shaped problems.
func TestRevisedMatchesColdAndDense(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(8)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = rng.Float64() * 5
		}
		rv := NewRevised(n, costs)
		inc := NewIncremental(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		rounds := 1 + rng.Intn(4)
		for round := 0; round < rounds; round++ {
			rows := 1 + rng.Intn(4)
			for r := 0; r < rows; r++ {
				var terms []Term
				for j := 0; j < n; j++ {
					if rng.Intn(2) == 0 {
						terms = append(terms, Term{j, 1})
					}
				}
				if len(terms) == 0 {
					terms = []Term{{rng.Intn(n), 1}}
				}
				rhs := rng.Float64() * 10
				var op Op
				switch rng.Intn(4) {
				case 0:
					op = LE
					rhs += 5
				case 1, 2:
					op = GE
				default:
					op = EQ
				}
				rv.AddRow(terms, op, rhs)
				inc.AddRow(terms, op, rhs)
				p.AddConstraint(terms, op, rhs, "")
			}
			warm, err := rv.Solve()
			if err != nil {
				t.Fatal(err)
			}
			dense, err := inc.Solve()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d round %d: revised %v cold %v", trial, round, warm.Status, cold.Status)
			}
			if warm.Status != dense.Status {
				t.Fatalf("trial %d round %d: revised %v dense %v", trial, round, warm.Status, dense.Status)
			}
			if warm.Status == Infeasible {
				break
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d round %d: revised %.9g cold %.9g", trial, round, warm.Objective, cold.Objective)
			}
			if v, i := p.MaxViolation(warm.X); v > 1e-6 {
				t.Fatalf("trial %d round %d: violation %g at row %d", trial, round, v, i)
			}
		}
	}
}

// General (non-unit) coefficients, including negatives in the rows.
func TestRevisedGeneralCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(6)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = rng.Float64() * 3
		}
		rv := NewRevised(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		rows := 2 + rng.Intn(6)
		for r := 0; r < rows; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, rng.NormFloat64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			rhs := rng.NormFloat64() * 4
			op := []Op{LE, GE, EQ}[rng.Intn(3)]
			rv.AddRow(terms, op, rhs)
			p.AddConstraint(terms, op, rhs, "")
		}
		warm, err := rv.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: revised %v cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("trial %d: revised %.9g cold %.9g", trial, warm.Objective, cold.Objective)
		}
		if v, i := p.MaxViolation(warm.X); v > 1e-6 {
			t.Fatalf("trial %d: violation %g at row %d", trial, v, i)
		}
	}
}

// Duplicate variables inside one row must coalesce.
func TestRevisedCoalescesDuplicateTerms(t *testing.T) {
	rv := NewRevised(2, []float64{1, 1})
	// x + x + y ≥ 4 ⇒ 2x + y ≥ 4; optimum x=2 (cost 2) beats y=4 (cost 4).
	rv.AddRow([]Term{{0, 1}, {0, 1}, {1, 1}}, GE, 4)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-8 {
		t.Fatalf("status %v obj %g x %v", sol.Status, sol.Objective, sol.X)
	}
}

func TestRevisedSolveIdempotent(t *testing.T) {
	rv := NewRevised(2, []float64{1, 3})
	rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 5)
	a, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Status != b.Status {
		t.Fatal("re-solving without new rows changed the answer")
	}
}

// l = u exact-equality delay windows are the degenerate case the EBF loop
// produces for zero-skew instances: many EQ rows over overlapping paths.
func TestRevisedExactEqualityWindows(t *testing.T) {
	// Path-shaped: e1, e1+e2, e1+e2+e3 pinned exactly.
	rv := NewRevised(3, []float64{1, 1, 1})
	rv.AddRow([]Term{{0, 1}}, EQ, 2)
	rv.AddRow([]Term{{0, 1}, {1, 1}}, EQ, 5)
	rv.AddRow([]Term{{0, 1}, {1, 1}, {2, 1}}, EQ, 7)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-8 {
		t.Fatalf("status %v obj %g x %v", sol.Status, sol.Objective, sol.X)
	}
	want := []float64{2, 3, 2}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-8 {
			t.Fatalf("x = %v, want %v", sol.X, want)
		}
	}
	// Tightening one window into contradiction flips to infeasible.
	rv.AddRow([]Term{{2, 1}}, EQ, 1)
	if sol, _ := rv.Solve(); sol.Status != Infeasible {
		t.Fatalf("contradictory window: %v, want infeasible", sol.Status)
	}
}

// Many warm rounds on one engine stress the eta file + refactorization
// cycle (refEach is 64, so this crosses several refactorizations).
func TestRevisedLongWarmSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 12
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = 0.5 + rng.Float64()
	}
	rv := NewRevised(n, costs)
	p := NewProblem(n)
	for j, c := range costs {
		p.SetCost(j, c)
	}
	for round := 0; round < 60; round++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{j, 1})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{rng.Intn(n), 1}}
		}
		rhs := rng.Float64() * 3
		rv.AddRow(terms, GE, rhs)
		p.AddConstraint(terms, GE, rhs, "")
		warm, err := rv.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != Optimal {
			t.Fatalf("round %d: %v", round, warm.Status)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Fatalf("round %d: warm %.9g cold %.9g", round, warm.Objective, cold.Objective)
		}
	}
	st := rv.Stats()
	if st.Pivots == 0 || st.LogicalRows != 60 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestRevisedStatsPopulated(t *testing.T) {
	rv := NewRevised(3, []float64{1, 2, 3})
	rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 4)
	rv.AddRow([]Term{{1, 1}, {2, 1}}, GE, 2)
	rv.AddRow([]Term{{0, 1}, {2, 1}}, EQ, 3)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	st := rv.Stats()
	if st.Pivots == 0 {
		t.Error("Pivots = 0 after a non-trivial solve")
	}
	if st.LogicalRows != 3 || st.TableauRows != 3 {
		t.Errorf("rows %d/%d, want 3/3 (EQ is one boxed row)", st.LogicalRows, st.TableauRows)
	}
	if st.LoweredTableauRows != 4 {
		t.Errorf("LoweredTableauRows = %d, want 4", st.LoweredTableauRows)
	}
	if st.RowNonzeros != 6 {
		t.Errorf("RowNonzeros = %d, want 6", st.RowNonzeros)
	}
	if st.Refactorizations == 0 {
		t.Error("Refactorizations = 0; first solve always factors")
	}
}

func TestStatsMergeAndString(t *testing.T) {
	a := Stats{Pivots: 3, Rounds: 1, ViolatedByRound: []int{5}}
	b := Stats{Pivots: 4, Refactorizations: 2, BasisSize: 7, FillIn: 3,
		LogicalRows: 10, TableauRows: 12, RowNonzeros: 40, Rounds: 2,
		ViolatedByRound: []int{2, 0}}
	a.Merge(b)
	if a.Pivots != 7 || a.Rounds != 3 || a.BasisSize != 7 || a.TableauRows != 12 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if len(a.ViolatedByRound) != 3 {
		t.Fatalf("ViolatedByRound = %v", a.ViolatedByRound)
	}
	if s := a.String(); s == "" {
		t.Fatal("empty String()")
	}
}
