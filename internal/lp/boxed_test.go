package lp

import (
	"math"
	"math/rand"
	"testing"
)

// The boxed revised engine is the one engine with native variable bounds.
var _ VarBounder = (*Revised)(nil)

// lowerRanged states lo ≤ Σ terms ≤ hi on a cold Problem using the
// two-row lowering (what engines without native ranged rows do).
func lowerRanged(p *Problem, terms []Term, lo, hi float64) {
	if !math.IsInf(hi, 1) {
		p.AddConstraint(terms, LE, hi, "")
	}
	if !math.IsInf(lo, -1) {
		p.AddConstraint(terms, GE, lo, "")
	}
}

// TestRangedCrossSolverAgreement checks that ranged rows solved natively
// by the boxed revised engine agree with the dense tableau engine (two-row
// lowering), the cold two-phase simplex, and the interior-point method on
// EBF-shaped problems — including exact (l = u) and tight windows. The
// agreement tolerance mirrors the EBF acceptance bar: 1e-6 relative to
// the problem scale.
func TestRangedCrossSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(7)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*4
		}
		rv := NewRevised(n, costs)
		inc := NewIncremental(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		rows := 2 + rng.Intn(5)
		for r := 0; r < rows; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			var lo, hi float64
			switch rng.Intn(4) {
			case 0: // exact window l = u
				lo = 1 + rng.Float64()*5
				hi = lo
			case 1: // tight window
				lo = 1 + rng.Float64()*5
				hi = lo + 1e-3 + rng.Float64()*0.05
			case 2: // one-sided ≥
				lo = rng.Float64() * 4
				hi = math.Inf(1)
			default: // generous two-sided window
				lo = rng.Float64() * 3
				hi = lo + 1 + rng.Float64()*4
			}
			rv.AddRangedRow(terms, lo, hi)
			inc.AddRangedRow(terms, lo, hi)
			lowerRanged(p, terms, lo, hi)
		}
		warm, err := rv.Solve()
		if err != nil {
			t.Fatal(err)
		}
		dense, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: revised %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != dense.Status {
			t.Fatalf("trial %d: revised %v vs dense %v", trial, warm.Status, dense.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: revised %.9g vs cold %.9g", trial, warm.Objective, cold.Objective)
		}
		if math.Abs(dense.Objective-cold.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: dense %.9g vs cold %.9g", trial, dense.Objective, cold.Objective)
		}
		if v, i := p.MaxViolation(warm.X); v > 1e-6*scale {
			t.Fatalf("trial %d: revised violates lowered row %d by %g", trial, i, v)
		}
		// The interior-point method has no infeasibility certificate, so it
		// is only consulted on optimal instances; its bar is looser because
		// it converges to the optimal face, not a vertex.
		ipm, err := (&IPM{}).Solve(p)
		if err == nil && ipm.Status == Optimal {
			if math.Abs(ipm.Objective-cold.Objective) > 1e-5*scale {
				t.Fatalf("trial %d: IPM %.9g vs cold %.9g", trial, ipm.Objective, cold.Objective)
			}
		}
	}
}

// TestBoundFlipPivots constructs a problem where the dual ratio test must
// flip a boxed variable bound-to-bound before pivoting: x0 is boxed to
// [0, 0.5] with the best dual ratio but not enough capacity to absorb the
// row's infeasibility, so it flips to its upper bound and x1 enters.
func TestBoundFlipPivots(t *testing.T) {
	rv := NewRevised(2, []float64{1, 2})
	rv.SetVarBounds(0, 0, 0.5)
	rv.AddRangedRow([]Term{{0, 1}, {1, 1}}, 5, 6)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum: x0 at its upper bound 0.5, x1 = 4.5 → objective 9.5.
	if math.Abs(sol.Objective-9.5) > 1e-8 {
		t.Fatalf("objective %.9g, want 9.5 (x %v)", sol.Objective, sol.X)
	}
	if math.Abs(sol.X[0]-0.5) > 1e-8 || math.Abs(sol.X[1]-4.5) > 1e-8 {
		t.Fatalf("x = %v, want [0.5 4.5]", sol.X)
	}
	st := rv.Stats()
	if st.BoundFlips == 0 {
		t.Fatal("Stats().BoundFlips = 0, want at least one bound-to-bound flip")
	}
	// Cross-check against the cold simplex with the box stated as a row.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.AddConstraint([]Term{{0, 1}}, LE, 0.5, "box")
	lowerRanged(p, []Term{{0, 1}, {1, 1}}, 5, 6)
	cold, err := (&Simplex{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal || math.Abs(cold.Objective-sol.Objective) > 1e-7 {
		t.Fatalf("cold %v %.9g vs boxed %.9g", cold.Status, cold.Objective, sol.Objective)
	}
}

// TestVarBounderFixedVariable checks that fixing a variable with
// SetVarBounds(j, v, v) is equivalent to stating x_j = v as an EQ row —
// the substitution the EBF row generation uses for forced-zero edges.
func TestVarBounderFixedVariable(t *testing.T) {
	rv := NewRevised(3, []float64{1, 1, 1})
	rv.SetVarBounds(1, 0, 0) // forced-zero edge
	rv.AddRangedRow([]Term{{0, 1}, {1, 1}, {2, 1}}, 4, 4)
	rv.AddRow([]Term{{0, 1}}, LE, 1)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(3, []float64{1, 1, 1})
	inc.AddRow([]Term{{1, 1}}, EQ, 0)
	inc.AddRangedRow([]Term{{0, 1}, {1, 1}, {2, 1}}, 4, 4)
	inc.AddRow([]Term{{0, 1}}, LE, 1)
	dense, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || dense.Status != Optimal {
		t.Fatalf("status revised %v dense %v", sol.Status, dense.Status)
	}
	if math.Abs(sol.Objective-dense.Objective) > 1e-7 {
		t.Fatalf("revised %.9g vs dense %.9g", sol.Objective, dense.Objective)
	}
	if math.Abs(sol.X[1]) > 1e-9 {
		t.Fatalf("fixed variable x1 = %g, want 0", sol.X[1])
	}
	// A non-zero fixed value works the same way.
	rv2 := NewRevised(2, []float64{1, 3})
	rv2.SetVarBounds(0, 2, 2)
	rv2.AddRangedRow([]Term{{0, 1}, {1, 1}}, 5, 7)
	s2, err := rv2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || math.Abs(s2.X[0]-2) > 1e-8 || math.Abs(s2.Objective-11) > 1e-7 {
		t.Fatalf("fixed-at-2: %v x %v obj %.9g, want x0=2 obj 11", s2.Status, s2.X, s2.Objective)
	}
}

// TestSetVarBoundsAfterSolvePanics pins the staging contract: boxes are
// part of problem construction and may not change once the engine has
// solved (the warm basis would silently assume the old box).
func TestSetVarBoundsAfterSolvePanics(t *testing.T) {
	rv := NewRevised(1, []float64{1})
	rv.AddRow([]Term{{0, 1}}, GE, 1)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	rv.SetVarBounds(0, 0, 2)
}

// TestRangedRowHalvingRegression pins the row-count saving that motivates
// the boxed engine: N two-sided delay windows occupy N tableau rows in the
// revised engine and 2N in the dense lowering, while both report the same
// logical and lowered counts.
func TestRangedRowHalvingRegression(t *testing.T) {
	const nRows = 8
	rv := NewRevised(4, []float64{1, 1, 1, 1})
	inc := NewIncremental(4, []float64{1, 1, 1, 1})
	for r := 0; r < nRows; r++ {
		terms := []Term{{r % 4, 1}, {(r + 1) % 4, 1}}
		lo := 1 + float64(r)
		hi := lo + 0.5
		rv.AddRangedRow(terms, lo, hi)
		inc.AddRangedRow(terms, lo, hi)
	}
	if rv.NumRows() != nRows || inc.NumRows() != nRows {
		t.Fatalf("NumRows revised %d dense %d, want %d each", rv.NumRows(), inc.NumRows(), nRows)
	}
	if got := rv.TableauRows(); got != nRows {
		t.Fatalf("revised TableauRows = %d, want %d (one boxed row per window)", got, nRows)
	}
	if got := inc.TableauRows(); got != 2*nRows {
		t.Fatalf("dense TableauRows = %d, want %d (two rows per window)", got, 2*nRows)
	}
	for _, eng := range []RowEngine{rv, inc} {
		st := eng.Stats()
		if st.LoweredTableauRows != 2*nRows {
			t.Fatalf("LoweredTableauRows = %d, want %d", st.LoweredTableauRows, 2*nRows)
		}
		if st.RangedRows != nRows {
			t.Fatalf("RangedRows = %d, want %d", st.RangedRows, nRows)
		}
	}
	// And both engines solve the same problem to the same optimum.
	a, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status {
		t.Fatalf("status revised %v dense %v", a.Status, b.Status)
	}
	if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-7 {
		t.Fatalf("revised %.9g vs dense %.9g", a.Objective, b.Objective)
	}
}

// TestRangedWarmSequence interleaves ranged rows, one-sided rows and
// re-solves, checking the warm path against a cold solve of the lowered
// problem at every step.
func TestRangedWarmSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*2
		}
		rv := NewRevised(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		steps := 4 + rng.Intn(5)
		for s := 0; s < steps; s++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			if rng.Intn(2) == 0 {
				lo := rng.Float64() * 4
				hi := lo + rng.Float64()*3
				rv.AddRangedRow(terms, lo, hi)
				lowerRanged(p, terms, lo, hi)
			} else {
				rhs := rng.Float64() * 4
				rv.AddRow(terms, GE, rhs)
				p.AddConstraint(terms, GE, rhs, "")
			}
			warm, err := rv.Solve()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm %v cold %v", trial, s, warm.Status, cold.Status)
			}
			if warm.Status == Infeasible {
				break
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d step %d: warm %.9g cold %.9g", trial, s, warm.Objective, cold.Objective)
			}
		}
	}
}
