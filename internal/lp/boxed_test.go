package lp

import (
	"math"
	"math/rand"
	"testing"
)

// The boxed revised engine is the one engine with native variable bounds.
var _ VarBounder = (*Revised)(nil)

// lowerRanged states lo ≤ Σ terms ≤ hi on a cold Problem using the
// two-row lowering (what engines without native ranged rows do).
func lowerRanged(p *Problem, terms []Term, lo, hi float64) {
	if !math.IsInf(hi, 1) {
		p.AddConstraint(terms, LE, hi, "")
	}
	if !math.IsInf(lo, -1) {
		p.AddConstraint(terms, GE, lo, "")
	}
}

// TestRangedCrossSolverAgreement checks that ranged rows solved natively
// by the boxed revised engine agree with the dense tableau engine (two-row
// lowering), the cold two-phase simplex, and the interior-point method on
// EBF-shaped problems — including exact (l = u) and tight windows. The
// agreement tolerance mirrors the EBF acceptance bar: 1e-6 relative to
// the problem scale.
func TestRangedCrossSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(7)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*4
		}
		rv := NewRevised(n, costs)
		inc := NewIncremental(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		rows := 2 + rng.Intn(5)
		for r := 0; r < rows; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			var lo, hi float64
			switch rng.Intn(4) {
			case 0: // exact window l = u
				lo = 1 + rng.Float64()*5
				hi = lo
			case 1: // tight window
				lo = 1 + rng.Float64()*5
				hi = lo + 1e-3 + rng.Float64()*0.05
			case 2: // one-sided ≥
				lo = rng.Float64() * 4
				hi = math.Inf(1)
			default: // generous two-sided window
				lo = rng.Float64() * 3
				hi = lo + 1 + rng.Float64()*4
			}
			rv.AddRangedRow(terms, lo, hi)
			inc.AddRangedRow(terms, lo, hi)
			lowerRanged(p, terms, lo, hi)
		}
		warm, err := rv.Solve()
		if err != nil {
			t.Fatal(err)
		}
		dense, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: revised %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != dense.Status {
			t.Fatalf("trial %d: revised %v vs dense %v", trial, warm.Status, dense.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: revised %.9g vs cold %.9g", trial, warm.Objective, cold.Objective)
		}
		if math.Abs(dense.Objective-cold.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: dense %.9g vs cold %.9g", trial, dense.Objective, cold.Objective)
		}
		if v, i := p.MaxViolation(warm.X); v > 1e-6*scale {
			t.Fatalf("trial %d: revised violates lowered row %d by %g", trial, i, v)
		}
		// The interior-point method has no infeasibility certificate, so it
		// is only consulted on optimal instances; its bar is looser because
		// it converges to the optimal face, not a vertex.
		ipm, err := (&IPM{}).Solve(p)
		if err == nil && ipm.Status == Optimal {
			if math.Abs(ipm.Objective-cold.Objective) > 1e-5*scale {
				t.Fatalf("trial %d: IPM %.9g vs cold %.9g", trial, ipm.Objective, cold.Objective)
			}
		}
	}
}

// TestBoundFlipPivots constructs a problem where the dual ratio test must
// flip a boxed variable bound-to-bound before pivoting: x0 is boxed to
// [0, 0.5] with the best dual ratio but not enough capacity to absorb the
// row's infeasibility, so it flips to its upper bound and x1 enters.
func TestBoundFlipPivots(t *testing.T) {
	rv := NewRevised(2, []float64{1, 2})
	rv.SetVarBounds(0, 0, 0.5)
	rv.AddRangedRow([]Term{{0, 1}, {1, 1}}, 5, 6)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum: x0 at its upper bound 0.5, x1 = 4.5 → objective 9.5.
	if math.Abs(sol.Objective-9.5) > 1e-8 {
		t.Fatalf("objective %.9g, want 9.5 (x %v)", sol.Objective, sol.X)
	}
	if math.Abs(sol.X[0]-0.5) > 1e-8 || math.Abs(sol.X[1]-4.5) > 1e-8 {
		t.Fatalf("x = %v, want [0.5 4.5]", sol.X)
	}
	st := rv.Stats()
	if st.BoundFlips == 0 {
		t.Fatal("Stats().BoundFlips = 0, want at least one bound-to-bound flip")
	}
	// Cross-check against the cold simplex with the box stated as a row.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.AddConstraint([]Term{{0, 1}}, LE, 0.5, "box")
	lowerRanged(p, []Term{{0, 1}, {1, 1}}, 5, 6)
	cold, err := (&Simplex{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal || math.Abs(cold.Objective-sol.Objective) > 1e-7 {
		t.Fatalf("cold %v %.9g vs boxed %.9g", cold.Status, cold.Objective, sol.Objective)
	}
}

// TestVarBounderFixedVariable checks that fixing a variable with
// SetVarBounds(j, v, v) is equivalent to stating x_j = v as an EQ row —
// the substitution the EBF row generation uses for forced-zero edges.
func TestVarBounderFixedVariable(t *testing.T) {
	rv := NewRevised(3, []float64{1, 1, 1})
	rv.SetVarBounds(1, 0, 0) // forced-zero edge
	rv.AddRangedRow([]Term{{0, 1}, {1, 1}, {2, 1}}, 4, 4)
	rv.AddRow([]Term{{0, 1}}, LE, 1)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(3, []float64{1, 1, 1})
	inc.AddRow([]Term{{1, 1}}, EQ, 0)
	inc.AddRangedRow([]Term{{0, 1}, {1, 1}, {2, 1}}, 4, 4)
	inc.AddRow([]Term{{0, 1}}, LE, 1)
	dense, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || dense.Status != Optimal {
		t.Fatalf("status revised %v dense %v", sol.Status, dense.Status)
	}
	if math.Abs(sol.Objective-dense.Objective) > 1e-7 {
		t.Fatalf("revised %.9g vs dense %.9g", sol.Objective, dense.Objective)
	}
	if math.Abs(sol.X[1]) > 1e-9 {
		t.Fatalf("fixed variable x1 = %g, want 0", sol.X[1])
	}
	// A non-zero fixed value works the same way.
	rv2 := NewRevised(2, []float64{1, 3})
	rv2.SetVarBounds(0, 2, 2)
	rv2.AddRangedRow([]Term{{0, 1}, {1, 1}}, 5, 7)
	s2, err := rv2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || math.Abs(s2.X[0]-2) > 1e-8 || math.Abs(s2.Objective-11) > 1e-7 {
		t.Fatalf("fixed-at-2: %v x %v obj %.9g, want x0=2 obj 11", s2.Status, s2.X, s2.Objective)
	}
}

// TestRestageVarBoundsContract pins the restaging contract that replaced
// the old frozen-after-Solve panic: an empty box still panics at any
// time, tightening a box until the LP is infeasible returns Infeasible
// from the next Solve (no panic), loosening it again clears the sticky
// certificate, and a repeated restage+Solve sequence is deterministic.
func TestRestageVarBoundsContract(t *testing.T) {
	build := func() *Revised {
		rv := NewRevised(2, []float64{1, 2})
		rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 4)
		rv.AddRow([]Term{{0, 1}}, LE, 3)
		return rv
	}
	rv := build()
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("seed solve: %v %v", sol, err)
	}
	// Objective min x0+2x1 st x0+x1 ≥ 4, x0 ≤ 3 → x0=3, x1=1 → 5.
	if math.Abs(sol.Objective-5) > 1e-8 {
		t.Fatalf("seed objective %.9g, want 5", sol.Objective)
	}

	// An empty box panics exactly as before — restaging did not loosen that.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetVarBounds with empty box after Solve: no panic")
			}
		}()
		rv.SetVarBounds(0, 2, 1)
	}()

	// Restage: box x0 into [0, 1]. New optimum x0=1, x1=3 → 7.
	rv.SetVarBounds(0, 0, 1)
	sol, err = rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("restaged solve: %v %v", sol, err)
	}
	if math.Abs(sol.Objective-7) > 1e-8 {
		t.Fatalf("restaged objective %.9g, want 7 (x %v)", sol.Objective, sol.X)
	}
	if st := rv.Stats(); st.Restages == 0 {
		t.Fatal("Stats().Restages = 0 after a between-Solve SetVarBounds")
	}

	// Tighten to infeasible: x1 fixed at 0 makes x0+x1 ≥ 4 unreachable
	// under x0 ≤ 1. Must certify Infeasible, not panic.
	rv.SetVarBounds(1, 0, 0)
	sol, err = rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("tighten-to-infeasible: status %v, want Infeasible", sol.Status)
	}
	// Solve is sticky while nothing changes...
	sol, _ = rv.Solve()
	if sol.Status != Infeasible {
		t.Fatalf("repeat solve: status %v, want sticky Infeasible", sol.Status)
	}
	// ...but a restage clears the certificate and feasibility returns.
	rv.SetVarBounds(1, 0, 10)
	sol, err = rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("post-relax solve: %v %v", sol, err)
	}
	if math.Abs(sol.Objective-7) > 1e-8 {
		t.Fatalf("post-relax objective %.9g, want 7", sol.Objective)
	}

	// Determinism: the same restage+Solve script on two fresh engines lands
	// on identical objectives, pivot counts and restage counters.
	script := func(rv *Revised) (objs []float64) {
		rv.Solve()
		for _, b := range [][2]float64{{0, 1}, {0, 2.5}, {1, 1}, {0, 3}} {
			rv.SetVarBounds(0, b[0], b[1])
			s, err := rv.Solve()
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, s.Objective)
		}
		return objs
	}
	a, b := build(), build()
	oa, ob := script(a), script(b)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("step %d: objective %.12g vs %.12g (nondeterministic restage)", i, oa[i], ob[i])
		}
	}
	if a.Iterations() != b.Iterations() || a.Stats().Restages != b.Stats().Restages {
		t.Fatalf("pivots %d/%d restages %d/%d differ across identical scripts",
			a.Iterations(), b.Iterations(), a.Stats().Restages, b.Stats().Restages)
	}
}

// TestReplaceRangedRowRhsFastPath pins the ECO retighten fast path: a
// ReplaceRangedRow with identical terms and a shifted window must not
// count as a row replacement (the coefficient pattern — and therefore the
// factorization — is untouched), must count as a restage, and the warm
// re-solve must reach the cold optimum in at most a couple of pivots.
func TestReplaceRangedRowRhsFastPath(t *testing.T) {
	terms := [][]Term{
		{{0, 1}, {1, 1}},
		{{1, 1}, {2, 1}},
		{{0, 1}, {2, 1}},
	}
	costs := []float64{1, 2, 1.5}
	rv := NewRevised(3, costs)
	for _, tm := range terms {
		rv.AddRangedRow(tm, 2, 5)
	}
	if sol, err := rv.Solve(); err != nil || sol.Status != Optimal {
		t.Fatalf("seed solve: %v %v", sol, err)
	}
	before := rv.Stats()
	// Retighten row 1's window with the same coefficient pattern.
	rv.ReplaceRangedRow(1, terms[1], 3, 4.5)
	after := rv.Stats()
	if after.RowReplacements != before.RowReplacements {
		t.Fatalf("rhs-only replace counted as RowReplacement (%d → %d)",
			before.RowReplacements, after.RowReplacements)
	}
	if after.Restages != before.Restages+1 {
		t.Fatalf("Restages %d → %d, want +1", before.Restages, after.Restages)
	}
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("warm re-solve: %v %v", sol, err)
	}
	if warmPivots := rv.Iterations() - before.Pivots; warmPivots > 3 {
		t.Fatalf("warm re-solve took %d pivots, want ≤ 3 (fast path missed)", warmPivots)
	}
	// Cold oracle on the edited problem.
	p := NewProblem(3)
	for j, c := range costs {
		p.SetCost(j, c)
	}
	lowerRanged(p, terms[0], 2, 5)
	lowerRanged(p, terms[1], 3, 4.5)
	lowerRanged(p, terms[2], 2, 5)
	cold, err := (&Simplex{}).Solve(p)
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold solve: %v %v", cold, err)
	}
	if math.Abs(sol.Objective-cold.Objective) > 1e-7*(1+math.Abs(cold.Objective)) {
		t.Fatalf("warm %.9g vs cold %.9g", sol.Objective, cold.Objective)
	}
}

// TestDeleteRowAndRevive checks DeleteRow semantics: deleting a binding
// row relaxes the optimum, row indices of the surviving rows stay stable,
// double delete panics, and ReplaceRangedRow revives a deleted row.
func TestDeleteRowAndRevive(t *testing.T) {
	rv := NewRevised(2, []float64{1, 1})
	rv.AddRow([]Term{{0, 1}}, GE, 1)         // row 0
	rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 5) // row 1 (binding)
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-8 {
		t.Fatalf("seed solve: %v %v", sol, err)
	}
	rv.DeleteRow(1)
	if got := rv.NumRows(); got != 1 {
		t.Fatalf("NumRows after delete = %d, want 1", got)
	}
	sol, err = rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("post-delete solve: %v %v", sol, err)
	}
	if math.Abs(sol.Objective-1) > 1e-8 {
		t.Fatalf("post-delete objective %.9g, want 1 (only x0 ≥ 1 left)", sol.Objective)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double DeleteRow: no panic")
			}
		}()
		rv.DeleteRow(1)
	}()
	// Revive row 1 with a new window.
	rv.ReplaceRangedRow(1, []Term{{0, 1}, {1, 1}}, 3, 6)
	if got := rv.NumRows(); got != 2 {
		t.Fatalf("NumRows after revive = %d, want 2", got)
	}
	sol, err = rv.Solve()
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("post-revive solve: %v %v (want objective 3)", sol, err)
	}
	if st := rv.Stats(); st.RowReplacements < 2 {
		t.Fatalf("RowReplacements = %d, want ≥ 2 (delete + revive)", st.RowReplacements)
	}
}

// TestRestageRandomizedVsCold drives one warm engine through a random
// script of bound edits, window replacements, cost changes and row
// deletions, checking every warm re-solve against a cold simplex on the
// rebuilt lowered problem. This is the lp-layer half of the
// restaging-vs-oracles bar (internal/core extends it to the EBF LPs).
func TestRestageRandomizedVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	type shadowRow struct {
		terms  []Term
		lo, hi float64
		dead   bool
	}
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*3
		}
		boxes := make([][2]float64, n)
		for j := range boxes {
			boxes[j] = [2]float64{0, math.Inf(1)}
		}
		rv := NewRevised(n, append([]float64(nil), costs...))
		var rowsSh []shadowRow
		nRows := 2 + rng.Intn(4)
		for r := 0; r < nRows; r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, 1 + rng.Float64()})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			lo := 1 + rng.Float64()*3
			hi := lo + rng.Float64()*3
			rv.AddRangedRow(terms, lo, hi)
			rowsSh = append(rowsSh, shadowRow{terms, lo, hi, false})
		}
		cold := func() *Solution {
			p := NewProblem(n)
			for j, c := range costs {
				p.SetCost(j, c)
			}
			for _, r := range rowsSh {
				if !r.dead {
					lowerRanged(p, r.terms, r.lo, r.hi)
				}
			}
			for j, b := range boxes {
				if b[0] > 0 {
					p.AddConstraint([]Term{{j, 1}}, GE, b[0], "")
				}
				if !math.IsInf(b[1], 1) {
					p.AddConstraint([]Term{{j, 1}}, LE, b[1], "")
				}
			}
			s, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		check := func(step int) {
			warm, err := rv.Solve()
			if err != nil {
				t.Fatal(err)
			}
			want := cold()
			if warm.Status != want.Status {
				t.Fatalf("trial %d step %d: warm %v cold %v", trial, step, warm.Status, want.Status)
			}
			if warm.Status != Optimal {
				return
			}
			if d := math.Abs(warm.Objective - want.Objective); d > 1e-6*(1+math.Abs(want.Objective)) {
				t.Fatalf("trial %d step %d: warm %.9g cold %.9g", trial, step, warm.Objective, want.Objective)
			}
		}
		check(-1)
		edits := 6 + rng.Intn(6)
		for e := 0; e < edits; e++ {
			switch rng.Intn(5) {
			case 0: // restage a variable box
				j := rng.Intn(n)
				lo := rng.Float64() * 2
				hi := lo + rng.Float64()*3
				if rng.Intn(4) == 0 {
					hi = lo // fix it
				}
				boxes[j] = [2]float64{lo, hi}
				rv.SetVarBounds(j, lo, hi)
			case 1: // replace a row with fresh terms and window
				k := rng.Intn(len(rowsSh))
				var terms []Term
				for j := 0; j < n; j++ {
					if rng.Intn(2) == 0 {
						terms = append(terms, Term{j, 1 + rng.Float64()})
					}
				}
				if len(terms) == 0 {
					terms = []Term{{rng.Intn(n), 1}}
				}
				lo := 1 + rng.Float64()*3
				hi := lo + rng.Float64()*3
				rowsSh[k] = shadowRow{terms, lo, hi, false}
				rv.ReplaceRangedRow(k, terms, lo, hi)
			case 2: // rhs-only retighten (same terms, shifted window)
				k := rng.Intn(len(rowsSh))
				if rowsSh[k].dead {
					continue
				}
				lo := rowsSh[k].lo + (rng.Float64() - 0.5)
				hi := lo + math.Max(rowsSh[k].hi-rowsSh[k].lo+(rng.Float64()-0.5), 0)
				if lo < 0 {
					lo = 0
				}
				rowsSh[k].lo, rowsSh[k].hi = lo, hi
				rv.ReplaceRangedRow(k, rowsSh[k].terms, lo, hi)
			case 3: // reweight the objective
				j := rng.Intn(n)
				costs[j] = 0.1 + rng.Float64()*4
				rv.SetCost(j, costs[j])
			case 4: // delete a live row (keep at least one)
				live := 0
				for _, r := range rowsSh {
					if !r.dead {
						live++
					}
				}
				if live <= 1 {
					continue
				}
				k := rng.Intn(len(rowsSh))
				if rowsSh[k].dead {
					continue
				}
				rowsSh[k].dead = true
				rv.DeleteRow(k)
			}
			check(e)
		}
	}
}

// TestRangedRowHalvingRegression pins the row-count saving that motivates
// the boxed engine: N two-sided delay windows occupy N tableau rows in the
// revised engine and 2N in the dense lowering, while both report the same
// logical and lowered counts.
func TestRangedRowHalvingRegression(t *testing.T) {
	const nRows = 8
	rv := NewRevised(4, []float64{1, 1, 1, 1})
	inc := NewIncremental(4, []float64{1, 1, 1, 1})
	for r := 0; r < nRows; r++ {
		terms := []Term{{r % 4, 1}, {(r + 1) % 4, 1}}
		lo := 1 + float64(r)
		hi := lo + 0.5
		rv.AddRangedRow(terms, lo, hi)
		inc.AddRangedRow(terms, lo, hi)
	}
	if rv.NumRows() != nRows || inc.NumRows() != nRows {
		t.Fatalf("NumRows revised %d dense %d, want %d each", rv.NumRows(), inc.NumRows(), nRows)
	}
	if got := rv.TableauRows(); got != nRows {
		t.Fatalf("revised TableauRows = %d, want %d (one boxed row per window)", got, nRows)
	}
	if got := inc.TableauRows(); got != 2*nRows {
		t.Fatalf("dense TableauRows = %d, want %d (two rows per window)", got, 2*nRows)
	}
	for _, eng := range []RowEngine{rv, inc} {
		st := eng.Stats()
		if st.LoweredTableauRows != 2*nRows {
			t.Fatalf("LoweredTableauRows = %d, want %d", st.LoweredTableauRows, 2*nRows)
		}
		if st.RangedRows != nRows {
			t.Fatalf("RangedRows = %d, want %d", st.RangedRows, nRows)
		}
	}
	// And both engines solve the same problem to the same optimum.
	a, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status {
		t.Fatalf("status revised %v dense %v", a.Status, b.Status)
	}
	if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-7 {
		t.Fatalf("revised %.9g vs dense %.9g", a.Objective, b.Objective)
	}
}

// TestRangedWarmSequence interleaves ranged rows, one-sided rows and
// re-solves, checking the warm path against a cold solve of the lowered
// problem at every step.
func TestRangedWarmSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()*2
		}
		rv := NewRevised(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		steps := 4 + rng.Intn(5)
		for s := 0; s < steps; s++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			if rng.Intn(2) == 0 {
				lo := rng.Float64() * 4
				hi := lo + rng.Float64()*3
				rv.AddRangedRow(terms, lo, hi)
				lowerRanged(p, terms, lo, hi)
			} else {
				rhs := rng.Float64() * 4
				rv.AddRow(terms, GE, rhs)
				p.AddConstraint(terms, GE, rhs, "")
			}
			warm, err := rv.Solve()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d step %d: warm %v cold %v", trial, s, warm.Status, cold.Status)
			}
			if warm.Status == Infeasible {
				break
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d step %d: warm %.9g cold %.9g", trial, s, warm.Objective, cold.Objective)
			}
		}
	}
}
