package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveSimplex(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := (&Simplex{}).Solve(p)
	if err != nil {
		t.Fatalf("simplex error: %v", err)
	}
	return sol
}

func requireOptimal(t *testing.T, sol *Solution, wantObj float64, tol float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-wantObj) > tol {
		t.Fatalf("objective = %g, want %g (x=%v)", sol.Objective, wantObj, sol.X)
	}
}

func TestSimplexTwoVarLE(t *testing.T) {
	// max 3x+5y s.t. x≤4, 2y≤12, 3x+2y≤18  (classic; optimum 36 at (2,6)).
	// Stated as minimization of −3x−5y.
	p := NewProblem(2)
	p.SetCost(0, -3)
	p.SetCost(1, -5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4, "x")
	p.AddConstraint([]Term{{1, 2}}, LE, 12, "y")
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18, "mix")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, -36, 1e-8)
	if math.Abs(sol.X[0]-2) > 1e-8 || math.Abs(sol.X[1]-6) > 1e-8 {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
}

func TestSimplexGERows(t *testing.T) {
	// min x+y s.t. x+y ≥ 3, x ≥ 1. Optimum 3.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.AddSumGE([]int{0, 1}, 3, "sum")
	p.AddSumGE([]int{0}, 1, "x")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 3, 1e-8)
	if sol.X[0] < 1-1e-8 {
		t.Errorf("x0 = %g violates x ≥ 1", sol.X[0])
	}
}

func TestSimplexEquality(t *testing.T) {
	// min 2x+3y s.t. x+y = 4, x−y = 0 → x=y=2, objective 10.
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 4, "")
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, EQ, 0, "")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 10, 1e-8)
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetCost(0, 1)
	p.AddSumGE([]int{0}, 5, "")
	p.AddSumLE([]int{0}, 3, "")
	sol := solveSimplex(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexInfeasibleEquality(t *testing.T) {
	// x + y = −1 with x,y ≥ 0 is infeasible.
	p := NewProblem(2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, -1, "")
	sol := solveSimplex(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// min −x s.t. x ≥ 1: unbounded below.
	p := NewProblem(1)
	p.SetCost(0, -1)
	p.AddSumGE([]int{0}, 1, "")
	sol := solveSimplex(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexNoConstraints(t *testing.T) {
	p := NewProblem(3)
	p.SetCost(0, 1)
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 0, 0)
	p.SetCost(1, -1)
	sol = solveSimplex(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// −x ≤ −2 means x ≥ 2; min x → 2.
	p := NewProblem(1)
	p.SetCost(0, 1)
	p.AddConstraint([]Term{{0, -1}}, LE, -2, "")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 2, 1e-8)
}

func TestSimplexDegenerate(t *testing.T) {
	// A classic degenerate LP (Beale's cycling example shape); Bland's rule
	// must terminate.
	p := NewProblem(4)
	p.Objective = []float64{-0.75, 150, -0.02, 6}
	p.AddConstraint([]Term{{0, 0.25}, {1, -60}, {2, -1.0 / 25}, {3, 9}}, LE, 0, "")
	p.AddConstraint([]Term{{0, 0.5}, {1, -90}, {2, -1.0 / 50}, {3, 3}}, LE, 0, "")
	p.AddConstraint([]Term{{2, 1}}, LE, 1, "")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, -0.05, 1e-8)
}

func TestSimplexRedundantRows(t *testing.T) {
	// Duplicate equality rows create redundant artificials in phase 1.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2, "")
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 2, "dup")
	p.AddConstraint([]Term{{0, 2}, {1, 2}}, EQ, 4, "scaled dup")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 2, 1e-8) // x=(2,0)
}

func TestSimplexRangeRow(t *testing.T) {
	// 3 ≤ x+y ≤ 5 as two rows, min x+2y → x=3,y=0.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	p.AddSumGE([]int{0, 1}, 3, "lo")
	p.AddSumLE([]int{0, 1}, 5, "hi")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 3, 1e-8)
}

func TestSimplexTightRange(t *testing.T) {
	// l = u forces equality through the pair of rows.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.AddSumGE([]int{0, 1}, 4, "lo")
	p.AddSumLE([]int{0, 1}, 4, "hi")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 4, 1e-8)
}

func TestSimplexEBFShape(t *testing.T) {
	// A miniature EBF: 2 sinks under a root (star topology), distance 10
	// apart, delays in [6, 8]. Variables e1, e2 (root edges).
	// Steiner: e1+e2 ≥ 10; delays: 6 ≤ e1 ≤ 8, 6 ≤ e2 ≤ 8.
	// Optimum: e1 = e2 = 6? e1+e2 ≥ 10 already satisfied by 12 ≥ 10.
	// Cost 12.
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 1)
	p.AddSumGE([]int{0, 1}, 10, "steiner")
	p.AddSumGE([]int{0}, 6, "l1")
	p.AddSumLE([]int{0}, 8, "u1")
	p.AddSumGE([]int{1}, 6, "l2")
	p.AddSumLE([]int{1}, 8, "u2")
	sol := solveSimplex(t, p)
	requireOptimal(t, sol, 12, 1e-8)
}

func TestSimplexSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		p := randomFeasibleLP(rng)
		sol := solveSimplex(t, p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if v, i := p.MaxViolation(sol.X); v > 1e-6 {
			t.Fatalf("trial %d: violation %g at row %d", trial, v, i)
		}
	}
}

// randomFeasibleLP builds an LP guaranteed feasible: random ≥/≤/= rows
// generated around a known feasible point, with non-negative costs so the
// problem is also bounded.
func randomFeasibleLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(6)
	p := NewProblem(n)
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = rng.Float64() * 10
		p.SetCost(j, rng.Float64()*5)
	}
	rows := 1 + rng.Intn(8)
	for i := 0; i < rows; i++ {
		var terms []Term
		act := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				co := rng.Float64()*4 - 2
				terms = append(terms, Term{j, co})
				act += co * x0[j]
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{0, 1})
			act = x0[0]
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint(terms, LE, act+rng.Float64()*3, "")
		case 1:
			p.AddConstraint(terms, GE, act-rng.Float64()*3, "")
		default:
			p.AddConstraint(terms, EQ, act, "")
		}
	}
	return p
}

func TestSimplexBadProblem(t *testing.T) {
	if _, err := (&Simplex{}).Solve(nil); err == nil {
		t.Error("nil problem accepted")
	}
}

func TestAddConstraintPanicsOnBadVar(t *testing.T) {
	p := NewProblem(2)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	p.AddConstraint([]Term{{5, 1}}, LE, 1, "")
}

func TestMaxViolation(t *testing.T) {
	p := NewProblem(2)
	p.AddSumGE([]int{0, 1}, 10, "")
	v, i := p.MaxViolation([]float64{3, 3})
	if math.Abs(v-4) > 1e-12 || i != 0 {
		t.Errorf("violation = %g at %d", v, i)
	}
	v, _ = p.MaxViolation([]float64{5, 6})
	if v != 0 {
		t.Errorf("violation = %g for feasible point", v)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Op strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" {
		t.Error("Status strings wrong")
	}
}

func TestSimplexIterationLimit(t *testing.T) {
	p := NewProblem(3)
	p.SetCost(0, 1)
	p.AddSumGE([]int{0, 1, 2}, 10, "")
	p.AddSumGE([]int{0, 1}, 5, "")
	sol, err := (&Simplex{MaxIter: 1}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestProblemEvalAndRowActivity(t *testing.T) {
	p := NewProblem(2)
	p.SetCost(0, 2)
	p.SetCost(1, 3)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, 4, "")
	x := []float64{5, 2}
	if got := p.Eval(x); got != 16 {
		t.Errorf("Eval = %g", got)
	}
	if got := p.RowActivity(0, x); got != 3 {
		t.Errorf("RowActivity = %g", got)
	}
}
