package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestParsePricing(t *testing.T) {
	cases := map[string]Pricing{
		"":               PricingDevex,
		"devex":          PricingDevex,
		"mostviolated":   PricingMostViolated,
		"most-violated":  PricingMostViolated,
		"mv":             PricingMostViolated,
		"steepest":       PricingSteepestExact,
		"steepest-exact": PricingSteepestExact,
		"steepestexact":  PricingSteepestExact,
		"se":             PricingSteepestExact,
	}
	for s, want := range cases {
		got, err := ParsePricing(s)
		if err != nil || got != want {
			t.Errorf("ParsePricing(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePricing("dantzig"); err == nil {
		t.Error("ParsePricing accepted an unknown scheme")
	}
	if PricingDevex.String() != "devex" || PricingMostViolated.String() != "most-violated" ||
		PricingSteepestExact.String() != "steepest-exact" {
		t.Error("Pricing.String drifted from the stable tokens")
	}
	if Pricing(99).String() != "unknown" {
		t.Error("out-of-range Pricing must stringify as unknown")
	}
}

func TestSetPricingAfterSolvePanics(t *testing.T) {
	rv := NewRevised(1, []float64{1})
	rv.AddRow([]Term{{0, 1}}, GE, 1)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetPricing after Solve did not panic")
		}
	}()
	rv.SetPricing(PricingMostViolated)
}

// TestPivotBudget pins the Solve pivot cap to 20000 + 200·(m + nVars):
// the regression for the budget that used to double-count the row count
// (20000 + 200·(m + nVars + m)).
func TestPivotBudget(t *testing.T) {
	rv := NewRevised(7, nil)
	for i := 0; i < 5; i++ {
		rv.AddRow([]Term{{i % 7, 1}}, GE, 1)
	}
	m := rv.rows.numRows()
	if m != 5 {
		t.Fatalf("m = %d, want 5", m)
	}
	if got, want := rv.pivotBudget(m), 20000+200*(5+7); got != want {
		t.Errorf("pivotBudget(%d) = %d, want %d (m must not be double-counted)", m, got, want)
	}
	rv.maxIterOverride = 3
	if got := rv.pivotBudget(m); got != 3 {
		t.Errorf("maxIterOverride ignored: pivotBudget = %d, want 3", got)
	}
}

// TestRevisedIterLimit exercises the pivot cap: with the budget pinned
// to one pivot, a problem needing several must return IterLimit rather
// than loop or mis-report Optimal.
func TestRevisedIterLimit(t *testing.T) {
	rv := NewRevised(3, []float64{1, 1, 1})
	rv.AddRow([]Term{{0, 1}, {1, 1}}, GE, 2)
	rv.AddRow([]Term{{1, 1}, {2, 1}}, GE, 2)
	rv.AddRow([]Term{{0, 1}, {2, 1}}, GE, 2)
	rv.maxIterOverride = 1
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("status %v, want IterLimit under a one-pivot budget", sol.Status)
	}
	// Lifting the cap must let the same engine finish the solve.
	rv.maxIterOverride = 0
	sol, err = rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("after lifting the cap: status %v obj %g, want Optimal 3", sol.Status, sol.Objective)
	}
}

// buildTieHeavy states a tie-heavy boxed instance on an engine and the
// matching cold Problem: blocks of structurally identical ranged
// delay-window rows whose violations are exactly equal at the all-slack
// start — the degenerate-tie pattern ROADMAP flags for r4/r5. Every
// pricing scheme must break the ties without cycling.
func buildTieHeavy(add func(terms []Term, lo, hi float64), n, blocks int) {
	for b := 0; b < blocks; b++ {
		// Identical windows over rotating variable pairs: equal RHS, equal
		// coefficients, so the initial violations tie exactly.
		for i := 0; i < n; i++ {
			j := (i + 1 + b) % n
			if j == i {
				j = (i + 1) % n
			}
			add([]Term{{i, 1}, {j, 1}}, 2, 5)
		}
	}
	// One asymmetric anchor so the optimum is unique enough to compare.
	add([]Term{{0, 1}}, 1, 4)
}

// TestPricingSchemesDegenerateTies solves the tie-heavy instance under
// all three pricing schemes and cross-checks each against the cold
// simplex and IPM oracles; every scheme must terminate Optimal (no
// IterLimit) and agree to 1e-6 of the data scale. Pivot counts are
// logged so the scheme comparison is visible in -v runs.
func TestPricingSchemesDegenerateTies(t *testing.T) {
	const n, blocks = 10, 6
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = 1 // equal costs keep the duals tied too
	}

	p := NewProblem(n)
	for j, c := range costs {
		p.SetCost(j, c)
	}
	buildTieHeavy(func(terms []Term, lo, hi float64) {
		lowerRanged(p, terms, lo, hi)
	}, n, blocks)
	cold, err := (&Simplex{}).Solve(p)
	if err != nil || cold.Status != Optimal {
		t.Fatalf("cold oracle: %v %v", err, cold.Status)
	}
	ipm, err := (&IPM{}).Solve(p)
	if err != nil || ipm.Status != Optimal {
		t.Fatalf("ipm oracle: %v %v", err, ipm.Status)
	}
	if math.Abs(cold.Objective-ipm.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
		t.Fatalf("oracles disagree: cold %.9g ipm %.9g", cold.Objective, ipm.Objective)
	}

	pivots := map[Pricing]int{}
	for _, scheme := range []Pricing{PricingDevex, PricingMostViolated, PricingSteepestExact} {
		rv := NewRevised(n, costs)
		rv.SetPricing(scheme)
		buildTieHeavy(rv.AddRangedRow, n, blocks)
		sol, err := rv.Solve()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("%v: status %v (IterLimit on a tie-heavy instance means the tie-break cycled)", scheme, sol.Status)
		}
		if math.Abs(sol.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
			t.Errorf("%v: objective %.9g, oracle %.9g", scheme, sol.Objective, cold.Objective)
		}
		st := rv.Stats()
		if st.PricingScheme != scheme.String() {
			t.Errorf("%v: Stats.PricingScheme = %q", scheme, st.PricingScheme)
		}
		if scheme != PricingMostViolated && st.WeightMax < st.WeightMin {
			t.Errorf("%v: weight extremes inverted: [%g, %g]", scheme, st.WeightMin, st.WeightMax)
		}
		pivots[scheme] = st.Pivots
		t.Logf("%v: %d pivots, weights [%g, %g], devex-resets %d",
			scheme, st.Pivots, st.WeightMin, st.WeightMax, st.DevexResets)
	}
}

// TestPricingSchemesWarmAgreement replays the long warm row-generation
// sequence under all three pricing schemes against the cold simplex:
// the pricing rule must not change any optimum, only the pivot path.
func TestPricingSchemesWarmAgreement(t *testing.T) {
	for _, scheme := range []Pricing{PricingDevex, PricingMostViolated, PricingSteepestExact} {
		rng := rand.New(rand.NewSource(11))
		n := 10
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = 0.5 + rng.Float64()
		}
		rv := NewRevised(n, costs)
		rv.SetPricing(scheme)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		for round := 0; round < 40; round++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					terms = append(terms, Term{j, 1})
				}
			}
			if len(terms) == 0 {
				terms = []Term{{rng.Intn(n), 1}}
			}
			if round%4 == 3 {
				hi := 1 + rng.Float64()*3
				lo := hi - 0.5 - rng.Float64()
				rv.AddRangedRow(terms, lo, hi)
				lowerRanged(p, terms, lo, hi)
			} else {
				rhs := rng.Float64() * 3
				rv.AddRow(terms, GE, rhs)
				p.AddConstraint(terms, GE, rhs, "")
			}
			warm, err := rv.Solve()
			if err != nil {
				t.Fatalf("%v round %d: %v", scheme, round, err)
			}
			cold, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("%v round %d: warm %v vs cold %v", scheme, round, warm.Status, cold.Status)
			}
			if warm.Status == Infeasible {
				// Rows are append-only, so infeasibility is sticky: the
				// remaining rounds add nothing to the comparison.
				break
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("%v round %d: warm %.9g cold %.9g", scheme, round, warm.Objective, cold.Objective)
			}
		}
	}
}

// warmReSolveBench is the steady-state warm-re-solve workload shared by
// BenchmarkRevisedWarmReSolve and the allocation regression test: one
// engine, rows arriving one at a time with a Solve after each — the
// §4.6 cutting-plane access pattern in miniature.
func warmReSolveBench(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	costs := make([]float64, n)
	for j := range costs {
		costs[j] = 0.5 + rng.Float64()
	}
	type row struct {
		terms []Term
		rhs   float64
	}
	rows := make([]row, 512)
	for i := range rows {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(4) == 0 {
				terms = append(terms, Term{j, 1})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{rng.Intn(n), 1}}
		}
		rows[i] = row{terms, rng.Float64() * 3}
	}
	// fresh builds a warmed engine: 64 rows in, one Solve taken, so the
	// measured ops see steady-state buffers, not first-use growth.
	fresh := func() *Revised {
		rv := NewRevised(n, costs)
		for i := 0; i < 64; i++ {
			rv.AddRow(rows[i].terms, GE, rows[i].rhs)
		}
		if _, err := rv.Solve(); err != nil {
			b.Fatal(err)
		}
		return rv
	}
	const span = 256 // rows added per engine before rebuilding
	b.StopTimer()
	rv := fresh()
	b.ReportAllocs()
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		if j := i % span; j == 0 && i > 0 {
			// Rebuild outside the timer so each measured op works on an
			// engine of bounded size (constant op cost for any b.N).
			b.StopTimer()
			rv = fresh()
			b.StartTimer()
		}
		r := rows[64+i%span]
		rv.AddRow(r.terms, GE, r.rhs)
		sol, err := rv.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("iteration %d: %v", i, sol.Status)
		}
	}
}

func BenchmarkRevisedWarmReSolve(b *testing.B) { warmReSolveBench(b) }

// TestRevisedWarmReSolveAllocs is the AllocsPerOp regression for the
// pivot-loop buffers: the ratio-test candidate list, the rho/w/flip
// scratch vectors and the eta entries are all reused across pivots, so
// one warm AddRow+Solve step must stay within a small constant
// allocation budget (extract's solution vector, the Solution value, the
// row append — NOT per-candidate or per-pivot garbage). The bound has
// headroom over the measured steady state (~10) but fails loudly if the
// ratio test regresses to per-pivot allocation (reflection-based sorts
// or re-grown candidate slices push it past 100).
func TestRevisedWarmReSolveAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test")
	}
	res := testing.Benchmark(warmReSolveBench)
	if a := res.AllocsPerOp(); a > 40 {
		t.Errorf("warm AddRow+Solve allocates %d allocs/op, want ≤ 40 (pivot-loop buffers must be reused)", a)
	}
}
