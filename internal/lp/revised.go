package lp

import (
	"fmt"
	"math"
	"slices"

	"lubt/internal/linalg"
	"lubt/internal/obs"
)

// Pricing selects the leaving-row rule of the revised dual simplex: how
// Solve picks which primal-infeasible basic variable leaves the basis
// each pivot. All schemes reach the same optimum; they differ in pivot
// count on degenerate-tie-heavy instances (many equal violations, e.g.
// the ranged delay-window rows of large clock trees).
type Pricing int

const (
	// PricingDevex (the default) maintains approximate dual
	// steepest-edge reference weights γ_p per basic row and selects the
	// leaving row by max violation²/γ_p. The weights are updated on
	// every pivot from quantities the pivot already computes (the FTRAN
	// column w and the pivot element w[r]) and the reference framework
	// is reset to the current basis at every refactorization or basis
	// reset — so the scheme costs O(nnz(w)) extra per pivot.
	PricingDevex Pricing = iota
	// PricingMostViolated is the classic rule: leave the basic variable
	// furthest outside its box, ties broken by basis position. Kept as
	// the ablation baseline; prone to degenerate ties on r4/r5-sized
	// instances.
	PricingMostViolated
	// PricingSteepestExact maintains exact dual steepest-edge norms
	// β_p = ‖B⁻ᵀe_p‖² via the Forrest–Goldfarb update, which needs one
	// extra FTRAN (of the pricing row ρ) per pivot plus one BTRAN per
	// warm-added row to seed the new row's norm. It is the
	// cross-checking oracle for the Devex approximation, not a
	// production default.
	PricingSteepestExact
)

// String returns the scheme's stable token ("devex", "most-violated",
// "steepest-exact"), used in Stats.PricingScheme and the bench JSON.
func (p Pricing) String() string {
	switch p {
	case PricingDevex:
		return "devex"
	case PricingMostViolated:
		return "most-violated"
	case PricingSteepestExact:
		return "steepest-exact"
	}
	return "unknown"
}

// ParsePricing maps a flag token to a Pricing scheme. Accepted spellings:
// "" or "devex"; "mostviolated", "most-violated" or "mv"; "steepest",
// "steepest-exact", "steepestexact" or "se".
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "", "devex":
		return PricingDevex, nil
	case "mostviolated", "most-violated", "mv":
		return PricingMostViolated, nil
	case "steepest", "steepest-exact", "steepestexact", "se":
		return PricingSteepestExact, nil
	}
	return 0, fmt.Errorf("lp: unknown pricing scheme %q (want devex, mostviolated or steepest)", s)
}

// devexWeightCap bounds the Devex reference weights: when the largest
// weight exceeds it the reference framework has drifted too far from the
// current basis and is reset (counted in Stats.DevexResets).
const devexWeightCap = 1e12

// weightFloor keeps reference weights strictly positive against roundoff
// in the exact steepest-edge update.
const weightFloor = 1e-12

// Revised is a sparse revised dual-simplex engine for cutting planes: the
// default realization of the §4.6 row-generation loop. Like the dense
// tableau engine it requires a non-negative objective, which makes the
// all-slack basis dual-feasible (no phase 1, ever); unlike the tableau it
// never materializes B⁻¹A, and unlike the dense engine it is a
// *bounded-variable* (boxed) dual simplex: every structural and slack
// variable carries a box [lo, hi], nonbasic variables rest at either end,
// and the dual ratio test is two-sided with bound flips. It keeps
//
//   - the constraint rows in a shared CSR/CSC rowStore (each EBF row has
//     only O(tree depth) nonzeros). Every stored row is an equality
//     a·x + s = b with a boxed slack s ∈ [0, slackHi]: slackHi = ∞ gives a
//     plain ≤ row, a finite slackHi gives a ranged row l ≤ a·x ≤ b with
//     l = b − slackHi, and slackHi = 0 pins an equality — so EQ and delay
//     windows cost ONE tableau row instead of a split pair,
//   - the basis as a variable list plus an LU factorization — via
//     internal/linalg — of the basis matrix's *structural core*: the t×t
//     block over basic non-slack variables, where t is bounded by the
//     variable count no matter how many rows have been generated, and
//   - a product-form eta file between periodic refactorizations.
//
// Each pivot costs one BTRAN, one sparse pricing pass and one FTRAN
// (O(t²+nnz)) instead of a dense rows×columns tableau update, which is
// what makes warm re-solves scale to r4/r5-sized instances.
type Revised struct {
	tol   float64
	nVars int
	c     []float64 // structural costs, len nVars

	// Structural variable boxes and bound status. Default box is [0, +∞);
	// SetVarBounds tightens it (lo = hi fixes the variable, which then
	// never enters the basis). atUpperS marks nonbasic-at-upper.
	loS, hiS []float64
	atUpperS []bool

	rows *rowStore
	// Per-row slack box: slack of row k lives in [0, slackHi[k]].
	// +∞ = plain ≤ row, finite = ranged row, 0 = equality. atUpperK marks
	// the slack nonbasic at its upper bound (the row binding at its lower
	// side l = b − slackHi). deadK marks rows removed by DeleteRow: they
	// stay in the tableau as the vacuous 0·x + s = 0 so row indices remain
	// stable, but count for nothing.
	slackHi  []float64
	atUpperK []bool
	deadK    []bool

	// Basis state. Positions 0…m−1 (one per row); basisVar[p] holds a
	// variable id: structural j < nVars, or nVars+k for the slack of row k.
	basisVar    []int
	posOfStruct []int32 // structural var → basis position, or −1
	posOfSlack  []int32 // row → basis position of its slack, or −1

	// Factorized structural core of the basis B₀ *as of the last
	// refactorization*. Pivots taken since then live in the eta file, so
	// the base solves must use the baseVar snapshot, not basisVar.
	lu        *linalg.LU
	baseVar   []int   // basisVar snapshot at factorization time
	coreCols  []int   // basis positions holding structural variables (in B₀)
	coreRows  []int   // rows whose slack is nonbasic in B₀ (ascending)
	rowOfCore []int32 // row → index in coreRows, or −1
	etas      []eta
	coreMat   *linalg.Matrix // scratch for refactorization, resized in place

	xB []float64 // basic variable values, by position
	y  []float64 // duals, by row
	dS []float64 // reduced costs of structural variables
	dK []float64 // reduced costs of slacks, by row

	// Scratch buffers reused across pivots.
	alpha   []float64   // pricing row over structural columns
	colBuf  []float64   // entering column / ftran rhs, by row
	accBuf  []float64   // structural accumulator inside ftran0, by row
	posBuf  []float64   // btran intermediate, by position
	coreRhs []float64   // core-solve right-hand side, len ≥ t
	coreSol []float64   // core-solve result, len ≥ t
	xbPrev  []float64   // eta-replayed xB snapshot for the residual gauge
	cands   []ratioCand // two-sided ratio-test candidates
	refEach int         // pivots between refactorizations

	// Leaving-row pricing state. gamma[p] is the reference weight of basis
	// position p: the Devex approximation of ‖B⁻ᵀe_p‖² relative to the
	// reference framework, or the exact norm for PricingSteepestExact.
	// Devex resets gamma to all-1 at every refactorization/reset and on
	// overflow past devexWeightCap; steepest-exact keeps its weights across
	// refactorization (the basis is unchanged, so they stay exact) and
	// recomputes only at a basis reset.
	pricing     Pricing
	gamma       []float64
	devexResets int

	// Per-Solve pivot-loop scratch, reused across calls.
	rhoBuf, wBuf    []float64
	flipRowBuf      []float64
	flipZBuf        []float64
	tauBuf          []float64 // steepest-exact: τ = B⁻¹ρ_r
	maxIterOverride int       // test hook: when > 0, replaces the pivot budget

	tr *obs.Tracer // span tracer; nil (the default) records nothing

	dirty          bool // rows/bounds changed since the last factorization
	justRefactored bool
	infeasible     bool
	solved         bool // a Solve has run (gates SetPricing; bound/row/cost edits now restage)
	iterations     int
	logicalRows    int
	rangedRows     int
	loweredRows    int
	boundFlips     int
	stats          Stats
}

// eta is one product-form basis update: the basis matrix gained column
// `w` (sparse, diagonal element diag) at position pos.
type eta struct {
	pos  int
	diag float64
	idx  []int32
	val  []float64
}

// ratioCand is one candidate of the two-sided dual ratio test: a nonbasic
// variable whose movement off its bound drives the leaving basic variable
// back toward its violated bound.
type ratioCand struct {
	id    int     // structural j, or nVars+k for the slack of row k
	alpha float64 // signed pricing value α of the candidate column
	ratio float64 // |d| / |α| ≥ 0, the dual step this candidate allows
	width float64 // box width hi − lo (may be +∞)
}

// NewRevised starts a revised dual-simplex engine over n variables
// (default box [0, ∞) each) with the given non-negative objective
// (length n; shorter is zero-padded). It panics on a negative cost, which
// would make the all-at-lower-bound point dual-infeasible.
func NewRevised(n int, objective []float64) *Revised {
	rv := &Revised{
		tol:      1e-9,
		nVars:    n,
		c:        make([]float64, n),
		loS:      make([]float64, n),
		hiS:      make([]float64, n),
		atUpperS: make([]bool, n),
		rows:     newRowStore(n),
		dS:       make([]float64, n),
		alpha:    make([]float64, n),
		refEach:  64,
	}
	for j := range rv.hiS {
		rv.hiS[j] = math.Inf(1)
	}
	rv.posOfStruct = make([]int32, n)
	for j := range rv.posOfStruct {
		rv.posOfStruct[j] = -1
	}
	for j, cost := range objective {
		if cost < 0 {
			panic(fmt.Sprintf("lp: Revised needs non-negative costs; var %d has %g", j, cost))
		}
		if j < n {
			rv.c[j] = cost
			rv.dS[j] = cost
		}
	}
	return rv
}

// SetVarBounds boxes structural variable j into [lo, hi] (lo = hi fixes
// it; the EBF loop uses this for forced-zero edges from degree splitting).
// Before the first Solve it is plain construction-time state. Afterwards
// it RESTAGES the warm engine: variable boxes appear in neither the basis
// matrix nor the objective, so the factorization, eta file and dual
// solution all survive the edit exactly. A basic variable keeps its
// position — if its value now violates the new box, the next Solve's
// pricing loop sees the violation and prices it out through the regular
// Devex/steepest framework. A nonbasic variable has its resting side
// re-picked from its reduced cost (d > 0 → lower, d < 0 → upper, a fixed
// box → lower) and the basic values are repaired with one FTRAN for the
// resting-value delta. A sticky Infeasible certificate is cleared: the
// edit may have restored feasibility. Panics for lo > hi, an out-of-range
// variable, or a restage to a fully free (both-infinite) box.
func (rv *Revised) SetVarBounds(j int, lo, hi float64) {
	if j < 0 || j >= rv.nVars {
		panic(fmt.Sprintf("lp: SetVarBounds on variable %d of %d", j, rv.nVars))
	}
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: SetVarBounds var %d with empty box [%g, %g]", j, lo, hi))
	}
	if rv.solved {
		rv.restageVarBounds(j, lo, hi)
		return
	}
	rv.loS[j] = lo
	rv.hiS[j] = hi
	rv.atUpperS[j] = false
	rv.dirty = true // warm-seeded basic values may assume the old box
}

// restFor picks the resting side for a nonbasic variable with reduced
// cost d and box [lo, hi], preferring the current side cur when d is
// within tolerance. It reports the side and whether the variable was
// forced onto a side its reduced cost is dual-infeasible on beyond
// tolerance (the preferred bound was infinite); the caller then marks the
// engine dirty so refactorize can clamp — or reset — per its drift rules.
func restFor(d, dTol, lo, hi float64, cur bool) (atUpper, drifted bool) {
	atUpper = cur
	switch {
	case lo == hi:
		atUpper = false
	case d > dTol:
		atUpper = false
	case d < -dTol:
		atUpper = true
	}
	if atUpper && math.IsInf(hi, 1) {
		atUpper = false
	}
	if !atUpper && math.IsInf(lo, -1) {
		atUpper = true
	}
	if lo != hi {
		drifted = (atUpper && d > dTol) || (!atUpper && d < -dTol)
	}
	return atUpper, drifted
}

// applyNonbasicDelta repairs the basic values after the resting value of
// nonbasic variable id moved by delta: xB ← xB − B⁻¹A_id·Δ, one FTRAN.
// When no valid factorization is on hand it marks the engine dirty
// instead — the next Solve recomputes xB wholesale.
func (rv *Revised) applyNonbasicDelta(id int, delta float64) {
	if delta == 0 || math.IsNaN(delta) {
		return
	}
	m := rv.rows.numRows()
	if m == 0 {
		return
	}
	if rv.dirty || (rv.lu == nil && len(rv.coreCols) > 0) || len(rv.baseVar) != m {
		rv.dirty = true
		return
	}
	u := grow(&rv.flipRowBuf, m)
	for k := range u {
		u[k] = 0
	}
	any := false
	if id < rv.nVars {
		for _, ce := range rv.rows.col(id) {
			u[ce.row] = ce.coef * delta
			any = true
		}
	} else {
		u[id-rv.nVars] = delta
		any = true
	}
	if !any {
		return
	}
	z := grow(&rv.flipZBuf, m)
	rv.ftran(u, z)
	for p := 0; p < m; p++ {
		rv.xB[p] -= z[p]
	}
}

// restageVarBounds is the between-Solve path of SetVarBounds: see its doc
// for the contract. Counted in Stats.Restages.
func (rv *Revised) restageVarBounds(j int, lo, hi float64) {
	rv.stats.Restages++
	rv.infeasible = false
	if rv.posOfStruct[j] >= 0 {
		rv.loS[j] = lo
		rv.hiS[j] = hi
		return
	}
	if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
		panic(fmt.Sprintf("lp: SetVarBounds restaged var %d to a free (unbounded both sides) box", j))
	}
	oldRest := rv.structVal(j)
	rv.loS[j] = lo
	rv.hiS[j] = hi
	atU, drifted := restFor(rv.dS[j], rv.dualTol(), lo, hi, rv.atUpperS[j])
	rv.atUpperS[j] = atU
	if drifted {
		rv.dirty = true
	}
	rv.applyNonbasicDelta(j, rv.structVal(j)-oldRest)
}

// SetCost updates the objective coefficient of structural variable j.
// Before the first Solve it simply rewrites the cost. Afterwards it
// restages the warm engine: for a nonbasic variable the duals do not
// depend on c_j, so only its own reduced cost shifts by Δc — possibly
// flipping its resting side (one FTRAN). For a basic variable at position
// p the whole dual vector shifts, y ← y + Δc·B⁻ᵀe_p (one BTRAN), every
// nonbasic reduced cost is re-priced through one sparse pass, and
// side-violating nonbasic variables are flipped in one batched FTRAN —
// the same machinery the dual ratio test uses. Costs must stay
// non-negative (the all-slack dual-feasibility invariant); panics
// otherwise or for an out-of-range variable.
func (rv *Revised) SetCost(j int, cost float64) {
	if j < 0 || j >= rv.nVars {
		panic(fmt.Sprintf("lp: SetCost on variable %d of %d", j, rv.nVars))
	}
	if cost < 0 || math.IsNaN(cost) {
		panic(fmt.Sprintf("lp: Revised needs non-negative costs; var %d set to %g", j, cost))
	}
	delta := cost - rv.c[j]
	rv.c[j] = cost
	if !rv.solved {
		rv.dS[j] = cost // no pivots yet: y = 0, so d_j = c_j
		return
	}
	if delta == 0 {
		return
	}
	rv.stats.Restages++
	rv.infeasible = false
	m := rv.rows.numRows()
	p := int(rv.posOfStruct[j])
	if p < 0 {
		oldRest := rv.structVal(j)
		d := rv.dS[j] + delta
		rv.dS[j] = d
		atU, drifted := restFor(d, rv.dualTol(), rv.loS[j], rv.hiS[j], rv.atUpperS[j])
		if atU != rv.atUpperS[j] {
			rv.atUpperS[j] = atU
			rv.boundFlips++
		}
		if drifted {
			rv.dirty = true
		}
		rv.applyNonbasicDelta(j, rv.structVal(j)-oldRest)
		return
	}
	if rv.dirty || m == 0 || (rv.lu == nil && len(rv.coreCols) > 0) || len(rv.baseVar) != m {
		rv.dirty = true
		return
	}
	// Basic: shift the duals by Δc·B⁻ᵀe_p and re-price. d_j itself stays 0
	// (ρ·A_j = 1 by definition of the basis), matching its basic status.
	rho := grow(&rv.rhoBuf, m)
	rv.btranPos(p, rho)
	for jj := 0; jj < rv.nVars; jj++ {
		rv.alpha[jj] = 0
	}
	for k := 0; k < m; k++ {
		rk := rho[k]
		if rk == 0 {
			continue
		}
		rv.y[k] += delta * rk
		ind, val := rv.rows.row(k)
		for q, jj := range ind {
			rv.alpha[jj] += val[q] * rk
		}
	}
	dTol := rv.dualTol()
	flipRow := grow(&rv.flipRowBuf, m)
	for k := range flipRow {
		flipRow[k] = 0
	}
	flips := 0
	for jj := 0; jj < rv.nVars; jj++ {
		if rv.posOfStruct[jj] >= 0 || rv.alpha[jj] == 0 {
			continue
		}
		d := rv.dS[jj] - delta*rv.alpha[jj]
		rv.dS[jj] = d
		atU, drifted := restFor(d, dTol, rv.loS[jj], rv.hiS[jj], rv.atUpperS[jj])
		if drifted {
			rv.dirty = true
		}
		if atU == rv.atUpperS[jj] {
			continue
		}
		// restFor only flips onto a finite bound, so the traversal below is
		// finite whenever the box is sane; guard against a free box anyway.
		width := rv.hiS[jj] - rv.loS[jj]
		if math.IsInf(width, 1) {
			rv.dirty = true
			continue
		}
		rv.atUpperS[jj] = atU
		dv := width
		if !atU {
			dv = -width
		}
		for _, ce := range rv.rows.col(jj) {
			flipRow[ce.row] += ce.coef * dv
		}
		flips++
	}
	for k := 0; k < m; k++ {
		if rv.posOfSlack[k] >= 0 || rho[k] == 0 {
			continue
		}
		d := rv.dK[k] - delta*rho[k]
		rv.dK[k] = d
		atU, drifted := restFor(d, dTol, 0, rv.slackHi[k], rv.atUpperK[k])
		if drifted {
			rv.dirty = true
		}
		if atU == rv.atUpperK[k] {
			continue
		}
		if math.IsInf(rv.slackHi[k], 1) {
			rv.dirty = true
			continue
		}
		rv.atUpperK[k] = atU
		dv := rv.slackHi[k]
		if !atU {
			dv = -dv
		}
		flipRow[k] += dv
		flips++
	}
	if flips > 0 {
		z := grow(&rv.flipZBuf, m)
		rv.ftran(flipRow, z)
		for q := 0; q < m; q++ {
			rv.xB[q] -= z[q]
		}
		rv.boundFlips += flips
	}
}

// NumRows returns the number of logical constraint rows added via AddRow
// or AddRangedRow (a ranged or EQ row counts once). TableauRows reports
// the engine-internal row count.
func (rv *Revised) NumRows() int { return rv.logicalRows }

// TableauRows returns the engine-internal row count. The boxed engine
// stores EQ and ranged rows as a single row with a fixed/boxed slack, so
// here — unlike the dense tableau — they count once; compare against
// Stats().LoweredTableauRows for what the two-row lowering would cost.
func (rv *Revised) TableauRows() int { return rv.rows.numRows() }

// Iterations returns the cumulative dual-simplex pivot count (bound flips
// are not pivots and are counted separately in Stats).
func (rv *Revised) Iterations() int { return rv.iterations }

// Stats returns a snapshot of the engine's observability counters. The
// gauges are marked sampled (GaugesValid), so merging a snapshot into an
// accumulated record replaces stale gauge values even with 0.
func (rv *Revised) Stats() Stats {
	s := rv.stats
	s.Pivots = rv.iterations
	s.LogicalRows = rv.logicalRows
	s.TableauRows = rv.rows.numRows()
	s.LoweredTableauRows = rv.loweredRows
	s.RangedRows = rv.rangedRows
	s.BoundFlips = rv.boundFlips
	s.RowNonzeros = rv.rows.nnz()
	s.ResetReasons = append([]string(nil), rv.stats.ResetReasons...)
	s.PricingScheme = rv.pricing.String()
	s.DevexResets = rv.devexResets
	if n := rv.rows.numRows(); n > 0 && len(rv.gamma) >= n && rv.pricing != PricingMostViolated {
		mn, mx := rv.gamma[0], rv.gamma[0]
		for _, g := range rv.gamma[1:n] {
			if g < mn {
				mn = g
			}
			if g > mx {
				mx = g
			}
		}
		s.WeightMin, s.WeightMax = mn, mx
	}
	s.GaugesValid = true
	return s
}

// SetTracer attaches a span tracer: each refactorization then records a
// "refactorize" span carrying the numerical-health gauges (basis size,
// fill-in, eta-file length, replay residual, reset reason). A nil tracer
// (the default) records nothing at zero cost.
func (rv *Revised) SetTracer(tr *obs.Tracer) { rv.tr = tr }

// SetPricing selects the leaving-row rule (see Pricing). Unlike bounds,
// costs and rows — which restage between Solves — the pricing rule is
// construction-time state: calling it after the first Solve panics,
// because the reference weights would not match the pivots already
// taken.
func (rv *Revised) SetPricing(p Pricing) {
	if rv.solved {
		panic("lp: SetPricing after the first Solve")
	}
	rv.pricing = p
	rv.gamma = rv.gamma[:0]
}

// grow returns (*buf)[:n], reallocating the backing array only when the
// capacity is insufficient; the returned slice is NOT cleared.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n+n/2+8)
	}
	return (*buf)[:n]
}

// resetWeights restarts the pricing reference framework at the current
// basis: every basis position gets weight 1. For Devex this happens at
// every refactorization and basis reset (the framework is *defined*
// relative to the current basis); for steepest-exact only at a basis
// reset, where the all-slack basis makes ‖B⁻ᵀe_p‖² = 1 exact.
func (rv *Revised) resetWeights(m int) {
	if rv.pricing == PricingMostViolated {
		return
	}
	rv.gamma = grow(&rv.gamma, m)
	for p := range rv.gamma {
		rv.gamma[p] = 1
	}
}

// ensureWeights extends gamma to m entries after rows were warm-added
// with a bordered basis extension. A Devex weight starts at the reference
// value 1. A steepest-exact weight must be the true ‖B⁻ᵀe_p‖² of the new
// position: the bordered extension [B₀ 0; aᵀ 1] leaves the B⁻ᵀ rows of
// the old positions unchanged, so only the new positions need one BTRAN
// each to seed their exact norm.
func (rv *Revised) ensureWeights(m int) {
	if rv.pricing == PricingMostViolated {
		return
	}
	if len(rv.gamma) > m {
		rv.gamma = rv.gamma[:m]
		return
	}
	for p := len(rv.gamma); p < m; p++ {
		g := 1.0
		if rv.pricing == PricingSteepestExact {
			rho := grow(&rv.rhoBuf, m)
			rv.btranPos(p, rho)
			s := 0.0
			for k := 0; k < m; k++ {
				s += rho[k] * rho[k]
			}
			g = math.Max(s, weightFloor)
		}
		rv.gamma = append(rv.gamma, g)
	}
}

// updateWeights applies the per-pivot reference-weight update for leaving
// position r with FTRAN column w (pivot element a = w[r]) and pricing row
// rho = B⁻ᵀe_r. Devex (Forrest–Goldfarb's approximate rule):
//
//	γ_r ← max(γ_r/a², 1)
//	γ_p ← max(γ_p, (w_p/a)²·γ_r_old)   for p ≠ r, w_p ≠ 0
//
// Exact steepest edge (Forrest–Goldfarb, with τ = B⁻¹ρ_r — one extra
// FTRAN per pivot):
//
//	β_p ← β_p − 2(w_p/a)τ_p + (w_p/a)²·β_r_old   for p ≠ r
//	β_r ← β_r_old/a²
//
// Both are applied BEFORE the basis bookkeeping, i.e. to the pre-pivot
// weights. When the largest Devex weight outruns devexWeightCap the
// reference framework is restarted (counted in Stats.DevexResets).
func (rv *Revised) updateWeights(r int, w, rho []float64, m int) {
	if rv.pricing == PricingMostViolated {
		return
	}
	a := w[r]
	gr := rv.gamma[r]
	inv2 := 1 / (a * a)
	switch rv.pricing {
	case PricingDevex:
		maxG := 0.0
		for p := 0; p < m; p++ {
			if p == r || w[p] == 0 {
				continue
			}
			if g := w[p] * w[p] * inv2 * gr; g > rv.gamma[p] {
				rv.gamma[p] = g
			}
			if rv.gamma[p] > maxG {
				maxG = rv.gamma[p]
			}
		}
		rv.gamma[r] = math.Max(gr*inv2, 1)
		if rv.gamma[r] > maxG {
			maxG = rv.gamma[r]
		}
		if maxG > devexWeightCap {
			// The reference framework has drifted too far from the current
			// basis for the approximation to steer usefully: restart it here
			// rather than waiting for the next refactorization. Counted in
			// Stats.DevexResets (scheduled re-anchors are not — those are
			// already visible as Refactorizations).
			rv.devexResets++
			rv.resetWeights(m)
		}
	case PricingSteepestExact:
		tau := grow(&rv.tauBuf, m)
		rv.ftran(rho, tau)
		for p := 0; p < m; p++ {
			if p == r || w[p] == 0 {
				continue
			}
			t := w[p] / a
			g := rv.gamma[p] - 2*t*tau[p] + t*t*gr
			rv.gamma[p] = math.Max(g, weightFloor)
		}
		rv.gamma[r] = math.Max(gr*inv2, weightFloor)
	}
}

// pivotBudget is the Solve pivot cap: a generous constant plus a linear
// term in the problem size m + nVars. (An earlier version double-counted
// m here.) The unexported maxIterOverride lets tests exercise the
// IterLimit path without 20k pivots.
func (rv *Revised) pivotBudget(m int) int {
	if rv.maxIterOverride > 0 {
		return rv.maxIterOverride
	}
	return 20000 + 200*(m+rv.nVars)
}

// AddRow introduces the constraint Σ terms {op} rhs. A GE row is negated
// into ≤ form; an EQ row becomes ONE row whose slack is fixed at zero (no
// ≤/≥ split). The engine becomes primal-infeasible until the next Solve.
func (rv *Revised) AddRow(terms []Term, op Op, rhs float64) {
	rv.logicalRows++
	switch op {
	case LE:
		rv.loweredRows++
		rv.addLE(terms, rhs, 1, math.Inf(1))
	case GE:
		rv.loweredRows++
		rv.addLE(terms, rhs, -1, math.Inf(1))
	case EQ:
		rv.loweredRows += 2
		rv.rangedRows++
		rv.addLE(terms, rhs, 1, 0)
	}
}

// AddRangedRow introduces the two-sided constraint lo ≤ Σ terms ≤ hi as
// ONE logical row: the row is stored once with its slack boxed into
// [0, hi−lo] (fixed at zero when lo = hi). Either side may be infinite,
// degrading to a plain one-sided row; a fully unbounded window adds no
// tableau row at all. This is how the EBF delay windows of §4 enter the
// engine without the two-row lowering the dense engines need.
func (rv *Revised) AddRangedRow(terms []Term, lo, hi float64) {
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: AddRangedRow with empty window [%g, %g]", lo, hi))
	}
	rv.logicalRows++
	infLo, infHi := math.IsInf(lo, -1), math.IsInf(hi, 1)
	switch {
	case infLo && infHi:
		// Vacuous window: logical row only.
	case infLo:
		rv.loweredRows++
		rv.addLE(terms, hi, 1, math.Inf(1))
	case infHi:
		rv.loweredRows++
		rv.addLE(terms, lo, -1, math.Inf(1))
	default:
		rv.loweredRows += 2
		rv.rangedRows++
		rv.addLE(terms, hi, 1, hi-lo)
	}
}

// rowContrib returns tableau row k's contribution to the lowered-row and
// ranged-row counters: (0, 0) for a deleted row, (1, 0) for a one-sided
// row, (2, 1) for a ranged or exact row (what the two-row lowering would
// need). Used to keep the counters consistent across row rewrites.
func (rv *Revised) rowContrib(k int) (lowered, ranged int) {
	if rv.deadK[k] {
		return 0, 0
	}
	if math.IsInf(rv.slackHi[k], 1) {
		return 1, 0
	}
	return 2, 1
}

// forceSlackBasic makes row k's slack basic at position k, kicking the
// position's current occupant to a resting bound. Needed when a row
// rewrite leaves row k with no stored nonzeros while its slack is
// nonbasic: row k of the basis matrix would then be identically zero
// (singular). The kicked variable leaves with reduced cost 0, which is
// dual-feasible at either bound; the engine is marked dirty so the next
// Solve refactorizes from the repaired basis.
func (rv *Revised) forceSlackBasic(k int) {
	v := rv.basisVar[k]
	if v == rv.nVars+k {
		return
	}
	if v < rv.nVars {
		rv.posOfStruct[v] = -1
		rv.atUpperS[v] = math.IsInf(rv.loS[v], -1) // rest at the finite side
		rv.dS[v] = 0
	} else {
		k2 := v - rv.nVars
		rv.posOfSlack[k2] = -1
		rv.atUpperK[k2] = false
		rv.dK[k2] = 0
	}
	rv.basisVar[k] = rv.nVars + k
	rv.posOfSlack[k] = int32(k)
	rv.atUpperK[k] = false
	rv.dK[k] = 0
	rv.dirty = true
}

// ReplaceRangedRow rewrites tableau row k in place as lo ≤ Σ terms ≤ hi
// (either side may be infinite; both-infinite is a deletion — use
// DeleteRow). Row k is a TABLEAU index, i.e. what TableauRows counted when
// the row was added; replacing a row deleted by DeleteRow revives it.
//
// Eta invalidation: when the stored coefficient pattern actually changes,
// a row of the basis matrix changes with it, so the factorization and eta
// file are stale — the engine is marked dirty and the next Solve
// refactorizes once (the basis MEMBERSHIP survives, which is what keeps
// the warm pivot count low). When only the right-hand side / window moves
// (same terms — the ECO retighten case), nothing the factorization
// depends on changed: the slack's resting side is re-picked from its
// reduced cost and the basic values are repaired with one FTRAN, counted
// as a Restage rather than a RowReplacement. Either way a sticky
// Infeasible certificate is cleared. Panics on an out-of-range row or an
// empty window.
func (rv *Revised) ReplaceRangedRow(k int, terms []Term, lo, hi float64) {
	if k < 0 || k >= rv.rows.numRows() {
		panic(fmt.Sprintf("lp: ReplaceRangedRow on row %d of %d", k, rv.rows.numRows()))
	}
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: ReplaceRangedRow row %d with empty window [%g, %g]", k, lo, hi))
	}
	infLo, infHi := math.IsInf(lo, -1), math.IsInf(hi, 1)
	if infLo && infHi {
		panic(fmt.Sprintf("lp: ReplaceRangedRow row %d with a vacuous window; use DeleteRow", k))
	}
	var sign, rhs, sHi float64
	switch {
	case infLo:
		sign, rhs, sHi = 1, hi, math.Inf(1)
	case infHi:
		sign, rhs, sHi = -1, lo, math.Inf(1)
	default:
		sign, rhs, sHi = 1, hi, hi-lo
	}
	oldLow, oldRng := rv.rowContrib(k)
	if rv.deadK[k] {
		rv.deadK[k] = false
		rv.logicalRows++
	}
	rhsOld := rv.rows.rhs[k]
	changed := rv.rows.replaceRow(k, terms, rhs, sign)
	rv.infeasible = false
	if changed {
		rv.stats.RowReplacements++
		rv.slackHi[k] = sHi
		if rv.posOfSlack[k] < 0 {
			if ind, _ := rv.rows.row(k); len(ind) == 0 {
				rv.forceSlackBasic(k)
			} else if rv.atUpperK[k] && math.IsInf(sHi, 1) {
				rv.atUpperK[k] = false
			}
		}
		rv.dirty = true
	} else {
		// Same pattern: only b and the slack box moved — neither enters the
		// basis matrix, so the factorization, eta file, duals and reference
		// weights all stay valid. Repair xB with one FTRAN and let the next
		// Solve re-enter the dual loop directly.
		rv.stats.Restages++
		delta := rv.rows.rhs[k] - rhsOld
		if rv.posOfSlack[k] < 0 {
			oldRest := rv.nbSlackVal(k)
			rv.slackHi[k] = sHi
			atU, drifted := restFor(rv.dK[k], rv.dualTol(), 0, sHi, rv.atUpperK[k])
			rv.atUpperK[k] = atU
			if drifted {
				rv.dirty = true
			}
			delta -= rv.nbSlackVal(k) - oldRest
		} else {
			rv.slackHi[k] = sHi
		}
		// xB ← xB + B⁻¹e_k·δ, expressed through the generic nonbasic-delta
		// repair on the slack column (A_{n+k} = e_k) with Δ = −δ.
		rv.applyNonbasicDelta(rv.nVars+k, -delta)
	}
	newLow, newRng := rv.rowContrib(k)
	rv.loweredRows += newLow - oldLow
	rv.rangedRows += newRng - oldRng
}

// DeleteRow removes tableau row k: the stored row is rewritten to the
// vacuous 0·x + s = 0 with a free slack, which every basis trivially
// satisfies, so downstream tableau row indices stay stable. The row's
// slack is forced into the basis when nonbasic (an empty row with a
// nonbasic slack would make the basis matrix singular). Deleting a row
// only relaxes the problem, so a sticky Infeasible certificate is
// cleared. Panics on an out-of-range or already-deleted row;
// ReplaceRangedRow revives a deleted row.
func (rv *Revised) DeleteRow(k int) {
	if k < 0 || k >= rv.rows.numRows() {
		panic(fmt.Sprintf("lp: DeleteRow on row %d of %d", k, rv.rows.numRows()))
	}
	if rv.deadK[k] {
		panic(fmt.Sprintf("lp: DeleteRow on already-deleted row %d", k))
	}
	oldLow, oldRng := rv.rowContrib(k)
	rhsOld := rv.rows.rhs[k]
	changed := rv.rows.replaceRow(k, nil, 0, 1)
	rv.deadK[k] = true
	rv.logicalRows--
	rv.slackHi[k] = math.Inf(1)
	rv.stats.RowReplacements++
	rv.infeasible = false
	if rv.posOfSlack[k] < 0 {
		rv.forceSlackBasic(k)
	}
	rv.atUpperK[k] = false
	if changed {
		rv.dirty = true
	} else {
		rv.applyNonbasicDelta(rv.nVars+k, rhsOld) // rhs moved to 0: δ = −rhsOld
	}
	rv.loweredRows -= oldLow
	rv.rangedRows -= oldRng
}

// addLE appends the row sign·(Σ terms) ≤ sign·rhs with the slack boxed
// into [0, sHi].
func (rv *Revised) addLE(terms []Term, rhs float64, sign float64, sHi float64) {
	k := rv.rows.numRows()
	rv.rows.appendLE(terms, rhs, sign)
	// The new row's slack enters the basis at the new position.
	rv.basisVar = append(rv.basisVar, rv.nVars+k)
	rv.posOfSlack = append(rv.posOfSlack, int32(k))
	rv.slackHi = append(rv.slackHi, sHi)
	rv.atUpperK = append(rv.atUpperK, false)
	rv.deadK = append(rv.deadK, false)
	rv.xB = append(rv.xB, 0)
	rv.y = append(rv.y, 0)
	rv.dK = append(rv.dK, 0)
	rv.rowOfCore = append(rv.rowOfCore, -1)
	rv.colBuf = append(rv.colBuf, 0)
	rv.accBuf = append(rv.accBuf, 0)
	rv.posBuf = append(rv.posBuf, 0)
	if rv.dirty || len(rv.etas) != 0 || len(rv.baseVar) != k {
		rv.dirty = true
		return
	}
	// Warm bordered extension. With an empty eta file the current basis IS
	// the factored snapshot B₀, and giving the new row a basic slack turns
	// B₀ into the bordered matrix [B₀ 0; a₀ᵀ 1] — whose structural core is
	// unchanged, so the LU stays valid and ftran0/btran0 pick up the border
	// through baseVar. Seed the new basic value from the current structural
	// solution (basic values plus nonbasic bound values) instead of
	// refactorizing; Solve refactorizes on optimality exactly so that this
	// path is available to the next cutting-plane batch.
	act := 0.0
	ind, val := rv.rows.row(k)
	for q, j := range ind {
		act += val[q] * rv.structVal(int(j))
	}
	rv.baseVar = append(rv.baseVar, rv.nVars+k)
	rv.xB[k] = rv.rows.rhs[k] - act
	rv.justRefactored = false
}

// structVal returns the current value of structural variable j: its basic
// value when basic, its resting bound when nonbasic.
func (rv *Revised) structVal(j int) float64 {
	if p := rv.posOfStruct[j]; p >= 0 {
		return rv.xB[p]
	}
	if rv.atUpperS[j] {
		return rv.hiS[j]
	}
	return rv.loS[j]
}

// nbSlackVal returns the resting value of the (nonbasic) slack of row k.
func (rv *Revised) nbSlackVal(k int) float64 {
	if rv.atUpperK[k] {
		return rv.slackHi[k]
	}
	return 0
}

// boxOf returns the box of variable id (structural or slack).
func (rv *Revised) boxOf(id int) (lo, hi float64) {
	if id < rv.nVars {
		return rv.loS[id], rv.hiS[id]
	}
	return 0, rv.slackHi[id-rv.nVars]
}

// nbVal returns the resting value of nonbasic variable id.
func (rv *Revised) nbVal(id int) float64 {
	if id < rv.nVars {
		if rv.atUpperS[id] {
			return rv.hiS[id]
		}
		return rv.loS[id]
	}
	return rv.nbSlackVal(id - rv.nVars)
}

// effRHS writes b − N·x_N into out (indexed by row): the right-hand side
// the basis actually has to cover once every nonbasic variable rests at
// its bound (nonzero lower bounds, flipped-to-upper variables, and ranged
// slacks parked at their width all contribute).
func (rv *Revised) effRHS(out []float64) {
	m := rv.rows.numRows()
	copy(out, rv.rows.rhs)
	for j := 0; j < rv.nVars; j++ {
		if rv.posOfStruct[j] >= 0 {
			continue
		}
		v := rv.structVal(j)
		if v == 0 {
			continue
		}
		for _, ce := range rv.rows.col(j) {
			out[ce.row] -= ce.coef * v
		}
	}
	for k := 0; k < m; k++ {
		if rv.posOfSlack[k] < 0 {
			if v := rv.nbSlackVal(k); v != 0 {
				out[k] -= v
			}
		}
	}
}

// reset returns to the all-slack basis with every structural variable at
// its lower bound (always dual-feasible for c ≥ 0): the numerical-trouble
// escape hatch, equivalent to a cold dual start. reason is the trigger
// code recorded in Stats.ResetReasons (see the field doc for the codes).
func (rv *Revised) reset(reason string) {
	m := rv.rows.numRows()
	for j := range rv.posOfStruct {
		rv.posOfStruct[j] = -1
		rv.atUpperS[j] = false
	}
	rv.baseVar = rv.baseVar[:0]
	for k := 0; k < m; k++ {
		rv.basisVar[k] = rv.nVars + k
		rv.posOfSlack[k] = int32(k)
		rv.atUpperK[k] = false
		rv.rowOfCore[k] = -1
		rv.y[k] = 0
		rv.dK[k] = 0
		rv.baseVar = append(rv.baseVar, rv.nVars+k)
	}
	rv.effRHS(rv.xB[:m])
	copy(rv.dS, rv.c)
	rv.etas = rv.etas[:0]
	rv.lu = nil
	rv.coreCols = rv.coreCols[:0]
	rv.coreRows = rv.coreRows[:0]
	rv.dirty = false
	rv.justRefactored = true
	rv.stats.Resets++
	rv.stats.ResetReasons = append(rv.stats.ResetReasons, reason)
	rv.stats.BasisSize = 0
	rv.stats.EtaLen = 0
	// All-slack basis ⇒ B = I, so the all-1 framework is exact for every
	// pricing scheme (including steepest-exact).
	rv.resetWeights(m)
	sp := rv.tr.Start("reset")
	sp.SetString("reason", reason)
	sp.End()
}

// refactorize rebuilds the LU factorization of the basis's structural
// core, drops the eta file, and recomputes xB, y and the reduced costs
// from scratch. Returns false (after resetting) when the basis has gone
// numerically bad. Each call samples the numerical-health gauges — basis
// size, fill-in, eta-file length, eta-replay residual — into Stats and
// (when a tracer is attached) a "refactorize" span.
func (rv *Revised) refactorize() bool {
	sp := rv.tr.Start("refactorize")
	defer sp.End()
	m := rv.rows.numRows()
	// Gauge inputs: how many product-form updates this factorization
	// replaces, and whether the incremental xB is comparable to the fresh
	// one (it is unless rows were added since the last factorization).
	etaLen := len(rv.etas)
	measure := !rv.dirty && etaLen > 0
	if measure {
		if cap(rv.xbPrev) < m {
			rv.xbPrev = make([]float64, m)
		}
		copy(rv.xbPrev[:m], rv.xB[:m])
	}
	rv.baseVar = append(rv.baseVar[:0], rv.basisVar...)
	rv.coreCols = rv.coreCols[:0]
	rv.coreRows = rv.coreRows[:0]
	for p := 0; p < m; p++ {
		if rv.baseVar[p] < rv.nVars {
			rv.coreCols = append(rv.coreCols, p)
		}
	}
	for k := 0; k < m; k++ {
		rv.rowOfCore[k] = -1
		if rv.posOfSlack[k] < 0 {
			rv.rowOfCore[k] = int32(len(rv.coreRows))
			rv.coreRows = append(rv.coreRows, k)
		}
	}
	t := len(rv.coreCols)
	if t != len(rv.coreRows) {
		// Cannot happen for a consistent basis; recover anyway.
		rv.reset("basis-mismatch")
		return false
	}
	if cap(rv.coreRhs) < t {
		rv.coreRhs = make([]float64, t)
		rv.coreSol = make([]float64, t)
	}
	rv.etas = rv.etas[:0]
	rv.dirty = false
	rv.justRefactored = true
	rv.stats.Refactorizations++
	rv.stats.BasisSize = t
	rv.stats.EtaLen = etaLen
	if t > 0 {
		if rv.coreMat == nil {
			rv.coreMat = linalg.NewMatrix(t, t)
		} else {
			// Reuse the scratch matrix's backing storage across basis-core
			// growth instead of reallocating every time t changes.
			rv.coreMat.Reshape(t, t)
		}
		nnzCore := 0
		for ci, p := range rv.coreCols {
			for _, ce := range rv.rows.col(rv.basisVar[p]) {
				if ri := rv.rowOfCore[ce.row]; ri >= 0 {
					rv.coreMat.Set(int(ri), ci, ce.coef)
					nnzCore++
				}
			}
		}
		lu, err := linalg.FactorLUInto(rv.coreMat, rv.lu)
		if err != nil {
			rv.reset("lu-singular")
			return false
		}
		rv.lu = lu
		if fill := lu.NNZ() - nnzCore; fill > 0 {
			rv.stats.FillIn = fill
		} else {
			rv.stats.FillIn = 0
		}
	} else {
		rv.lu = nil
		rv.stats.FillIn = 0
	}
	// Recompute the primal basic values xB = B⁻¹ (b − N x_N).
	rv.effRHS(rv.colBuf)
	rv.ftran0(rv.colBuf, rv.xB)
	if measure {
		// Residual gauge: how far the eta-file replay had drifted from the
		// freshly factored basic values.
		worst := 0.0
		for p := 0; p < m; p++ {
			if d := math.Abs(rv.xbPrev[p] - rv.xB[p]); d > worst {
				worst = d
			}
		}
		rv.stats.NumericalResidual = worst
		sp.SetFloat("residual", worst)
	}
	sp.SetInt("basis", t)
	sp.SetInt("fill_in", rv.stats.FillIn)
	sp.SetInt("eta_len", etaLen)
	// Recompute duals y = B⁻ᵀ cB and reduced costs d = c − Aᵀy, clamped to
	// the dual-feasible side of each nonbasic variable's status: ≥ 0 at a
	// lower bound, ≤ 0 at an upper bound, unrestricted for fixed variables.
	for p := 0; p < m; p++ {
		if v := rv.basisVar[p]; v < rv.nVars {
			rv.posBuf[p] = rv.c[v]
		} else {
			rv.posBuf[p] = 0
		}
	}
	rv.btran0(rv.posBuf, rv.y)
	dTol := rv.dualTol()
	ok := true
	for j := 0; j < rv.nVars; j++ {
		d := rv.c[j]
		for _, ce := range rv.rows.col(j) {
			d -= rv.y[ce.row] * ce.coef
		}
		switch {
		case rv.posOfStruct[j] >= 0:
			d = 0
		case rv.loS[j] == rv.hiS[j]:
			// Fixed: any reduced cost is dual-feasible.
		case rv.atUpperS[j]:
			if d > 0 {
				if d > 1e3*dTol {
					ok = false
				}
				d = 0
			}
		default:
			if d < 0 {
				if d < -1e3*dTol {
					ok = false
				}
				d = 0
			}
		}
		rv.dS[j] = d
	}
	for k := 0; k < m; k++ {
		d := -rv.y[k]
		switch {
		case rv.posOfSlack[k] >= 0:
			d = 0
		case rv.slackHi[k] == 0:
			// Fixed slack (equality row): unrestricted.
		case rv.atUpperK[k]:
			if d > 0 {
				if d > 1e3*dTol {
					ok = false
				}
				d = 0
			}
		default:
			if d < 0 {
				if d < -1e3*dTol {
					ok = false
				}
				d = 0
			}
		}
		rv.dK[k] = d
	}
	if !ok {
		// The basis drifted dual-infeasible: restart from all slacks.
		rv.reset("dual-drift")
		return false
	}
	if rv.pricing == PricingDevex {
		// The Devex reference framework is defined relative to the basis at
		// the last reset point; refactorization is where the framework is
		// re-anchored to the current basis (the exact scheme keeps its
		// weights — the basis did not change, so they are still exact).
		rv.resetWeights(m)
	}
	return true
}

func (rv *Revised) feasTol() float64 {
	maxB := 0.0
	for _, b := range rv.rows.rhs {
		if a := math.Abs(b); a > maxB {
			maxB = a
		}
	}
	return rv.tol * (1 + maxB)
}

func (rv *Revised) dualTol() float64 {
	maxC := 0.0
	for _, c := range rv.c {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	return rv.tol * (1 + maxC)
}

// ftran0 computes z = B₀⁻¹ u through the factored structural core
// (positions with basic slacks are solved by substitution). u is indexed
// by row, z by basis position; u is left untouched unless aliased.
func (rv *Revised) ftran0(u, z []float64) {
	m := rv.rows.numRows()
	t := len(rv.coreCols)
	for k := 0; k < m; k++ {
		rv.accBuf[k] = 0
	}
	var zT []float64
	if t > 0 {
		rhs := rv.coreRhs[:t]
		for i, r := range rv.coreRows {
			rhs[i] = u[r]
		}
		zT = rv.coreSol[:t]
		rv.lu.SolveInto(rhs, zT)
		for i, p := range rv.coreCols {
			zi := zT[i]
			if zi == 0 {
				continue
			}
			for _, ce := range rv.rows.col(rv.baseVar[p]) {
				rv.accBuf[ce.row] += ce.coef * zi
			}
		}
	}
	for p := 0; p < m; p++ {
		if v := rv.baseVar[p]; v >= rv.nVars {
			z[p] = u[v-rv.nVars] - rv.accBuf[v-rv.nVars]
		}
	}
	for i, p := range rv.coreCols {
		z[p] = zT[i]
	}
}

// btran0 computes ρ = B₀⁻ᵀ u: u is indexed by basis position, ρ by row.
func (rv *Revised) btran0(u, rho []float64) {
	m := rv.rows.numRows()
	for k := 0; k < m; k++ {
		rho[k] = 0
	}
	for p := 0; p < m; p++ {
		if v := rv.baseVar[p]; v >= rv.nVars {
			rho[v-rv.nVars] = u[p]
		}
	}
	t := len(rv.coreCols)
	if t == 0 {
		return
	}
	rhs := rv.coreRhs[:t]
	for i, p := range rv.coreCols {
		s := u[p]
		for _, ce := range rv.rows.col(rv.baseVar[p]) {
			if rv.rowOfCore[ce.row] < 0 {
				s -= ce.coef * rho[ce.row]
			}
		}
		rhs[i] = s
	}
	sol := rv.coreSol[:t]
	rv.lu.SolveTransposeInto(rhs, sol)
	for i, r := range rv.coreRows {
		rho[r] = sol[i]
	}
}

// ftran computes z = B⁻¹ u (u by row, z by position) through the base
// factorization and the eta file.
func (rv *Revised) ftran(u, z []float64) {
	rv.ftran0(u, z)
	for i := range rv.etas {
		e := &rv.etas[i]
		t := z[e.pos] / e.diag
		if t != 0 {
			for q, idx := range e.idx {
				z[idx] -= e.val[q] * t
			}
		}
		z[e.pos] = t
	}
}

// btranPos computes ρ = B⁻ᵀ e_pos (ρ by row), the BTRAN pass of one dual
// pivot.
func (rv *Revised) btranPos(pos int, rho []float64) {
	u := rv.posBuf
	for p := range u[:rv.rows.numRows()] {
		u[p] = 0
	}
	u[pos] = 1
	for i := len(rv.etas) - 1; i >= 0; i-- {
		e := &rv.etas[i]
		s := u[e.pos]
		for q, idx := range e.idx {
			s -= e.val[q] * u[idx]
		}
		u[e.pos] = s / e.diag
	}
	rv.btran0(u, rho)
}

// Solve re-optimizes with the bounded-variable revised dual simplex and
// returns the current solution. Status is Optimal or Infeasible (a
// non-negative objective over boxed-below variables can never be
// unbounded); Numerical/IterLimit report trouble.
func (rv *Revised) Solve() (*Solution, error) {
	rv.solved = true
	if rv.infeasible {
		return &Solution{Status: Infeasible, Iterations: rv.iterations}, nil
	}
	m := rv.rows.numRows()
	if m == 0 {
		return rv.extract(), nil
	}
	if rv.dirty || (rv.lu == nil && len(rv.coreCols) > 0) {
		rv.refactorize()
	} else if rv.stats.Refactorizations == 0 && rv.stats.Resets == 0 {
		// First solve on a fresh engine: establish xB from the all-slack
		// basis without a factorization.
		rv.refactorize()
	}
	feasTol := rv.feasTol()
	maxIter := rv.pivotBudget(m)
	rho := grow(&rv.rhoBuf, m)
	w := grow(&rv.wBuf, m)
	flipRow := grow(&rv.flipRowBuf, m)
	flipZ := grow(&rv.flipZBuf, m)
	rv.ensureWeights(m)
	resets := 0
	const aTol = 1e-9
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return &Solution{Status: IterLimit, Iterations: rv.iterations}, nil
		}
		// Leaving position. PricingMostViolated takes the basic variable
		// furthest outside its box; the reference-weight schemes score each
		// violation d by d²/γ_p, steering away from rows whose B⁻ᵀ row has
		// grown long (the degenerate-tie cure — see the Pricing docs). In
		// either case `worst` holds the selected row's actual violation,
		// which the bound-flipping walk below consumes.
		r, worst, above := -1, feasTol, false
		if rv.pricing == PricingMostViolated {
			for p := 0; p < m; p++ {
				lo, hi := rv.boxOf(rv.basisVar[p])
				if d := lo - rv.xB[p]; d > worst {
					r, worst, above = p, d, false
				}
				if d := rv.xB[p] - hi; d > worst {
					r, worst, above = p, d, true
				}
			}
		} else {
			best := 0.0
			for p := 0; p < m; p++ {
				lo, hi := rv.boxOf(rv.basisVar[p])
				if d := lo - rv.xB[p]; d > feasTol {
					if s := d * d / rv.gamma[p]; s > best {
						r, worst, above, best = p, d, false, s
					}
				}
				if d := rv.xB[p] - hi; d > feasTol {
					if s := d * d / rv.gamma[p]; s > best {
						r, worst, above, best = p, d, true, s
					}
				}
			}
		}
		if r < 0 {
			break // primal feasible ⇒ optimal (dual feasibility invariant)
		}
		rv.btranPos(r, rho)
		// Pricing: α over structural columns via a CSR pass over the rows
		// where ρ is nonzero; slack columns have α_k = ρ_k directly.
		for j := 0; j < rv.nVars; j++ {
			rv.alpha[j] = 0
		}
		for k := 0; k < m; k++ {
			rk := rho[k]
			if rk == 0 {
				continue
			}
			ind, val := rv.rows.row(k)
			for q, j := range ind {
				rv.alpha[j] += val[q] * rk
			}
		}
		// Two-sided dual ratio test. dir is the direction xB[r] must move
		// to re-enter its box; a nonbasic variable qualifies when leaving
		// its bound pushes xB[r] that way: at-lower variables need
		// dir·α < 0 (they can only increase), at-upper variables dir·α > 0
		// (they can only decrease). Fixed variables (zero width) never
		// enter. The candidate list is sorted by dual ratio with the
		// variable id as a deterministic tie-break.
		dir := 1.0
		if above {
			dir = -1
		}
		cands := rv.cands[:0]
		for j := 0; j < rv.nVars; j++ {
			if rv.posOfStruct[j] >= 0 {
				continue
			}
			width := rv.hiS[j] - rv.loS[j]
			if width <= 0 {
				continue
			}
			a := rv.alpha[j]
			at := dir * a
			var d float64
			if rv.atUpperS[j] {
				if at <= aTol {
					continue
				}
				d = -rv.dS[j]
			} else {
				if at >= -aTol {
					continue
				}
				d = rv.dS[j]
			}
			if d < 0 {
				d = 0
			}
			cands = append(cands, ratioCand{j, a, d / math.Abs(a), width})
		}
		for k := 0; k < m; k++ {
			if rv.posOfSlack[k] >= 0 {
				continue
			}
			width := rv.slackHi[k]
			if width <= 0 {
				continue
			}
			a := rho[k]
			at := dir * a
			var d float64
			if rv.atUpperK[k] {
				if at <= aTol {
					continue
				}
				d = -rv.dK[k]
			} else {
				if at >= -aTol {
					continue
				}
				d = rv.dK[k]
			}
			if d < 0 {
				d = 0
			}
			cands = append(cands, ratioCand{rv.nVars + k, a, d / math.Abs(a), width})
		}
		slices.SortFunc(cands, func(a, b ratioCand) int {
			switch {
			case a.ratio < b.ratio:
				return -1
			case a.ratio > b.ratio:
				return 1
			}
			return a.id - b.id
		})
		rv.cands = cands // keep the (possibly regrown) buffer for the next pivot
		// Bound-flipping walk: a candidate whose full box traversal cannot
		// absorb the remaining infeasibility is flipped to its other bound
		// (its reduced cost crosses zero below the final dual step, so the
		// flip keeps dual feasibility); the first candidate that can absorb
		// it enters the basis.
		remaining := worst
		enterIdx := -1
		for ci := range cands {
			capac := cands[ci].width * math.Abs(cands[ci].alpha)
			if !math.IsInf(cands[ci].width, 1) && capac < remaining {
				remaining -= capac
				continue
			}
			enterIdx = ci
			break
		}
		if enterIdx < 0 {
			// Even sending every eligible nonbasic to its other bound
			// cannot bring row r back inside its box: infeasible — unless
			// the factorization has drifted; verify against a fresh one
			// before certifying.
			if !rv.justRefactored {
				rv.refactorize()
				continue
			}
			rv.infeasible = true
			return &Solution{Status: Infeasible, Iterations: rv.iterations}, nil
		}
		// Apply the accumulated bound flips in one FTRAN: xB ← xB − B⁻¹Δ
		// with Δ = Σ a_j·Δx_j over the flipped columns.
		if enterIdx > 0 {
			for k := 0; k < m; k++ {
				flipRow[k] = 0
			}
			for _, cd := range cands[:enterIdx] {
				var delta float64
				if cd.id < rv.nVars {
					if rv.atUpperS[cd.id] {
						delta = -cd.width
						rv.atUpperS[cd.id] = false
					} else {
						delta = cd.width
						rv.atUpperS[cd.id] = true
					}
					for _, ce := range rv.rows.col(cd.id) {
						flipRow[ce.row] += ce.coef * delta
					}
				} else {
					k := cd.id - rv.nVars
					if rv.atUpperK[k] {
						delta = -cd.width
						rv.atUpperK[k] = false
					} else {
						delta = cd.width
						rv.atUpperK[k] = true
					}
					flipRow[k] += delta
				}
			}
			rv.ftran(flipRow, flipZ)
			for p := 0; p < m; p++ {
				rv.xB[p] -= flipZ[p]
			}
			rv.boundFlips += enterIdx
		}
		enter := cands[enterIdx].id
		bestAlpha := cands[enterIdx].alpha
		// FTRAN the entering column.
		for k := 0; k < m; k++ {
			rv.colBuf[k] = 0
		}
		if enter < rv.nVars {
			for _, ce := range rv.rows.col(enter) {
				rv.colBuf[ce.row] = ce.coef
			}
		} else {
			rv.colBuf[enter-rv.nVars] = 1
		}
		rv.ftran(rv.colBuf, w)
		if math.Abs(w[r]) < 1e-8 || math.Abs(w[r]-bestAlpha) > 1e-6*(1+math.Abs(bestAlpha)) {
			// Pivot disagreement between the pricing row and the FTRAN
			// column: the eta file has drifted. Refactor; if that does not
			// help, restart from the all-slack basis; give up after that.
			// (Any bound flips already taken above are valid state on their
			// own and survive the recovery.)
			if !rv.justRefactored {
				rv.refactorize()
				continue
			}
			if resets == 0 {
				rv.reset("pivot-disagreement")
				resets++
				continue
			}
			return &Solution{Status: Numerical, Iterations: rv.iterations}, nil
		}
		// Pivot-element magnitude extremes: the accepted pivot's |w[r]|.
		if aw := math.Abs(w[r]); aw > 0 {
			if aw > rv.stats.PivotMax {
				rv.stats.PivotMax = aw
			}
			if rv.stats.PivotMin == 0 || aw < rv.stats.PivotMin {
				rv.stats.PivotMin = aw
			}
		}
		// Reference-weight update — must see the PRE-pivot basis (the
		// steepest-exact FTRAN of ρ goes through the eta file before this
		// pivot's eta is appended).
		rv.updateWeights(r, w, rho, m)
		var dEnter float64
		if enter < rv.nVars {
			dEnter = rv.dS[enter]
		} else {
			dEnter = rv.dK[enter-rv.nVars]
		}
		thetaD := dEnter / w[r]
		// Primal step: drive xB[r] exactly onto its violated bound; the
		// entering variable leaves its resting bound by Δx.
		leave := rv.basisVar[r]
		loL, hiL := rv.boxOf(leave)
		bound := loL
		if above {
			bound = hiL
		}
		deltaX := (rv.xB[r] - bound) / w[r]
		for p := 0; p < m; p++ {
			if p != r && w[p] != 0 {
				rv.xB[p] -= deltaX * w[p]
			}
		}
		rv.xB[r] = rv.nbVal(enter) + deltaX
		if thetaD != 0 {
			for k := 0; k < m; k++ {
				if rho[k] != 0 {
					rv.y[k] += thetaD * rho[k]
				}
				d := rv.dK[k] - thetaD*rho[k]
				if rv.posOfSlack[k] < 0 && rv.slackHi[k] != 0 {
					if rv.atUpperK[k] {
						if d > 0 {
							d = 0
						}
					} else if d < 0 {
						d = 0
					}
				}
				rv.dK[k] = d
			}
			for j := 0; j < rv.nVars; j++ {
				d := rv.dS[j] - thetaD*rv.alpha[j]
				if rv.posOfStruct[j] < 0 && rv.loS[j] != rv.hiS[j] {
					if rv.atUpperS[j] {
						if d > 0 {
							d = 0
						}
					} else if d < 0 {
						d = 0
					}
				}
				rv.dS[j] = d
			}
		}
		// Book-keeping: swap basis membership, record the eta. The leaving
		// variable lands on the bound it violated: NB-at-lower when it fell
		// below, NB-at-upper when it rose above; its reduced cost becomes
		// −θ_D, which has the dual-feasible sign for that side.
		if leave < rv.nVars {
			rv.posOfStruct[leave] = -1
			rv.atUpperS[leave] = above
			if above {
				rv.dS[leave] = math.Min(0, -thetaD)
			} else {
				rv.dS[leave] = math.Max(0, -thetaD)
			}
		} else {
			sk := leave - rv.nVars
			rv.posOfSlack[sk] = -1
			rv.atUpperK[sk] = above
			if above {
				rv.dK[sk] = math.Min(0, -thetaD)
			} else {
				rv.dK[sk] = math.Max(0, -thetaD)
			}
		}
		rv.basisVar[r] = enter
		if enter < rv.nVars {
			rv.posOfStruct[enter] = int32(r)
			rv.dS[enter] = 0
		} else {
			rv.posOfSlack[enter-rv.nVars] = int32(r)
			rv.dK[enter-rv.nVars] = 0
		}
		// Record the eta, reusing a retired entry's idx/val backing arrays
		// when the eta file was truncated by an earlier refactorization (the
		// file never outgrows refEach entries in steady state, so after
		// warm-up this append allocates nothing).
		var et *eta
		if n := len(rv.etas); n < cap(rv.etas) {
			rv.etas = rv.etas[:n+1]
			et = &rv.etas[n]
			et.idx = et.idx[:0]
			et.val = et.val[:0]
		} else {
			rv.etas = append(rv.etas, eta{})
			et = &rv.etas[len(rv.etas)-1]
		}
		et.pos, et.diag = r, w[r]
		for p := 0; p < m; p++ {
			if p != r && math.Abs(w[p]) > 1e-13 {
				et.idx = append(et.idx, int32(p))
				et.val = append(et.val, w[p])
			}
		}
		rv.iterations++
		rv.justRefactored = false
		if len(rv.etas) >= rv.refEach {
			rv.refactorize()
		}
	}
	sol := rv.extract()
	if len(rv.etas) > 0 {
		// Clear the eta file while idle so the next AddRow batch can take
		// the warm bordered-extension path instead of forcing a cold
		// refactorization at the start of the next round.
		rv.refactorize()
	}
	return sol, nil
}

// extract assembles the Optimal solution from the current basis: basic
// values (snapped into their boxes within tolerance) plus nonbasic
// resting bounds.
func (rv *Revised) extract() *Solution {
	x := make([]float64, rv.nVars)
	snap := 1e-7 * (1 + rv.feasTol()/math.Max(rv.tol, 1e-300))
	for j := 0; j < rv.nVars; j++ {
		v := rv.structVal(j)
		if lo := rv.loS[j]; v < lo && v > lo-snap {
			v = lo
		}
		if hi := rv.hiS[j]; v > hi && v < hi+snap {
			v = hi
		}
		x[j] = v
	}
	var obj float64
	for j, cj := range rv.c {
		obj += cj * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: rv.iterations}
}
