package lp

import (
	"fmt"
	"math"

	"lubt/internal/linalg"
)

// Revised is a sparse revised dual-simplex engine for cutting planes: the
// default realization of the §4.6 row-generation loop. Like the dense
// tableau engine it requires a non-negative objective over x ≥ 0, which
// makes the all-slack basis dual-feasible (no phase 1, ever); unlike the
// tableau it never materializes B⁻¹A. Instead it keeps
//
//   - the constraint rows in a shared CSR/CSC rowStore (each EBF row has
//     only O(tree depth) nonzeros),
//   - the basis as a variable list plus an LU factorization — via
//     internal/linalg — of the basis matrix's *structural core*: the t×t
//     block over basic non-slack variables, where t is bounded by the
//     variable count no matter how many rows have been generated, and
//   - a product-form eta file between periodic refactorizations.
//
// Each pivot costs one BTRAN, one sparse pricing pass and one FTRAN
// (O(t²+nnz)) instead of a dense rows×columns tableau update, which is
// what makes warm re-solves scale to r4/r5-sized instances.
type Revised struct {
	tol   float64
	nVars int
	c     []float64 // structural costs, len nVars

	rows *rowStore

	// Basis state. Positions 0…m−1 (one per row); basisVar[p] holds a
	// variable id: structural j < nVars, or nVars+k for the slack of row k.
	basisVar    []int
	posOfStruct []int32 // structural var → basis position, or −1
	posOfSlack  []int32 // row → basis position of its slack, or −1

	// Factorized structural core of the basis B₀ *as of the last
	// refactorization*. Pivots taken since then live in the eta file, so
	// the base solves must use the baseVar snapshot, not basisVar.
	lu        *linalg.LU
	baseVar   []int   // basisVar snapshot at factorization time
	coreCols  []int   // basis positions holding structural variables (in B₀)
	coreRows  []int   // rows whose slack is nonbasic in B₀ (ascending)
	rowOfCore []int32 // row → index in coreRows, or −1
	etas      []eta
	coreMat   *linalg.Matrix // scratch for refactorization

	xB []float64 // basic variable values, by position
	y  []float64 // duals, by row
	dS []float64 // reduced costs of structural variables
	dK []float64 // reduced costs of slacks, by row

	// Scratch buffers reused across pivots.
	alpha   []float64 // pricing row over structural columns
	colBuf  []float64 // entering column / ftran rhs, by row
	accBuf  []float64 // structural accumulator inside ftran0, by row
	posBuf  []float64 // btran intermediate, by position
	coreRhs []float64 // core-solve right-hand side, len ≥ t
	coreSol []float64 // core-solve result, len ≥ t
	refEach int       // pivots between refactorizations

	dirty          bool // rows added since the last factorization
	justRefactored bool
	infeasible     bool
	iterations     int
	logicalRows    int
	stats          Stats
}

// eta is one product-form basis update: the basis matrix gained column
// `w` (sparse, diagonal element diag) at position pos.
type eta struct {
	pos  int
	diag float64
	idx  []int32
	val  []float64
}

// NewRevised starts a revised dual-simplex engine over n variables
// (x ≥ 0) with the given non-negative objective (length n; shorter is
// zero-padded). It panics on a negative cost, which would make the empty
// basis dual-infeasible.
func NewRevised(n int, objective []float64) *Revised {
	rv := &Revised{
		tol:     1e-9,
		nVars:   n,
		c:       make([]float64, n),
		rows:    newRowStore(n),
		dS:      make([]float64, n),
		alpha:   make([]float64, n),
		refEach: 64,
	}
	rv.posOfStruct = make([]int32, n)
	for j := range rv.posOfStruct {
		rv.posOfStruct[j] = -1
	}
	for j, cost := range objective {
		if cost < 0 {
			panic(fmt.Sprintf("lp: Revised needs non-negative costs; var %d has %g", j, cost))
		}
		if j < n {
			rv.c[j] = cost
			rv.dS[j] = cost
		}
	}
	return rv
}

// NumRows returns the number of logical constraint rows added via AddRow
// (an EQ row counts once). TableauRows reports the internal ≤-form count.
func (rv *Revised) NumRows() int { return rv.logicalRows }

// TableauRows returns the internal ≤-form row count (EQ rows count twice).
func (rv *Revised) TableauRows() int { return rv.rows.numRows() }

// Iterations returns the cumulative dual-simplex pivot count.
func (rv *Revised) Iterations() int { return rv.iterations }

// Stats returns a snapshot of the engine's observability counters.
func (rv *Revised) Stats() Stats {
	s := rv.stats
	s.Pivots = rv.iterations
	s.LogicalRows = rv.logicalRows
	s.TableauRows = rv.rows.numRows()
	s.RowNonzeros = rv.rows.nnz()
	return s
}

// AddRow introduces the constraint Σ terms {op} rhs. EQ rows are split
// into a ≤ and a ≥ row. The engine becomes primal-infeasible until the
// next Solve call.
func (rv *Revised) AddRow(terms []Term, op Op, rhs float64) {
	rv.logicalRows++
	switch op {
	case LE:
		rv.addLE(terms, rhs, 1)
	case GE:
		rv.addLE(terms, rhs, -1)
	case EQ:
		rv.addLE(terms, rhs, 1)
		rv.addLE(terms, rhs, -1)
	}
}

func (rv *Revised) addLE(terms []Term, rhs float64, sign float64) {
	k := rv.rows.numRows()
	rv.rows.appendLE(terms, rhs, sign)
	// The new row's slack enters the basis at the new position.
	rv.basisVar = append(rv.basisVar, rv.nVars+k)
	rv.posOfSlack = append(rv.posOfSlack, int32(k))
	rv.xB = append(rv.xB, 0)
	rv.y = append(rv.y, 0)
	rv.dK = append(rv.dK, 0)
	rv.rowOfCore = append(rv.rowOfCore, -1)
	rv.colBuf = append(rv.colBuf, 0)
	rv.accBuf = append(rv.accBuf, 0)
	rv.posBuf = append(rv.posBuf, 0)
	if rv.dirty || len(rv.etas) != 0 || len(rv.baseVar) != k {
		rv.dirty = true
		return
	}
	// Warm bordered extension. With an empty eta file the current basis IS
	// the factored snapshot B₀, and giving the new row a basic slack turns
	// B₀ into the bordered matrix [B₀ 0; a₀ᵀ 1] — whose structural core is
	// unchanged, so the LU stays valid and ftran0/btran0 pick up the border
	// through baseVar. Seed the new basic value from the current structural
	// solution instead of refactorizing; Solve refactorizes on optimality
	// exactly so that this path is available to the next cutting-plane
	// batch.
	act := 0.0
	ind, val := rv.rows.row(k)
	for q, j := range ind {
		if p := rv.posOfStruct[j]; p >= 0 {
			act += val[q] * rv.xB[p]
		}
	}
	rv.baseVar = append(rv.baseVar, rv.nVars+k)
	rv.xB[k] = rv.rows.rhs[k] - act
	rv.justRefactored = false
}

// reset returns to the all-slack basis (always dual-feasible for c ≥ 0):
// the numerical-trouble escape hatch, equivalent to a cold dual start.
func (rv *Revised) reset() {
	m := rv.rows.numRows()
	for j := range rv.posOfStruct {
		rv.posOfStruct[j] = -1
	}
	rv.baseVar = rv.baseVar[:0]
	for k := 0; k < m; k++ {
		rv.basisVar[k] = rv.nVars + k
		rv.posOfSlack[k] = int32(k)
		rv.rowOfCore[k] = -1
		rv.xB[k] = rv.rows.rhs[k]
		rv.y[k] = 0
		rv.dK[k] = 0
		rv.baseVar = append(rv.baseVar, rv.nVars+k)
	}
	copy(rv.dS, rv.c)
	rv.etas = rv.etas[:0]
	rv.lu = nil
	rv.coreCols = rv.coreCols[:0]
	rv.coreRows = rv.coreRows[:0]
	rv.dirty = false
	rv.justRefactored = true
	rv.stats.Resets++
	rv.stats.BasisSize = 0
}

// refactorize rebuilds the LU factorization of the basis's structural
// core, drops the eta file, and recomputes xB, y and the reduced costs
// from scratch. Returns false (after resetting) when the basis has gone
// numerically bad.
func (rv *Revised) refactorize() bool {
	m := rv.rows.numRows()
	rv.baseVar = append(rv.baseVar[:0], rv.basisVar...)
	rv.coreCols = rv.coreCols[:0]
	rv.coreRows = rv.coreRows[:0]
	for p := 0; p < m; p++ {
		if rv.baseVar[p] < rv.nVars {
			rv.coreCols = append(rv.coreCols, p)
		}
	}
	for k := 0; k < m; k++ {
		rv.rowOfCore[k] = -1
		if rv.posOfSlack[k] < 0 {
			rv.rowOfCore[k] = int32(len(rv.coreRows))
			rv.coreRows = append(rv.coreRows, k)
		}
	}
	t := len(rv.coreCols)
	if t != len(rv.coreRows) {
		// Cannot happen for a consistent basis; recover anyway.
		rv.reset()
		return false
	}
	if cap(rv.coreRhs) < t {
		rv.coreRhs = make([]float64, t)
		rv.coreSol = make([]float64, t)
	}
	rv.etas = rv.etas[:0]
	rv.dirty = false
	rv.justRefactored = true
	rv.stats.Refactorizations++
	rv.stats.BasisSize = t
	if t > 0 {
		if rv.coreMat == nil || rv.coreMat.Rows != t {
			rv.coreMat = linalg.NewMatrix(t, t)
		} else {
			for i := range rv.coreMat.Data {
				rv.coreMat.Data[i] = 0
			}
		}
		nnzCore := 0
		for ci, p := range rv.coreCols {
			for _, ce := range rv.rows.col(rv.basisVar[p]) {
				if ri := rv.rowOfCore[ce.row]; ri >= 0 {
					rv.coreMat.Set(int(ri), ci, ce.coef)
					nnzCore++
				}
			}
		}
		lu, err := linalg.FactorLUInto(rv.coreMat, rv.lu)
		if err != nil {
			rv.reset()
			return false
		}
		rv.lu = lu
		if fill := lu.NNZ() - nnzCore; fill > 0 {
			rv.stats.FillIn = fill
		} else {
			rv.stats.FillIn = 0
		}
	} else {
		rv.lu = nil
		rv.stats.FillIn = 0
	}
	// Recompute the primal basic values xB = B⁻¹ b.
	copy(rv.colBuf, rv.rows.rhs)
	rv.ftran0(rv.colBuf, rv.xB)
	// Recompute duals y = B⁻ᵀ cB and reduced costs d = c − Aᵀy.
	for p := 0; p < m; p++ {
		if v := rv.basisVar[p]; v < rv.nVars {
			rv.posBuf[p] = rv.c[v]
		} else {
			rv.posBuf[p] = 0
		}
	}
	rv.btran0(rv.posBuf, rv.y)
	dTol := rv.dualTol()
	ok := true
	for j := 0; j < rv.nVars; j++ {
		d := rv.c[j]
		for _, ce := range rv.rows.col(j) {
			d -= rv.y[ce.row] * ce.coef
		}
		if rv.posOfStruct[j] >= 0 {
			d = 0
		} else if d < 0 {
			if d < -1e3*dTol {
				ok = false
			}
			d = 0
		}
		rv.dS[j] = d
	}
	for k := 0; k < m; k++ {
		d := -rv.y[k]
		if rv.posOfSlack[k] >= 0 {
			d = 0
		} else if d < 0 {
			if d < -1e3*dTol {
				ok = false
			}
			d = 0
		}
		rv.dK[k] = d
	}
	if !ok {
		// The basis drifted dual-infeasible: restart from all slacks.
		rv.reset()
		return false
	}
	return true
}

func (rv *Revised) feasTol() float64 {
	maxB := 0.0
	for _, b := range rv.rows.rhs {
		if a := math.Abs(b); a > maxB {
			maxB = a
		}
	}
	return rv.tol * (1 + maxB)
}

func (rv *Revised) dualTol() float64 {
	maxC := 0.0
	for _, c := range rv.c {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	return rv.tol * (1 + maxC)
}

// ftran0 computes z = B₀⁻¹ u through the factored structural core
// (positions with basic slacks are solved by substitution). u is indexed
// by row, z by basis position; u is left untouched unless aliased.
func (rv *Revised) ftran0(u, z []float64) {
	m := rv.rows.numRows()
	t := len(rv.coreCols)
	for k := 0; k < m; k++ {
		rv.accBuf[k] = 0
	}
	var zT []float64
	if t > 0 {
		rhs := rv.coreRhs[:t]
		for i, r := range rv.coreRows {
			rhs[i] = u[r]
		}
		zT = rv.coreSol[:t]
		rv.lu.SolveInto(rhs, zT)
		for i, p := range rv.coreCols {
			zi := zT[i]
			if zi == 0 {
				continue
			}
			for _, ce := range rv.rows.col(rv.baseVar[p]) {
				rv.accBuf[ce.row] += ce.coef * zi
			}
		}
	}
	for p := 0; p < m; p++ {
		if v := rv.baseVar[p]; v >= rv.nVars {
			z[p] = u[v-rv.nVars] - rv.accBuf[v-rv.nVars]
		}
	}
	for i, p := range rv.coreCols {
		z[p] = zT[i]
	}
}

// btran0 computes ρ = B₀⁻ᵀ u: u is indexed by basis position, ρ by row.
func (rv *Revised) btran0(u, rho []float64) {
	m := rv.rows.numRows()
	for k := 0; k < m; k++ {
		rho[k] = 0
	}
	for p := 0; p < m; p++ {
		if v := rv.baseVar[p]; v >= rv.nVars {
			rho[v-rv.nVars] = u[p]
		}
	}
	t := len(rv.coreCols)
	if t == 0 {
		return
	}
	rhs := rv.coreRhs[:t]
	for i, p := range rv.coreCols {
		s := u[p]
		for _, ce := range rv.rows.col(rv.baseVar[p]) {
			if rv.rowOfCore[ce.row] < 0 {
				s -= ce.coef * rho[ce.row]
			}
		}
		rhs[i] = s
	}
	sol := rv.coreSol[:t]
	rv.lu.SolveTransposeInto(rhs, sol)
	for i, r := range rv.coreRows {
		rho[r] = sol[i]
	}
}

// ftran computes z = B⁻¹ u (u by row, z by position) through the base
// factorization and the eta file.
func (rv *Revised) ftran(u, z []float64) {
	rv.ftran0(u, z)
	for i := range rv.etas {
		e := &rv.etas[i]
		t := z[e.pos] / e.diag
		if t != 0 {
			for q, idx := range e.idx {
				z[idx] -= e.val[q] * t
			}
		}
		z[e.pos] = t
	}
}

// btranPos computes ρ = B⁻ᵀ e_pos (ρ by row), the BTRAN pass of one dual
// pivot.
func (rv *Revised) btranPos(pos int, rho []float64) {
	u := rv.posBuf
	for p := range u[:rv.rows.numRows()] {
		u[p] = 0
	}
	u[pos] = 1
	for i := len(rv.etas) - 1; i >= 0; i-- {
		e := &rv.etas[i]
		s := u[e.pos]
		for q, idx := range e.idx {
			s -= e.val[q] * u[idx]
		}
		u[e.pos] = s / e.diag
	}
	rv.btran0(u, rho)
}

// Solve re-optimizes with the revised dual simplex and returns the
// current solution. Status is Optimal or Infeasible (a non-negative
// objective over x ≥ 0 can never be unbounded); Numerical/IterLimit
// report trouble.
func (rv *Revised) Solve() (*Solution, error) {
	if rv.infeasible {
		return &Solution{Status: Infeasible, Iterations: rv.iterations}, nil
	}
	m := rv.rows.numRows()
	if m == 0 {
		return &Solution{Status: Optimal, X: make([]float64, rv.nVars), Iterations: rv.iterations}, nil
	}
	if rv.dirty || (rv.lu == nil && len(rv.coreCols) > 0) {
		rv.refactorize()
	} else if rv.stats.Refactorizations == 0 && rv.stats.Resets == 0 {
		// First solve on a fresh engine: establish xB from the all-slack
		// basis without a factorization.
		rv.refactorize()
	}
	feasTol := rv.feasTol()
	maxIter := 20000 + 200*(m+rv.nVars+m)
	rho := make([]float64, m)
	w := make([]float64, m)
	resets := 0
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return &Solution{Status: IterLimit, Iterations: rv.iterations}, nil
		}
		// Leaving position: most negative basic value.
		r, worst := -1, -feasTol
		for p := 0; p < m; p++ {
			if rv.xB[p] < worst {
				r, worst = p, rv.xB[p]
			}
		}
		if r < 0 {
			break // primal feasible ⇒ optimal (dual feasibility invariant)
		}
		rv.btranPos(r, rho)
		// Pricing: α over structural columns via a CSR pass over the rows
		// where ρ is nonzero; slack columns have α_k = ρ_k directly.
		for j := 0; j < rv.nVars; j++ {
			rv.alpha[j] = 0
		}
		for k := 0; k < m; k++ {
			rk := rho[k]
			if rk == 0 {
				continue
			}
			ind, val := rv.rows.row(k)
			for q, j := range ind {
				rv.alpha[j] += val[q] * rk
			}
		}
		// Dual ratio test over negative pivot candidates; ties break on
		// the smallest variable id (deterministic, Bland-like).
		const aTol = 1e-9
		enter, best, bestAlpha := -1, math.Inf(1), 0.0
		for j := 0; j < rv.nVars; j++ {
			a := rv.alpha[j]
			if a >= -aTol || rv.posOfStruct[j] >= 0 {
				continue
			}
			ratio := rv.dS[j] / -a
			if ratio < best-rv.tol || (ratio < best+rv.tol && (enter < 0 || j < enter)) {
				enter, best, bestAlpha = j, ratio, a
			}
		}
		for k := 0; k < m; k++ {
			a := rho[k]
			if a >= -aTol || rv.posOfSlack[k] >= 0 {
				continue
			}
			ratio := rv.dK[k] / -a
			id := rv.nVars + k
			if ratio < best-rv.tol || (ratio < best+rv.tol && (enter < 0 || id < enter)) {
				enter, best, bestAlpha = id, ratio, a
			}
		}
		if enter < 0 {
			// Row r reads Σ (≥0 coefficients over nonbasics) = negative:
			// infeasible — unless the factorization has drifted; verify
			// against a fresh one before certifying.
			if !rv.justRefactored {
				rv.refactorize()
				continue
			}
			rv.infeasible = true
			return &Solution{Status: Infeasible, Iterations: rv.iterations}, nil
		}
		// FTRAN the entering column.
		for k := 0; k < m; k++ {
			rv.colBuf[k] = 0
		}
		if enter < rv.nVars {
			for _, ce := range rv.rows.col(enter) {
				rv.colBuf[ce.row] = ce.coef
			}
		} else {
			rv.colBuf[enter-rv.nVars] = 1
		}
		rv.ftran(rv.colBuf, w)
		if math.Abs(w[r]) < 1e-8 || math.Abs(w[r]-bestAlpha) > 1e-6*(1+math.Abs(bestAlpha)) {
			// Pivot disagreement between the pricing row and the FTRAN
			// column: the eta file has drifted. Refactor; if that does not
			// help, restart from the all-slack basis; give up after that.
			if !rv.justRefactored {
				rv.refactorize()
				continue
			}
			if resets == 0 {
				rv.reset()
				resets++
				continue
			}
			return &Solution{Status: Numerical, Iterations: rv.iterations}, nil
		}
		var dEnter float64
		if enter < rv.nVars {
			dEnter = rv.dS[enter]
		} else {
			dEnter = rv.dK[enter-rv.nVars]
		}
		thetaD := dEnter / w[r]
		thetaP := rv.xB[r] / w[r]
		for p := 0; p < m; p++ {
			if p != r && w[p] != 0 {
				rv.xB[p] -= thetaP * w[p]
			}
		}
		rv.xB[r] = thetaP
		if thetaD != 0 {
			for k := 0; k < m; k++ {
				if rho[k] != 0 {
					rv.y[k] += thetaD * rho[k]
				}
				d := rv.dK[k] - thetaD*rho[k]
				if d < 0 {
					d = 0
				}
				rv.dK[k] = d
			}
			for j := 0; j < rv.nVars; j++ {
				d := rv.dS[j] - thetaD*rv.alpha[j]
				if d < 0 {
					d = 0
				}
				rv.dS[j] = d
			}
		}
		// Book-keeping: swap basis membership, record the eta.
		leave := rv.basisVar[r]
		if leave < rv.nVars {
			rv.posOfStruct[leave] = -1
			rv.dS[leave] = math.Max(0, -thetaD)
		} else {
			rv.posOfSlack[leave-rv.nVars] = -1
			rv.dK[leave-rv.nVars] = math.Max(0, -thetaD)
		}
		rv.basisVar[r] = enter
		if enter < rv.nVars {
			rv.posOfStruct[enter] = int32(r)
			rv.dS[enter] = 0
		} else {
			rv.posOfSlack[enter-rv.nVars] = int32(r)
			rv.dK[enter-rv.nVars] = 0
		}
		et := eta{pos: r, diag: w[r]}
		for p := 0; p < m; p++ {
			if p != r && math.Abs(w[p]) > 1e-13 {
				et.idx = append(et.idx, int32(p))
				et.val = append(et.val, w[p])
			}
		}
		rv.etas = append(rv.etas, et)
		rv.iterations++
		rv.justRefactored = false
		if len(rv.etas) >= rv.refEach {
			rv.refactorize()
		}
	}
	x := make([]float64, rv.nVars)
	for p := 0; p < m; p++ {
		if v := rv.basisVar[p]; v < rv.nVars {
			val := rv.xB[p]
			if val < 0 && val > -1e-7*(1+math.Abs(rv.rows.rhs[p])) {
				val = 0
			}
			x[v] = val
		}
	}
	var obj float64
	for j, cj := range rv.c {
		obj += cj * x[j]
	}
	if len(rv.etas) > 0 {
		// Clear the eta file while idle so the next AddRow batch can take
		// the warm bordered-extension path instead of forcing a cold
		// refactorization at the start of the next round.
		rv.refactorize()
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: rv.iterations}, nil
}
