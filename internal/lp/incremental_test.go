package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIncrementalBasic(t *testing.T) {
	// min x+y s.t. x+y ≥ 3, x ≥ 1 (same as TestSimplexGERows).
	inc := NewIncremental(2, []float64{1, 1})
	inc.AddRow([]Term{{0, 1}, {1, 1}}, GE, 3)
	inc.AddRow([]Term{{0, 1}}, GE, 1)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("status %v obj %g", sol.Status, sol.Objective)
	}
}

func TestIncrementalRowByRow(t *testing.T) {
	// Add rows one at a time, re-solving between additions; the optimum
	// must track the cold solve after every step.
	inc := NewIncremental(2, []float64{1, 2})
	p := NewProblem(2)
	p.SetCost(0, 1)
	p.SetCost(1, 2)
	steps := []struct {
		terms []Term
		op    Op
		rhs   float64
	}{
		{[]Term{{0, 1}, {1, 1}}, GE, 4},
		{[]Term{{0, 1}}, LE, 3},
		{[]Term{{1, 1}}, GE, 0.5},
		{[]Term{{0, 1}, {1, -1}}, LE, 2},
	}
	for i, s := range steps {
		inc.AddRow(s.terms, s.op, s.rhs)
		p.AddConstraint(s.terms, s.op, s.rhs, "")
		warm, err := inc.Solve()
		if err != nil {
			t.Fatal(err)
		}
		cold, err := (&Simplex{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("step %d: warm %v vs cold %v", i, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-7 {
			t.Fatalf("step %d: warm %g vs cold %g", i, warm.Objective, cold.Objective)
		}
	}
}

func TestIncrementalEquality(t *testing.T) {
	// min 2x+3y s.t. x+y = 4 → x=4, obj 8.
	inc := NewIncremental(2, []float64{2, 3})
	inc.AddRow([]Term{{0, 1}, {1, 1}}, EQ, 4)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-8 {
		t.Fatalf("status %v obj %g x %v", sol.Status, sol.Objective, sol.X)
	}
}

func TestIncrementalInfeasible(t *testing.T) {
	inc := NewIncremental(1, []float64{1})
	inc.AddRow([]Term{{0, 1}}, GE, 5)
	inc.AddRow([]Term{{0, 1}}, LE, 3)
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// The engine stays infeasible (monotone: rows are never removed).
	inc.AddRow([]Term{{0, 1}}, GE, 0)
	if sol, _ := inc.Solve(); sol.Status != Infeasible {
		t.Fatal("infeasibility not sticky")
	}
}

func TestIncrementalEmpty(t *testing.T) {
	inc := NewIncremental(3, []float64{1, 1, 1})
	sol, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty solve: %v %g", sol.Status, sol.Objective)
	}
}

func TestIncrementalPanicsOnNegativeCost(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewIncremental(1, []float64{-1})
}

func TestIncrementalPanicsOnBadVar(t *testing.T) {
	inc := NewIncremental(1, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	inc.AddRow([]Term{{3, 1}}, GE, 1)
}

// Randomized cross-check against the cold simplex on EBF-shaped problems
// (non-negative costs, mixed GE/LE/EQ sum rows).
func TestIncrementalMatchesColdSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(8)
		costs := make([]float64, n)
		for j := range costs {
			costs[j] = rng.Float64() * 5
		}
		inc := NewIncremental(n, costs)
		p := NewProblem(n)
		for j, c := range costs {
			p.SetCost(j, c)
		}
		rounds := 1 + rng.Intn(4)
		for round := 0; round < rounds; round++ {
			rows := 1 + rng.Intn(4)
			for r := 0; r < rows; r++ {
				var terms []Term
				for j := 0; j < n; j++ {
					if rng.Intn(2) == 0 {
						terms = append(terms, Term{j, 1})
					}
				}
				if len(terms) == 0 {
					terms = []Term{{rng.Intn(n), 1}}
				}
				rhs := rng.Float64() * 10
				var op Op
				switch rng.Intn(4) {
				case 0:
					op = LE
					rhs += 5 // keep a decent share feasible
				case 1, 2:
					op = GE
				default:
					op = EQ
				}
				inc.AddRow(terms, op, rhs)
				p.AddConstraint(terms, op, rhs, "")
			}
			warm, err := inc.Solve()
			if err != nil {
				t.Fatal(err)
			}
			cold, err := (&Simplex{}).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("trial %d round %d: warm %v cold %v", trial, round, warm.Status, cold.Status)
			}
			if warm.Status == Infeasible {
				break
			}
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*(1+math.Abs(cold.Objective)) {
				t.Fatalf("trial %d round %d: warm %.9g cold %.9g", trial, round, warm.Objective, cold.Objective)
			}
			if v, i := p.MaxViolation(warm.X); v > 1e-6 {
				t.Fatalf("trial %d round %d: warm violation %g at row %d", trial, round, v, i)
			}
		}
	}
}

func TestIncrementalGetters(t *testing.T) {
	inc := NewIncremental(2, []float64{1, 1})
	if inc.NumRows() != 0 || inc.Iterations() != 0 {
		t.Error("fresh engine not zeroed")
	}
	inc.AddRow([]Term{{0, 1}}, GE, 1)
	inc.AddRow([]Term{{1, 1}}, EQ, 2) // one logical row, two tableau rows
	if inc.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2 logical rows", inc.NumRows())
	}
	if inc.TableauRows() != 3 {
		t.Errorf("TableauRows = %d, want 3 (EQ splits in two)", inc.TableauRows())
	}
	if _, err := inc.Solve(); err != nil {
		t.Fatal(err)
	}
	if inc.Iterations() == 0 {
		t.Error("no pivots recorded")
	}
}

func TestIncrementalSolveIdempotent(t *testing.T) {
	inc := NewIncremental(2, []float64{1, 3})
	inc.AddRow([]Term{{0, 1}, {1, 1}}, GE, 5)
	a, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective || a.Status != b.Status {
		t.Fatal("re-solving without new rows changed the answer")
	}
}
