package lp

import (
	"math"
)

// Simplex is a two-phase dense primal simplex solver. The zero value is
// ready to use; fields tune the solver.
type Simplex struct {
	// MaxIter bounds the total pivot count; 0 means an automatic limit of
	// 20000 + 100·(rows+cols).
	MaxIter int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-9.
	Tol float64
}

const blandThreshold = 60 // consecutive degenerate pivots before Bland's rule

// Solve runs the two-phase simplex method.
func (s *Simplex) Solve(p *Problem) (*Solution, error) {
	if p == nil || p.NumVars < 0 {
		return nil, ErrBadProblem
	}
	tol := s.Tol
	if tol == 0 {
		tol = 1e-9
	}
	sf := toStandard(p)
	m, n := sf.m, sf.n

	// Trivial case: no constraints. Minimum of cᵀx over x ≥ 0 is 0 when
	// c ≥ 0 (all x = 0) and unbounded otherwise.
	if m == 0 {
		for _, cj := range sf.c {
			if cj < -tol {
				return &Solution{Status: Unbounded, X: make([]float64, p.NumVars)}, nil
			}
		}
		return &Solution{Status: Optimal, X: make([]float64, p.NumVars)}, nil
	}

	// Assemble the tableau with one artificial column per row lacking a
	// usable (+1) slack. Columns: [orig | slack | artificial | rhs].
	nArt := 0
	artOf := make([]int, m) // artificial column of row i, or −1
	for i := range artOf {
		artOf[i] = -1
	}
	for i := 0; i < m; i++ {
		sc := sf.slackOf[i]
		if sc >= 0 && sf.a[i][sc] > 0 {
			continue // LE-type row: slack starts basic
		}
		artOf[i] = n + nArt
		nArt++
	}
	nTot := n + nArt
	rhs := nTot // index of the RHS column
	t := make([][]float64, m)
	flat := make([]float64, m*(nTot+1))
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		row := flat[i*(nTot+1) : (i+1)*(nTot+1)]
		t[i] = row
		copy(row, sf.a[i])
		row[rhs] = sf.b[i]
		if artOf[i] >= 0 {
			row[artOf[i]] = 1
			basis[i] = artOf[i]
		} else {
			basis[i] = sf.slackOf[i]
		}
	}

	// Reduced-cost rows for both phases, pivoted along with the tableau.
	// obj[j] holds the reduced cost of column j; obj[rhs] holds −(current
	// objective value).
	obj1 := make([]float64, nTot+1) // phase 1: minimize Σ artificials
	obj2 := make([]float64, nTot+1) // phase 2: minimize cᵀx
	copy(obj2, sf.c)
	for i := 0; i < m; i++ {
		if artOf[i] >= 0 {
			// Subtract the row to zero the basic artificial's reduced cost.
			for j := 0; j <= nTot; j++ {
				obj1[j] -= t[i][j]
			}
		} else {
			// Slack columns have zero cost in both phases: nothing to do.
			_ = i
		}
	}
	// obj1 must be zero on artificial columns (cost 1 − 1 after the
	// subtraction above).
	for i := 0; i < m; i++ {
		if a := artOf[i]; a >= 0 {
			obj1[a] = 0
		}
	}

	maxIter := s.MaxIter
	if maxIter == 0 {
		maxIter = 20000 + 100*(m+nTot)
	}
	iters := 0

	pivot := func(r, cIn int) {
		prow := t[r]
		pv := prow[cIn]
		inv := 1 / pv
		for j := 0; j <= nTot; j++ {
			prow[j] *= inv
		}
		prow[cIn] = 1 // kill roundoff
		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			f := t[i][cIn]
			if f == 0 {
				continue
			}
			row := t[i]
			for j := 0; j <= nTot; j++ {
				row[j] -= f * prow[j]
			}
			row[cIn] = 0
		}
		for _, o := range [][]float64{obj1, obj2} {
			f := o[cIn]
			if f != 0 {
				for j := 0; j <= nTot; j++ {
					o[j] -= f * prow[j]
				}
				o[cIn] = 0
			}
		}
		basis[r] = cIn
	}

	// run performs pivots against the given objective row over columns
	// [0, lim). It returns Optimal or Unbounded (never Infeasible).
	run := func(obj []float64, lim int) Status {
		degen := 0
		for {
			if iters >= maxIter {
				return IterLimit
			}
			// Entering column.
			enter := -1
			if degen >= blandThreshold {
				for j := 0; j < lim; j++ {
					if obj[j] < -tol {
						enter = j
						break
					}
				}
			} else {
				best := -tol
				for j := 0; j < lim; j++ {
					if obj[j] < best {
						best, enter = obj[j], j
					}
				}
			}
			if enter < 0 {
				return Optimal
			}
			// Ratio test (Bland ties on the smallest basis variable).
			leave := -1
			var bestRatio float64
			for i := 0; i < m; i++ {
				aij := t[i][enter]
				if aij <= tol {
					continue
				}
				ratio := t[i][rhs] / aij
				if leave < 0 || ratio < bestRatio-tol ||
					(ratio < bestRatio+tol && basis[i] < basis[leave]) {
					leave, bestRatio = i, ratio
				}
			}
			if leave < 0 {
				return Unbounded
			}
			if bestRatio <= tol {
				degen++
			} else {
				degen = 0
			}
			pivot(leave, enter)
			iters++
		}
	}

	// Phase 1.
	if nArt > 0 {
		st := run(obj1, nTot)
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iterations: iters}, nil
		}
		if st == Unbounded {
			// The phase-1 objective is bounded below by zero; unbounded
			// means numerical trouble.
			return &Solution{Status: Numerical, Iterations: iters}, nil
		}
		if phase1 := -obj1[rhs]; phase1 > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters}, nil
		}
		// Drive any remaining basic artificials out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] < n {
				continue
			}
			moved := false
			for j := 0; j < n; j++ {
				if math.Abs(t[i][j]) > 1e-7 {
					pivot(i, j)
					iters++
					moved = true
					break
				}
			}
			if !moved {
				// Redundant row: harmless; leave the zero-valued artificial
				// basic but forbid it from re-entering (artificials are
				// excluded from phase-2 pricing below).
				t[i][rhs] = 0
			}
		}
	}

	// Phase 2: price only genuine columns.
	st := run(obj2, n)
	if st == IterLimit {
		return &Solution{Status: IterLimit, Iterations: iters}, nil
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Iterations: iters}, nil
	}

	x := make([]float64, p.NumVars)
	for i, bv := range basis {
		if bv < p.NumVars {
			v := t[i][rhs]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[bv] = v
		}
	}
	// Terminal numerical-health gauge: the worst constraint violation of
	// the vertex actually returned (0 on a clean solve).
	viol, _ := p.MaxViolation(x)
	return &Solution{
		Status:            Optimal,
		X:                 x,
		Objective:         p.Eval(x),
		Iterations:        iters,
		NumericalResidual: viol,
	}, nil
}
