package lp

import (
	"math"

	"lubt/internal/linalg"
)

// IPM is a Mehrotra predictor-corrector primal-dual interior-point solver.
// The paper solved EBF with LOQO, an interior-point code; this solver
// plays that role here. It is best suited to the moderately sized LPs of
// the row-generation loop; simplex remains the default because it detects
// infeasibility exactly and returns vertex solutions.
type IPM struct {
	// MaxIter bounds interior-point iterations; 0 means 200.
	MaxIter int
	// Tol is the relative convergence tolerance; 0 means 1e-9.
	Tol float64
}

// Solve runs the interior-point method. Infeasible or unbounded models
// surface as IterLimit/Numerical (the method has no exact certificate);
// callers that need certificates should use Simplex.
func (ip *IPM) Solve(p *Problem) (*Solution, error) {
	if p == nil || p.NumVars < 0 {
		return nil, ErrBadProblem
	}
	tol := ip.Tol
	if tol == 0 {
		tol = 1e-9
	}
	maxIter := ip.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}
	sf := toStandard(p)
	m, n := sf.m, sf.n
	if m == 0 {
		return (&Simplex{}).Solve(p)
	}

	a := sf.a
	b := sf.b
	c := sf.c

	// Scale for conditioning.
	bNorm := 1 + linalg.NormInf(b)
	cNorm := 1 + linalg.NormInf(c)

	mulA := func(x []float64) []float64 {
		y := make([]float64, m)
		for i := 0; i < m; i++ {
			y[i] = linalg.Dot(a[i], x)
		}
		return y
	}
	mulAT := func(y []float64) []float64 {
		x := make([]float64, n)
		for i := 0; i < m; i++ {
			yi := y[i]
			if yi == 0 {
				continue
			}
			linalg.AddScaled(x, yi, a[i])
		}
		return x
	}
	// normalEq builds M = A·diag(d)·Aᵀ.
	normalEq := func(d []float64) *linalg.Matrix {
		mm := linalg.NewMatrix(m, m)
		for i1 := 0; i1 < m; i1++ {
			r1 := a[i1]
			for i2 := i1; i2 < m; i2++ {
				r2 := a[i2]
				var s float64
				for j := 0; j < n; j++ {
					if r1[j] != 0 && r2[j] != 0 {
						s += r1[j] * d[j] * r2[j]
					}
				}
				mm.Set(i1, i2, s)
				mm.Set(i2, i1, s)
			}
		}
		return mm
	}

	// factorLadder retries the normal-equations factorization with
	// escalating regularization; EBF instances can be heavily degenerate.
	factorLadder := func(m *linalg.Matrix, base float64) (*linalg.Cholesky, error) {
		var chol *linalg.Cholesky
		var err error
		for _, reg := range []float64{base, base * 1e2, base * 1e4, base * 1e6, base * 1e8} {
			chol, err = linalg.FactorCholesky(m, reg)
			if err == nil {
				return chol, nil
			}
		}
		return nil, err
	}

	// Mehrotra starting point.
	ones := make([]float64, n)
	for j := range ones {
		ones[j] = 1
	}
	mEye, err := factorLadder(normalEq(ones), 1e-8)
	if err != nil {
		return &Solution{Status: Numerical}, nil
	}
	// x̂ = Aᵀ(AAᵀ)⁻¹ b (least-norm solution of Ax=b).
	x := mulAT(mEye.Solve(b))
	// ŷ = (AAᵀ)⁻¹ A c, ŝ = c − Aᵀŷ.
	y := mEye.Solve(mulA(c))
	sv := make([]float64, n)
	aty := mulAT(y)
	for j := 0; j < n; j++ {
		sv[j] = c[j] - aty[j]
	}
	// shift moves a tentative iterate strictly inside the positive orthant
	// (Mehrotra's starting-point heuristic).
	shift := func(v []float64) {
		lo := math.Inf(1)
		for _, t := range v {
			lo = math.Min(lo, t)
		}
		d := math.Max(0, -1.5*lo) + 0.5
		for j := range v {
			v[j] += d
			if v[j] < 1 {
				v[j] = 1
			}
		}
	}
	shift(x)
	shift(sv)

	dx := make([]float64, n)
	ds := make([]float64, n)
	dy := make([]float64, m)
	iters := 0
	// residual is the scaled KKT residual of the current iterate — the
	// convergence gauge, reported as Solution.NumericalResidual on every
	// return path so callers can tell a clean solve from a marginal one.
	residual := math.Inf(1)

	for ; iters < maxIter; iters++ {
		// Residuals.
		ax := mulA(x)
		rp := make([]float64, m)
		for i := range rp {
			rp[i] = b[i] - ax[i]
		}
		aty = mulAT(y)
		rd := make([]float64, n)
		for j := range rd {
			rd[j] = c[j] - aty[j] - sv[j]
		}
		var mu float64
		for j := 0; j < n; j++ {
			mu += x[j] * sv[j]
		}
		mu /= float64(n)
		residual = math.Max(linalg.NormInf(rp)/bNorm,
			math.Max(linalg.NormInf(rd)/cNorm, mu/(1+math.Abs(linalg.Dot(c, x)))))
		if residual < tol {
			break
		}

		d := make([]float64, n)
		for j := range d {
			d[j] = x[j] / sv[j]
		}
		chol, err := factorLadder(normalEq(d), 1e-10*(1+mu))
		if err != nil {
			return &Solution{Status: Numerical, Iterations: iters, NumericalResidual: residual}, nil
		}

		// solveKKT computes (dx, dy, ds) for complementarity target v:
		// S dx + X ds = v.
		solveKKT := func(v []float64) {
			rhs := make([]float64, m)
			// rhs = rp + A(D·rd − S⁻¹v)
			tmp := make([]float64, n)
			for j := 0; j < n; j++ {
				tmp[j] = d[j]*rd[j] - v[j]/sv[j]
			}
			at := mulA(tmp)
			for i := 0; i < m; i++ {
				rhs[i] = rp[i] + at[i]
			}
			copy(dy, chol.Solve(rhs))
			atdy := mulAT(dy)
			for j := 0; j < n; j++ {
				ds[j] = rd[j] - atdy[j]
				dx[j] = (v[j] - x[j]*ds[j]) / sv[j]
			}
		}

		// Predictor (affine) step: v = −XSe.
		v := make([]float64, n)
		for j := 0; j < n; j++ {
			v[j] = -x[j] * sv[j]
		}
		solveKKT(v)
		alphaP, alphaD := maxStep(x, dx), maxStep(sv, ds)
		var muAff float64
		for j := 0; j < n; j++ {
			muAff += (x[j] + alphaP*dx[j]) * (sv[j] + alphaD*ds[j])
		}
		muAff /= float64(n)
		sigma := math.Pow(muAff/mu, 3)
		if sigma > 1 {
			sigma = 1
		}

		// Corrector step: v = σμe − ΔXaff·ΔSaff·e − XSe.
		for j := 0; j < n; j++ {
			v[j] = sigma*mu - dx[j]*ds[j] - x[j]*sv[j]
		}
		solveKKT(v)
		alphaP = 0.995 * maxStep(x, dx)
		alphaD = 0.995 * maxStep(sv, ds)
		if alphaP > 1 {
			alphaP = 1
		}
		if alphaD > 1 {
			alphaD = 1
		}
		for j := 0; j < n; j++ {
			x[j] += alphaP * dx[j]
			sv[j] += alphaD * ds[j]
		}
		for i := 0; i < m; i++ {
			y[i] += alphaD * dy[i]
		}
	}
	if iters >= maxIter {
		return &Solution{Status: IterLimit, Iterations: iters, NumericalResidual: residual}, nil
	}
	out := make([]float64, p.NumVars)
	for j := range out {
		v := x[j]
		if v < 0 {
			v = 0
		}
		out[j] = v
	}
	return &Solution{
		Status:            Optimal,
		X:                 out,
		Objective:         p.Eval(out),
		Iterations:        iters,
		NumericalResidual: residual,
	}, nil
}

// maxStep returns the largest α ≤ 1 keeping v + α·dv ≥ 0 componentwise
// (strictly, the distance to the boundary, capped at a large value).
func maxStep(v, dv []float64) float64 {
	alpha := 1.0
	for j := range v {
		if dv[j] < 0 {
			if a := -v[j] / dv[j]; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}
