package lp

import (
	"strings"
	"testing"
	"time"
)

// TestMergeCounters pins the additive half of Merge: counters add, traces
// concatenate in order, times accumulate.
func TestMergeCounters(t *testing.T) {
	a := Stats{
		Pivots:           3,
		Refactorizations: 1,
		Resets:           1,
		ResetReasons:     []string{"lu-singular"},
		BoundFlips:       2,
		Rounds:           2,
		ViolatedByRound:  []int{4, 0},
		SeparationTime:   time.Millisecond,
		SolveTime:        2 * time.Millisecond,
	}
	b := Stats{
		Pivots:           5,
		Refactorizations: 2,
		Resets:           1,
		ResetReasons:     []string{"dual-drift"},
		BoundFlips:       1,
		Rounds:           1,
		ViolatedByRound:  []int{7},
		SeparationTime:   3 * time.Millisecond,
		SolveTime:        time.Millisecond,
	}
	a.Merge(b)
	if a.Pivots != 8 || a.Refactorizations != 3 || a.Resets != 2 || a.BoundFlips != 3 || a.Rounds != 3 {
		t.Errorf("counters did not add: %+v", a)
	}
	if got := a.ResetReasons; len(got) != 2 || got[0] != "lu-singular" || got[1] != "dual-drift" {
		t.Errorf("ResetReasons = %v", got)
	}
	if got := a.ViolatedByRound; len(got) != 3 || got[0] != 4 || got[2] != 7 {
		t.Errorf("ViolatedByRound = %v", got)
	}
	if a.SeparationTime != 4*time.Millisecond || a.SolveTime != 3*time.Millisecond {
		t.Errorf("times did not add: %v %v", a.SeparationTime, a.SolveTime)
	}
}

// TestMergeGaugeSetness is the satellite-1 regression: a sampled gauge
// record (GaugesValid) must replace stale values even when the new value
// is legitimately zero — e.g. FillIn 0 after a clean refactorization.
func TestMergeGaugeSetness(t *testing.T) {
	s := Stats{BasisSize: 40, FillIn: 17, EtaLen: 9, NumericalResidual: 1e-6,
		LogicalRows: 10, TableauRows: 12, LoweredTableauRows: 14, RangedRows: 2, RowNonzeros: 55}
	fresh := Stats{BasisSize: 41, FillIn: 0, EtaLen: 0, NumericalResidual: 0,
		LogicalRows: 11, TableauRows: 11, LoweredTableauRows: 13, RangedRows: 0, RowNonzeros: 60,
		GaugesValid: true}
	s.Merge(fresh)
	if s.FillIn != 0 || s.EtaLen != 0 || s.NumericalResidual != 0 || s.RangedRows != 0 {
		t.Errorf("zero gauges from a sampled record did not replace stale values: %+v", s)
	}
	if s.BasisSize != 41 || s.LogicalRows != 11 || s.TableauRows != 11 ||
		s.LoweredTableauRows != 13 || s.RowNonzeros != 60 {
		t.Errorf("sampled gauges not taken: %+v", s)
	}
	if !s.GaugesValid {
		t.Error("GaugesValid did not propagate")
	}
}

// TestMergeLegacyFallback keeps the old take-when-positive semantics for
// hand-built partial records without GaugesValid.
func TestMergeLegacyFallback(t *testing.T) {
	s := Stats{BasisSize: 40, FillIn: 17, NumericalResidual: 1e-6}
	s.Merge(Stats{BasisSize: 0, FillIn: 3}) // no GaugesValid
	if s.BasisSize != 40 {
		t.Errorf("zero gauge overwrote without GaugesValid: BasisSize = %d", s.BasisSize)
	}
	if s.FillIn != 3 {
		t.Errorf("positive gauge not taken: FillIn = %d", s.FillIn)
	}
	if s.NumericalResidual != 1e-6 {
		t.Errorf("zero residual overwrote without GaugesValid: %g", s.NumericalResidual)
	}
	if s.GaugesValid {
		t.Error("GaugesValid appeared from nowhere")
	}
}

// TestMergePivotExtremes: PivotMax widens up, PivotMin takes the smallest
// nonzero (zero means "no pivots ran", not "pivot of magnitude zero").
func TestMergePivotExtremes(t *testing.T) {
	s := Stats{PivotMin: 1e-3, PivotMax: 10}
	s.Merge(Stats{PivotMin: 1e-5, PivotMax: 2})
	if s.PivotMin != 1e-5 || s.PivotMax != 10 {
		t.Errorf("extremes = [%g, %g], want [1e-05, 10]", s.PivotMin, s.PivotMax)
	}
	s.Merge(Stats{}) // a no-pivot record must not clobber the min
	if s.PivotMin != 1e-5 || s.PivotMax != 10 {
		t.Errorf("no-pivot merge changed extremes: [%g, %g]", s.PivotMin, s.PivotMax)
	}
	var z Stats
	z.Merge(Stats{PivotMin: 0.5, PivotMax: 0.5})
	if z.PivotMin != 0.5 || z.PivotMax != 0.5 {
		t.Errorf("seeding empty extremes: [%g, %g]", z.PivotMin, z.PivotMax)
	}
}

// TestStatsString checks the one-stop summary mentions every gauge group
// and only shows the optional lines when they carry data.
func TestStatsString(t *testing.T) {
	s := Stats{
		Pivots: 12, BoundFlips: 3, Refactorizations: 2, BasisSize: 7, FillIn: 4,
		Resets: 1, ResetReasons: []string{"dual-drift"},
		LogicalRows: 9, TableauRows: 9, LoweredTableauRows: 11, RangedRows: 2, RowNonzeros: 31,
		Rounds: 3, ViolatedByRound: []int{5, 2, 0},
		EtaLen: 6, NumericalResidual: 2.5e-10, PivotMin: 1e-4, PivotMax: 3,
	}
	out := s.String()
	for _, want := range []string{
		"pivots 12", "bound-flips 3", "refactorizations 2", "basis 7", "fill-in 4",
		"rows 9 logical / 9 tableau (11 lowered, 2 ranged)", "nnz 31", "rounds 3",
		"eta-len 6", "residual 2.5e-10", "pivot-el [0.0001, 3]",
		"reset-reasons [dual-drift]", "violated/round [5 2 0]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	var empty Stats
	if out := empty.String(); strings.Contains(out, "reset-reasons") || strings.Contains(out, "violated/round") {
		t.Errorf("empty Stats shows optional lines:\n%s", out)
	}
}
