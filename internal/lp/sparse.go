package lp

import (
	"fmt"
	"slices"
	"sort"
)

// rowStore is the shared sparse constraint representation of the
// incremental engines: a CSR-style row store over ≤-form rows
// (Σ aᵢⱼ xⱼ ≤ bᵢ), plus a transposed column index used by the revised
// dual simplex for basis-column gathers and pricing. Rows are appended by
// the cutting-plane loop and may later be rewritten in place (replaceRow)
// by the restaging paths; both views are kept consistent either way. EBF
// rows touch only the O(depth) edges of one tree path, so both views stay
// tiny compared with the dense tableau's rows×columns footprint.
type rowStore struct {
	nVars int
	ptr   []int     // row k occupies ind/val[ptr[k]:ptr[k+1]]; len numRows+1
	ind   []int32   // column indices within a row (strictly increasing)
	val   []float64 // matching coefficients
	rhs   []float64 // per-row right-hand side

	// cols[j] lists the (row, coef) pairs of structural column j in row
	// order — the CSC twin of the CSR arrays above, maintained on append.
	cols [][]colEntry

	scratch []float64 // nVars-sized accumulator reused by appendLE
	touched []int32
}

type colEntry struct {
	row  int32
	coef float64
}

func newRowStore(nVars int) *rowStore {
	return &rowStore{
		nVars:   nVars,
		ptr:     []int{0},
		cols:    make([][]colEntry, nVars),
		scratch: make([]float64, nVars),
	}
}

// numRows returns the ≤-row count.
func (rs *rowStore) numRows() int { return len(rs.rhs) }

// nnz returns the stored nonzero count.
func (rs *rowStore) nnz() int { return len(rs.val) }

// appendLE adds the row sign·(Σ terms) ≤ sign·rhs. Duplicate variables in
// terms are coalesced; zero coefficients are dropped.
func (rs *rowStore) appendLE(terms []Term, rhs float64, sign float64) {
	rs.touched = rs.touched[:0]
	for _, t := range terms {
		if t.Var < 0 || t.Var >= rs.nVars {
			panic(fmt.Sprintf("lp: row references variable %d of %d", t.Var, rs.nVars))
		}
		if rs.scratch[t.Var] == 0 && t.Coef != 0 {
			rs.touched = append(rs.touched, int32(t.Var))
		}
		rs.scratch[t.Var] += sign * t.Coef
	}
	sort.Slice(rs.touched, func(a, b int) bool { return rs.touched[a] < rs.touched[b] })
	row := int32(len(rs.rhs))
	for _, j := range rs.touched {
		c := rs.scratch[j]
		rs.scratch[j] = 0
		if c == 0 {
			continue
		}
		rs.ind = append(rs.ind, j)
		rs.val = append(rs.val, c)
		rs.cols[j] = append(rs.cols[j], colEntry{row: row, coef: c})
	}
	rs.ptr = append(rs.ptr, len(rs.ind))
	rs.rhs = append(rs.rhs, sign*rhs)
}

// replaceRow rewrites row k in place as sign·(Σ terms) ≤ sign·rhs,
// splicing the CSR segment and patching the CSC columns the old and new
// rows touch. It reports whether the stored coefficient pattern actually
// changed — a pure right-hand-side rewrite (same terms, same sign) leaves
// the constraint matrix, and therefore any basis factorization of it,
// intact.
func (rs *rowStore) replaceRow(k int, terms []Term, rhs float64, sign float64) (changed bool) {
	rs.touched = rs.touched[:0]
	for _, t := range terms {
		if t.Var < 0 || t.Var >= rs.nVars {
			panic(fmt.Sprintf("lp: row references variable %d of %d", t.Var, rs.nVars))
		}
		if rs.scratch[t.Var] == 0 && t.Coef != 0 {
			rs.touched = append(rs.touched, int32(t.Var))
		}
		rs.scratch[t.Var] += sign * t.Coef
	}
	sort.Slice(rs.touched, func(a, b int) bool { return rs.touched[a] < rs.touched[b] })
	lo, hi := rs.ptr[k], rs.ptr[k+1]
	// Same coefficient pattern? Then only the right-hand side moves.
	same := true
	q := lo
	for _, j := range rs.touched {
		c := rs.scratch[j]
		if c == 0 {
			continue
		}
		if q >= hi || rs.ind[q] != j || rs.val[q] != c {
			same = false
			break
		}
		q++
	}
	if same && q == hi {
		for _, j := range rs.touched {
			rs.scratch[j] = 0
		}
		rs.rhs[k] = sign * rhs
		return false
	}
	// Drop stale CSC entries: old columns whose new coefficient is zero.
	for _, j := range rs.ind[lo:hi] {
		if rs.scratch[j] == 0 {
			rs.colPatch(int(j), int32(k), 0)
		}
	}
	// Build the new CSR segment and upsert the surviving CSC entries.
	var nInd []int32
	var nVal []float64
	for _, j := range rs.touched {
		c := rs.scratch[j]
		rs.scratch[j] = 0
		if c == 0 {
			continue
		}
		nInd = append(nInd, j)
		nVal = append(nVal, c)
		rs.colPatch(int(j), int32(k), c)
	}
	rs.ind = slices.Replace(rs.ind, lo, hi, nInd...)
	rs.val = slices.Replace(rs.val, lo, hi, nVal...)
	if delta := len(nInd) - (hi - lo); delta != 0 {
		for i := k + 1; i < len(rs.ptr); i++ {
			rs.ptr[i] += delta
		}
	}
	rs.rhs[k] = sign * rhs
	return true
}

// colPatch sets column j's entry for row k to coef: updating it in place,
// deleting it when coef is zero, or inserting it in row order.
func (rs *rowStore) colPatch(j int, k int32, coef float64) {
	col := rs.cols[j]
	i := sort.Search(len(col), func(i int) bool { return col[i].row >= k })
	switch {
	case i < len(col) && col[i].row == k:
		if coef == 0 {
			rs.cols[j] = append(col[:i], col[i+1:]...)
		} else {
			col[i].coef = coef
		}
	case coef != 0:
		col = append(col, colEntry{})
		copy(col[i+1:], col[i:])
		col[i] = colEntry{row: k, coef: coef}
		rs.cols[j] = col
	}
}

// row returns the index/value slices of row k (shared storage).
func (rs *rowStore) row(k int) ([]int32, []float64) {
	lo, hi := rs.ptr[k], rs.ptr[k+1]
	return rs.ind[lo:hi], rs.val[lo:hi]
}

// col returns the (row, coef) list of structural column j (shared
// storage).
func (rs *rowStore) col(j int) []colEntry { return rs.cols[j] }

// activity returns Σ aₖⱼ xⱼ for row k under the structural vector x.
func (rs *rowStore) activity(k int, x []float64) float64 {
	ind, val := rs.row(k)
	var s float64
	for p, j := range ind {
		s += val[p] * x[j]
	}
	return s
}
