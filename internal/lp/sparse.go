package lp

import (
	"fmt"
	"sort"
)

// rowStore is the shared sparse constraint representation of the
// incremental engines: a CSR-style append-only row store over ≤-form rows
// (Σ aᵢⱼ xⱼ ≤ bᵢ), plus a transposed column index used by the revised
// dual simplex for basis-column gathers and pricing. EBF rows touch only
// the O(depth) edges of one tree path, so both views stay tiny compared
// with the dense tableau's rows×columns footprint.
type rowStore struct {
	nVars int
	ptr   []int     // row k occupies ind/val[ptr[k]:ptr[k+1]]; len numRows+1
	ind   []int32   // column indices within a row (strictly increasing)
	val   []float64 // matching coefficients
	rhs   []float64 // per-row right-hand side

	// cols[j] lists the (row, coef) pairs of structural column j in row
	// order — the CSC twin of the CSR arrays above, maintained on append.
	cols [][]colEntry

	scratch []float64 // nVars-sized accumulator reused by appendLE
	touched []int32
}

type colEntry struct {
	row  int32
	coef float64
}

func newRowStore(nVars int) *rowStore {
	return &rowStore{
		nVars:   nVars,
		ptr:     []int{0},
		cols:    make([][]colEntry, nVars),
		scratch: make([]float64, nVars),
	}
}

// numRows returns the ≤-row count.
func (rs *rowStore) numRows() int { return len(rs.rhs) }

// nnz returns the stored nonzero count.
func (rs *rowStore) nnz() int { return len(rs.val) }

// appendLE adds the row sign·(Σ terms) ≤ sign·rhs. Duplicate variables in
// terms are coalesced; zero coefficients are dropped.
func (rs *rowStore) appendLE(terms []Term, rhs float64, sign float64) {
	rs.touched = rs.touched[:0]
	for _, t := range terms {
		if t.Var < 0 || t.Var >= rs.nVars {
			panic(fmt.Sprintf("lp: row references variable %d of %d", t.Var, rs.nVars))
		}
		if rs.scratch[t.Var] == 0 && t.Coef != 0 {
			rs.touched = append(rs.touched, int32(t.Var))
		}
		rs.scratch[t.Var] += sign * t.Coef
	}
	sort.Slice(rs.touched, func(a, b int) bool { return rs.touched[a] < rs.touched[b] })
	row := int32(len(rs.rhs))
	for _, j := range rs.touched {
		c := rs.scratch[j]
		rs.scratch[j] = 0
		if c == 0 {
			continue
		}
		rs.ind = append(rs.ind, j)
		rs.val = append(rs.val, c)
		rs.cols[j] = append(rs.cols[j], colEntry{row: row, coef: c})
	}
	rs.ptr = append(rs.ptr, len(rs.ind))
	rs.rhs = append(rs.rhs, sign*rhs)
}

// row returns the index/value slices of row k (shared storage).
func (rs *rowStore) row(k int) ([]int32, []float64) {
	lo, hi := rs.ptr[k], rs.ptr[k+1]
	return rs.ind[lo:hi], rs.val[lo:hi]
}

// col returns the (row, coef) list of structural column j (shared
// storage).
func (rs *rowStore) col(j int) []colEntry { return rs.cols[j] }

// activity returns Σ aₖⱼ xⱼ for row k under the structural vector x.
func (rs *rowStore) activity(k int, x []float64) float64 {
	ind, val := rs.row(k)
	var s float64
	for p, j := range ind {
		s += val[p] * x[j]
	}
	return s
}
