package lp

import (
	"fmt"
	"math"
)

// Incremental is a cutting-plane LP engine: rows are added over time and
// each re-solve warm-starts from the previous optimal basis using the dual
// simplex method. It requires a non-negative objective (true of every EBF
// cost vector), which makes x = 0 dual-feasible — no phase-1/artificial
// machinery is ever needed, and after adding k violated rows the re-solve
// typically needs only O(k) pivots. This is what makes the §4.6
// constraint reduction fast in practice: the row-generation loop in
// internal/core adds the violated Steiner rows and re-optimizes in
// milliseconds instead of re-solving from scratch.
type Incremental struct {
	tol   float64
	nVars int

	cols  int         // total columns: nVars + one slack per row
	rows  [][]float64 // tableau rows, each of length cap ≥ cols
	rhs   []float64
	basis []int
	obj   []float64 // reduced-cost row
	objV  float64   // objective-row constant (kept for diagnostics)
	origC []float64 // original costs, for exact objective extraction

	iterations  int
	infeasible  bool
	logicalRows int
	rangedRows  int
}

// NewIncremental starts an engine over n variables (x ≥ 0) with the given
// non-negative objective (length n; shorter is zero-padded). It panics on
// a negative cost, which would make the empty basis dual-infeasible.
func NewIncremental(n int, objective []float64) *Incremental {
	inc := &Incremental{
		tol:   1e-9,
		nVars: n,
		cols:  n,
		obj:   make([]float64, n),
		origC: make([]float64, n),
	}
	for j, c := range objective {
		if c < 0 {
			panic(fmt.Sprintf("lp: Incremental needs non-negative costs; var %d has %g", j, c))
		}
		if j < n {
			inc.obj[j] = c
			inc.origC[j] = c
		}
	}
	return inc
}

// NumRows returns the number of logical constraint rows added via AddRow
// (an EQ row counts once, matching what the caller stated). Use
// TableauRows for the internal ≤-form count.
func (inc *Incremental) NumRows() int { return inc.logicalRows }

// TableauRows returns the internal ≤-form row count: EQ constraints are
// split into a ≤ and a ≥ row, so they count twice here.
func (inc *Incremental) TableauRows() int { return len(inc.rows) }

// Iterations returns the cumulative dual-simplex pivot count.
func (inc *Incremental) Iterations() int { return inc.iterations }

// Stats returns a snapshot of the engine's observability counters. The
// dense tableau never factors a basis, so the factorization gauges stay
// zero; RowNonzeros counts the nonzeros of the stated constraint part
// (structural columns only, slack columns excluded).
func (inc *Incremental) Stats() Stats {
	s := Stats{
		Pivots:      inc.iterations,
		LogicalRows: inc.logicalRows,
		TableauRows: len(inc.rows),
		// The dense tableau IS the lowered form: every EQ or ranged row is
		// already split, so the two counts coincide.
		LoweredTableauRows: len(inc.rows),
		RangedRows:         inc.rangedRows,
		// The factorization gauges are legitimately zero for the dense
		// tableau; GaugesValid says so explicitly (Merge must not keep
		// stale values from another engine).
		GaugesValid: true,
	}
	for _, row := range inc.rows {
		n := len(row)
		if n > inc.nVars {
			n = inc.nVars
		}
		for _, v := range row[:n] {
			if v != 0 {
				s.RowNonzeros++
			}
		}
	}
	return s
}

// AddRow introduces the constraint Σ terms {op} rhs. EQ rows are split
// into a ≤ and a ≥ row. The engine becomes primal-infeasible until the
// next Solve call.
func (inc *Incremental) AddRow(terms []Term, op Op, rhs float64) {
	inc.logicalRows++
	switch op {
	case LE:
		inc.addLE(terms, rhs, 1)
	case GE:
		inc.addLE(terms, rhs, -1) // −Σ a x ≤ −b
	case EQ:
		inc.rangedRows++
		inc.addLE(terms, rhs, 1)
		inc.addLE(terms, rhs, -1)
	}
}

// AddRangedRow introduces lo ≤ Σ terms ≤ hi as one logical row. The dense
// tableau has no variable boxes, so the window is lowered to the
// equivalent one-sided ≤ rows (both sides when finite) — the ablation
// baseline the boxed revised engine's single-row storage is measured
// against.
func (inc *Incremental) AddRangedRow(terms []Term, lo, hi float64) {
	if lo > hi || math.IsNaN(lo) || math.IsNaN(hi) {
		panic(fmt.Sprintf("lp: AddRangedRow with empty window [%g, %g]", lo, hi))
	}
	inc.logicalRows++
	if !math.IsInf(lo, -1) && !math.IsInf(hi, 1) {
		inc.rangedRows++
	}
	if !math.IsInf(hi, 1) {
		inc.addLE(terms, hi, 1)
	}
	if !math.IsInf(lo, -1) {
		inc.addLE(terms, lo, -1)
	}
}

// addLE appends sign·(Σ terms) ≤ sign·rhs in ≤ form.
func (inc *Incremental) addLE(terms []Term, rhs float64, sign float64) {
	row := make([]float64, inc.cols+1, inc.cols+1+64)
	for _, t := range terms {
		if t.Var < 0 || t.Var >= inc.nVars {
			panic(fmt.Sprintf("lp: Incremental row references variable %d of %d", t.Var, inc.nVars))
		}
		row[t.Var] += sign * t.Coef
	}
	b := sign * rhs
	// Express the new row in the current basis: eliminate basic columns.
	// Older tableau rows can be shorter than cols (slack columns appended
	// later are implicitly zero there).
	for i, bj := range inc.basis {
		f := row[bj]
		if f == 0 {
			continue
		}
		ri := inc.rows[i]
		for j := 0; j < len(ri) && j < inc.cols; j++ {
			row[j] -= f * ri[j]
		}
		row[bj] = 0
		b -= f * inc.rhs[i]
	}
	// New slack column: zero in existing rows (they never touch it), one
	// here; the slack enters the basis carrying value b.
	slack := inc.cols
	inc.cols++
	row[slack] = 1
	inc.rows = append(inc.rows, row)
	inc.rhs = append(inc.rhs, b)
	inc.basis = append(inc.basis, slack)
	// obj gains a zero-cost column.
	inc.obj = append(inc.obj, 0)
}

// colAt returns row[j], treating columns beyond the stored length as zero
// (rows created before later slack columns existed).
func colAt(row []float64, j int) float64 {
	if j < len(row) {
		return row[j]
	}
	return 0
}

func (inc *Incremental) pivot(r, cIn int) {
	prow := inc.rows[r]
	prow = inc.grow(prow)
	inc.rows[r] = prow
	pv := prow[cIn]
	invPv := 1 / pv
	for j := 0; j < inc.cols; j++ {
		prow[j] *= invPv
	}
	prow[cIn] = 1
	inc.rhs[r] *= invPv
	for i := range inc.rows {
		if i == r {
			continue
		}
		f := colAt(inc.rows[i], cIn)
		if f == 0 {
			continue
		}
		ri := inc.grow(inc.rows[i])
		inc.rows[i] = ri
		for j := 0; j < inc.cols; j++ {
			ri[j] -= f * prow[j]
		}
		ri[cIn] = 0
		inc.rhs[i] -= f * inc.rhs[r]
	}
	if f := colAt(inc.obj, cIn); f != 0 {
		inc.obj = inc.grow(inc.obj)
		for j := 0; j < inc.cols; j++ {
			inc.obj[j] -= f * prow[j]
		}
		inc.obj[cIn] = 0
		inc.objV -= f * inc.rhs[r]
	}
	inc.basis[r] = cIn
}

// grow pads a row with zeros up to the current column count.
func (inc *Incremental) grow(row []float64) []float64 {
	for len(row) < inc.cols {
		row = append(row, 0)
	}
	return row
}

// Solve re-optimizes with the dual simplex method and returns the current
// solution. Status is Optimal or Infeasible (a non-negative objective
// over x ≥ 0 can never be unbounded); Numerical/IterLimit report trouble.
func (inc *Incremental) Solve() (*Solution, error) {
	if inc.infeasible {
		return &Solution{Status: Infeasible, Iterations: inc.iterations}, nil
	}
	maxIter := 20000 + 200*(len(inc.rows)+inc.cols)
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return &Solution{Status: IterLimit, Iterations: inc.iterations}, nil
		}
		// Leaving row: most negative right-hand side.
		r, worst := -1, -inc.tol
		for i, b := range inc.rhs {
			if b < worst {
				r, worst = i, b
			}
		}
		if r < 0 {
			break // primal feasible ⇒ optimal (dual feasibility invariant)
		}
		// Entering column: dual ratio test over negative coefficients.
		row := inc.rows[r]
		cIn, best := -1, math.Inf(1)
		for j := 0; j < inc.cols; j++ {
			a := colAt(row, j)
			if a >= -inc.tol {
				continue
			}
			ratio := colAt(inc.obj, j) / (-a)
			if ratio < best-inc.tol || (ratio < best+inc.tol && (cIn < 0 || j < cIn)) {
				cIn, best = j, ratio
			}
		}
		if cIn < 0 {
			// The row reads Σ (≥0 coefficients) = negative: infeasible.
			inc.infeasible = true
			return &Solution{Status: Infeasible, Iterations: inc.iterations}, nil
		}
		inc.pivot(r, cIn)
		inc.iterations++
	}
	x := make([]float64, inc.nVars)
	for i, bj := range inc.basis {
		if bj < inc.nVars {
			v := inc.rhs[i]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[bj] = v
		}
	}
	var objVal float64
	for j, c := range inc.origC {
		objVal += c * x[j]
	}
	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  objVal,
		Iterations: inc.iterations,
	}, nil
}
