// Command gensinks emits benchmark sink sets in the plain-text format the
// other tools consume.
//
// Usage:
//
//	gensinks -bench prim1          # synthetic stand-in, published size
//	gensinks -bench prim2-s       # scaled variant
//	gensinks -count 128 -seed 7   # custom uniform instance
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lubt/internal/wkld"
)

func main() {
	var (
		bench = flag.String("bench", "", "benchmark name ("+strings.Join(wkld.Names(), ", ")+"; -s suffix scales down)")
		count = flag.Int("count", 0, "custom instance: sink count")
		seed  = flag.Int64("seed", 1, "custom instance: RNG seed")
		out   = flag.String("out", "", "output file (default: stdout)")
	)
	flag.Parse()
	if err := run(*bench, *count, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gensinks:", err)
		os.Exit(1)
	}
}

func run(bench string, count int, seed int64, out string) error {
	var b *wkld.Benchmark
	var err error
	switch {
	case bench != "" && count != 0:
		return fmt.Errorf("use either -bench or -count, not both")
	case bench != "":
		b, err = wkld.Generate(bench)
		if err != nil {
			return err
		}
	case count > 0:
		b = wkld.Custom(fmt.Sprintf("custom-%d-%d", count, seed), count, seed)
	default:
		return fmt.Errorf("need -bench or -count; see -h")
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return b.Write(w)
}
