package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBenchmark(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sinks.txt")
	if err := run("prim1-s", 0, 1, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 269/4+2 { // sinks + name + source
		t.Errorf("got %d lines", lines)
	}
}

func TestRunCustom(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sinks.txt")
	if err := run("", 12, 9, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if strings.Count(string(data), "\n") != 14 {
		t.Errorf("wrong line count:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", 0, 1, ""); err == nil {
		t.Error("no mode accepted")
	}
	if err := run("prim1", 5, 1, ""); err == nil {
		t.Error("both modes accepted")
	}
	if err := run("bogus", 0, 1, ""); err == nil {
		t.Error("unknown bench accepted")
	}
	if err := run("prim1-s", 0, 1, "/nonexistent-dir/x.txt"); err == nil {
		t.Error("unwritable output accepted")
	}
}
