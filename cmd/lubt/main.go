// Command lubt routes one instance: it reads a sink list, builds a
// topology, solves the EBF linear program for the requested delay window,
// embeds the tree, and reports the result (optionally as SVG).
//
// Usage:
//
//	lubt -in sinks.txt -lower 0.8 -upper 1.2 [-skew-topology 0.4]
//	     [-normalized] [-use-source] [-solver simplex|ipm]
//	     [-pricing devex|mostviolated|steepest] [-svg out.svg]
//	     [-stats] [-trace trace.json] [-eco]
//
// With -eco the solve is held open as an ECO session: after reporting the
// tree, sink 1's lower bound is retightened past its routed delay and the
// engine re-solves warm from the kept basis, printing the warm pivot
// count against the cold solve's. -eco composes with -pricing: the warm
// re-solve inherits the selected dual pricing rule.
//
// The input format is the one emitted by gensinks: one "x y" pair per
// line, optional "source x y" line, "#" comments. With -normalized,
// -lower/-upper are multiples of the instance radius (as in the paper's
// tables); otherwise they are absolute routing units.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"lubt"
	"lubt/internal/wkld"
)

func main() {
	var (
		inPath     = flag.String("in", "", "sink list file (default: stdin)")
		lower      = flag.Float64("lower", 0, "lower delay bound")
		upper      = flag.Float64("upper", math.Inf(1), "upper delay bound (default +inf)")
		normalized = flag.Bool("normalized", false, "interpret bounds as multiples of the radius")
		useSource  = flag.Bool("use-source", false, "pin the source to the file's source line")
		skewTopo   = flag.Float64("skew-topology", math.Inf(1), "skew bound guiding the topology generator")
		solver     = flag.String("solver", "simplex", "LP solver: simplex, densesimplex, coldsimplex or ipm")
		pricing    = flag.String("pricing", "", "dual-simplex pricing: devex (default), mostviolated or steepest (solver=simplex only)")
		svgPath    = flag.String("svg", "", "write the routed tree as SVG to this file")
		jsonPath   = flag.String("json", "", "write the routed tree as JSON to this file")
		boundsPath = flag.String("bounds", "", "per-sink bounds file (one \"l u\" line per sink, overrides -lower/-upper)")
		stats      = flag.Bool("stats", false, "print LP engine statistics (pivots, rounds, fill-in, timings)")
		tracePath  = flag.String("trace", "", "write the solve span tree as JSON (schema lubt-trace/1) to this file")
		eco        = flag.Bool("eco", false, "ECO demo: retighten sink 1's window after solving and warm re-solve in place")
		presolve   = flag.String("presolve", "", "dominance presolve: on, off or empty (auto from 2048 sinks)")
		decompose  = flag.String("decompose", "", "subtree decomposition: on, off or empty (auto from 2048 sinks)")
	)
	flag.Parse()
	cfg := runConfig{
		inPath: *inPath, lower: *lower, upper: *upper,
		normalized: *normalized, useSource: *useSource, skewTopo: *skewTopo,
		solver: *solver, pricing: *pricing, svgPath: *svgPath, jsonPath: *jsonPath,
		boundsPath: *boundsPath, showStats: *stats, tracePath: *tracePath, eco: *eco,
		presolve: *presolve, decompose: *decompose,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lubt:", err)
		os.Exit(1)
	}
}

// runConfig carries the parsed flags into run.
type runConfig struct {
	inPath                string
	lower, upper          float64
	normalized, useSource bool
	skewTopo              float64
	solver                string
	pricing               string
	svgPath, jsonPath     string
	boundsPath            string
	showStats             bool
	tracePath             string
	eco                   bool
	presolve, decompose   string
}

func run(cfg runConfig) error {
	var bench *wkld.Benchmark
	var err error
	if cfg.inPath == "" {
		bench, err = wkld.Read(os.Stdin)
	} else {
		f, ferr := os.Open(cfg.inPath)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		bench, err = wkld.Read(f)
	}
	if err != nil {
		return err
	}

	sinks := make([]lubt.Point, len(bench.Sinks))
	for i, s := range bench.Sinks {
		sinks[i] = lubt.Point{X: s.X, Y: s.Y}
	}
	inst, err := lubt.NewInstance(sinks)
	if err != nil {
		return err
	}
	if cfg.useSource {
		inst.SetSource(lubt.Point{X: bench.Source.X, Y: bench.Source.Y})
	}
	if err := inst.UseSkewGuidedTopology(scaleBound(cfg.skewTopo, inst.Radius(), cfg.normalized)); err != nil {
		return err
	}
	r := inst.Radius()
	scale := 1.0
	if cfg.normalized {
		scale = r
	}
	var bounds lubt.Bounds
	l, u := cfg.lower*scale, cfg.upper
	if !math.IsInf(u, 1) {
		u *= scale
	}
	if cfg.boundsPath != "" {
		var err error
		bounds, err = readBounds(cfg.boundsPath, len(sinks), scale)
		if err != nil {
			return err
		}
		l, u = math.Inf(1), math.Inf(-1) // summary only
		for i := range bounds.Lower {
			l = math.Min(l, bounds.Lower[i])
			u = math.Max(u, bounds.Upper[i])
		}
	} else {
		bounds = lubt.Uniform(len(sinks), l, u)
	}
	opts := &lubt.Options{Solver: cfg.solver, Pricing: cfg.pricing, Presolve: cfg.presolve, Decompose: cfg.decompose}
	var traceFile *os.File
	if cfg.tracePath != "" {
		var err error
		traceFile, err = os.Create(cfg.tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		opts.TraceJSON = traceFile
	}
	var tree *lubt.Tree
	var solved *lubt.Solved
	if cfg.eco {
		solved, err = inst.SolveECO(bounds, opts)
		if err != nil {
			return err
		}
		tree = solved.Tree()
	} else {
		tree, err = inst.Solve(bounds, opts)
		if err != nil {
			return err
		}
	}
	if err := tree.Verify(); err != nil {
		return fmt.Errorf("result failed verification: %w", err)
	}
	fmt.Printf("bench      %s (%d sinks)\n", bench.Name, len(sinks))
	fmt.Printf("radius     %.2f\n", r)
	fmt.Printf("window     [%.2f, %.2f]\n", l, u)
	fmt.Printf("cost       %.2f\n", tree.Cost)
	fmt.Printf("delays     [%.2f, %.2f]  skew %.2f\n", tree.MinDelay, tree.MaxDelay, tree.Skew)
	fmt.Printf("elongation %.2f\n", tree.TotalElongation())
	if cfg.eco {
		// Retighten sink 1 past its routed delay and re-solve warm from
		// the kept basis — the classic single-sink ECO edit. Raising a
		// lower bound is always satisfiable by elongating that sink's
		// leaf edge, so the demo never turns the instance infeasible.
		coldPivots := tree.Stats.LPIterations
		newL := tree.SinkDelays[0] + 0.05*r
		newU := math.Max(bounds.Upper[0], newL)
		if err := solved.Retighten(0, newL, newU); err != nil {
			return err
		}
		t0 := time.Now()
		tree, err = solved.Resolve()
		warmTime := time.Since(t0)
		if err != nil {
			return err
		}
		if err := tree.Verify(); err != nil {
			return fmt.Errorf("eco result failed verification: %w", err)
		}
		fmt.Println("--- eco: retighten sink 1, warm re-solve ---")
		fmt.Printf("window'    [%.2f, %.2f]\n", newL, newU)
		fmt.Printf("cost'      %.2f\n", tree.Cost)
		fmt.Printf("eco-pivots %d warm vs %d cold  (%v)\n",
			solved.ResolvePivots(), coldPivots, warmTime.Round(time.Microsecond))
		if err := solved.Close(); err != nil {
			return err
		}
	}
	if cfg.showStats {
		fmt.Println("--- lp stats ---")
		fmt.Println(tree.Stats)
	}
	if cfg.svgPath != "" {
		f, err := os.Create(cfg.svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tree.WriteSVG(f); err != nil {
			return err
		}
		fmt.Printf("svg        %s\n", cfg.svgPath)
	}
	if cfg.jsonPath != "" {
		f, err := os.Create(cfg.jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tree.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("json       %s\n", cfg.jsonPath)
	}
	if cfg.tracePath != "" {
		fmt.Printf("trace      %s\n", cfg.tracePath)
	}
	return nil
}

// readBounds parses a per-sink bounds file: one "l u" pair per line in
// sink order, "#" comments and blank lines ignored, "inf" accepted as an
// upper bound. Values are multiplied by scale (the radius when
// -normalized is set).
func readBounds(path string, m int, scale float64) (lubt.Bounds, error) {
	b := lubt.Bounds{}
	f, err := os.Open(path)
	if err != nil {
		return b, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return b, fmt.Errorf("%s:%d: expected \"l u\"", path, line)
		}
		var l float64
		if _, err := fmt.Sscanf(fields[0], "%g", &l); err != nil {
			return b, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		u := math.Inf(1)
		if fields[1] != "inf" {
			if _, err := fmt.Sscanf(fields[1], "%g", &u); err != nil {
				return b, fmt.Errorf("%s:%d: %v", path, line, err)
			}
			u *= scale
		}
		b.Lower = append(b.Lower, l*scale)
		b.Upper = append(b.Upper, u)
	}
	if err := sc.Err(); err != nil {
		return b, err
	}
	if len(b.Lower) != m {
		return b, fmt.Errorf("%s: %d bound lines for %d sinks", path, len(b.Lower), m)
	}
	return b, nil
}

func scaleBound(b, radius float64, normalized bool) float64 {
	if math.IsInf(b, 1) || !normalized {
		return b
	}
	return b * radius
}
