package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lubt/internal/obs"
	"lubt/internal/wkld"
)

func writeSinks(t *testing.T, dir string, count int) string {
	t.Helper()
	b := wkld.Custom("cli-test", count, 5)
	path := filepath.Join(dir, "sinks.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := b.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunUniformBounds(t *testing.T) {
	dir := t.TempDir()
	in := writeSinks(t, dir, 10)
	svg := filepath.Join(dir, "out.svg")
	jsonOut := filepath.Join(dir, "out.json")
	err := run(runConfig{inPath: in, lower: 0.8, upper: 1.3, normalized: true,
		useSource: true, skewTopo: 0.5, solver: "simplex",
		svgPath: svg, jsonPath: jsonOut, showStats: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{svg, jsonOut} {
		data, err := os.ReadFile(p)
		if err != nil || len(data) == 0 {
			t.Fatalf("%s: %v (%d bytes)", p, err, len(data))
		}
	}
	svgData, _ := os.ReadFile(svg)
	if !strings.HasPrefix(string(svgData), "<svg") {
		t.Error("svg output malformed")
	}
}

// TestRunTrace exercises the -trace path: the emitted file must be a
// lubt-trace/1 document rooted at "solve".
func TestRunTrace(t *testing.T) {
	dir := t.TempDir()
	in := writeSinks(t, dir, 8)
	tracePath := filepath.Join(dir, "trace.json")
	err := run(runConfig{inPath: in, lower: 0.8, upper: 1.3, normalized: true,
		useSource: true, skewTopo: 0.5, solver: "simplex", tracePath: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Root   struct {
			Name string `json:"name"`
		} `json:"root"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if doc.Schema != obs.TraceSchema || doc.Root.Name != "solve" {
		t.Fatalf("trace document = %+v", doc)
	}
}

func TestRunPerSinkBounds(t *testing.T) {
	dir := t.TempDir()
	in := writeSinks(t, dir, 4)
	boundsPath := filepath.Join(dir, "bounds.txt")
	content := "# per-sink windows\n0.9 1.3\n0.9 1.3\n1.0 1.4\n0 inf\n"
	if err := os.WriteFile(boundsPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(runConfig{inPath: in, lower: 0, upper: math.Inf(1), normalized: true,
		useSource: true, skewTopo: math.Inf(1), solver: "simplex", boundsPath: boundsPath}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInputs(t *testing.T) {
	dir := t.TempDir()
	in := writeSinks(t, dir, 4)
	if err := run(runConfig{inPath: filepath.Join(dir, "missing.txt"), upper: 1,
		skewTopo: math.Inf(1), solver: "simplex"}); err == nil {
		t.Error("missing input accepted")
	}
	if err := run(runConfig{inPath: in, upper: math.Inf(1),
		skewTopo: math.Inf(1), solver: "bogus"}); err == nil {
		t.Error("bad solver accepted")
	}
	// Infeasible window: upper bound below the radius (normalized 0.5).
	if err := run(runConfig{inPath: in, upper: 0.5, normalized: true, useSource: true,
		skewTopo: math.Inf(1), solver: "simplex"}); err == nil {
		t.Error("infeasible window accepted")
	}
	// Bounds file with wrong line count.
	boundsPath := filepath.Join(dir, "bounds.txt")
	os.WriteFile(boundsPath, []byte("0 inf\n"), 0o644)
	if err := run(runConfig{inPath: in, upper: math.Inf(1),
		skewTopo: math.Inf(1), solver: "simplex", boundsPath: boundsPath}); err == nil {
		t.Error("short bounds file accepted")
	}
	// Malformed bounds lines.
	for _, bad := range []string{"x y\n0 inf\n0 inf\n0 inf\n", "1\n2 3\n4 5\n6 7\n"} {
		os.WriteFile(boundsPath, []byte(bad), 0o644)
		if err := run(runConfig{inPath: in, upper: math.Inf(1),
			skewTopo: math.Inf(1), solver: "simplex", boundsPath: boundsPath}); err == nil {
			t.Errorf("malformed bounds %q accepted", bad)
		}
	}
}

func TestReadBoundsScaling(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.txt")
	os.WriteFile(path, []byte("1 2\n0.5 inf\n"), 0o644)
	b, err := readBounds(path, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lower[0] != 10 || b.Upper[0] != 20 || b.Lower[1] != 5 || !math.IsInf(b.Upper[1], 1) {
		t.Fatalf("bounds = %+v", b)
	}
}
