// Command lubtbench regenerates the paper's evaluation: Tables 1–3 and
// Figure 8 (§8). By default it runs the scaled benchmark variants; -full
// uses the published sink counts (slower — minutes per wide-window row on
// the larger benchmarks).
//
// Usage:
//
//	lubtbench              # all tables and the figure, scaled benches
//	lubtbench -table 1     # just Table 1
//	lubtbench -figure 8    # just the Figure 8 curve
//	lubtbench -full        # full-size instances
//	lubtbench -stats       # LP engine statistics per engine/pricing
//	lubtbench -json        # write BENCH_<name>.json records instead
//	lubtbench -json -bench prim1-s -repeats 5 -outdir out/
//
// -stats and -json run the three-engine lineup on each benchmark:
// "revised" (the sparse boxed dual simplex under its default Devex
// pricing), "revised-mv" (same engine, most-violated pricing — the
// pivot-count ablation baseline) and "dense" (the dense-tableau
// ablation). With -json, one machine-readable BENCH_<name>.json file
// (schema "lubt-bench/1") is written per benchmark into -outdir
// (default "."), carrying the full LP-engine statistics spine —
// including pricing_scheme, devex_resets and the reference-weight
// extremes — with median-of-repeats timings; see EXPERIMENTS.md for the
// field reference. The "revised" row additionally carries the ECO probe
// (eco_pivots, eco_resolve_ms): the solve is held open as a session, sink
// 1's window is retightened past its routed delay, and the engine
// re-solves warm from the kept basis. ci.sh's bench smoke validates these
// files and gates the Devex-vs-most-violated pivot counts
// (experiments.CheckPivotGate) plus the warm-vs-cold ECO ratio
// (experiments.CheckEcoGate).
//
// Scale-class benchmarks (r6-class and up, at least 2048 sinks — e.g.
// -bench r6-s) switch both the baseline and the lineup: the topology
// comes from the sector-partitioned router (8 angular sectors, so the
// root has independent branches), and the engine rows become "revised"
// (auto settings — dominance presolve plus parallel subtree
// decomposition) versus "revised-nopresolve" (both passes forced off),
// the before/after pair behind the presolve_pruned_rows, subtrees and
// peak_rows keys. ci.sh's scale smoke gates that record with
// experiments.CheckPresolveGate: presolve must prune rows, the
// decomposed peak row count must not exceed the monolithic one, and the
// two optima must agree to 1e-6·radius. The ECO probe is skipped at this
// size (sessions solve monolithically without presolve).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lubt/internal/experiments"
)

func main() {
	var (
		tableN   = flag.Int("table", 0, "run only this table (1, 2 or 3)")
		figureN  = flag.Int("figure", 0, "run only this figure (8)")
		full     = flag.Bool("full", false, "use full-size benchmark instances")
		stats    = flag.Bool("stats", false, "print LP engine statistics (revised/devex, revised/most-violated, dense) instead of the tables")
		jsonOut  = flag.Bool("json", false, "write per-benchmark BENCH_<name>.json records (schema lubt-bench/1) instead of the tables")
		benchSel = flag.String("bench", "", "restrict -stats/-json to this one benchmark (e.g. prim1-s)")
		repeats  = flag.Int("repeats", experiments.DefaultRepeats, "timing repeats per solve; medians are reported")
		outdir   = flag.String("outdir", ".", "directory for -json output files")
	)
	flag.Parse()
	cfg := config{
		tableN: *tableN, figureN: *figureN, full: *full, stats: *stats,
		json: *jsonOut, bench: *benchSel, repeats: *repeats, outdir: *outdir,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lubtbench:", err)
		os.Exit(1)
	}
}

// config carries the parsed flags into run.
type config struct {
	tableN, figureN int
	full, stats     bool
	json            bool
	bench           string
	repeats         int
	outdir          string
}

func run(cfg config) error {
	benches := experiments.TableBenches(cfg.full)
	if cfg.bench != "" {
		benches = []string{cfg.bench}
	}
	if cfg.json {
		return writeBenchJSON(benches, cfg.repeats, cfg.outdir)
	}
	if cfg.stats {
		t, err := experiments.EngineStatsN(benches, cfg.repeats)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return nil
	}
	all := cfg.tableN == 0 && cfg.figureN == 0
	if cfg.tableN == 1 || all {
		rows, err := experiments.Table1(benches, experiments.Skews1)
		if err != nil {
			return err
		}
		experiments.RenderTable1(rows).Render(os.Stdout)
		fmt.Println()
	}
	if cfg.tableN == 2 || all {
		t2 := benches
		if len(t2) > 2 {
			t2 = t2[:2] // paper: prim1, prim2
		}
		rows, err := experiments.Table2(t2, experiments.Skews2)
		if err != nil {
			return err
		}
		experiments.RenderTable2(rows).Render(os.Stdout)
		fmt.Println()
	}
	if cfg.tableN == 3 || all {
		rows, err := experiments.Table3(benches)
		if err != nil {
			return err
		}
		experiments.RenderTable3(rows).Render(os.Stdout)
		fmt.Println()
	}
	if cfg.figureN == 8 || all {
		name := benches[0]
		if len(benches) > 1 {
			name = benches[1] // prim2 / prim2-s
		}
		rows, err := experiments.Figure8(name)
		if err != nil {
			return err
		}
		experiments.RenderFigure8(rows, name).Render(os.Stdout)
		fmt.Println()
	}
	if cfg.tableN != 0 && cfg.tableN > 3 || cfg.figureN != 0 && cfg.figureN != 8 {
		return fmt.Errorf("unknown table/figure: the paper has Tables 1-3 and Figure 8")
	}
	return nil
}

// writeBenchJSON emits one BENCH_<name>.json per benchmark into outdir.
func writeBenchJSON(benches []string, repeats int, outdir string) error {
	recs, err := experiments.BenchRecords(benches, repeats)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		path := filepath.Join(outdir, "BENCH_"+rec.Bench+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := experiments.WriteBenchJSON(f, rec); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d engines, %d repeats)\n", path, len(rec.Engines), rec.Repeats)
	}
	return nil
}
