// Command lubtbench regenerates the paper's evaluation: Tables 1–3 and
// Figure 8 (§8). By default it runs the scaled benchmark variants; -full
// uses the published sink counts (slower — minutes per wide-window row on
// the larger benchmarks).
//
// Usage:
//
//	lubtbench              # all tables and the figure, scaled benches
//	lubtbench -table 1     # just Table 1
//	lubtbench -figure 8    # just the Figure 8 curve
//	lubtbench -full        # full-size instances
//	lubtbench -stats       # LP engine statistics, revised vs dense
package main

import (
	"flag"
	"fmt"
	"os"

	"lubt/internal/experiments"
)

func main() {
	var (
		tableN  = flag.Int("table", 0, "run only this table (1, 2 or 3)")
		figureN = flag.Int("figure", 0, "run only this figure (8)")
		full    = flag.Bool("full", false, "use full-size benchmark instances")
		stats   = flag.Bool("stats", false, "print LP engine statistics (revised vs dense) instead of the tables")
	)
	flag.Parse()
	if err := run(*tableN, *figureN, *full, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "lubtbench:", err)
		os.Exit(1)
	}
}

func run(tableN, figureN int, full, stats bool) error {
	benches := experiments.TableBenches(full)
	if stats {
		t, err := experiments.EngineStats(benches)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return nil
	}
	all := tableN == 0 && figureN == 0
	if tableN == 1 || all {
		rows, err := experiments.Table1(benches, experiments.Skews1)
		if err != nil {
			return err
		}
		experiments.RenderTable1(rows).Render(os.Stdout)
		fmt.Println()
	}
	if tableN == 2 || all {
		rows, err := experiments.Table2(benches[:2], experiments.Skews2) // paper: prim1, prim2
		if err != nil {
			return err
		}
		experiments.RenderTable2(rows).Render(os.Stdout)
		fmt.Println()
	}
	if tableN == 3 || all {
		rows, err := experiments.Table3(benches)
		if err != nil {
			return err
		}
		experiments.RenderTable3(rows).Render(os.Stdout)
		fmt.Println()
	}
	if figureN == 8 || all {
		name := benches[1] // prim2 / prim2-s
		rows, err := experiments.Figure8(name)
		if err != nil {
			return err
		}
		experiments.RenderFigure8(rows, name).Render(os.Stdout)
		fmt.Println()
	}
	if tableN != 0 && tableN > 3 || figureN != 0 && figureN != 8 {
		return fmt.Errorf("unknown table/figure: the paper has Tables 1-3 and Figure 8")
	}
	return nil
}
