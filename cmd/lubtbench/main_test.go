package main

import "testing"

func TestRunSingleExhibits(t *testing.T) {
	// Table 2 on scaled benches is the fastest full exhibit; the heavier
	// ones are exercised by bench_test.go and the experiments package.
	if err := run(2, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(7, 0, false, false); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(0, 3, false, false); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunEngineStats(t *testing.T) {
	if err := run(0, 0, false, true); err != nil {
		t.Fatal(err)
	}
}
