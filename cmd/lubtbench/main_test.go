package main

import (
	"os"
	"path/filepath"
	"testing"

	"lubt/internal/experiments"
)

func TestRunSingleExhibits(t *testing.T) {
	// Table 2 on scaled benches is the fastest full exhibit; the heavier
	// ones are exercised by bench_test.go and the experiments package.
	if err := run(config{tableN: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(config{tableN: 7}); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run(config{figureN: 3}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunEngineStats(t *testing.T) {
	if err := run(config{stats: true, bench: "prim1-s", repeats: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestRunJSON drives the -json path end to end: one benchmark, one
// repeat, and the emitted BENCH_<name>.json must validate against the
// lubt-bench/1 schema.
func TestRunJSON(t *testing.T) {
	dir := t.TempDir()
	if err := run(config{json: true, bench: "prim1-s", repeats: 1, outdir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_prim1-s.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.ValidateBenchJSON(data); err != nil {
		t.Fatal(err)
	}
}
