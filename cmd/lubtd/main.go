// Command lubtd serves the lubt solver over HTTP/JSON: POST instances to
// /solve, targeted warm edits to /eco, scrape /metrics. Requests that
// share a topology (same sinks, source, resolved parent vector and
// pricing rule) but differ in delay windows or edge weights hit a cached
// warm LP session and re-solve in a handful of dual pivots instead of a
// cold solve.
//
// Usage:
//
//	lubtd                      # listen on :8080
//	lubtd -addr 127.0.0.1:9090
//	lubtd -workers 4 -cache 16 # 4 concurrent solves, 16 warm sessions
//
// On SIGINT/SIGTERM the daemon stops accepting connections, drains
// in-flight solves (up to -drain), closes every warm session and exits.
// The wire contract is documented in docs/API.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lubt/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "warm-basis session cache capacity (LRU entries)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight solves")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "lubtd takes no positional arguments")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := serve.Config{Workers: *workers, CacheSize: *cacheSize}
	if err := run(ctx, cfg, *addr, *drain, nil); err != nil {
		log.Fatalf("lubtd: %v", err)
	}
}

// run brings the daemon up on addr and blocks until ctx is canceled,
// then drains and tears down. When ready is non-nil, the bound address
// is sent once the listener is accepting (the main_test hook — it also
// lets tests pass addr ":0").
func run(ctx context.Context, cfg serve.Config, addr string, drain time.Duration, ready chan<- string) error {
	srv := serve.New(cfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	log.Printf("lubtd: listening on %s (workers, cache in /metrics)", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("lubtd: shutting down, draining in-flight solves")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
