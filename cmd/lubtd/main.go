// Command lubtd serves the lubt solver over HTTP/JSON: POST instances to
// /solve, targeted warm edits to /eco, scrape /metrics (JSON or
// ?format=prom Prometheus text), inspect the last completed requests at
// /debug/flight. Requests that share a topology (same sinks, source,
// resolved parent vector and pricing rule) but differ in delay windows
// or edge weights hit a cached warm LP session and re-solve in a handful
// of dual pivots instead of a cold solve.
//
// Usage:
//
//	lubtd                      # listen on :8080
//	lubtd -addr 127.0.0.1:9090
//	lubtd -workers 4 -cache 16 # 4 concurrent solves, 16 warm sessions
//	lubtd -pprof               # mount net/http/pprof under /debug/pprof/
//	lubtd -flight 256          # keep the last 256 request traces
//	lubtd -slow-solve 250ms    # log over-budget requests with their span tree
//	lubtd -log-level debug -log-format json
//
// Logs go to stderr through log/slog; every solver request gets an id
// (echoed as X-Request-Id) correlating its access-log line, flight
// entry and slow-solve report. On SIGQUIT the daemon dumps the flight
// ring to stderr and keeps running. On SIGINT/SIGTERM it stops
// accepting connections, drains in-flight solves (up to -drain), closes
// every warm session and exits. The wire contract is documented in
// docs/API.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"lubt/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache", serve.DefaultCacheSize, "warm-basis session cache capacity (LRU entries)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight solves")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flightSize := flag.Int("flight", serve.DefaultFlightSize, "flight-recorder ring capacity (last N solver requests)")
	slowSolve := flag.Duration("slow-solve", 0, "log any solver request at least this slow with its full span tree (0 = off)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "lubtd takes no positional arguments")
		flag.Usage()
		os.Exit(2)
	}
	logger, err := newLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lubtd: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := serve.Config{
		Workers:     *workers,
		CacheSize:   *cacheSize,
		EnablePprof: *enablePprof,
		FlightSize:  *flightSize,
		SlowSolve:   *slowSolve,
		Logger:      logger,
	}
	if err := run(ctx, cfg, *addr, *drain, nil, nil); err != nil {
		logger.Error("lubtd exiting", slog.Any("err", err))
		os.Exit(1)
	}
}

// newLogger builds the daemon's slog.Logger from the -log-level and
// -log-format flags.
func newLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
}

// run brings the daemon up on addr and blocks until ctx is canceled,
// then drains and tears down. When ready is non-nil, the bound address
// is sent once the listener is accepting (the main_test hook — it also
// lets tests pass addr ":0"). SIGQUIT dumps the flight-recorder ring to
// flightDump (nil means stderr) without stopping the daemon.
func run(ctx context.Context, cfg serve.Config, addr string, drain time.Duration, ready chan<- string, flightDump io.Writer) error {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	srv := serve.New(cfg)
	defer srv.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cacheCap := cfg.CacheSize
	if cacheCap <= 0 {
		cacheCap = serve.DefaultCacheSize
	}
	logger.Info("lubtd listening",
		slog.String("addr", ln.Addr().String()),
		slog.Int("workers", workers),
		slog.Int("cache_capacity", cacheCap),
		slog.Bool("pprof", cfg.EnablePprof))

	// SIGQUIT: dump the flight ring and keep serving — the "what just
	// happened" lever for a live daemon.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	stopDump := make(chan struct{})
	var dumpWG sync.WaitGroup
	dumpWG.Add(1)
	go func() {
		defer dumpWG.Done()
		for {
			select {
			case <-quitc:
				w := flightDump
				if w == nil {
					w = os.Stderr
				}
				logger.Info("SIGQUIT: dumping flight recorder",
					slog.Int("entries", srv.Flight().Len()))
				_ = srv.Flight().WriteJSON(w)
			case <-stopDump:
				return
			}
		}
	}()
	defer func() {
		signal.Stop(quitc)
		close(stopDump)
		dumpWG.Wait()
	}()

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("lubtd shutting down, draining in-flight solves",
		slog.Duration("drain", drain))
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
