package main

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"lubt/internal/serve"
)

// TestRunServesAndDrains brings the daemon up on an ephemeral port,
// checks it answers, then cancels the context and expects a clean
// graceful exit — the SIGTERM path without the signal.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, serve.Config{Workers: 1, CacheSize: 2}, "127.0.0.1:0", 5*time.Second, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}
