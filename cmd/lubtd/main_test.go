package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"lubt/internal/serve"
)

// TestRunServesAndDrains brings the daemon up on an ephemeral port,
// checks it answers, then cancels the context and expects a clean
// graceful exit — the SIGTERM path without the signal.
func TestRunServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, serve.Config{Workers: 1, CacheSize: 2}, "127.0.0.1:0", 5*time.Second, ready, nil)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	mresp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != 200 {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}

// syncWriter is an io.Writer safe to read while the SIGQUIT goroutine
// writes to it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) Bytes() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.buf.Bytes()...)
}

// TestSIGQUITFlightDump serves one solve, sends the process SIGQUIT and
// expects a valid lubtd-flight/1 document with that request on the dump
// writer — while the daemon keeps serving.
func TestSIGQUITFlightDump(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	dump := &syncWriter{}
	cfg := serve.Config{Workers: 1, CacheSize: 2, FlightSize: 4}
	go func() {
		done <- run(ctx, cfg, "127.0.0.1:0", 5*time.Second, ready, dump)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	body := `{"sinks":[{"x":4,"y":0},{"x":0,"y":5}],"lower_all":0,"upper_all":60}`
	resp, err := http.Post(fmt.Sprintf("http://%s/solve", addr), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("solve status %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatalf("kill(SIGQUIT): %v", err)
	}

	// The dump is written by the signal goroutine; poll until a full
	// JSON document lands.
	deadline := time.Now().Add(10 * time.Second)
	var doc []byte
	for {
		doc = dump.Bytes()
		if len(doc) > 0 && bytes.HasSuffix(bytes.TrimSpace(doc), []byte("}")) {
			if err := serve.ValidateFlightJSON(doc); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no valid flight dump after SIGQUIT; got %d bytes: %s\nvalidate: %v",
				len(doc), doc, serve.ValidateFlightJSON(doc))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Contains(doc, []byte(`"/solve"`)) {
		t.Fatalf("flight dump missing the /solve entry: %s", doc)
	}

	// Daemon must still be serving after the dump.
	hresp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("GET /healthz after SIGQUIT: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 200 {
		t.Fatalf("healthz after SIGQUIT: status %d", hresp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancel")
	}
}
